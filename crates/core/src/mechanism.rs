//! The recursive-mechanism driver (paper Sec. 4.1).
//!
//! Given an instantiation providing the sequences `H` and `G`, the driver
//! performs the three steps of the framework:
//!
//! 1. `Δ = min{ e^{iβ}θ : G_{|P|−i} ≤ e^{iβ}θ }` — a data-dependent bound on
//!    the empirical sensitivity whose logarithm has global sensitivity at
//!    most `β` (Lemma 1). Because `G_{|P|−j} − e^{jβ}θ` is non-increasing in
//!    `j`, the smallest valid `j` is found by binary search touching only
//!    `O(log(log(G_{|P|})/β))` entries of `G` (Sec. 5.3).
//! 2. `Δ̂ = e^{μ+Y}·Δ` with `Y ∼ Lap(β/ε₁)` — the ε₁-differentially private
//!    release of the bound (Lemma 4).
//! 3. `X = min_i H_i + (|P|−i)·Δ̂` — an estimate of the true answer whose
//!    global sensitivity is at most `Δ̂` (Lemma 7); by convexity of `H`
//!    (Lemma 10) the integer argmin is found by ternary search. The final
//!    release is `X̂ = X + Lap(Δ̂/ε₂)`.
//!
//! One `RecursiveMechanism` instance can release repeatedly on the same
//! database (each release spends `ε₁ + ε₂`): `Δ` and every touched `H`/`G`
//! entry are deterministic and cached, so repeated releases only sample fresh
//! noise.

use crate::error::MechanismError;
use crate::params::MechanismParams;
use crate::sequences::MechanismSequences;
use rand::Rng;
use rmdp_noise::laplace::sample_laplace;
use rmdp_observe::{NoopRecorder, Recorder, Stage};

/// One differentially private release together with its diagnostics.
#[derive(Clone, Copy, Debug)]
pub struct Release {
    /// The released (noisy) answer `X̂`.
    pub noisy_answer: f64,
    /// The deterministic threshold `Δ` (not privacy-safe to publish on its
    /// own; exposed for analysis and testing).
    pub delta: f64,
    /// The noisy threshold `Δ̂` actually used to calibrate the answer noise.
    pub delta_hat: f64,
    /// The clipped estimate `X` before the final Laplace noise.
    pub x: f64,
    /// The index `i` attaining `X = H_i + (|P|−i)Δ̂`.
    pub argmin_index: usize,
    /// The true answer `H_{|P|}` (diagnostic only — never publish).
    pub true_answer: f64,
    /// Total privacy budget `ε₁ + ε₂` consumed by this release.
    pub epsilon_spent: f64,
}

/// The recursive mechanism: a driver over an instantiation's sequences.
pub struct RecursiveMechanism<S: MechanismSequences> {
    sequences: S,
    params: MechanismParams,
    cached_delta: Option<f64>,
}

impl<S: MechanismSequences> RecursiveMechanism<S> {
    /// Wraps an instantiation with the given parameters.
    ///
    /// When `params.parallelism` resolves to more than one worker, every
    /// sequence entry is precomputed here on the scoped worker pool: the
    /// efficient instantiation cuts each of its `H`/`G` families into fixed
    /// contiguous runs, solves every run as one warm-started LP chain, and
    /// distributes whole runs across workers. Serially, entries stay lazy
    /// and only the runs the driver touches are solved. Released values are
    /// identical either way; a failing entry LP surfaces as
    /// [`MechanismError::SequenceLp`] naming the exact entry (`H_7`, `G_3`).
    pub fn new(mut sequences: S, params: MechanismParams) -> Result<Self, MechanismError> {
        params.validate()?;
        if params.parallelism.is_parallel() {
            sequences.precompute(params.parallelism)?;
        }
        Ok(RecursiveMechanism {
            sequences,
            params,
            cached_delta: None,
        })
    }

    /// Read access to the parameters.
    pub fn params(&self) -> &MechanismParams {
        &self.params
    }

    /// Read/write access to the underlying sequences (e.g. to inspect cached
    /// entries in tests).
    pub fn sequences_mut(&mut self) -> &mut S {
        &mut self.sequences
    }

    /// Step 1: the deterministic threshold `Δ`. Cached across releases.
    pub fn delta(&mut self) -> Result<f64, MechanismError> {
        if let Some(d) = self.cached_delta {
            return Ok(d);
        }
        let n = self.sequences.num_participants();
        let beta = self.params.beta;
        let theta = self.params.theta;

        // Ladder value at step j.
        let ladder = |j: usize| (j as f64 * beta).exp() * theta;

        // Find the smallest j in [0, n] with G_{n−j} ≤ ladder(j). The
        // difference G_{n−j} − ladder(j) is non-increasing in j, so binary
        // search applies. The paper's bound j ≤ 1 + ln(G_n/θ)/β restricts the
        // search range further.
        let g_full = self.sequences.g(n)?;
        let j_cap = if g_full <= theta {
            0
        } else {
            ((g_full / theta).ln() / beta).ceil() as usize + 1
        };
        let hi_limit = j_cap.min(n);

        let delta = if g_full <= ladder(0) {
            ladder(0)
        } else {
            // Invariant: predicate(j) = [G_{n−j} ≤ ladder(j)] is monotone in j.
            let mut lo = 0usize; // predicate known false at lo
            let mut hi = hi_limit; // candidate upper end
                                   // Ensure the predicate holds at hi; if not, extend to n.
            let holds = |seqs: &mut S, j: usize| -> Result<bool, MechanismError> {
                Ok(seqs.g(n - j)? <= ladder(j))
            };
            let mut hi_ok = holds(&mut self.sequences, hi)?;
            if !hi_ok && hi < n {
                hi = n;
                hi_ok = holds(&mut self.sequences, hi)?;
            }
            if !hi_ok {
                // G_0 = 0 ≤ ladder(n) must hold for a valid bounding
                // sequence; fall back to the top of the ladder defensively.
                ladder(n)
            } else {
                while hi - lo > 1 {
                    let mid = lo + (hi - lo) / 2;
                    if holds(&mut self.sequences, mid)? {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                ladder(hi)
            }
        };
        self.cached_delta = Some(delta);
        Ok(delta)
    }

    /// Steps 2–3: one differentially private release, spending `ε₁ + ε₂`.
    pub fn release<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Result<Release, MechanismError> {
        self.release_recorded(rng, &mut NoopRecorder)
    }

    /// [`release`](Self::release) with stage telemetry: LP-solving segments
    /// (the `Δ` ladder and the `H` entries the ternary search touches) are
    /// bracketed with [`Stage::SequenceSolve`] and the two Laplace draws
    /// with [`Stage::NoiseSample`]. The stages interleave — solving and
    /// sampling alternate — so each stage is entered twice and recorders
    /// accumulate.
    ///
    /// The recorder only observes wall-time; it never touches the RNG or
    /// any value, so the release is bit-identical for every recorder
    /// (`release` itself delegates here with the no-op recorder).
    pub fn release_recorded<R: Rng + ?Sized, T: Recorder>(
        &mut self,
        rng: &mut R,
        recorder: &mut T,
    ) -> Result<Release, MechanismError> {
        let n = self.sequences.num_participants();
        recorder.enter(Stage::SequenceSolve);
        let delta = self.delta()?;
        recorder.exit(Stage::SequenceSolve);

        // Step 2: multiplicative noise on Δ.
        recorder.enter(Stage::NoiseSample);
        let y = sample_laplace(self.params.beta / self.params.epsilon1, rng);
        recorder.exit(Stage::NoiseSample);
        let delta_hat = (self.params.mu + y).exp() * delta;

        // Step 3: X = min_i H_i + (n − i)·Δ̂ over integers, located by ternary
        // search thanks to the convexity of H (Lemma 10).
        recorder.enter(Stage::SequenceSolve);
        let (argmin_index, x) = self.argmin_x(delta_hat)?;
        recorder.exit(Stage::SequenceSolve);

        recorder.enter(Stage::NoiseSample);
        let noise = sample_laplace(delta_hat / self.params.epsilon2, rng);
        recorder.exit(Stage::NoiseSample);
        let noisy_answer = x + noise;
        let true_answer = self.sequences.h(n)?;

        Ok(Release {
            noisy_answer,
            delta,
            delta_hat,
            x,
            argmin_index,
            true_answer,
            epsilon_spent: self.params.total_epsilon(),
        })
    }

    /// Performs `trials` releases and returns them all (the experiment
    /// harness uses this to estimate median relative error; each release is
    /// an independent run of the mechanism).
    pub fn release_many<R: Rng + ?Sized>(
        &mut self,
        trials: usize,
        rng: &mut R,
    ) -> Result<Vec<Release>, MechanismError> {
        (0..trials).map(|_| self.release(rng)).collect()
    }

    /// The objective `H_i + (n − i)·Δ̂` minimised over integer `i` by ternary
    /// search; falls back to a linear scan for tiny `n`.
    fn argmin_x(&mut self, delta_hat: f64) -> Result<(usize, f64), MechanismError> {
        let n = self.sequences.num_participants();
        let value = |seqs: &mut S, i: usize| -> Result<f64, MechanismError> {
            Ok(seqs.h(i)? + (n - i) as f64 * delta_hat)
        };
        if n <= 8 {
            let mut best = (0usize, f64::INFINITY);
            for i in 0..=n {
                let v = value(&mut self.sequences, i)?;
                if v < best.1 {
                    best = (i, v);
                }
            }
            return Ok(best);
        }
        // Fast path: by convexity, if the objective is already non-increasing
        // at the right edge (H_n − H_{n−1} ≤ Δ̂) the argmin is i = n. This is
        // the common case when Δ̂ exceeds the per-participant marginal, and it
        // touches only two (cached) H entries.
        let v_n = value(&mut self.sequences, n)?;
        let v_n1 = value(&mut self.sequences, n - 1)?;
        if v_n <= v_n1 {
            return Ok((n, v_n));
        }
        let (mut lo, mut hi) = (0usize, n);
        while hi - lo > 3 {
            let m1 = lo + (hi - lo) / 3;
            let m2 = hi - (hi - lo) / 3;
            let v1 = value(&mut self.sequences, m1)?;
            let v2 = value(&mut self.sequences, m2)?;
            if v1 <= v2 {
                hi = m2;
            } else {
                lo = m1;
            }
        }
        let mut best = (lo, f64::INFINITY);
        for i in lo..=hi {
            let v = value(&mut self.sequences, i)?;
            if v < best.1 {
                best = (i, v);
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A deterministic toy instantiation: H_i = max(0, i − 5)·3 (piecewise
    /// linear, convex), G_i = 3 for i > 0 (the exact largest marginal).
    struct Toy {
        n: usize,
        h_calls: std::cell::Cell<usize>,
    }

    impl Toy {
        fn new(n: usize) -> Self {
            Toy {
                n,
                h_calls: std::cell::Cell::new(0),
            }
        }
    }

    impl MechanismSequences for Toy {
        fn num_participants(&self) -> usize {
            self.n
        }
        fn h(&mut self, i: usize) -> Result<f64, MechanismError> {
            self.h_calls.set(self.h_calls.get() + 1);
            Ok((i.saturating_sub(5)) as f64 * 3.0)
        }
        fn g(&mut self, i: usize) -> Result<f64, MechanismError> {
            Ok(if i == 0 { 0.0 } else { 3.0 })
        }
        fn bounding_factor(&self) -> f64 {
            1.0
        }
    }

    fn params() -> MechanismParams {
        MechanismParams::paper_edge_privacy(0.5)
    }

    #[test]
    fn delta_is_the_smallest_ladder_value_covering_g() {
        let mut m = RecursiveMechanism::new(Toy::new(50), params()).unwrap();
        let delta = m.delta().unwrap();
        // Need e^{jβ}θ ≥ 3 with β = 0.1, θ = 1: j = ceil(ln 3 / 0.1) = 11.
        let expected = (11.0f64 * 0.1).exp();
        assert!((delta - expected).abs() < 1e-9, "{delta} vs {expected}");
        // Cached: a second call does not change the value.
        assert_eq!(m.delta().unwrap(), delta);
    }

    #[test]
    fn delta_equals_theta_when_g_is_small() {
        struct Tiny;
        impl MechanismSequences for Tiny {
            fn num_participants(&self) -> usize {
                10
            }
            fn h(&mut self, i: usize) -> Result<f64, MechanismError> {
                Ok(i as f64 * 0.1)
            }
            fn g(&mut self, _i: usize) -> Result<f64, MechanismError> {
                Ok(0.5)
            }
            fn bounding_factor(&self) -> f64 {
                1.0
            }
        }
        let mut m = RecursiveMechanism::new(Tiny, params()).unwrap();
        assert!((m.delta().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn release_is_unbiased_around_the_true_answer() {
        let mut m = RecursiveMechanism::new(Toy::new(50), params()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let releases = m.release_many(600, &mut rng).unwrap();
        let true_answer = 45.0 * 3.0 / 3.0 * 3.0; // (50 − 5)·3 = 135
        let median = {
            let mut xs: Vec<f64> = releases.iter().map(|r| r.noisy_answer).collect();
            xs.sort_by(f64::total_cmp);
            xs[xs.len() / 2]
        };
        assert!((median - true_answer).abs() < 25.0, "median {median}");
        for r in &releases {
            assert_eq!(r.true_answer, 135.0);
            assert!(r.delta_hat > 0.0);
            assert!((r.epsilon_spent - 0.5).abs() < 1e-12);
            // X never exceeds the true answer (Lemma 8, second inequality).
            assert!(r.x <= 135.0 + 1e-9);
        }
    }

    #[test]
    fn x_equals_true_answer_when_delta_hat_is_large_enough() {
        // If Δ̂ exceeds every marginal of H, the argmin is at i = |P| and
        // X = H_{|P|}.
        let mut m = RecursiveMechanism::new(Toy::new(30), params()).unwrap();
        let (idx, x) = m.argmin_x(10.0).unwrap();
        assert_eq!(idx, 30);
        assert!((x - 75.0).abs() < 1e-9);
        // If Δ̂ is tiny, the argmin collapses towards i = 0 and X ≈ n·Δ̂.
        let (idx_small, x_small) = m.argmin_x(0.01).unwrap();
        assert!(idx_small <= 5);
        assert!(x_small <= 0.3 + 1e-9);
    }

    #[test]
    fn ternary_search_matches_linear_scan() {
        let mut m = RecursiveMechanism::new(Toy::new(200), params()).unwrap();
        for delta_hat in [0.05, 0.5, 1.0, 2.9, 3.1, 50.0] {
            let (_, fast) = m.argmin_x(delta_hat).unwrap();
            let mut slow = f64::INFINITY;
            for i in 0..=200usize {
                let v = m.sequences_mut().h(i).unwrap() + (200 - i) as f64 * delta_hat;
                slow = slow.min(v);
            }
            assert!(
                (fast - slow).abs() < 1e-9,
                "Δ̂={delta_hat}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn invalid_params_are_rejected() {
        let mut p = params();
        p.epsilon2 = 0.0;
        assert!(RecursiveMechanism::new(Toy::new(5), p).is_err());
    }

    #[test]
    fn log_delta_sensitivity_is_bounded_by_beta() {
        // Lemma 1: ln Δ changes by at most β between neighbouring databases.
        // Simulate a neighbouring pair with the toy sequences: the larger
        // database has one more participant and (recursively monotone) G
        // entries shifted by one index.
        struct Shifted {
            n: usize,
            bump: f64,
        }
        impl MechanismSequences for Shifted {
            fn num_participants(&self) -> usize {
                self.n
            }
            fn h(&mut self, i: usize) -> Result<f64, MechanismError> {
                Ok(i as f64)
            }
            fn g(&mut self, i: usize) -> Result<f64, MechanismError> {
                Ok(if i == 0 {
                    0.0
                } else {
                    self.bump + i as f64 * 0.05
                })
            }
            fn bounding_factor(&self) -> f64 {
                1.0
            }
        }
        let mut small = RecursiveMechanism::new(Shifted { n: 40, bump: 2.0 }, params()).unwrap();
        let mut large = RecursiveMechanism::new(Shifted { n: 41, bump: 2.0 }, params()).unwrap();
        let d1 = small.delta().unwrap();
        let d2 = large.delta().unwrap();
        assert!((d1.ln() - d2.ln()).abs() <= params().beta + 1e-9);
    }
}
