//! The general but inefficient instantiation (paper Sec. 4.2).
//!
//! For an arbitrary monotonic query on an arbitrary sensitive database the
//! paper constructs
//!
//! * `H_i = min_{|P'| = i} q(M(P'))` (Eq. 13) and
//! * `G_i = min_{|P'| = i} G̃S_q(P', M)` (Eq. 14),
//!
//! both minima over ancestor databases with exactly `i` participants. `H` is
//! a recursive sequence with `H_{|P|} = q(M(P))` and `G` is a (1-)bounding
//! sequence of `H` (Theorem 2), so the driver's error is roughly proportional
//! to the global empirical sensitivity.
//!
//! The construction enumerates all `2^{|P|}` participant subsets; it is the
//! reference implementation used for small databases and as a test oracle for
//! the efficient instantiation.

use crate::error::MechanismError;
use crate::sensitive::SensitiveQuery;
use crate::sequences::MechanismSequences;
use rmdp_krelation::hash::FxHashSet;
use rmdp_krelation::participant::ParticipantId;
use rmdp_runtime::{par_map_indexed, Parallelism};

/// Hard cap on `|P|` for the exhaustive enumeration.
pub const MAX_PARTICIPANTS: usize = 22;

/// The subset-enumeration instantiation.
///
/// All `2^{|P|}` query values and global-empirical-sensitivity values are
/// computed eagerly at construction time (each subset is visited once), so
/// entry lookups afterwards are O(1).
pub struct GeneralSequences {
    n: usize,
    /// `H_i` for every `i`.
    h: Vec<f64>,
    /// `G_i` for every `i`.
    g: Vec<f64>,
}

/// Evaluates `q(M(S))` for the subset encoded by `mask`.
fn eval_mask<Q: SensitiveQuery>(query: &Q, participants: &[ParticipantId], mask: usize) -> f64 {
    let subset: FxHashSet<ParticipantId> = participants
        .iter()
        .enumerate()
        .filter(|(i, _)| (mask >> i) & 1 == 1)
        .map(|(_, &p)| p)
        .collect();
    query.query_on_subset(&subset)
}

impl GeneralSequences {
    /// Checks the enumeration cap and returns `(participants, 2^|P|)`.
    fn check<Q: SensitiveQuery>(query: &Q) -> Result<(Vec<ParticipantId>, usize), MechanismError> {
        let participants = query.participants();
        let n = participants.len();
        if n > MAX_PARTICIPANTS {
            return Err(MechanismError::UnsupportedInstance(format!(
                "general instantiation enumerates 2^|P| subsets; |P| = {n} exceeds the cap of {MAX_PARTICIPANTS}"
            )));
        }
        Ok((participants, 1usize << n))
    }

    /// Builds the sequences for a sensitive query by exhaustive enumeration
    /// on the calling thread. See [`GeneralSequences::build_with`] for the
    /// parallel variant (which additionally needs `Q: Sync`).
    pub fn build<Q: SensitiveQuery>(query: &Q) -> Result<Self, MechanismError> {
        let (participants, size) = Self::check(query)?;
        let q_of: Vec<f64> = (0..size)
            .map(|mask| eval_mask(query, &participants, mask))
            .collect();
        Ok(Self::from_subset_values(participants.len(), q_of))
    }

    /// Builds the sequences for a sensitive query by exhaustive enumeration,
    /// evaluating the `2^{|P|}` subset queries — the expensive part, each an
    /// independent evaluation of `q(M(S))` — in chunks on the scoped worker
    /// pool. The sensitivity DP that follows is inherently sequential (each
    /// subset reads its one-bit-smaller subsets) but costs only a few float
    /// ops per subset, so it stays on the calling thread. Results are
    /// bit-identical to the serial build.
    pub fn build_with<Q: SensitiveQuery + Sync>(
        query: &Q,
        parallelism: Parallelism,
    ) -> Result<Self, MechanismError> {
        if parallelism.workers() <= 1 {
            return Self::build(query);
        }
        let (participants, size) = Self::check(query)?;
        // Computed in contiguous chunks so each worker writes one dense run
        // and the merge is a concatenation in chunk (= mask) order.
        let chunk = size.div_ceil(parallelism.workers() * 8).max(1);
        let num_chunks = size.div_ceil(chunk);
        let chunks = par_map_indexed(parallelism, num_chunks, |c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(size);
            (lo..hi)
                .map(|mask| eval_mask(query, &participants, mask))
                .collect::<Vec<f64>>()
        });
        Ok(Self::from_subset_values(
            participants.len(),
            chunks.concat(),
        ))
    }

    /// Finishes the build from the per-mask query values: the sensitivity DP
    /// and the per-size minima.
    fn from_subset_values(n: usize, q_of: Vec<f64>) -> Self {
        let size = q_of.len();
        debug_assert_eq!(size, 1usize << n);

        // Local empirical sensitivity per subset, then the global empirical
        // sensitivity G̃S(S) = max(L̃S(S), max_{p∈S} G̃S(S − {p})) via a DP in
        // increasing subset order (every strict subset has a smaller mask
        // when exactly one bit is cleared).
        let mut gs: Vec<f64> = vec![0.0; size];
        for mask in 0..size {
            let mut local = 0.0f64;
            let mut inherited = 0.0f64;
            for i in 0..n {
                if (mask >> i) & 1 == 1 {
                    let smaller = mask & !(1 << i);
                    local = local.max((q_of[mask] - q_of[smaller]).abs());
                    inherited = inherited.max(gs[smaller]);
                }
            }
            gs[mask] = local.max(inherited);
        }

        // H_i and G_i: minima over subsets of each size.
        let mut h = vec![f64::INFINITY; n + 1];
        let mut g = vec![f64::INFINITY; n + 1];
        for mask in 0..size {
            let i = (mask as u64).count_ones() as usize;
            h[i] = h[i].min(q_of[mask]);
            g[i] = g[i].min(gs[mask]);
        }

        GeneralSequences { n, h, g }
    }

    /// The precomputed `H` entries (diagnostic access).
    pub fn h_entries(&self) -> &[f64] {
        &self.h
    }

    /// The precomputed `G` entries (diagnostic access).
    pub fn g_entries(&self) -> &[f64] {
        &self.g
    }
}

impl MechanismSequences for GeneralSequences {
    fn num_participants(&self) -> usize {
        self.n
    }

    fn h(&mut self, i: usize) -> Result<f64, MechanismError> {
        Ok(self.h[i])
    }

    fn g(&mut self, i: usize) -> Result<f64, MechanismError> {
        Ok(self.g[i])
    }

    fn bounding_factor(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::empirical::global_empirical_sensitivity_exhaustive;
    use crate::sensitive::FnSensitiveQuery;
    use crate::sequences::{
        validate_bounding_property, validate_monotone_start_at_zero,
        validate_recursive_monotonicity,
    };

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    /// q(S) = number of unordered pairs {u, v} ⊆ S that are "friends"
    /// according to a fixed edge list — a tiny node-privacy edge-counting
    /// query.
    fn edge_count_query(
        nodes: usize,
        edges: &'static [(u32, u32)],
    ) -> FnSensitiveQuery<impl Fn(&FxHashSet<ParticipantId>) -> f64> {
        FnSensitiveQuery::new((0..nodes as u32).map(p).collect(), move |s| {
            edges
                .iter()
                .filter(|(u, v)| s.contains(&p(*u)) && s.contains(&p(*v)))
                .count() as f64
        })
    }

    const SQUARE_WITH_DIAGONAL: &[(u32, u32)] = &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)];

    #[test]
    fn h_last_entry_is_the_true_answer_and_h0_is_zero() {
        let q = edge_count_query(4, SQUARE_WITH_DIAGONAL);
        let mut seq = GeneralSequences::build(&q).unwrap();
        assert_eq!(seq.h(0).unwrap(), 0.0);
        assert_eq!(seq.h(4).unwrap(), 5.0);
        assert_eq!(seq.true_answer().unwrap(), 5.0);
    }

    #[test]
    fn h_entries_are_minima_over_subsets() {
        let q = edge_count_query(4, SQUARE_WITH_DIAGONAL);
        let mut seq = GeneralSequences::build(&q).unwrap();
        // With only 2 nodes kept, the best case keeps a non-adjacent pair:
        // {1, 3} has 0 edges.
        assert_eq!(seq.h(2).unwrap(), 0.0);
        // With 3 nodes kept, the sparsest induced subgraph is {1, 2, 3} or
        // {0, 1, 3} with 2 edges... {1,2,3} has edges (1,2),(2,3) = 2;
        // {0,1,3} has (0,1),(3,0) = 2. So H_3 = 2.
        assert_eq!(seq.h(3).unwrap(), 2.0);
    }

    #[test]
    fn g_last_entry_matches_global_empirical_sensitivity() {
        let q = edge_count_query(4, SQUARE_WITH_DIAGONAL);
        let mut seq = GeneralSequences::build(&q).unwrap();
        let gs = global_empirical_sensitivity_exhaustive(&q);
        assert_eq!(seq.g(4).unwrap(), gs);
        // Node 0 and 2 have degree 3: removing either changes the count by 3.
        assert_eq!(gs, 3.0);
    }

    #[test]
    fn sequences_satisfy_the_defining_properties() {
        let q = edge_count_query(4, SQUARE_WITH_DIAGONAL);
        let mut seq = GeneralSequences::build(&q).unwrap();
        validate_monotone_start_at_zero(&mut seq, |s, i| s.h(i)).unwrap();
        validate_monotone_start_at_zero(&mut seq, |s, i| s.g(i)).unwrap();
        validate_bounding_property(&mut seq).unwrap();
    }

    #[test]
    fn recursive_monotonicity_across_a_neighbouring_pair() {
        // The smaller database drops node 3 (and therefore its incident
        // edges) — exactly the node-privacy notion of neighbouring.
        const SMALLER_EDGES: &[(u32, u32)] = &[(0, 1), (1, 2), (0, 2)];
        let q_small = edge_count_query(3, SMALLER_EDGES);
        let q_large = edge_count_query(4, SQUARE_WITH_DIAGONAL);
        let mut small = GeneralSequences::build(&q_small).unwrap();
        let mut large = GeneralSequences::build(&q_large).unwrap();
        validate_recursive_monotonicity(&mut small, &mut large).unwrap();
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        let q = edge_count_query(4, SQUARE_WITH_DIAGONAL);
        let serial = GeneralSequences::build(&q).unwrap();
        for p in [Parallelism::Threads(2), Parallelism::Threads(5)] {
            let parallel = GeneralSequences::build_with(&q, p).unwrap();
            assert_eq!(serial.h_entries(), parallel.h_entries(), "{p}");
            assert_eq!(serial.g_entries(), parallel.g_entries(), "{p}");
        }
    }

    #[test]
    fn too_many_participants_are_rejected() {
        let q = FnSensitiveQuery::new((0..30).map(p).collect(), |s| s.len() as f64);
        match GeneralSequences::build(&q) {
            Err(MechanismError::UnsupportedInstance(_)) => {}
            other => panic!("expected UnsupportedInstance, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn end_to_end_release_with_the_general_instantiation() {
        use crate::mechanism::RecursiveMechanism;
        use crate::params::MechanismParams;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let q = edge_count_query(4, SQUARE_WITH_DIAGONAL);
        let seq = GeneralSequences::build(&q).unwrap();
        let mut mech =
            RecursiveMechanism::new(seq, MechanismParams::paper_node_privacy(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let releases = mech.release_many(50, &mut rng).unwrap();
        for r in &releases {
            assert_eq!(r.true_answer, 5.0);
            assert!(r.noisy_answer.is_finite());
        }
    }
}
