//! Cross-query sequence cache.
//!
//! The recursive mechanism's cost is entirely in precomputing the `H`/`G`
//! sequences — `2(|P|+1)` LP chains per query (Sec. 5.3). Production DP-SQL
//! traffic, however, is dominated by *repeated query shapes* (Chorus:
//! Johnson, Near, Song & Sarwate; FLEX: Johnson, Near & Song), so the second
//! structurally identical query over the same data should not pay the
//! simplex again. This module provides the storage layer of that reuse:
//!
//! * [`FrozenSequences`] — an immutable snapshot of a *completed*
//!   instantiation (every `H_i`/`G_i` value plus the bounding factor), built
//!   from any [`MechanismSequences`] — the LP-based [`EfficientSequences`]
//!   or the subset-enumeration [`GeneralSequences`] alike. Frozen tables
//!   implement [`MechanismSequences`] themselves, so a
//!   [`RecursiveMechanism`](crate::RecursiveMechanism) can release straight
//!   from a cache hit.
//! * [`SequenceCache`] — a thread-safe, capacity-bounded LRU mapping
//!   [`Fingerprint`] keys to `Arc<FrozenSequences>`, with hit/miss/eviction
//!   counters surfaced through [`CacheStats`].
//!
//! ## What caching can and cannot change
//!
//! A frozen table stores the *exact* values the cold path computes — the
//! same deterministic warm-started chains behind
//! [`MechanismSequences::precompute`] — and the mechanism draws its noise
//! per release from the caller's RNG either way. A cache hit therefore skips
//! all LP work but leaves the released values **bit-identical** to a cold
//! run under the same seed: caching is a wall-clock optimisation, never a
//! distribution change.
//!
//! ## Keying discipline
//!
//! The cache itself is key-agnostic: it stores whatever the caller
//! fingerprints. Soundness lives in the key — a key must determine the
//! sequence values, i.e. it must cover the canonical query plan, the
//! database identity *and* mutation epoch (see
//! [`AnnotatedDatabase::annotation_epoch`](rmdp_krelation::annotate::AnnotatedDatabase::annotation_epoch)),
//! and any parameter that shapes the values. `rmdp_sql::fingerprint` is the
//! reference implementation of that contract.
//!
//! [`EfficientSequences`]: crate::EfficientSequences
//! [`GeneralSequences`]: crate::GeneralSequences

use crate::efficient::{EfficientSequences, LpWorkStats, RefreshSeed, RefreshStats, RefreshTier};
use crate::error::{MechanismError, SequenceFamily};
use crate::krelation_query::SensitiveKRelation;
use crate::sequences::MechanismSequences;
use rmdp_krelation::fingerprint::Fingerprint;
use rmdp_krelation::hash::FxHashMap;
use rmdp_lp::SimplexOptions;
use rmdp_runtime::Parallelism;
use std::sync::{Arc, Mutex};

/// Default number of frozen sequence tables a cache holds before evicting.
pub const DEFAULT_CACHE_CAPACITY: usize = 128;

/// An immutable snapshot of a completed instantiation: every `H_i` and
/// `G_i` value plus the bounding factor `g`.
///
/// The snapshot is `Send + Sync` plain data (`2(|P|+1)` floats), so it is
/// cheap to share behind an [`Arc`] across sessions and worker threads.
#[derive(Clone, Debug, PartialEq)]
pub struct FrozenSequences {
    h: Vec<f64>,
    g: Vec<f64>,
    bounding_factor: f64,
}

impl FrozenSequences {
    /// Completes `sequences` (precomputing every entry with up to
    /// `parallelism` workers) and snapshots all of its values.
    ///
    /// The values are exactly what the live instantiation would serve —
    /// [`MechanismSequences::precompute`] is contractually bit-identical to
    /// the lazy path — so releasing from the snapshot is bit-identical to
    /// releasing from the live instantiation under the same RNG stream.
    pub fn compute<S: MechanismSequences>(
        mut sequences: S,
        parallelism: Parallelism,
    ) -> Result<Self, MechanismError> {
        sequences.precompute(parallelism)?;
        Self::snapshot(&mut sequences)
    }

    /// [`compute`](Self::compute) over an
    /// [`EfficientSequences`], returning
    /// the LP work the precomputation performed alongside the snapshot
    /// (`compute`, being generic, has nowhere to surface it; telemetry wants
    /// it attributed to the query that filled the cache).
    pub fn compute_with_stats(
        mut sequences: crate::efficient::EfficientSequences,
        parallelism: Parallelism,
    ) -> Result<(Self, crate::efficient::LpWorkStats), MechanismError> {
        sequences.precompute(parallelism)?;
        let stats = sequences.stats();
        Ok((Self::snapshot(&mut sequences)?, stats))
    }

    /// Like [`compute_with_stats`](Self::compute_with_stats), additionally
    /// capturing a [`RefreshSeed`] so the snapshot can later be *refreshed*
    /// after a data delta instead of recomputed cold — the retained
    /// run-initial bases let [`refresh`](Self::refresh) re-enter the H
    /// chains warm.
    pub fn compute_with_seed(
        mut sequences: EfficientSequences,
        parallelism: Parallelism,
    ) -> Result<(Self, RefreshSeed, LpWorkStats), MechanismError> {
        sequences.precompute(parallelism)?;
        let stats = sequences.stats();
        let seed = sequences.refresh_seed();
        Ok((Self::snapshot(&mut sequences)?, seed, stats))
    }

    /// Re-derives this snapshot for the **post-delta** query through the
    /// cheapest tier that stays bit-identical (per backend, per seed) to a
    /// cold [`compute`](Self::compute) of `query`:
    ///
    /// * [`RefreshTier::Unchanged`] — `query` is structurally identical to
    ///   the seeded one: republish the frozen values, zero LP work;
    /// * [`RefreshTier::WarmChain`] — same participants, warm-exact weight
    ///   class: H runs re-enter via `set_rhs`/`solve_warm` from the seed's
    ///   retained bases, G re-runs its standard chains;
    /// * [`RefreshTier::ColdRebuild`] — anything structural changed: full
    ///   standard chains (identical to the cold path by construction).
    ///
    /// Returns the refreshed snapshot, a fresh seed for the *next* delta,
    /// and what the refresh cost.
    pub fn refresh(
        &self,
        seed: &RefreshSeed,
        query: SensitiveKRelation,
        options: SimplexOptions,
        parallelism: Parallelism,
    ) -> Result<(Self, RefreshSeed, RefreshStats), MechanismError> {
        let tier = seed.tier_for(&query);
        if tier == RefreshTier::Unchanged {
            return Ok((
                self.clone(),
                seed.clone(),
                RefreshStats {
                    tier,
                    lp: LpWorkStats::default(),
                },
            ));
        }
        let mut sequences = EfficientSequences::new(query)
            .with_solver_options(options)
            .with_chain_run_len(seed.chain_run_len);
        if tier == RefreshTier::WarmChain {
            sequences = sequences.with_h_seed_bases(seed.h_run_bases.clone());
        }
        let (frozen, next_seed, lp) = Self::compute_with_seed(sequences, parallelism)?;
        Ok((frozen, next_seed, RefreshStats { tier, lp }))
    }

    /// Copies every completed entry out of `sequences`.
    fn snapshot<S: MechanismSequences>(sequences: &mut S) -> Result<Self, MechanismError> {
        let n = sequences.num_participants();
        let mut h = Vec::with_capacity(n + 1);
        let mut g = Vec::with_capacity(n + 1);
        for i in 0..=n {
            h.push(sequences.h(i)?);
            g.push(sequences.g(i)?);
        }
        Ok(FrozenSequences {
            h,
            g,
            bounding_factor: sequences.bounding_factor(),
        })
    }

    /// The frozen `H` entries.
    pub fn h_entries(&self) -> &[f64] {
        &self.h
    }

    /// The frozen `G` entries.
    pub fn g_entries(&self) -> &[f64] {
        &self.g
    }

    /// Approximate heap size of the snapshot in bytes (diagnostics).
    pub fn size_bytes(&self) -> usize {
        (self.h.capacity() + self.g.capacity()) * std::mem::size_of::<f64>()
    }

    fn entry(
        &self,
        family: SequenceFamily,
        values: &[f64],
        i: usize,
    ) -> Result<f64, MechanismError> {
        values.get(i).copied().ok_or_else(|| {
            // Mirrors the live instantiation: an out-of-range entry is the
            // infeasible mass constraint Σf = i over |P| unit variables.
            MechanismError::sequence_lp(family, i, rmdp_lp::LpError::Infeasible)
        })
    }
}

impl MechanismSequences for FrozenSequences {
    fn num_participants(&self) -> usize {
        self.h.len().saturating_sub(1)
    }

    fn h(&mut self, i: usize) -> Result<f64, MechanismError> {
        self.entry(SequenceFamily::H, &self.h, i)
    }

    fn g(&mut self, i: usize) -> Result<f64, MechanismError> {
        self.entry(SequenceFamily::G, &self.g, i)
    }

    fn bounding_factor(&self) -> f64 {
        self.bounding_factor
    }
}

/// A shared frozen snapshot, servable as [`MechanismSequences`].
///
/// This is what a cache hit hands to the mechanism driver: the `Arc` keeps
/// the snapshot alive even if the cache evicts it mid-release.
#[derive(Clone, Debug)]
pub struct CachedSequences(pub Arc<FrozenSequences>);

impl MechanismSequences for CachedSequences {
    fn num_participants(&self) -> usize {
        self.0.num_participants()
    }

    fn h(&mut self, i: usize) -> Result<f64, MechanismError> {
        self.0.entry(SequenceFamily::H, &self.0.h, i)
    }

    fn g(&mut self, i: usize) -> Result<f64, MechanismError> {
        self.0.entry(SequenceFamily::G, &self.0.g, i)
    }

    fn bounding_factor(&self) -> f64 {
        self.0.bounding_factor
    }
}

/// Cumulative counters of one [`SequenceCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a frozen table.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Tables inserted (including overwrites of an existing key).
    pub insertions: u64,
    /// Tables evicted to respect the capacity bound.
    pub evictions: u64,
    /// Tables swept by [`SequenceCache::purge_stale`] because their epoch
    /// stamps are no longer live on the serving snapshot. Counted separately
    /// from capacity `evictions`: stale sweeps are correctness hygiene (the
    /// key can never be looked up again), not memory pressure.
    pub evictions_stale: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Epoch/lineage tags of one cache entry, supplied by epoch-aware callers
/// ([`SequenceCache::insert_tagged`]).
///
/// * `stamps` — the epoch stamps the entry's key was built from (scanned
///   tables + universe). [`SequenceCache::purge_stale`] sweeps the entry
///   once any stamp stops being live, because stamps are globally unique:
///   a key hashing a dead stamp can never be produced again.
/// * `lineage` — the epoch-*free* structural fingerprint of the plan. Two
///   keys of the same query shape across different epochs share a lineage,
///   which is how a swept entry's [`RefreshSeed`] finds its way to the
///   post-delta recompute of the same query ([`SequenceCache::take_refresh_base`]).
#[derive(Clone, Debug)]
pub struct EntryTag {
    /// Epoch stamps the entry's cache key hashes.
    pub stamps: Vec<u64>,
    /// Epoch-free structural fingerprint of the plan.
    pub lineage: Fingerprint,
}

/// One cache slot: the shared snapshot plus its last-used tick and, for
/// epoch-aware entries, the tag + refresh seed that let a snapshot swap
/// park it for warm re-derivation instead of dropping it.
struct Slot {
    value: Arc<FrozenSequences>,
    last_used: u64,
    tag: Option<EntryTag>,
    seed: Option<Arc<RefreshSeed>>,
}

/// A stale entry parked by [`SequenceCache::purge_stale`], keyed by lineage:
/// the frozen values plus the refresh seed of the newest pre-delta version
/// of one query shape.
struct BankEntry {
    frozen: Arc<FrozenSequences>,
    seed: Arc<RefreshSeed>,
    parked_at: u64,
}

/// The guarded interior of a [`SequenceCache`].
struct CacheInner {
    slots: FxHashMap<u128, Slot>,
    /// Refresh seeds of swept entries, keyed by lineage fingerprint.
    seed_bank: FxHashMap<u128, BankEntry>,
    stats: CacheStats,
    /// Logical clock driving LRU order; bumped on every touch.
    tick: u64,
}

/// A thread-safe, capacity-bounded LRU cache of completed sequence tables.
///
/// All methods take `&self`; interior state lives behind one [`Mutex`]. The
/// lock is held only for the map operation itself — never while sequences
/// are being *computed* — so concurrent batch workers contend for
/// nanoseconds, and two workers racing on the same missing key simply both
/// compute the (deterministic, bit-identical) table and the second insert
/// overwrites the first with an equal value.
pub struct SequenceCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl Default for SequenceCache {
    fn default() -> Self {
        Self::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl SequenceCache {
    /// A cache holding at most `capacity` frozen tables (`capacity` is
    /// clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        SequenceCache {
            inner: Mutex::new(CacheInner {
                slots: FxHashMap::default(),
                seed_bank: FxHashMap::default(),
                stats: CacheStats::default(),
                tick: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Convenience constructor returning the cache ready for sharing.
    pub fn shared(capacity: usize) -> Arc<Self> {
        Arc::new(Self::new(capacity))
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of tables currently cached.
    pub fn len(&self) -> usize {
        self.lock().slots.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }

    /// Drops every cached table and parked refresh base (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.slots.clear();
        inner.seed_bank.clear();
    }

    /// Looks `key` up, counting a hit or miss and refreshing LRU order.
    pub fn get(&self, key: Fingerprint) -> Option<Arc<FrozenSequences>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.slots.get_mut(&key.0) {
            Some(slot) => {
                slot.last_used = tick;
                let value = Arc::clone(&slot.value);
                inner.stats.hits += 1;
                Some(value)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or overwrites) `key`, evicting least-recently-used tables
    /// while over capacity.
    pub fn insert(&self, key: Fingerprint, value: Arc<FrozenSequences>) {
        self.insert_slot(key, value, None, None);
    }

    /// Inserts (or overwrites) `key` with its epoch/lineage tag and refresh
    /// seed, so a later [`purge_stale`](Self::purge_stale) can park the
    /// entry for warm re-derivation instead of dropping it. Also retires any
    /// banked predecessor of the same lineage — the new entry supersedes it
    /// as the freshest refresh base.
    pub fn insert_tagged(
        &self,
        key: Fingerprint,
        value: Arc<FrozenSequences>,
        tag: EntryTag,
        seed: Option<Arc<RefreshSeed>>,
    ) {
        self.insert_slot(key, value, Some(tag), seed);
    }

    fn insert_slot(
        &self,
        key: Fingerprint,
        value: Arc<FrozenSequences>,
        tag: Option<EntryTag>,
        seed: Option<Arc<RefreshSeed>>,
    ) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(tag) = &tag {
            inner.seed_bank.remove(&tag.lineage.0);
        }
        inner.slots.insert(
            key.0,
            Slot {
                value,
                last_used: tick,
                tag,
                seed,
            },
        );
        inner.stats.insertions += 1;
        while inner.slots.len() > self.capacity {
            let Some((&oldest, _)) = inner.slots.iter().min_by_key(|(_, slot)| slot.last_used)
            else {
                break;
            };
            inner.slots.remove(&oldest);
            inner.stats.evictions += 1;
        }
    }

    /// Sweeps every tagged entry whose epoch stamps are not all contained in
    /// `live_stamps` (the serving snapshot's
    /// [`current_epoch_stamps`](rmdp_krelation::annotate::AnnotatedDatabase::current_epoch_stamps)).
    /// Swept entries are counted as [`CacheStats::evictions_stale`] — their
    /// keys hash dead stamps and can never be looked up again — and entries
    /// carrying a refresh seed are parked in the lineage-keyed seed bank so
    /// the first post-delta recompute of the same query shape can
    /// [`refresh`](FrozenSequences::refresh) warm instead of solving cold.
    /// Untagged entries are left alone. Returns the number of swept entries.
    ///
    /// Call this on snapshot swap: the sweep is what keeps a long-running
    /// server's cache from carrying one dead generation per delta until
    /// capacity pressure happens to reach it.
    pub fn purge_stale(&self, live_stamps: &[u64]) -> usize {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let stale: Vec<u128> = inner
            .slots
            .iter()
            .filter(|(_, slot)| {
                slot.tag
                    .as_ref()
                    .is_some_and(|tag| tag.stamps.iter().any(|s| !live_stamps.contains(s)))
            })
            .map(|(&key, _)| key)
            .collect();
        for key in &stale {
            let Some(slot) = inner.slots.remove(key) else {
                continue;
            };
            inner.stats.evictions_stale += 1;
            let (Some(tag), Some(seed)) = (slot.tag, slot.seed) else {
                continue;
            };
            inner.seed_bank.insert(
                tag.lineage.0,
                BankEntry {
                    frozen: slot.value,
                    seed,
                    parked_at: tick,
                },
            );
        }
        // The bank obeys the same capacity bound as the live slots; oldest
        // parked lineages go first (they have waited longest unclaimed).
        while inner.seed_bank.len() > self.capacity {
            let Some((&oldest, _)) = inner
                .seed_bank
                .iter()
                .min_by_key(|(_, entry)| entry.parked_at)
            else {
                break;
            };
            inner.seed_bank.remove(&oldest);
        }
        stale.len()
    }

    /// Claims the parked pre-delta version of the query shape `lineage`:
    /// the frozen values plus the refresh seed the next compute of that
    /// shape should [`refresh`](FrozenSequences::refresh) from. Consuming —
    /// the claimant republishes a refreshed entry (with a fresh seed) via
    /// [`insert_tagged`](Self::insert_tagged), which supersedes the banked
    /// one; a racing second claimant simply computes cold, which is
    /// bit-identical anyway.
    pub fn take_refresh_base(
        &self,
        lineage: Fingerprint,
    ) -> Option<(Arc<FrozenSequences>, Arc<RefreshSeed>)> {
        let mut inner = self.lock();
        let entry = inner.seed_bank.remove(&lineage.0)?;
        Some((entry.frozen, entry.seed))
    }

    /// Number of parked refresh bases currently in the seed bank.
    pub fn banked_refresh_bases(&self) -> usize {
        self.lock().seed_bank.len()
    }

    /// Returns the table under `key`, computing and inserting it on a miss.
    ///
    /// `compute` runs **outside** the lock, so a slow LP precompute never
    /// blocks other sessions' lookups; the price is that concurrent misses
    /// on the same key may compute the table more than once (harmlessly —
    /// the computation is deterministic).
    pub fn get_or_try_insert_with<F>(
        &self,
        key: Fingerprint,
        compute: F,
    ) -> Result<Arc<FrozenSequences>, MechanismError>
    where
        F: FnOnce() -> Result<FrozenSequences, MechanismError>,
    {
        if let Some(found) = self.get(key) {
            return Ok(found);
        }
        let value = Arc::new(compute()?);
        self.insert(key, Arc::clone(&value));
        Ok(value)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        // A poisoned mutex means a panic inside one of the short map-only
        // critical sections above; the map itself is still structurally
        // sound, so keep serving rather than wedging every session.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efficient::EfficientSequences;
    use crate::general::GeneralSequences;
    use crate::krelation_query::SensitiveKRelation;
    use crate::mechanism::RecursiveMechanism;
    use crate::params::MechanismParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rmdp_krelation::participant::ParticipantId;
    use rmdp_krelation::{Expr, KRelation, Tuple};

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn fig2a() -> SensitiveKRelation {
        let mut r = KRelation::new(["t"]);
        r.insert(
            Tuple::new([("t", "abc")]),
            Expr::conjunction_of_vars([p(0), p(1), p(2)]),
        );
        r.insert(
            Tuple::new([("t", "bcd")]),
            Expr::conjunction_of_vars([p(1), p(2), p(3)]),
        );
        r.insert(
            Tuple::new([("t", "cde")]),
            Expr::conjunction_of_vars([p(2), p(3), p(4)]),
        );
        SensitiveKRelation::counting(&r)
    }

    fn frozen_fig2a() -> FrozenSequences {
        FrozenSequences::compute(EfficientSequences::new(fig2a()), Parallelism::Serial).unwrap()
    }

    #[test]
    fn frozen_tables_serve_the_exact_live_values() {
        let mut live = EfficientSequences::new(fig2a());
        let mut frozen = frozen_fig2a();
        assert_eq!(frozen.num_participants(), 5);
        assert_eq!(frozen.bounding_factor(), 2.0);
        for i in 0..=5usize {
            assert_eq!(frozen.h(i).unwrap(), live.h(i).unwrap(), "H_{i}");
            assert_eq!(frozen.g(i).unwrap(), live.g(i).unwrap(), "G_{i}");
        }
        // Out of range mirrors the live error shape.
        match frozen.h(6) {
            Err(MechanismError::SequenceLp {
                family: SequenceFamily::H,
                index: 6,
                ..
            }) => {}
            other => panic!("expected a named out-of-range error, got {other:?}"),
        }
    }

    #[test]
    fn frozen_general_sequences_work_too() {
        let general = GeneralSequences::build(&fig2a()).unwrap();
        let h_ref = general.h_entries().to_vec();
        let frozen = FrozenSequences::compute(general, Parallelism::Serial).unwrap();
        assert_eq!(frozen.h_entries(), &h_ref[..]);
        assert_eq!(frozen.bounding_factor(), 1.0);
    }

    #[test]
    fn cached_release_is_bit_identical_to_the_live_release() {
        let params = MechanismParams::paper_node_privacy(1.0);
        let frozen = Arc::new(frozen_fig2a());
        let mut live = RecursiveMechanism::new(EfficientSequences::new(fig2a()), params).unwrap();
        let mut cached = RecursiveMechanism::new(CachedSequences(frozen), params).unwrap();
        let a = live
            .release_many(6, &mut StdRng::seed_from_u64(17))
            .unwrap();
        let b = cached
            .release_many(6, &mut StdRng::seed_from_u64(17))
            .unwrap();
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.noisy_answer, rb.noisy_answer);
            assert_eq!(ra.delta, rb.delta);
            assert_eq!(ra.delta_hat, rb.delta_hat);
            assert_eq!(ra.x, rb.x);
        }
    }

    #[test]
    fn hits_misses_and_insertions_are_counted() {
        let cache = SequenceCache::new(4);
        let key = Fingerprint(42);
        assert!(cache.get(key).is_none());
        let table = cache
            .get_or_try_insert_with(key, || Ok(frozen_fig2a()))
            .unwrap();
        let again = cache
            .get_or_try_insert_with(key, || panic!("must not recompute on a hit"))
            .unwrap();
        assert!(Arc::ptr_eq(&table, &again));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2); // the bare get + the populating lookup
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(cache.len(), 1);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn eviction_removes_the_least_recently_used_table() {
        let cache = SequenceCache::new(2);
        let table = Arc::new(frozen_fig2a());
        cache.insert(Fingerprint(1), Arc::clone(&table));
        cache.insert(Fingerprint(2), Arc::clone(&table));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(Fingerprint(1)).is_some());
        cache.insert(Fingerprint(3), Arc::clone(&table));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(Fingerprint(1)).is_some());
        assert!(cache.get(Fingerprint(2)).is_none(), "2 was evicted");
        assert!(cache.get(Fingerprint(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn capacity_is_clamped_and_clear_keeps_counters() {
        let cache = SequenceCache::new(0);
        assert_eq!(cache.capacity(), 1);
        let table = Arc::new(frozen_fig2a());
        cache.insert(Fingerprint(1), Arc::clone(&table));
        cache.insert(Fingerprint(2), table);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().insertions, 2);
    }

    #[test]
    fn concurrent_access_is_safe_and_deterministic() {
        let cache = SequenceCache::shared(8);
        let key = Fingerprint(7);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    let table = cache
                        .get_or_try_insert_with(key, || Ok(frozen_fig2a()))
                        .unwrap();
                    assert_eq!(table.h_entries().len(), 6);
                });
            }
        });
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 4);
    }

    /// A var-only counting query: `n` participants, one unit-weight term per
    /// owned tuple, `extra` additional tuples all owned by participant 0.
    fn counting_query(n: u32, extra: usize) -> SensitiveKRelation {
        let mut terms: Vec<(Expr, f64)> = (0..n).map(|i| (Expr::var(p(i)), 1.0)).collect();
        for _ in 0..extra {
            terms.push((Expr::var(p(0)), 1.0));
        }
        SensitiveKRelation::from_terms((0..n).map(p).collect(), terms)
    }

    #[test]
    fn refresh_republishes_structurally_unchanged_queries_without_lp_work() {
        let (frozen, seed, _) = FrozenSequences::compute_with_seed(
            EfficientSequences::new(counting_query(6, 0)),
            Parallelism::Serial,
        )
        .unwrap();
        let (refreshed, next_seed, stats) = frozen
            .refresh(
                &seed,
                counting_query(6, 0),
                SimplexOptions::default(),
                Parallelism::Serial,
            )
            .unwrap();
        assert_eq!(stats.tier, RefreshTier::Unchanged);
        assert_eq!(stats.lp, LpWorkStats::default());
        assert_eq!(refreshed, frozen);
        // The republished seed still carries the retained bases.
        assert_eq!(next_seed.h_run_bases.len(), seed.h_run_bases.len());
    }

    #[test]
    fn warm_refresh_is_bit_identical_to_cold_rebuild_and_cheaper() {
        // 18 participants → 19 entries → three chain runs per family.
        let before = counting_query(18, 0);
        let after = counting_query(18, 5); // delta: 5 new tuples, known owners
        let (frozen, seed, _) = FrozenSequences::compute_with_seed(
            EfficientSequences::new(before),
            Parallelism::Serial,
        )
        .unwrap();

        let (cold, _, cold_stats) = FrozenSequences::compute_with_seed(
            EfficientSequences::new(after.clone()),
            Parallelism::Serial,
        )
        .unwrap();
        for parallelism in [
            Parallelism::Serial,
            Parallelism::Threads(2),
            Parallelism::Threads(7),
        ] {
            let (warm, next_seed, stats) = frozen
                .refresh(&seed, after.clone(), SimplexOptions::default(), parallelism)
                .unwrap();
            assert_eq!(stats.tier, RefreshTier::WarmChain);
            // The refreshed release surface must be bit-identical to the cold
            // post-delta recompute, for every Parallelism setting.
            assert_eq!(warm.h_entries(), cold.h_entries());
            assert_eq!(warm.g_entries(), cold.g_entries());
            assert_eq!(warm.bounding_factor(), cold.bounding_factor());
            // …while strictly saving pivots (each H run re-enters warm).
            assert!(
                stats.lp.total_pivots < cold_stats.total_pivots,
                "warm {} pivots vs cold {}",
                stats.lp.total_pivots,
                cold_stats.total_pivots
            );
            assert!(stats.lp.warm_start_hits > cold_stats.warm_start_hits);
            // The fresh seed is ready for the next delta.
            assert_eq!(next_seed.h_run_bases.len(), seed.h_run_bases.len());
            assert!(next_seed.warm_eligible);
        }
    }

    #[test]
    fn structural_changes_fall_back_to_a_cold_identical_rebuild() {
        let (frozen, seed, _) = FrozenSequences::compute_with_seed(
            EfficientSequences::new(counting_query(6, 0)),
            Parallelism::Serial,
        )
        .unwrap();

        // A new participant changes the variable space: cold rebuild.
        let grown = counting_query(7, 0);
        let (refreshed, _, stats) = frozen
            .refresh(
                &seed,
                grown.clone(),
                SimplexOptions::default(),
                Parallelism::Serial,
            )
            .unwrap();
        assert_eq!(stats.tier, RefreshTier::ColdRebuild);
        let cold =
            FrozenSequences::compute(EfficientSequences::new(grown), Parallelism::Serial).unwrap();
        assert_eq!(refreshed, cold);

        // A non-var-only query (conjunction annotation) is outside the
        // warm-exact class even with the same participants.
        let mut terms: Vec<(Expr, f64)> = (0..6).map(|i| (Expr::var(p(i)), 1.0)).collect();
        terms.push((Expr::conjunction_of_vars([p(0), p(1)]), 1.0));
        let conj = SensitiveKRelation::from_terms((0..6).map(p).collect(), terms);
        let (refreshed, _, stats) = frozen
            .refresh(
                &seed,
                conj.clone(),
                SimplexOptions::default(),
                Parallelism::Serial,
            )
            .unwrap();
        assert_eq!(stats.tier, RefreshTier::ColdRebuild);
        let cold =
            FrozenSequences::compute(EfficientSequences::new(conj), Parallelism::Serial).unwrap();
        assert_eq!(refreshed, cold);
    }

    #[test]
    fn purge_stale_sweeps_dead_epochs_and_parks_refresh_seeds() {
        let cache = SequenceCache::new(8);
        let (frozen, seed, _) = FrozenSequences::compute_with_seed(
            EfficientSequences::new(counting_query(6, 0)),
            Parallelism::Serial,
        )
        .unwrap();
        let frozen = Arc::new(frozen);
        let seed = Arc::new(seed);
        let lineage_a = Fingerprint(100);
        let lineage_b = Fingerprint(200);

        // Entry keyed on stamps {1, 10}; another on {1, 20}; one untagged.
        cache.insert_tagged(
            Fingerprint(1),
            Arc::clone(&frozen),
            EntryTag {
                stamps: vec![1, 10],
                lineage: lineage_a,
            },
            Some(Arc::clone(&seed)),
        );
        cache.insert_tagged(
            Fingerprint(2),
            Arc::clone(&frozen),
            EntryTag {
                stamps: vec![1, 20],
                lineage: lineage_b,
            },
            None,
        );
        cache.insert(Fingerprint(3), Arc::clone(&frozen));

        // Table with stamp 10 was mutated: its stamp died, 20 survived.
        let swept = cache.purge_stale(&[1, 11, 20]);
        assert_eq!(swept, 1);
        assert!(cache.get(Fingerprint(1)).is_none());
        assert!(cache.get(Fingerprint(2)).is_some());
        assert!(
            cache.get(Fingerprint(3)).is_some(),
            "untagged entries survive"
        );
        let stats = cache.stats();
        assert_eq!(stats.evictions_stale, 1);
        assert_eq!(
            stats.evictions, 0,
            "stale sweeps are not capacity evictions"
        );

        // The swept entry's seed is parked under its lineage, claimable once.
        assert_eq!(cache.banked_refresh_bases(), 1);
        let (banked_frozen, banked_seed) = cache.take_refresh_base(lineage_a).unwrap();
        assert!(Arc::ptr_eq(&banked_frozen, &frozen));
        assert!(Arc::ptr_eq(&banked_seed, &seed));
        assert!(cache.take_refresh_base(lineage_a).is_none(), "consuming");
    }

    #[test]
    fn republishing_a_lineage_supersedes_its_banked_predecessor() {
        let cache = SequenceCache::new(8);
        let (frozen, seed, _) = FrozenSequences::compute_with_seed(
            EfficientSequences::new(counting_query(6, 0)),
            Parallelism::Serial,
        )
        .unwrap();
        let frozen = Arc::new(frozen);
        let seed = Arc::new(seed);
        let lineage = Fingerprint(77);
        cache.insert_tagged(
            Fingerprint(1),
            Arc::clone(&frozen),
            EntryTag {
                stamps: vec![10],
                lineage,
            },
            Some(Arc::clone(&seed)),
        );
        assert_eq!(cache.purge_stale(&[11]), 1);
        assert_eq!(cache.banked_refresh_bases(), 1);

        // The post-delta recompute republishes under the new stamp; the
        // parked predecessor is retired with it.
        cache.insert_tagged(
            Fingerprint(2),
            Arc::clone(&frozen),
            EntryTag {
                stamps: vec![11],
                lineage,
            },
            Some(Arc::clone(&seed)),
        );
        assert_eq!(cache.banked_refresh_bases(), 0);
        assert!(cache.take_refresh_base(lineage).is_none());
        // A sweep under the *same* live stamps touches nothing.
        assert_eq!(cache.purge_stale(&[11]), 0);
        assert!(cache.get(Fingerprint(2)).is_some());
    }

    #[test]
    fn compute_errors_propagate_and_cache_nothing() {
        let cache = SequenceCache::new(4);
        let err = cache
            .get_or_try_insert_with(Fingerprint(9), || {
                Err(MechanismError::UnsupportedInstance("boom".into()))
            })
            .unwrap_err();
        assert!(matches!(err, MechanismError::UnsupportedInstance(_)));
        assert!(cache.is_empty());
    }
}
