//! Cross-query sequence cache.
//!
//! The recursive mechanism's cost is entirely in precomputing the `H`/`G`
//! sequences — `2(|P|+1)` LP chains per query (Sec. 5.3). Production DP-SQL
//! traffic, however, is dominated by *repeated query shapes* (Chorus:
//! Johnson, Near, Song & Sarwate; FLEX: Johnson, Near & Song), so the second
//! structurally identical query over the same data should not pay the
//! simplex again. This module provides the storage layer of that reuse:
//!
//! * [`FrozenSequences`] — an immutable snapshot of a *completed*
//!   instantiation (every `H_i`/`G_i` value plus the bounding factor), built
//!   from any [`MechanismSequences`] — the LP-based [`EfficientSequences`]
//!   or the subset-enumeration [`GeneralSequences`] alike. Frozen tables
//!   implement [`MechanismSequences`] themselves, so a
//!   [`RecursiveMechanism`](crate::RecursiveMechanism) can release straight
//!   from a cache hit.
//! * [`SequenceCache`] — a thread-safe, capacity-bounded LRU mapping
//!   [`Fingerprint`] keys to `Arc<FrozenSequences>`, with hit/miss/eviction
//!   counters surfaced through [`CacheStats`].
//!
//! ## What caching can and cannot change
//!
//! A frozen table stores the *exact* values the cold path computes — the
//! same deterministic warm-started chains behind
//! [`MechanismSequences::precompute`] — and the mechanism draws its noise
//! per release from the caller's RNG either way. A cache hit therefore skips
//! all LP work but leaves the released values **bit-identical** to a cold
//! run under the same seed: caching is a wall-clock optimisation, never a
//! distribution change.
//!
//! ## Keying discipline
//!
//! The cache itself is key-agnostic: it stores whatever the caller
//! fingerprints. Soundness lives in the key — a key must determine the
//! sequence values, i.e. it must cover the canonical query plan, the
//! database identity *and* mutation epoch (see
//! [`AnnotatedDatabase::annotation_epoch`](rmdp_krelation::annotate::AnnotatedDatabase::annotation_epoch)),
//! and any parameter that shapes the values. `rmdp_sql::fingerprint` is the
//! reference implementation of that contract.
//!
//! [`EfficientSequences`]: crate::EfficientSequences
//! [`GeneralSequences`]: crate::GeneralSequences

use crate::error::{MechanismError, SequenceFamily};
use crate::sequences::MechanismSequences;
use rmdp_krelation::fingerprint::Fingerprint;
use rmdp_krelation::hash::FxHashMap;
use rmdp_runtime::Parallelism;
use std::sync::{Arc, Mutex};

/// Default number of frozen sequence tables a cache holds before evicting.
pub const DEFAULT_CACHE_CAPACITY: usize = 128;

/// An immutable snapshot of a completed instantiation: every `H_i` and
/// `G_i` value plus the bounding factor `g`.
///
/// The snapshot is `Send + Sync` plain data (`2(|P|+1)` floats), so it is
/// cheap to share behind an [`Arc`] across sessions and worker threads.
#[derive(Clone, Debug, PartialEq)]
pub struct FrozenSequences {
    h: Vec<f64>,
    g: Vec<f64>,
    bounding_factor: f64,
}

impl FrozenSequences {
    /// Completes `sequences` (precomputing every entry with up to
    /// `parallelism` workers) and snapshots all of its values.
    ///
    /// The values are exactly what the live instantiation would serve —
    /// [`MechanismSequences::precompute`] is contractually bit-identical to
    /// the lazy path — so releasing from the snapshot is bit-identical to
    /// releasing from the live instantiation under the same RNG stream.
    pub fn compute<S: MechanismSequences>(
        mut sequences: S,
        parallelism: Parallelism,
    ) -> Result<Self, MechanismError> {
        sequences.precompute(parallelism)?;
        Self::snapshot(&mut sequences)
    }

    /// [`compute`](Self::compute) over an
    /// [`EfficientSequences`](crate::efficient::EfficientSequences), returning
    /// the LP work the precomputation performed alongside the snapshot
    /// (`compute`, being generic, has nowhere to surface it; telemetry wants
    /// it attributed to the query that filled the cache).
    pub fn compute_with_stats(
        mut sequences: crate::efficient::EfficientSequences,
        parallelism: Parallelism,
    ) -> Result<(Self, crate::efficient::LpWorkStats), MechanismError> {
        sequences.precompute(parallelism)?;
        let stats = sequences.stats();
        Ok((Self::snapshot(&mut sequences)?, stats))
    }

    /// Copies every completed entry out of `sequences`.
    fn snapshot<S: MechanismSequences>(sequences: &mut S) -> Result<Self, MechanismError> {
        let n = sequences.num_participants();
        let mut h = Vec::with_capacity(n + 1);
        let mut g = Vec::with_capacity(n + 1);
        for i in 0..=n {
            h.push(sequences.h(i)?);
            g.push(sequences.g(i)?);
        }
        Ok(FrozenSequences {
            h,
            g,
            bounding_factor: sequences.bounding_factor(),
        })
    }

    /// The frozen `H` entries.
    pub fn h_entries(&self) -> &[f64] {
        &self.h
    }

    /// The frozen `G` entries.
    pub fn g_entries(&self) -> &[f64] {
        &self.g
    }

    /// Approximate heap size of the snapshot in bytes (diagnostics).
    pub fn size_bytes(&self) -> usize {
        (self.h.capacity() + self.g.capacity()) * std::mem::size_of::<f64>()
    }

    fn entry(
        &self,
        family: SequenceFamily,
        values: &[f64],
        i: usize,
    ) -> Result<f64, MechanismError> {
        values.get(i).copied().ok_or_else(|| {
            // Mirrors the live instantiation: an out-of-range entry is the
            // infeasible mass constraint Σf = i over |P| unit variables.
            MechanismError::sequence_lp(family, i, rmdp_lp::LpError::Infeasible)
        })
    }
}

impl MechanismSequences for FrozenSequences {
    fn num_participants(&self) -> usize {
        self.h.len().saturating_sub(1)
    }

    fn h(&mut self, i: usize) -> Result<f64, MechanismError> {
        self.entry(SequenceFamily::H, &self.h, i)
    }

    fn g(&mut self, i: usize) -> Result<f64, MechanismError> {
        self.entry(SequenceFamily::G, &self.g, i)
    }

    fn bounding_factor(&self) -> f64 {
        self.bounding_factor
    }
}

/// A shared frozen snapshot, servable as [`MechanismSequences`].
///
/// This is what a cache hit hands to the mechanism driver: the `Arc` keeps
/// the snapshot alive even if the cache evicts it mid-release.
#[derive(Clone, Debug)]
pub struct CachedSequences(pub Arc<FrozenSequences>);

impl MechanismSequences for CachedSequences {
    fn num_participants(&self) -> usize {
        self.0.num_participants()
    }

    fn h(&mut self, i: usize) -> Result<f64, MechanismError> {
        self.0.entry(SequenceFamily::H, &self.0.h, i)
    }

    fn g(&mut self, i: usize) -> Result<f64, MechanismError> {
        self.0.entry(SequenceFamily::G, &self.0.g, i)
    }

    fn bounding_factor(&self) -> f64 {
        self.0.bounding_factor
    }
}

/// Cumulative counters of one [`SequenceCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a frozen table.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Tables inserted (including overwrites of an existing key).
    pub insertions: u64,
    /// Tables evicted to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cache slot: the shared snapshot plus its last-used tick.
struct Slot {
    value: Arc<FrozenSequences>,
    last_used: u64,
}

/// The guarded interior of a [`SequenceCache`].
struct CacheInner {
    slots: FxHashMap<u128, Slot>,
    stats: CacheStats,
    /// Logical clock driving LRU order; bumped on every touch.
    tick: u64,
}

/// A thread-safe, capacity-bounded LRU cache of completed sequence tables.
///
/// All methods take `&self`; interior state lives behind one [`Mutex`]. The
/// lock is held only for the map operation itself — never while sequences
/// are being *computed* — so concurrent batch workers contend for
/// nanoseconds, and two workers racing on the same missing key simply both
/// compute the (deterministic, bit-identical) table and the second insert
/// overwrites the first with an equal value.
pub struct SequenceCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl Default for SequenceCache {
    fn default() -> Self {
        Self::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl SequenceCache {
    /// A cache holding at most `capacity` frozen tables (`capacity` is
    /// clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        SequenceCache {
            inner: Mutex::new(CacheInner {
                slots: FxHashMap::default(),
                stats: CacheStats::default(),
                tick: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Convenience constructor returning the cache ready for sharing.
    pub fn shared(capacity: usize) -> Arc<Self> {
        Arc::new(Self::new(capacity))
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of tables currently cached.
    pub fn len(&self) -> usize {
        self.lock().slots.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }

    /// Drops every cached table (counters are kept).
    pub fn clear(&self) {
        self.lock().slots.clear();
    }

    /// Looks `key` up, counting a hit or miss and refreshing LRU order.
    pub fn get(&self, key: Fingerprint) -> Option<Arc<FrozenSequences>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.slots.get_mut(&key.0) {
            Some(slot) => {
                slot.last_used = tick;
                let value = Arc::clone(&slot.value);
                inner.stats.hits += 1;
                Some(value)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or overwrites) `key`, evicting least-recently-used tables
    /// while over capacity.
    pub fn insert(&self, key: Fingerprint, value: Arc<FrozenSequences>) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.slots.insert(
            key.0,
            Slot {
                value,
                last_used: tick,
            },
        );
        inner.stats.insertions += 1;
        while inner.slots.len() > self.capacity {
            let Some((&oldest, _)) = inner.slots.iter().min_by_key(|(_, slot)| slot.last_used)
            else {
                break;
            };
            inner.slots.remove(&oldest);
            inner.stats.evictions += 1;
        }
    }

    /// Returns the table under `key`, computing and inserting it on a miss.
    ///
    /// `compute` runs **outside** the lock, so a slow LP precompute never
    /// blocks other sessions' lookups; the price is that concurrent misses
    /// on the same key may compute the table more than once (harmlessly —
    /// the computation is deterministic).
    pub fn get_or_try_insert_with<F>(
        &self,
        key: Fingerprint,
        compute: F,
    ) -> Result<Arc<FrozenSequences>, MechanismError>
    where
        F: FnOnce() -> Result<FrozenSequences, MechanismError>,
    {
        if let Some(found) = self.get(key) {
            return Ok(found);
        }
        let value = Arc::new(compute()?);
        self.insert(key, Arc::clone(&value));
        Ok(value)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        // A poisoned mutex means a panic inside one of the short map-only
        // critical sections above; the map itself is still structurally
        // sound, so keep serving rather than wedging every session.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efficient::EfficientSequences;
    use crate::general::GeneralSequences;
    use crate::krelation_query::SensitiveKRelation;
    use crate::mechanism::RecursiveMechanism;
    use crate::params::MechanismParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rmdp_krelation::participant::ParticipantId;
    use rmdp_krelation::{Expr, KRelation, Tuple};

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn fig2a() -> SensitiveKRelation {
        let mut r = KRelation::new(["t"]);
        r.insert(
            Tuple::new([("t", "abc")]),
            Expr::conjunction_of_vars([p(0), p(1), p(2)]),
        );
        r.insert(
            Tuple::new([("t", "bcd")]),
            Expr::conjunction_of_vars([p(1), p(2), p(3)]),
        );
        r.insert(
            Tuple::new([("t", "cde")]),
            Expr::conjunction_of_vars([p(2), p(3), p(4)]),
        );
        SensitiveKRelation::counting(&r)
    }

    fn frozen_fig2a() -> FrozenSequences {
        FrozenSequences::compute(EfficientSequences::new(fig2a()), Parallelism::Serial).unwrap()
    }

    #[test]
    fn frozen_tables_serve_the_exact_live_values() {
        let mut live = EfficientSequences::new(fig2a());
        let mut frozen = frozen_fig2a();
        assert_eq!(frozen.num_participants(), 5);
        assert_eq!(frozen.bounding_factor(), 2.0);
        for i in 0..=5usize {
            assert_eq!(frozen.h(i).unwrap(), live.h(i).unwrap(), "H_{i}");
            assert_eq!(frozen.g(i).unwrap(), live.g(i).unwrap(), "G_{i}");
        }
        // Out of range mirrors the live error shape.
        match frozen.h(6) {
            Err(MechanismError::SequenceLp {
                family: SequenceFamily::H,
                index: 6,
                ..
            }) => {}
            other => panic!("expected a named out-of-range error, got {other:?}"),
        }
    }

    #[test]
    fn frozen_general_sequences_work_too() {
        let general = GeneralSequences::build(&fig2a()).unwrap();
        let h_ref = general.h_entries().to_vec();
        let frozen = FrozenSequences::compute(general, Parallelism::Serial).unwrap();
        assert_eq!(frozen.h_entries(), &h_ref[..]);
        assert_eq!(frozen.bounding_factor(), 1.0);
    }

    #[test]
    fn cached_release_is_bit_identical_to_the_live_release() {
        let params = MechanismParams::paper_node_privacy(1.0);
        let frozen = Arc::new(frozen_fig2a());
        let mut live = RecursiveMechanism::new(EfficientSequences::new(fig2a()), params).unwrap();
        let mut cached = RecursiveMechanism::new(CachedSequences(frozen), params).unwrap();
        let a = live
            .release_many(6, &mut StdRng::seed_from_u64(17))
            .unwrap();
        let b = cached
            .release_many(6, &mut StdRng::seed_from_u64(17))
            .unwrap();
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.noisy_answer, rb.noisy_answer);
            assert_eq!(ra.delta, rb.delta);
            assert_eq!(ra.delta_hat, rb.delta_hat);
            assert_eq!(ra.x, rb.x);
        }
    }

    #[test]
    fn hits_misses_and_insertions_are_counted() {
        let cache = SequenceCache::new(4);
        let key = Fingerprint(42);
        assert!(cache.get(key).is_none());
        let table = cache
            .get_or_try_insert_with(key, || Ok(frozen_fig2a()))
            .unwrap();
        let again = cache
            .get_or_try_insert_with(key, || panic!("must not recompute on a hit"))
            .unwrap();
        assert!(Arc::ptr_eq(&table, &again));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2); // the bare get + the populating lookup
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(cache.len(), 1);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn eviction_removes_the_least_recently_used_table() {
        let cache = SequenceCache::new(2);
        let table = Arc::new(frozen_fig2a());
        cache.insert(Fingerprint(1), Arc::clone(&table));
        cache.insert(Fingerprint(2), Arc::clone(&table));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(Fingerprint(1)).is_some());
        cache.insert(Fingerprint(3), Arc::clone(&table));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(Fingerprint(1)).is_some());
        assert!(cache.get(Fingerprint(2)).is_none(), "2 was evicted");
        assert!(cache.get(Fingerprint(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn capacity_is_clamped_and_clear_keeps_counters() {
        let cache = SequenceCache::new(0);
        assert_eq!(cache.capacity(), 1);
        let table = Arc::new(frozen_fig2a());
        cache.insert(Fingerprint(1), Arc::clone(&table));
        cache.insert(Fingerprint(2), table);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().insertions, 2);
    }

    #[test]
    fn concurrent_access_is_safe_and_deterministic() {
        let cache = SequenceCache::shared(8);
        let key = Fingerprint(7);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    let table = cache
                        .get_or_try_insert_with(key, || Ok(frozen_fig2a()))
                        .unwrap();
                    assert_eq!(table.h_entries().len(), 6);
                });
            }
        });
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 4);
    }

    #[test]
    fn compute_errors_propagate_and_cache_nothing() {
        let cache = SequenceCache::new(4);
        let err = cache
            .get_or_try_insert_with(Fingerprint(9), || {
                Err(MechanismError::UnsupportedInstance("boom".into()))
            })
            .unwrap_err();
        assert!(matches!(err, MechanismError::UnsupportedInstance(_)));
        assert!(cache.is_empty());
    }
}
