//! Sensitive databases and monotonic queries.
//!
//! Def. 5 of the paper models a sensitive database as a pair `(P, M)` where
//! `P` is a finite participant set and `M` maps every subset `P' ⊆ P` to the
//! database content contributed by exactly those participants. Two databases
//! are neighbouring when one is obtained from the other by a single
//! participant withdrawing (Def. 6); `(P₁, M₁)` is an *ancestor* of
//! `(P₂, M₂)` when `P₁ ⊆ P₂` and the contents agree on all subsets of `P₁`
//! (Def. 7). A query is *monotonic* when it is 0 on the empty content and
//! never decreases along the ancestor order (Def. 8).
//!
//! Because the mechanism only ever needs the composition `q ∘ M`, this module
//! exposes the pair as a single trait, [`SensitiveQuery`]: an object that
//! knows its participants and can evaluate the query on the content induced
//! by any participant subset. The general instantiation (Sec. 4.2), the
//! empirical-sensitivity calculators and the validation tests all work
//! against this trait; the efficient instantiation uses the more specific
//! sensitive K-relation representation in [`crate::krelation_query`].

use rmdp_krelation::hash::FxHashSet;
use rmdp_krelation::participant::ParticipantId;

/// A sensitive database `(P, M)` paired with a query `q`, exposed as the
/// composite `S ↦ q(M(S))`.
pub trait SensitiveQuery {
    /// The participant set `P` (each participant exactly once).
    fn participants(&self) -> Vec<ParticipantId>;

    /// Evaluates `q(M(subset))`: the query answer when exactly `subset`
    /// contributes data.
    fn query_on_subset(&self, subset: &FxHashSet<ParticipantId>) -> f64;

    /// The query answer on the full participant set.
    fn true_answer(&self) -> f64 {
        let all: FxHashSet<ParticipantId> = self.participants().into_iter().collect();
        self.query_on_subset(&all)
    }
}

/// Checks the monotonicity conditions of Def. 8 by exhaustive enumeration of
/// participant subsets (intended for tests; exponential in `|P|`).
///
/// Returns `Err` with a description of the first violated condition.
pub fn check_monotonicity_exhaustive<Q: SensitiveQuery>(query: &Q) -> Result<(), String> {
    let participants = query.participants();
    let n = participants.len();
    assert!(n <= 20, "exhaustive check limited to 20 participants");

    let empty: FxHashSet<ParticipantId> = FxHashSet::default();
    let on_empty = query.query_on_subset(&empty);
    if on_empty.abs() > 1e-12 {
        return Err(format!("q(M(∅)) = {on_empty}, expected 0"));
    }

    for mask in 0..(1u32 << n) {
        let subset: FxHashSet<ParticipantId> = participants
            .iter()
            .enumerate()
            .filter(|(i, _)| (mask >> i) & 1 == 1)
            .map(|(_, &p)| p)
            .collect();
        let value = query.query_on_subset(&subset);
        // Adding any missing participant must not decrease the answer.
        for (i, &p) in participants.iter().enumerate() {
            if (mask >> i) & 1 == 0 {
                let mut bigger = subset.clone();
                bigger.insert(p);
                let bigger_value = query.query_on_subset(&bigger);
                if bigger_value + 1e-9 < value {
                    return Err(format!(
                        "adding {p} decreased the answer from {value} to {bigger_value}"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// A sensitive query given by an explicit participant list and a closure —
/// convenient for tests and for wrapping ad-hoc data sources.
pub struct FnSensitiveQuery<F>
where
    F: Fn(&FxHashSet<ParticipantId>) -> f64,
{
    participants: Vec<ParticipantId>,
    query: F,
}

impl<F> FnSensitiveQuery<F>
where
    F: Fn(&FxHashSet<ParticipantId>) -> f64,
{
    /// Wraps a participant list and an evaluation closure.
    pub fn new(participants: Vec<ParticipantId>, query: F) -> Self {
        FnSensitiveQuery {
            participants,
            query,
        }
    }
}

impl<F> SensitiveQuery for FnSensitiveQuery<F>
where
    F: Fn(&FxHashSet<ParticipantId>) -> f64,
{
    fn participants(&self) -> Vec<ParticipantId> {
        self.participants.clone()
    }

    fn query_on_subset(&self, subset: &FxHashSet<ParticipantId>) -> f64 {
        (self.query)(subset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    #[test]
    fn counting_query_is_monotonic() {
        // q = number of present participants (a trivially monotonic query).
        let q = FnSensitiveQuery::new((0..5).map(p).collect(), |s| s.len() as f64);
        assert!(check_monotonicity_exhaustive(&q).is_ok());
        assert_eq!(q.true_answer(), 5.0);
    }

    #[test]
    fn pair_counting_query_is_monotonic_but_has_large_marginals() {
        // q = number of pairs of present participants: one withdrawal can
        // change the answer by |P| − 1, the situation the paper targets.
        let q = FnSensitiveQuery::new((0..6).map(p).collect(), |s| {
            let n = s.len() as f64;
            n * (n - 1.0) / 2.0
        });
        assert!(check_monotonicity_exhaustive(&q).is_ok());
        assert_eq!(q.true_answer(), 15.0);
    }

    #[test]
    fn non_monotonic_query_is_detected() {
        let q = FnSensitiveQuery::new((0..3).map(p).collect(), |s| {
            if s.len() == 2 {
                5.0
            } else {
                s.len() as f64
            }
        });
        assert!(check_monotonicity_exhaustive(&q).is_err());
    }

    #[test]
    fn nonzero_on_empty_content_is_detected() {
        let q = FnSensitiveQuery::new((0..2).map(p).collect(), |s| 1.0 + s.len() as f64);
        let err = check_monotonicity_exhaustive(&q).unwrap_err();
        assert!(err.contains("expected 0"));
    }
}
