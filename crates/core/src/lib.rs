//! The recursive mechanism for differentially private aggregation with
//! unrestricted joins and node differential privacy.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Chen & Zhou, SIGMOD 2013). The pieces map onto the paper as follows:
//!
//! | module | paper |
//! |---|---|
//! | [`sensitive`] | sensitive databases `(P, M)`, neighbouring, ancestors, monotonic queries (Sec. 3.1) |
//! | [`empirical`] | local / global / universal empirical sensitivity (Defs. 9, 10, 16) |
//! | [`sequences`] | recursive sequences `H` and g-bounding sequences `G` (Defs. 17, 18) |
//! | [`mechanism`] | the mechanism driver: `Δ`, `Δ̂`, `X`, `X̂` (Sec. 4.1, Theorem 1) |
//! | [`general`] | the general but inefficient instantiation via subset enumeration (Sec. 4.2) |
//! | [`krelation_query`] | linear queries over sensitive K-relations (Sec. 3.2) |
//! | [`efficient`] | the efficient LP-based instantiation with the relaxation `φ` (Sec. 5) |
//! | [`subgraph`] | subgraph counting under node or edge privacy (Sec. 1.1, 6.1) |
//! | [`params`] | the parameters ε₁, ε₂, β, θ, μ with the paper's experimental defaults |
//! | [`cache`] | cross-query sequence cache: frozen `H`/`G` tables behind a fingerprint-keyed LRU |
//!
//! ## Quick example: node-private triangle counting
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use rmdp_core::params::MechanismParams;
//! use rmdp_core::subgraph::{PrivacyUnit, SubgraphCounter};
//! use rmdp_graph::{generators, Pattern};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let graph = generators::gnp_average_degree(30, 6.0, &mut rng);
//! let counter = SubgraphCounter::new(
//!     Pattern::triangle(),
//!     PrivacyUnit::Node,
//!     MechanismParams::paper_node_privacy(0.5),
//! );
//! let answer = counter.release(&graph, &mut rng).unwrap();
//! println!("true {} / released {}", answer.true_count, answer.noisy_count);
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod efficient;
pub mod empirical;
pub mod error;
pub mod general;
pub mod krelation_query;
pub mod mechanism;
pub mod params;
pub mod sensitive;
pub mod sequences;
pub mod subgraph;

pub use cache::{CacheStats, CachedSequences, EntryTag, FrozenSequences, SequenceCache};
pub use efficient::{EfficientSequences, LpWorkStats, RefreshSeed, RefreshStats, RefreshTier};
pub use error::{MechanismError, SequenceFamily};
pub use general::GeneralSequences;
pub use krelation_query::SensitiveKRelation;
pub use mechanism::{RecursiveMechanism, Release};
pub use params::MechanismParams;
// Re-exported so callers of `FrozenSequences::refresh` can name the solver
// options without depending on `rmdp-lp` directly.
pub use rmdp_lp::SimplexOptions;
// Re-exported so callers of `release_recorded` can name the recorder types
// without depending on `rmdp-observe` directly.
pub use rmdp_observe::{NoopRecorder, Recorder, SpanRecorder, Stage};
pub use rmdp_runtime::Parallelism;
pub use sequences::MechanismSequences;
