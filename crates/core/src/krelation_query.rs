//! Linear queries over sensitive K-relations (paper Sec. 3.2).
//!
//! A sensitive K-relation `(P, R)` annotates every tuple of the query-output
//! relation with a positive Boolean expression over the participants; a
//! nonnegative linear query attaches a weight `q(t) ≥ 0` to every tuple and
//! asks for `Σ_{t ∈ supp(R)} q(t)`. The [`SensitiveKRelation`] bundles the
//! three ingredients and exposes:
//!
//! * the true answer,
//! * the impact of a participant and the universal empirical sensitivity
//!   (Defs. 15, 16),
//! * the [`SensitiveQuery`] view used by the general instantiation and the
//!   test oracles (the query on a participant subset evaluates every
//!   annotation as a Boolean expression).

use crate::sensitive::SensitiveQuery;
use rmdp_krelation::hash::FxHashSet;
use rmdp_krelation::participant::ParticipantId;
use rmdp_krelation::{Expr, KRelation, Tuple};

/// A sensitive K-relation together with a nonnegative linear query.
#[derive(Clone, Debug)]
pub struct SensitiveKRelation {
    /// The participant universe `P` (sorted, deduplicated). May include
    /// participants that do not occur in any annotation — e.g. isolated
    /// graph nodes — which matters for the sequence length `|P|`.
    participants: Vec<ParticipantId>,
    /// `(annotation, weight)` per tuple of the support.
    terms: Vec<(Expr, f64)>,
    /// The tuples themselves, aligned with `terms` (kept for reporting).
    tuples: Vec<Tuple>,
}

impl SensitiveKRelation {
    /// Builds a sensitive K-relation from a relation, an explicit participant
    /// universe and a per-tuple weight function. Weights must be nonnegative
    /// (Def. 12); tuples annotated `False` or weighted 0 are dropped.
    pub fn new<F>(relation: &KRelation, participants: Vec<ParticipantId>, weight: F) -> Self
    where
        F: Fn(&Tuple) -> f64,
    {
        let mut all: Vec<ParticipantId> = participants;
        all.sort();
        all.dedup();
        let mut terms = Vec::with_capacity(relation.len());
        let mut tuples = Vec::with_capacity(relation.len());
        for (t, e) in relation.iter() {
            let w = weight(t);
            assert!(
                w >= 0.0 && w.is_finite(),
                "linear query weights must be nonnegative and finite"
            );
            if w == 0.0 || e.is_false() {
                continue;
            }
            terms.push((e.clone(), w));
            tuples.push(t.clone());
        }
        SensitiveKRelation {
            participants: all,
            terms,
            tuples,
        }
    }

    /// Convenience constructor: participant universe = the participants
    /// occurring in the annotations, weight 1 for every tuple (plain
    /// counting).
    pub fn counting(relation: &KRelation) -> Self {
        let mut participants: Vec<ParticipantId> = relation.participants().into_iter().collect();
        participants.sort();
        Self::new(relation, participants, |_| 1.0)
    }

    /// Builds directly from `(annotation, weight)` pairs when no tuple data
    /// is needed (used by the synthetic K-relation experiments).
    pub fn from_terms(participants: Vec<ParticipantId>, terms: Vec<(Expr, f64)>) -> Self {
        let mut all = participants;
        all.sort();
        all.dedup();
        let kept: Vec<(Expr, f64)> = terms
            .into_iter()
            .filter(|(e, w)| !e.is_false() && *w > 0.0)
            .collect();
        let tuples = vec![Tuple::empty(); kept.len()];
        SensitiveKRelation {
            participants: all,
            terms: kept,
            tuples,
        }
    }

    /// The participant universe `P`.
    pub fn participants(&self) -> &[ParticipantId] {
        &self.participants
    }

    /// Number of participants `|P|`.
    pub fn num_participants(&self) -> usize {
        self.participants.len()
    }

    /// The `(annotation, weight)` pairs.
    pub fn terms(&self) -> &[(Expr, f64)] {
        &self.terms
    }

    /// The tuples of the support (aligned with [`SensitiveKRelation::terms`]).
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Support size `|supp(R)|`.
    pub fn support_size(&self) -> usize {
        self.terms.len()
    }

    /// Total annotation length `L` (the LP size parameter of Sec. 5.3).
    pub fn total_annotation_length(&self) -> usize {
        self.terms.iter().map(|(e, _)| e.len()).sum()
    }

    /// The true answer `q(supp(R)) = Σ_t q(t)`.
    pub fn true_answer(&self) -> f64 {
        self.terms.iter().map(|(_, w)| w).sum()
    }

    /// The impact of participant `p` (Def. 15): the tuple indices whose
    /// annotation genuinely depends on `p`.
    pub fn impact(&self, p: ParticipantId) -> Vec<usize> {
        self.terms
            .iter()
            .enumerate()
            .filter(|(_, (e, _))| e.contains_var(p) && e.restrict(p, false) != *e)
            .map(|(i, _)| i)
            .collect()
    }

    /// The universal empirical sensitivity of one participant (Def. 16):
    /// `ŨS_q(p, R) = Σ_{t ∈ impact(p, R)} q(t)`.
    pub fn universal_sensitivity_of(&self, p: ParticipantId) -> f64 {
        self.impact(p).into_iter().map(|i| self.terms[i].1).sum()
    }

    /// The universal empirical sensitivity `ŨS_q(P, R) = max_p ŨS_q(p, R)`.
    pub fn universal_sensitivity(&self) -> f64 {
        self.participants
            .iter()
            .map(|&p| self.universal_sensitivity_of(p))
            .fold(0.0, f64::max)
    }

    /// The maximum φ-sensitivity `S` over all annotations and participants
    /// (Sec. 5.2: the error bound is roughly `2·S·ŨS_q`).
    pub fn max_phi_sensitivity(&self) -> f64 {
        self.terms
            .iter()
            .map(|(e, _)| rmdp_krelation::phi::max_phi_sensitivity(e))
            .fold(0.0, f64::max)
    }
}

impl SensitiveQuery for SensitiveKRelation {
    fn participants(&self) -> Vec<ParticipantId> {
        self.participants.clone()
    }

    fn query_on_subset(&self, subset: &FxHashSet<ParticipantId>) -> f64 {
        self.terms
            .iter()
            .filter(|(e, _)| e.evaluate(&|p| subset.contains(&p)))
            .map(|(_, w)| w)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensitive::check_monotonicity_exhaustive;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    /// The triangle K-relation of the paper's Fig. 2(a) under node privacy.
    fn fig2a_relation() -> KRelation {
        let mut r = KRelation::new(["t"]);
        r.insert(
            Tuple::new([("t", "abc")]),
            Expr::conjunction_of_vars([p(0), p(1), p(2)]),
        );
        r.insert(
            Tuple::new([("t", "bcd")]),
            Expr::conjunction_of_vars([p(1), p(2), p(3)]),
        );
        r.insert(
            Tuple::new([("t", "cde")]),
            Expr::conjunction_of_vars([p(2), p(3), p(4)]),
        );
        r
    }

    #[test]
    fn counting_query_basics() {
        let q = SensitiveKRelation::counting(&fig2a_relation());
        assert_eq!(q.num_participants(), 5);
        assert_eq!(q.support_size(), 3);
        assert_eq!(q.true_answer(), 3.0);
        assert_eq!(q.total_annotation_length(), 9);
    }

    #[test]
    fn impact_and_universal_sensitivity_match_the_paper_example() {
        let q = SensitiveKRelation::counting(&fig2a_relation());
        // Node c (p2) appears in every triangle: impact 3.
        assert_eq!(q.impact(p(2)).len(), 3);
        assert_eq!(q.universal_sensitivity_of(p(2)), 3.0);
        assert_eq!(q.universal_sensitivity_of(p(0)), 1.0);
        assert_eq!(q.universal_sensitivity(), 3.0);
        // Subgraph counting in DNF form: S ≤ 1 (Sec. 5.2).
        assert_eq!(q.max_phi_sensitivity(), 1.0);
    }

    #[test]
    fn query_on_subset_evaluates_annotations() {
        let q = SensitiveKRelation::counting(&fig2a_relation());
        let without_c: FxHashSet<ParticipantId> = [p(0), p(1), p(3), p(4)].into_iter().collect();
        assert_eq!(q.query_on_subset(&without_c), 0.0);
        let without_a: FxHashSet<ParticipantId> = [p(1), p(2), p(3), p(4)].into_iter().collect();
        assert_eq!(q.query_on_subset(&without_a), 2.0);
        assert_eq!(q.true_answer(), 3.0);
    }

    #[test]
    fn linear_queries_on_krelations_are_monotonic() {
        let q = SensitiveKRelation::counting(&fig2a_relation());
        assert!(check_monotonicity_exhaustive(&q).is_ok());
    }

    #[test]
    fn weighted_queries_scale_the_answer() {
        let r = fig2a_relation();
        let participants = (0..5).map(p).collect();
        let q = SensitiveKRelation::new(&r, participants, |t| {
            if t.get_named("t").unwrap().as_str() == Some("abc") {
                2.5
            } else {
                1.0
            }
        });
        assert_eq!(q.true_answer(), 4.5);
        assert_eq!(q.universal_sensitivity_of(p(0)), 2.5);
    }

    #[test]
    fn zero_weight_tuples_are_dropped() {
        let r = fig2a_relation();
        let q = SensitiveKRelation::new(&r, (0..5).map(p).collect(), |t| {
            if t.get_named("t").unwrap().as_str() == Some("cde") {
                0.0
            } else {
                1.0
            }
        });
        assert_eq!(q.support_size(), 2);
        assert_eq!(q.true_answer(), 2.0);
    }

    #[test]
    fn from_terms_builds_without_tuples() {
        let terms = vec![
            (Expr::conjunction_of_vars([p(0), p(1)]), 1.0),
            (Expr::False, 1.0),
            (Expr::var(p(2)), 0.0),
            (Expr::var(p(2)), 2.0),
        ];
        let q = SensitiveKRelation::from_terms((0..3).map(p).collect(), terms);
        assert_eq!(q.support_size(), 2);
        assert_eq!(q.true_answer(), 3.0);
    }

    #[test]
    fn isolated_participants_count_toward_the_universe() {
        // Participant p9 contributes nothing but is still part of P.
        let mut participants: Vec<ParticipantId> = (0..5).map(p).collect();
        participants.push(p(9));
        let q = SensitiveKRelation::new(&fig2a_relation(), participants, |_| 1.0);
        assert_eq!(q.num_participants(), 6);
        assert_eq!(q.universal_sensitivity_of(p(9)), 0.0);
    }
}
