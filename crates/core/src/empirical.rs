//! Empirical sensitivity.
//!
//! Global and local sensitivity can be unbounded for queries with
//! unrestricted joins; the paper introduces *empirical* sensitivity, which is
//! always finite:
//!
//! * local empirical sensitivity (Def. 9):
//!   `L̃S_q(P, M) = max_{p ∈ P} |q(M(P)) − q(M(P − {p}))|`
//! * global empirical sensitivity (Def. 10): the maximum of the local
//!   empirical sensitivity over all ancestors of `(P, M)`.
//! * universal empirical sensitivity (Def. 16, for sensitive K-relations):
//!   `ŨS_q(p, R) = Σ_{t ∈ impact(p, R)} q(t)` and
//!   `ŨS_q(P, R) = max_p ŨS_q(p, R)`.
//!
//! The error bound of the general instantiation is governed by the global
//! empirical sensitivity, and the efficient instantiation's by the universal
//! empirical sensitivity (times the maximum φ-sensitivity).

use crate::sensitive::SensitiveQuery;
use rmdp_krelation::hash::FxHashSet;
use rmdp_krelation::participant::ParticipantId;

/// Local empirical sensitivity of a sensitive query at a participant subset
/// (Def. 9 evaluated at the ancestor induced by `subset`).
pub fn local_empirical_sensitivity<Q: SensitiveQuery>(
    query: &Q,
    subset: &FxHashSet<ParticipantId>,
) -> f64 {
    if subset.is_empty() {
        return 0.0;
    }
    let value = query.query_on_subset(subset);
    let mut best = 0.0f64;
    for &p in subset {
        let mut smaller = subset.clone();
        smaller.remove(&p);
        let without = query.query_on_subset(&smaller);
        best = best.max((value - without).abs());
    }
    best
}

/// Local empirical sensitivity at the full database.
pub fn local_empirical_sensitivity_full<Q: SensitiveQuery>(query: &Q) -> f64 {
    let all: FxHashSet<ParticipantId> = query.participants().into_iter().collect();
    local_empirical_sensitivity(query, &all)
}

/// Global empirical sensitivity at the full database (Def. 10), computed by
/// exhaustive enumeration of all ancestors. Exponential in `|P|`; intended
/// for small instances and as a test oracle for the efficient bounds.
pub fn global_empirical_sensitivity_exhaustive<Q: SensitiveQuery>(query: &Q) -> f64 {
    let participants = query.participants();
    let n = participants.len();
    assert!(n <= 20, "exhaustive computation limited to 20 participants");
    let mut best = 0.0f64;
    for mask in 0..(1u32 << n) {
        let subset: FxHashSet<ParticipantId> = participants
            .iter()
            .enumerate()
            .filter(|(i, _)| (mask >> i) & 1 == 1)
            .map(|(_, &p)| p)
            .collect();
        best = best.max(local_empirical_sensitivity(query, &subset));
    }
    best
}

/// Universal empirical sensitivity of one participant for a weighted
/// annotation family (Def. 16): the total query weight of the tuples whose
/// annotation genuinely depends on `p`.
pub fn universal_empirical_sensitivity_of<'a, I>(terms: I, p: ParticipantId) -> f64
where
    I: IntoIterator<Item = (&'a rmdp_krelation::Expr, f64)>,
{
    terms
        .into_iter()
        .filter(|(expr, _)| expr.contains_var(p) && expr.restrict(p, false) != **expr)
        .map(|(_, weight)| weight)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensitive::FnSensitiveQuery;
    use rmdp_krelation::Expr;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    #[test]
    fn local_empirical_sensitivity_of_pair_count() {
        // q(S) = C(|S|, 2); removing one participant changes it by |S| − 1.
        let q = FnSensitiveQuery::new((0..6).map(p).collect(), |s| {
            let n = s.len() as f64;
            n * (n - 1.0) / 2.0
        });
        assert_eq!(local_empirical_sensitivity_full(&q), 5.0);
        let small: FxHashSet<ParticipantId> = [p(0), p(1), p(2)].into_iter().collect();
        assert_eq!(local_empirical_sensitivity(&q, &small), 2.0);
        assert_eq!(local_empirical_sensitivity(&q, &FxHashSet::default()), 0.0);
    }

    #[test]
    fn global_empirical_sensitivity_is_max_over_ancestors() {
        // For the pair count, the local empirical sensitivity grows with the
        // subset, so the global value equals the full-database value.
        let q = FnSensitiveQuery::new((0..5).map(p).collect(), |s| {
            let n = s.len() as f64;
            n * (n - 1.0) / 2.0
        });
        assert_eq!(global_empirical_sensitivity_exhaustive(&q), 4.0);

        // A query whose largest marginal occurs at a *strict* ancestor: each
        // participant contributes 1, but a "bonus" of 3 is granted only when
        // exactly two participants are present. Removing one participant from
        // a 2-subset changes the answer by 1 + 3 = 4... the bonus makes the
        // query non-monotonic, so use a monotone variant instead: the bonus
        // appears for ≥ 2 participants. Then removing a participant from a
        // 2-subset changes 2 + 3 = 5 to 1, i.e. by 4, while at the full
        // database the marginal is only 1.
        let q = FnSensitiveQuery::new((0..4).map(p).collect(), |s| {
            let n = s.len() as f64;
            if s.len() >= 2 {
                n + 3.0
            } else {
                n
            }
        });
        assert_eq!(local_empirical_sensitivity_full(&q), 1.0);
        assert_eq!(global_empirical_sensitivity_exhaustive(&q), 4.0);
    }

    #[test]
    fn universal_sensitivity_counts_impacted_weight() {
        let terms = [
            (Expr::conjunction_of_vars([p(0), p(1)]), 1.0),
            (Expr::conjunction_of_vars([p(1), p(2)]), 2.0),
            (Expr::or2(Expr::var(p(3)), Expr::var(p(1))), 4.0),
            (Expr::True, 8.0),
        ];
        let refs: Vec<(&Expr, f64)> = terms.iter().map(|(e, w)| (e, *w)).collect();
        assert_eq!(
            universal_empirical_sensitivity_of(refs.iter().copied(), p(1)),
            7.0
        );
        assert_eq!(
            universal_empirical_sensitivity_of(refs.iter().copied(), p(0)),
            1.0
        );
        assert_eq!(
            universal_empirical_sensitivity_of(refs.iter().copied(), p(9)),
            0.0
        );
    }
}
