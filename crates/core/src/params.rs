//! Mechanism parameters.
//!
//! The recursive mechanism has five knobs (Sec. 4.1): the privacy split
//! `ε₁` (for the noisy bound `Δ̂`) and `ε₂` (for the final answer `X̂`), the
//! geometric step `β` of the threshold ladder, the ladder floor `θ` and the
//! multiplicative safety margin `μ` of `Δ̂ = e^{μ+Y}Δ`.
//!
//! The paper's experiments use `θ = 1`, `β = ε/5`, `μ = 0.5` for edge privacy
//! and `μ = 1` for node privacy; the total privacy cost is `ε₁ + ε₂`.
//!
//! A sixth, non-privacy knob rides along: [`Parallelism`] selects how many
//! worker threads the instantiation may use to precompute its sequence
//! entries. It never affects the released values — the parallel path is
//! bit-identical to the serial one — only wall-clock time.

use crate::error::MechanismError;
use rmdp_runtime::Parallelism;

/// Parameters of the recursive mechanism.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MechanismParams {
    /// Privacy budget spent on releasing the noisy sensitivity bound `Δ̂`.
    pub epsilon1: f64,
    /// Privacy budget spent on the final Laplace release of `X̂`.
    pub epsilon2: f64,
    /// Geometric step of the threshold ladder `Δ ∈ {θ, e^β θ, e^{2β} θ, …}`.
    pub beta: f64,
    /// Floor of the threshold ladder.
    pub theta: f64,
    /// Multiplicative safety margin applied to `Δ̂` (larger μ makes
    /// `Δ̂ < Δ` — the only failure mode of the utility analysis — less
    /// likely, at the price of more noise).
    pub mu: f64,
    /// Worker-thread budget for precomputing the sequences `H` and `G`
    /// (default [`Parallelism::Serial`]). With more than one worker the
    /// driver precomputes **all** `2(|P|+1)` entries up front, distributing
    /// fixed contiguous runs of each family across workers (every run is one
    /// warm-started LP chain); serially it computes only the runs it
    /// touches, lazily. The run cut points never depend on the worker
    /// count, so the entry values — and therefore the releases — are
    /// bit-identical for every setting.
    pub parallelism: Parallelism,
}

impl MechanismParams {
    /// Explicit constructor (serial execution; see
    /// [`MechanismParams::with_parallelism`]).
    pub fn new(epsilon1: f64, epsilon2: f64, beta: f64, theta: f64, mu: f64) -> Self {
        MechanismParams {
            epsilon1,
            epsilon2,
            beta,
            theta,
            mu,
            parallelism: Parallelism::Serial,
        }
    }

    /// Sets the worker-thread budget for sequence precomputation. Purely a
    /// performance knob: releases are bit-identical for every setting.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The paper's experimental setting for edge privacy at total budget
    /// `epsilon`: `ε₁ = ε₂ = ε/2`, `β = ε/5`, `θ = 1`, `μ = 0.5`.
    pub fn paper_edge_privacy(epsilon: f64) -> Self {
        MechanismParams {
            epsilon1: epsilon / 2.0,
            epsilon2: epsilon / 2.0,
            beta: epsilon / 5.0,
            theta: 1.0,
            mu: 0.5,
            parallelism: Parallelism::Serial,
        }
    }

    /// The paper's experimental setting for node privacy at total budget
    /// `epsilon`: as [`MechanismParams::paper_edge_privacy`] but with `μ = 1`.
    pub fn paper_node_privacy(epsilon: f64) -> Self {
        MechanismParams {
            mu: 1.0,
            ..Self::paper_edge_privacy(epsilon)
        }
    }

    /// Total privacy cost `ε₁ + ε₂` of one release.
    pub fn total_epsilon(&self) -> f64 {
        self.epsilon1 + self.epsilon2
    }

    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), MechanismError> {
        let fields = [
            ("epsilon1", self.epsilon1),
            ("epsilon2", self.epsilon2),
            ("beta", self.beta),
            ("theta", self.theta),
        ];
        for (name, value) in fields {
            if !(value.is_finite() && value > 0.0) {
                return Err(MechanismError::InvalidParams(format!(
                    "{name} must be positive and finite, got {value}"
                )));
            }
        }
        if !self.mu.is_finite() || self.mu < 0.0 {
            return Err(MechanismError::InvalidParams(format!(
                "mu must be nonnegative, got {}",
                self.mu
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_the_evaluation_section() {
        let edge = MechanismParams::paper_edge_privacy(0.5);
        assert!((edge.epsilon1 - 0.25).abs() < 1e-12);
        assert!((edge.epsilon2 - 0.25).abs() < 1e-12);
        assert!((edge.beta - 0.1).abs() < 1e-12);
        assert!((edge.theta - 1.0).abs() < 1e-12);
        assert!((edge.mu - 0.5).abs() < 1e-12);
        assert!((edge.total_epsilon() - 0.5).abs() < 1e-12);

        let node = MechanismParams::paper_node_privacy(0.5);
        assert!((node.mu - 1.0).abs() < 1e-12);
        assert!((node.total_epsilon() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parallelism_defaults_to_serial_and_is_a_pure_perf_knob() {
        let base = MechanismParams::paper_edge_privacy(0.5);
        assert_eq!(base.parallelism, Parallelism::Serial);
        let parallel = base.with_parallelism(Parallelism::Threads(4));
        assert_eq!(parallel.parallelism, Parallelism::Threads(4));
        // Everything privacy-relevant is untouched.
        assert_eq!(parallel.total_epsilon(), base.total_epsilon());
        assert_eq!(parallel.beta, base.beta);
        assert!(parallel.validate().is_ok());
        assert_eq!(
            MechanismParams::new(0.25, 0.25, 0.1, 1.0, 0.5).parallelism,
            Parallelism::Serial
        );
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut p = MechanismParams::paper_edge_privacy(0.5);
        assert!(p.validate().is_ok());
        p.beta = 0.0;
        assert!(p.validate().is_err());
        p = MechanismParams::paper_edge_privacy(0.5);
        p.mu = -1.0;
        assert!(p.validate().is_err());
        p = MechanismParams::paper_edge_privacy(0.5);
        p.theta = f64::NAN;
        assert!(p.validate().is_err());
    }
}
