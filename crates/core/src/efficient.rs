//! The efficient instantiation over sensitive K-relations (paper Sec. 5).
//!
//! For a nonnegative linear query `q` over a sensitive K-relation `(P, R)`
//! the sequences are defined through the relaxation `φ`:
//!
//! * `H_i = min_{f ∈ [0,1]^P, |f| = i} Σ_t q(t)·φ_{R(t)}(f)` (Eq. 16)
//! * `G_i = 2·min_{f ∈ [0,1]^P, |f| = i} max_p Σ_t q(t)·φ_{R(t)}(f)·S_{R(t),p}`
//!   (Eq. 19)
//!
//! `H` is a recursive sequence with `H_{|P|} = q(supp(R))` (Theorem 3) and
//! `G` is a 2-bounding sequence of `H` (Theorem 4). Both minimisations are
//! convex piecewise-linear programs and are encoded as LPs with `O(L)`
//! variables (Sec. 5.3):
//!
//! * every participant gets a variable `f_p ∈ [0,1]` and a single equality
//!   `Σ_p f_p = i` ties the mass to the index;
//! * every `∧` node becomes an epigraph variable `v ≥ Σ(children) − (n−1)`,
//!   `v ≥ 0` — one row per conjunction thanks to the flattened n-ary form
//!   (`φ_{∧(x₁..x_n)} = max(0, Σφ_{x_i} − (n−1))`), which is what keeps
//!   subgraph-counting LPs at one row per matched subgraph;
//! * every `∨` node becomes `v ≥ φ(child)` for each child;
//! * for `G_i` an extra variable `z` dominates the weighted per-participant
//!   sums and the objective is `2z`.
//!
//! Because the objective only ever pushes epigraph variables down and all
//! weights are nonnegative, the LP optimum equals the exact minimum of the
//! relaxed objective — no approximation is introduced.
//!
//! ## Warm-started chains
//!
//! Within a family, consecutive entries differ **only** in the right-hand
//! side of the mass-tie equality, so the family is standardized once into a
//! [`rmdp_lp::PreparedLp`] (the mass row is always constraint 0) and walked
//! as a chain: entry `i+1` re-enters the simplex from entry `i`'s optimal
//! basis ([`rmdp_lp::PreparedLp::solve_warm`]) instead of paying a cold
//! two-phase solve. Chains are cut into fixed contiguous runs
//! ([`rmdp_runtime::contiguous_runs`], independent of the worker count), and
//! runs — not entries — are the unit of work everywhere: a lazy `h(i)` call
//! solves the whole run containing `i`, and
//! [`MechanismSequences::precompute`] maps uncached runs onto the worker
//! pool. Because both paths execute byte-identical run chains, the cached
//! values, the releases, and even the pivot counters are bit-identical for
//! every [`Parallelism`] setting.

use crate::error::{MechanismError, SequenceFamily};
use crate::krelation_query::SensitiveKRelation;
use crate::sequences::MechanismSequences;
use rmdp_krelation::fingerprint::{Fingerprint, FingerprintHasher};
use rmdp_krelation::hash::FxHashMap;
use rmdp_krelation::participant::ParticipantId;
use rmdp_krelation::phi::phi_sensitivities;
use rmdp_krelation::Expr;
use rmdp_lp::{Basis, Model, Sense, SimplexOptions, SolveStats, Var};
use rmdp_runtime::{contiguous_runs, par_map_indexed, run_containing, Parallelism};
use std::ops::Range;

/// Default number of consecutive entries per warm-start run. Small enough
/// that a fig-4-sized family still splits into several independent runs for
/// the worker pool, large enough that most solves in a run are warm.
const DEFAULT_CHAIN_RUN_LEN: usize = 8;

/// Cumulative counters describing the LP work done by one instantiation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LpWorkStats {
    /// Number of LPs solved for `H` entries.
    pub h_solves: usize,
    /// Number of LPs solved for `G` entries.
    pub g_solves: usize,
    /// Total simplex pivots across all solves.
    pub total_pivots: usize,
    /// Pivots spent restoring primal feasibility (phase 1). Warm-started
    /// solves whose previous basis is still feasible contribute 0 here.
    pub phase1_pivots: usize,
    /// Pivots spent optimising from a feasible basis (phase 2).
    pub phase2_pivots: usize,
    /// Solves that re-entered from the previous entry's optimal basis
    /// instead of a cold start.
    pub warm_start_hits: usize,
    /// Basis-inverse refactorizations across all solves.
    pub refactorizations: usize,
    /// Product-form basis updates (one per true pivot): eta-file updates on
    /// the sparse-LU backend, dense `B⁻¹` transformations on the dense one.
    pub basis_updates: usize,
    /// Peak stored nonzeros of any one solve's LU factorization (factors
    /// plus eta file). A *maximum*, not a sum: it bounds the basis memory
    /// any single solve needed.
    pub fill_in_nnz: usize,
    /// Constraint rows removed by presolve, summed across solves.
    pub presolve_rows_removed: usize,
    /// Variables removed by presolve, summed across solves.
    pub presolve_cols_removed: usize,
}

impl LpWorkStats {
    /// Folds another counter set into this one. Deterministic regardless of
    /// fold order (plain integer sums), but callers fold by input index so
    /// intermediate states are reproducible too.
    pub fn absorb(&mut self, other: &LpWorkStats) {
        self.h_solves += other.h_solves;
        self.g_solves += other.g_solves;
        self.total_pivots += other.total_pivots;
        self.phase1_pivots += other.phase1_pivots;
        self.phase2_pivots += other.phase2_pivots;
        self.warm_start_hits += other.warm_start_hits;
        self.refactorizations += other.refactorizations;
        self.basis_updates += other.basis_updates;
        self.fill_in_nnz = self.fill_in_nnz.max(other.fill_in_nnz);
        self.presolve_rows_removed += other.presolve_rows_removed;
        self.presolve_cols_removed += other.presolve_cols_removed;
    }

    /// The counters as the primitive `u64` mirror used by release traces.
    pub fn to_summary(&self) -> rmdp_observe::LpSummary {
        rmdp_observe::LpSummary {
            h_solves: self.h_solves as u64,
            g_solves: self.g_solves as u64,
            total_pivots: self.total_pivots as u64,
            phase1_pivots: self.phase1_pivots as u64,
            phase2_pivots: self.phase2_pivots as u64,
            warm_start_hits: self.warm_start_hits as u64,
            refactorizations: self.refactorizations as u64,
            basis_updates: self.basis_updates as u64,
            fill_in_nnz: self.fill_in_nnz as u64,
            presolve_rows_removed: self.presolve_rows_removed as u64,
            presolve_cols_removed: self.presolve_cols_removed as u64,
        }
    }

    fn absorb_solve(&mut self, family: SequenceFamily, stats: &SolveStats) {
        match family {
            SequenceFamily::H => self.h_solves += 1,
            SequenceFamily::G => self.g_solves += 1,
        }
        let pivots = stats.phase1_iterations + stats.phase2_iterations;
        self.total_pivots += pivots;
        self.phase1_pivots += stats.phase1_iterations;
        self.phase2_pivots += stats.phase2_iterations;
        self.refactorizations += stats.refactorizations;
        self.basis_updates += stats.basis_updates;
        self.fill_in_nnz = self.fill_in_nnz.max(stats.fill_in_nnz);
        self.presolve_rows_removed += stats.presolve_rows_removed;
        self.presolve_cols_removed += stats.presolve_cols_removed;
        if stats.warm_started {
            self.warm_start_hits += 1;
        }
    }
}

/// Everything a later *refresh* needs to re-derive this instantiation after
/// a data delta without paying every LP cold again: the structural identity
/// of the query the values came from, plus the optimal bases of each H
/// chain run's initial entry.
///
/// The seed is captured by [`EfficientSequences::refresh_seed`] after a full
/// precompute and consumed by
/// [`FrozenSequences::refresh`](crate::cache::FrozenSequences::refresh),
/// which compares the post-delta query against the recorded fingerprints to
/// pick the cheapest *bit-identical* re-derivation tier (see
/// [`RefreshTier`]). Bases are cheap to retain: their factorization bulk is
/// shared behind an `Arc` with the solves that produced them.
#[derive(Clone, Debug)]
pub struct RefreshSeed {
    /// Fingerprint of (participants, terms): the full structural identity of
    /// the query the frozen values were computed from.
    pub(crate) terms_fingerprint: Fingerprint,
    /// Fingerprint of the participant list alone (warm re-entry needs the
    /// variable space unchanged even when term weights moved).
    pub(crate) participants_fingerprint: Fingerprint,
    /// Chain run length the chains were cut with; a warm refresh must reuse
    /// it so runs line up with the retained bases.
    pub(crate) chain_run_len: usize,
    /// Optimal basis of each H chain run's initial entry, keyed by the run's
    /// starting index.
    pub(crate) h_run_bases: FxHashMap<usize, Basis>,
    /// Whether the seeded query was in the warm-exact class (see
    /// [`warm_exact_class`]).
    pub(crate) warm_eligible: bool,
}

impl RefreshSeed {
    /// Picks the cheapest re-derivation tier that is still guaranteed
    /// bit-identical to a cold recompute of `query` (per backend):
    /// structurally unchanged queries republish, warm-exact weight changes
    /// over an unchanged variable space re-enter from the retained bases,
    /// everything else rebuilds through the standard cold chains.
    pub fn tier_for(&self, query: &SensitiveKRelation) -> RefreshTier {
        if query_terms_fingerprint(query) == self.terms_fingerprint {
            return RefreshTier::Unchanged;
        }
        if self.warm_eligible
            && warm_exact_class(query)
            && participants_fingerprint(query) == self.participants_fingerprint
            && !self.h_run_bases.is_empty()
        {
            return RefreshTier::WarmChain;
        }
        RefreshTier::ColdRebuild
    }
}

/// Which re-derivation tier a
/// [`FrozenSequences::refresh`](crate::cache::FrozenSequences::refresh)
/// took. Every tier releases bit-identically (per backend) to a cold
/// recompute on the post-delta query; the tiers differ only in how much LP
/// work that costs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefreshTier {
    /// The post-delta query is structurally identical (same participants,
    /// same terms), so the frozen values are republished untouched — zero LP
    /// work. This happens when a delta touches a scanned table without
    /// changing what the query derives from it (e.g. every appended row is
    /// filtered out).
    Unchanged,
    /// Term weights changed over an unchanged variable space in the
    /// warm-exact class: H chain runs re-entered the simplex from the
    /// retained run-initial bases (phase-1-free, `set_rhs`-stepped) and G
    /// was re-derived through the standard cold-identical chains.
    WarmChain,
    /// The structure changed (participants, annotations, or a weight class
    /// warm exactness cannot cover): everything was re-derived through the
    /// standard chains, exactly as a cold compute would.
    ColdRebuild,
}

/// The outcome of one refresh: the tier taken plus the LP work it cost.
#[derive(Clone, Copy, Debug)]
pub struct RefreshStats {
    /// The re-derivation tier taken.
    pub tier: RefreshTier,
    /// LP work the refresh performed ([`LpWorkStats::default`] for
    /// [`RefreshTier::Unchanged`]).
    pub lp: LpWorkStats,
}

/// Appends `expr` to `hasher` under an injective, structure-tagged encoding.
fn write_expr(hasher: &mut FingerprintHasher, expr: &Expr) {
    match expr {
        Expr::False => hasher.write_tag(0),
        Expr::True => hasher.write_tag(1),
        Expr::Var(p) => {
            hasher.write_tag(2);
            hasher.write_u64(p.index() as u64);
        }
        Expr::And(children) => {
            hasher.write_tag(3);
            hasher.write_u64(children.len() as u64);
            for c in children {
                write_expr(hasher, c);
            }
        }
        Expr::Or(children) => {
            hasher.write_tag(4);
            hasher.write_u64(children.len() as u64);
            for c in children {
                write_expr(hasher, c);
            }
        }
    }
}

/// Fingerprint of the participant list alone.
fn participants_fingerprint(query: &SensitiveKRelation) -> Fingerprint {
    let mut hasher = FingerprintHasher::new();
    hasher.write_u64(query.participants().len() as u64);
    for p in query.participants() {
        hasher.write_u64(p.index() as u64);
    }
    hasher.finish()
}

/// Fingerprint of the full structural identity of `query`: the participant
/// list plus every (annotation, weight) term in order. Equal fingerprints ⇒
/// bit-identical sequence values (the whole pipeline is deterministic in
/// this data).
fn query_terms_fingerprint(query: &SensitiveKRelation) -> Fingerprint {
    let mut hasher = FingerprintHasher::new();
    hasher.write_u64(query.participants().len() as u64);
    for p in query.participants() {
        hasher.write_u64(p.index() as u64);
    }
    hasher.write_u64(query.terms().len() as u64);
    for (expr, weight) in query.terms() {
        write_expr(&mut hasher, expr);
        hasher.write_f64(*weight);
    }
    hasher.finish()
}

/// Whether warm re-entry from a retained basis is *exactly* (bit-for-bit)
/// equivalent to a cold solve for `query`'s H family.
///
/// Warm and cold solves may stop at different optimal vertices, so their
/// objective values only agree bitwise when the arithmetic producing them is
/// exact. That holds for the **integer-weighted variable-only** class: every
/// term a bare participant variable with a nonnegative integer weight, total
/// weight at most 2⁵². The H model is then one equality row over unit-box
/// variables — every basic solution is integral, so any optimum's objective
/// is the same exact integer no matter which vertex a pivot path stops at.
/// SQL counting queries (weight 1 per tuple) are squarely in this class.
fn warm_exact_class(query: &SensitiveKRelation) -> bool {
    const EXACT_LIMIT: f64 = (1u64 << 52) as f64;
    let mut total = 0.0f64;
    for (expr, weight) in query.terms() {
        if !matches!(expr, Expr::Var(_)) {
            return false;
        }
        if *weight < 0.0 || weight.is_nan() || weight.fract() != 0.0 {
            return false;
        }
        total += weight;
    }
    total <= EXACT_LIMIT
}

/// The LP-based instantiation of the recursive mechanism over a sensitive
/// K-relation. Computed entries are cached, so repeated releases on the same
/// relation only pay for the entries they newly touch.
///
/// Entry LPs are solved in warm-started chains over a shared immutable view
/// of the query (the internal `SequenceLps`); runs of consecutive entries
/// are the unit of work, so [`MechanismSequences::precompute`] can map them
/// onto the scoped worker pool of `rmdp-runtime` and the values (and the
/// resulting releases) stay bit-identical to the lazy serial path.
pub struct EfficientSequences {
    /// The shared immutable problem view each LP solve reads from.
    lps: SequenceLps,
    /// Entries per warm-start run (≥ 1; 1 disables warm starts).
    chain_run_len: usize,
    h_cache: FxHashMap<usize, f64>,
    g_cache: FxHashMap<usize, f64>,
    /// Optimal basis of each solved H run's initial entry (keyed by run
    /// start), retained so [`EfficientSequences::refresh_seed`] can hand
    /// them to a later delta refresh.
    h_first_bases: FxHashMap<usize, Basis>,
    stats: LpWorkStats,
}

/// The immutable LP-construction view: the query plus its precomputed
/// φ-sensitivities and solver options. Every chain run builds its own
/// [`rmdp_lp::PreparedLp`] from this shared data (`&self` only), so the
/// struct is `Sync` and worker threads can run whole chains concurrently
/// without any cache contention — caching stays in [`EfficientSequences`],
/// outside the parallel region.
struct SequenceLps {
    query: SensitiveKRelation,
    /// φ-sensitivities of each term's annotation (aligned with the query's
    /// terms), precomputed once.
    term_sensitivities: Vec<FxHashMap<ParticipantId, f64>>,
    /// Solver options every entry LP is solved with.
    options: SimplexOptions,
    /// Seed bases from a prior instantiation (keyed by run start): when
    /// present, the *initial* entry of an H run re-enters the simplex from
    /// the seed instead of a cold start. Only installed for the warm-exact
    /// class (see [`warm_exact_class`]), where this is bit-identical.
    h_seed_bases: FxHashMap<usize, Basis>,
}

/// The result of one solved chain run: its entries plus the optimal basis
/// of the run-initial entry (retained as a future refresh seed).
struct RunSolve {
    entries: Vec<EntrySolve>,
    first_basis: Option<Basis>,
}

/// Either a constant or an LP variable — the value of an encoded
/// sub-expression.
#[derive(Clone, Copy, Debug)]
enum Operand {
    Const(f64),
    Variable(Var),
}

/// One solved chain entry: its index, its value, and the solver counters.
struct EntrySolve {
    index: usize,
    value: f64,
    stats: SolveStats,
}

impl EfficientSequences {
    /// Wraps a sensitive K-relation.
    pub fn new(query: SensitiveKRelation) -> Self {
        let term_sensitivities = query
            .terms()
            .iter()
            .map(|(e, _)| phi_sensitivities(e))
            .collect();
        EfficientSequences {
            lps: SequenceLps {
                query,
                term_sensitivities,
                options: SimplexOptions::default(),
                h_seed_bases: FxHashMap::default(),
            },
            chain_run_len: DEFAULT_CHAIN_RUN_LEN,
            h_cache: FxHashMap::default(),
            g_cache: FxHashMap::default(),
            h_first_bases: FxHashMap::default(),
            stats: LpWorkStats::default(),
        }
    }

    /// Sets the number of consecutive entries solved as one warm-started
    /// chain (clamped to ≥ 1; 1 reproduces entry-by-entry cold solves).
    ///
    /// Like [`Parallelism`] this is a pure performance knob *per value*:
    /// serial and parallel execution are bit-identical for any fixed run
    /// length. Different run lengths may differ in the last few floating
    /// point bits of an entry (different pivot paths to the same optimum),
    /// so pick one before the first solve and keep it.
    pub fn with_chain_run_len(mut self, run_len: usize) -> Self {
        self.chain_run_len = run_len.max(1);
        self
    }

    /// Sets the LP solver options every entry is solved with.
    pub fn with_solver_options(mut self, options: SimplexOptions) -> Self {
        self.lps.options = options;
        self
    }

    /// Installs seed bases from a prior instantiation: the initial entry of
    /// each H run whose start index has a seed re-enters warm from it
    /// instead of solving cold. Callers must have checked
    /// [`warm_exact_class`] for both the seeded and the current query —
    /// outside that class warm re-entry can stop at a different optimal
    /// vertex whose objective differs in the last bits.
    pub(crate) fn with_h_seed_bases(mut self, bases: FxHashMap<usize, Basis>) -> Self {
        self.lps.h_seed_bases = bases;
        self
    }

    /// Captures a [`RefreshSeed`] for later delta refreshes: the query's
    /// structural fingerprints plus every retained run-initial H basis.
    /// Meaningful after a full [`MechanismSequences::precompute`] (only
    /// solved runs have bases to retain).
    pub fn refresh_seed(&self) -> RefreshSeed {
        RefreshSeed {
            terms_fingerprint: query_terms_fingerprint(&self.lps.query),
            participants_fingerprint: participants_fingerprint(&self.lps.query),
            chain_run_len: self.chain_run_len,
            h_run_bases: self.h_first_bases.clone(),
            warm_eligible: warm_exact_class(&self.lps.query),
        }
    }

    /// The wrapped query.
    pub fn query(&self) -> &SensitiveKRelation {
        &self.lps.query
    }

    /// LP work counters.
    pub fn stats(&self) -> LpWorkStats {
        self.stats
    }

    /// The run of entry indices solved together with `i` — the same cut
    /// points [`MechanismSequences::precompute`] partitions with
    /// ([`rmdp_runtime::contiguous_runs`]); sharing the arithmetic is part
    /// of the lazy/eager bit-identity contract.
    fn run_containing(&self, i: usize) -> Range<usize> {
        run_containing(self.num_participants() + 1, self.chain_run_len, i)
    }

    /// Folds the results of one chain run into the caches and counters.
    /// Entries that are somehow already cached are skipped so the counters
    /// never double-count (runs are normally cached atomically).
    fn absorb_run(&mut self, family: SequenceFamily, run: RunSolve) {
        let RunSolve {
            entries,
            first_basis,
        } = run;
        if family == SequenceFamily::H {
            if let (Some(first), Some(basis)) = (entries.first(), first_basis) {
                self.h_first_bases.insert(first.index, basis);
            }
        }
        for entry in entries {
            let cache = match family {
                SequenceFamily::H => &mut self.h_cache,
                SequenceFamily::G => &mut self.g_cache,
            };
            if cache.contains_key(&entry.index) {
                continue;
            }
            cache.insert(entry.index, entry.value);
            self.stats.absorb_solve(family, &entry.stats);
        }
    }

    /// Solves (and caches) the whole run containing entry `i` of `family`.
    fn solve_run_for(&mut self, family: SequenceFamily, i: usize) -> Result<(), MechanismError> {
        let run = self.run_containing(i);
        let entries = self.lps.solve_family_run(family, run)?;
        self.absorb_run(family, entries);
        Ok(())
    }
}

impl SequenceLps {
    /// Creates the per-participant variables `f_p ∈ [0,1]` and the mass
    /// constraint `Σ_p f_p = i`. The mass row is always the **first**
    /// constraint of the model (row 0), which is what lets a chain step the
    /// index with a single `set_rhs(0, i)`.
    fn add_participant_vars(&self, model: &mut Model, i: usize) -> FxHashMap<ParticipantId, Var> {
        let mut f_vars = FxHashMap::default();
        for &p in self.query.participants() {
            f_vars.insert(p, model.add_var(0.0, 1.0, 0.0));
        }
        if !f_vars.is_empty() {
            model.add_eq(f_vars.values().map(|&v| (v, 1.0)), i as f64);
        }
        f_vars
    }

    /// Recursively encodes `φ_expr` into the model, returning the operand
    /// holding its value.
    fn encode_expr(
        expr: &Expr,
        model: &mut Model,
        f_vars: &FxHashMap<ParticipantId, Var>,
    ) -> Operand {
        match expr {
            Expr::False => Operand::Const(0.0),
            Expr::True => Operand::Const(1.0),
            Expr::Var(p) => Operand::Variable(f_vars[p]),
            Expr::And(children) => {
                let mut const_sum = 0.0;
                let mut var_terms: Vec<Var> = Vec::with_capacity(children.len());
                for child in children {
                    match Self::encode_expr(child, model, f_vars) {
                        Operand::Const(c) => {
                            if c <= 0.0 {
                                return Operand::Const(0.0);
                            }
                            const_sum += c;
                        }
                        Operand::Variable(v) => var_terms.push(v),
                    }
                }
                let slack = children.len() as f64 - 1.0;
                if var_terms.is_empty() {
                    return Operand::Const((const_sum - slack).max(0.0));
                }
                // v ≥ Σ children − (n−1), v ≥ 0 — written as
                // Σ children − v ≤ (n−1) − const_sum so the row's slack can
                // serve as the initial basic variable (the all-slack cold
                // start stays feasible, keeping phase 1 small).
                let v = model.add_var(0.0, f64::INFINITY, 0.0);
                let mut terms: Vec<(Var, f64)> = Vec::with_capacity(var_terms.len() + 1);
                terms.push((v, -1.0));
                for x in var_terms {
                    terms.push((x, 1.0));
                }
                model.add_le(terms, slack - const_sum);
                Operand::Variable(v)
            }
            Expr::Or(children) => {
                let mut max_const = 0.0f64;
                let mut var_terms: Vec<Var> = Vec::with_capacity(children.len());
                for child in children {
                    match Self::encode_expr(child, model, f_vars) {
                        Operand::Const(c) => {
                            if c >= 1.0 {
                                return Operand::Const(1.0);
                            }
                            max_const = max_const.max(c);
                        }
                        Operand::Variable(v) => var_terms.push(v),
                    }
                }
                if var_terms.is_empty() {
                    return Operand::Const(max_const);
                }
                // v ≥ each child (written as child − v ≤ 0 so the slack forms
                // the initial basis); a nonzero constant child becomes the
                // lower bound of v.
                let v = model.add_var(max_const, f64::INFINITY, 0.0);
                for x in var_terms {
                    model.add_le([(x, 1.0), (v, -1.0)], 0.0);
                }
                Operand::Variable(v)
            }
        }
    }

    /// Builds the `H_i` family model at mass `i`, returning the model and
    /// the constant objective offset (terms whose annotation encodes to a
    /// constant). The offset is independent of `i`.
    fn build_h_model(&self, i: usize) -> (Model, f64) {
        let mut model = Model::new(Sense::Minimize);
        let f_vars = self.add_participant_vars(&mut model, i);

        let mut constant_offset = 0.0;
        let mut objective_weights: FxHashMap<Var, f64> = FxHashMap::default();
        for (expr, weight) in self.query.terms() {
            match Self::encode_expr(expr, &mut model, &f_vars) {
                Operand::Const(c) => constant_offset += weight * c,
                Operand::Variable(v) => *objective_weights.entry(v).or_insert(0.0) += weight,
            }
        }
        for (v, w) in objective_weights {
            model.set_objective(v, w);
        }
        (model, constant_offset)
    }

    /// Builds the `G_i` family model at mass `i`.
    fn build_g_model(&self, i: usize) -> Model {
        let mut model = Model::new(Sense::Minimize);
        let f_vars = self.add_participant_vars(&mut model, i);

        // Encode every annotation once; remember its root operand.
        let roots: Vec<Operand> = self
            .query
            .terms()
            .iter()
            .map(|(expr, _)| Self::encode_expr(expr, &mut model, &f_vars))
            .collect();

        // z dominates the weighted sums for every participant; objective 2z.
        let z = model.add_var(0.0, f64::INFINITY, 2.0);

        // Group the per-participant rows: z ≥ Σ_t q_t·S_{t,p}·φ_t.
        let mut per_participant: FxHashMap<ParticipantId, (Vec<(Var, f64)>, f64)> =
            FxHashMap::default();
        for (t, (root, sens)) in roots.iter().zip(&self.term_sensitivities).enumerate() {
            let weight = self.query.terms()[t].1;
            for (&p, &s) in sens {
                if s == 0.0 {
                    continue;
                }
                let coeff = weight * s;
                let entry = per_participant
                    .entry(p)
                    .or_insert_with(|| (Vec::new(), 0.0));
                match root {
                    Operand::Const(c) => entry.1 += coeff * c,
                    Operand::Variable(v) => entry.0.push((*v, coeff)),
                }
            }
        }
        for (_, (terms, constant)) in per_participant {
            // Σ coeff·v + constant ≤ z  ⇔  Σ coeff·v − z ≤ −constant.
            let mut row = terms;
            row.push((z, -1.0));
            model.add_le(row, -constant);
        }
        model
    }

    /// Solves one contiguous run of a family as a warm-started chain: the
    /// family is standardized once at `run.start`, each subsequent entry
    /// steps the mass row with `set_rhs(0, i)` and re-enters from the
    /// previous optimal basis. A failure anywhere discards the whole run
    /// (runs are cached atomically) and names the failing entry.
    fn solve_family_run(
        &self,
        family: SequenceFamily,
        run: Range<usize>,
    ) -> Result<RunSolve, MechanismError> {
        debug_assert!(!run.is_empty());
        let (model, offset) = match family {
            SequenceFamily::H => self.build_h_model(run.start),
            SequenceFamily::G => (self.build_g_model(run.start), 0.0),
        };
        let has_mass_row = !self.query.participants().is_empty();
        let mut prepared = model
            .prepare()
            .map_err(|e| MechanismError::sequence_lp(family, run.start, e))?;

        let mut entries = Vec::with_capacity(run.len());
        let mut first_basis: Option<Basis> = None;
        let mut basis: Option<Basis> = None;
        for i in run {
            if has_mass_row {
                prepared.set_rhs(0, i as f64);
            }
            let solved = match &basis {
                // The run-initial entry starts cold — unless a refresh seed
                // retained the run's previous optimal basis, in which case
                // it re-enters warm exactly like a mid-run entry would.
                None => match self.h_seed_bases.get(&i) {
                    Some(seed) if family == SequenceFamily::H => {
                        prepared.solve_warm(seed, &self.options)
                    }
                    _ => prepared.solve(&self.options),
                },
                Some(b) => prepared.solve_warm(b, &self.options),
            }
            .map_err(|e| MechanismError::sequence_lp(family, i, e))?;
            entries.push(EntrySolve {
                index: i,
                value: solved.solution.objective + offset,
                stats: solved.solution.stats,
            });
            if first_basis.is_none() {
                first_basis = Some(solved.basis.clone());
            }
            basis = Some(solved.basis);
        }
        Ok(RunSolve {
            entries,
            first_basis,
        })
    }
}

impl MechanismSequences for EfficientSequences {
    fn num_participants(&self) -> usize {
        self.lps.query.num_participants()
    }

    fn h(&mut self, i: usize) -> Result<f64, MechanismError> {
        if i > self.num_participants() {
            // Out of range: the mass constraint Σf = i is unsatisfiable over
            // |P| unit variables (matches the LP verdict the entry would
            // produce).
            return Err(MechanismError::sequence_lp(
                SequenceFamily::H,
                i,
                rmdp_lp::LpError::Infeasible,
            ));
        }
        if let Some(&v) = self.h_cache.get(&i) {
            return Ok(v);
        }
        self.solve_run_for(SequenceFamily::H, i)?;
        Ok(self.h_cache[&i])
    }

    fn g(&mut self, i: usize) -> Result<f64, MechanismError> {
        if i > self.num_participants() {
            return Err(MechanismError::sequence_lp(
                SequenceFamily::G,
                i,
                rmdp_lp::LpError::Infeasible,
            ));
        }
        if let Some(&v) = self.g_cache.get(&i) {
            return Ok(v);
        }
        self.solve_run_for(SequenceFamily::G, i)?;
        Ok(self.g_cache[&i])
    }

    fn bounding_factor(&self) -> f64 {
        2.0
    }

    /// Solves every not-yet-cached chain run (all `2(|P|+1)` entries when
    /// the caches are cold) on the scoped worker pool. Runs are cut at fixed
    /// points independent of the worker count, each run is one warm-started
    /// chain executed entirely on one worker, and results and stats are
    /// folded back in run order on the calling thread — so warm starts
    /// survive parallelism and the caches end up exactly as the lazy serial
    /// path would leave them, pivot counters included.
    ///
    /// Best-effort by design: a run whose chain fails (e.g. the simplex
    /// iteration limit on a pathological instance) is simply left uncached
    /// and will be re-solved lazily if the driver ever asks for one of its
    /// entries — so a failure in a run the driver never touches cannot fail
    /// a query that would have succeeded serially, and the error surface is
    /// identical for every [`Parallelism`] setting.
    fn precompute(&mut self, parallelism: Parallelism) -> Result<(), MechanismError> {
        let entries = self.num_participants() + 1;
        let mut jobs: Vec<(SequenceFamily, Range<usize>)> = Vec::new();
        for family in [SequenceFamily::H, SequenceFamily::G] {
            let cache = match family {
                SequenceFamily::H => &self.h_cache,
                SequenceFamily::G => &self.g_cache,
            };
            jobs.extend(
                contiguous_runs(entries, self.chain_run_len)
                    .into_iter()
                    .filter(|run| run.clone().any(|i| !cache.contains_key(&i)))
                    .map(|run| (family, run)),
            );
        }

        let lps = &self.lps;
        let solved = par_map_indexed(parallelism, jobs.len(), |k| {
            let (family, run) = &jobs[k];
            lps.solve_family_run(*family, run.clone())
        });

        for ((family, _), result) in jobs.iter().zip(solved) {
            let Ok(run) = result else {
                continue;
            };
            self.absorb_run(*family, run);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::general::GeneralSequences;
    use crate::mechanism::RecursiveMechanism;
    use crate::params::MechanismParams;
    use crate::sequences::{
        validate_bounding_property, validate_convexity, validate_monotone_start_at_zero,
        validate_recursive_monotonicity,
    };
    use crate::subgraph::{PrivacyUnit, SubgraphCounter};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rmdp_graph::{generators, Pattern};
    use rmdp_krelation::{KRelation, Tuple};
    use rmdp_lp::SolverBackend;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    /// The triangle K-relation of Fig. 2(a) under node privacy: triangles
    /// abc, bcd, cde over participants a..e (= 0..4).
    fn fig2a() -> SensitiveKRelation {
        let mut r = KRelation::new(["t"]);
        r.insert(
            Tuple::new([("t", "abc")]),
            Expr::conjunction_of_vars([p(0), p(1), p(2)]),
        );
        r.insert(
            Tuple::new([("t", "bcd")]),
            Expr::conjunction_of_vars([p(1), p(2), p(3)]),
        );
        r.insert(
            Tuple::new([("t", "cde")]),
            Expr::conjunction_of_vars([p(2), p(3), p(4)]),
        );
        SensitiveKRelation::counting(&r)
    }

    #[test]
    fn h_endpoints_match_the_definition() {
        let mut seq = EfficientSequences::new(fig2a());
        assert!((seq.h(0).unwrap() - 0.0).abs() < 1e-7);
        assert!(
            (seq.h(5).unwrap() - 3.0).abs() < 1e-7,
            "H_|P| must be the true answer"
        );
        assert!((seq.true_answer().unwrap() - 3.0).abs() < 1e-7);
    }

    #[test]
    fn h_matches_hand_computed_values_on_fig2a() {
        let mut seq = EfficientSequences::new(fig2a());
        // Dropping node c (f_c = 0, all others 1) kills every triangle.
        assert!((seq.h(4).unwrap() - 0.0).abs() < 1e-7);
        let h4 = seq.h(4).unwrap();
        let h5 = seq.h(5).unwrap();
        assert!(h4 <= h5);
        // Fractional relaxation can only lower the subset-based minimum.
        let general = GeneralSequences::build(&fig2a()).unwrap();
        for i in 0..=5usize {
            let relaxed = seq.h(i).unwrap();
            let subset_min = general.h_entries()[i];
            assert!(
                relaxed <= subset_min + 1e-7,
                "H_{i}: relaxed {relaxed} > subset minimum {subset_min}"
            );
        }
    }

    #[test]
    fn sequences_satisfy_defining_properties_on_fig2a() {
        let mut seq = EfficientSequences::new(fig2a());
        validate_monotone_start_at_zero(&mut seq, |s, i| s.h(i)).unwrap();
        validate_monotone_start_at_zero(&mut seq, |s, i| s.g(i)).unwrap();
        validate_convexity(&mut seq).unwrap();
        validate_bounding_property(&mut seq).unwrap();
    }

    #[test]
    fn g_full_is_bounded_by_twice_s_times_universal_sensitivity() {
        let query = fig2a();
        let bound = 2.0 * query.max_phi_sensitivity() * query.universal_sensitivity();
        let mut seq = EfficientSequences::new(query);
        let g_full = seq.g(5).unwrap();
        assert!(
            g_full <= bound + 1e-7,
            "G_|P| = {g_full} exceeds 2·S·ŨS = {bound}"
        );
        assert!(g_full > 0.0);
    }

    #[test]
    fn recursive_monotonicity_across_neighbouring_krelations() {
        // The neighbour without participant e (p4): annotations restricted
        // with p4 → False, support loses the cde triangle.
        let larger = fig2a();
        let mut smaller_terms = Vec::new();
        for (e, w) in larger.terms() {
            let restricted = e.restrict(p(4), false);
            smaller_terms.push((restricted, *w));
        }
        let smaller = SensitiveKRelation::from_terms((0..4).map(p).collect(), smaller_terms);
        assert_eq!(smaller.true_answer(), 2.0);

        let mut small_seq = EfficientSequences::new(smaller);
        let mut large_seq = EfficientSequences::new(larger);
        validate_recursive_monotonicity(&mut small_seq, &mut large_seq).unwrap();
    }

    #[test]
    fn or_annotations_are_encoded_correctly() {
        // Two participants can each independently support the same tuple:
        // R(t) = p0 ∨ p1, plus a second tuple requiring both.
        let terms = vec![
            (Expr::or2(Expr::var(p(0)), Expr::var(p(1))), 1.0),
            (Expr::conjunction_of_vars([p(0), p(1)]), 1.0),
        ];
        let query = SensitiveKRelation::from_terms(vec![p(0), p(1)], terms);
        let mut seq = EfficientSequences::new(query);
        // |f| = 1: the minimiser splits 0.5/0.5: φ_or = 0.5, φ_and = 0 ⇒ 0.5.
        assert!((seq.h(1).unwrap() - 0.5).abs() < 1e-7);
        assert!((seq.h(2).unwrap() - 2.0).abs() < 1e-7);
        assert!((seq.h(0).unwrap() - 0.0).abs() < 1e-7);
    }

    #[test]
    fn cnf_annotations_have_larger_phi_sensitivity_and_valid_sequences() {
        // (p0 ∨ p1) ∧ (p0 ∨ p2): S_{k,p0} = 2.
        let terms = vec![(
            Expr::and2(
                Expr::or2(Expr::var(p(0)), Expr::var(p(1))),
                Expr::or2(Expr::var(p(0)), Expr::var(p(2))),
            ),
            1.0,
        )];
        let query = SensitiveKRelation::from_terms((0..3).map(p).collect(), terms);
        assert_eq!(query.max_phi_sensitivity(), 2.0);
        let mut seq = EfficientSequences::new(query);
        assert!((seq.h(3).unwrap() - 1.0).abs() < 1e-7);
        validate_monotone_start_at_zero(&mut seq, |s, i| s.h(i)).unwrap();
        validate_bounding_property(&mut seq).unwrap();
    }

    #[test]
    fn constant_true_annotations_contribute_a_constant_offset() {
        let terms = vec![(Expr::True, 2.5), (Expr::var(p(0)), 1.0)];
        let query = SensitiveKRelation::from_terms(vec![p(0)], terms);
        let mut seq = EfficientSequences::new(query);
        assert!((seq.h(0).unwrap() - 2.5).abs() < 1e-7);
        assert!((seq.h(1).unwrap() - 3.5).abs() < 1e-7);
        // A True annotation depends on no participant, so G stays 1·2 at most
        // (driven only by the p0 tuple).
        assert!(seq.g(1).unwrap() <= 2.0 + 1e-7);
    }

    #[test]
    fn caching_avoids_repeated_lp_solves() {
        let mut seq = EfficientSequences::new(fig2a());
        let _ = seq.h(3).unwrap();
        let solves_after_first = seq.stats().h_solves;
        let _ = seq.h(3).unwrap();
        assert_eq!(seq.stats().h_solves, solves_after_first);
    }

    #[test]
    fn end_to_end_release_on_fig2a() {
        let seq = EfficientSequences::new(fig2a());
        let mut mech =
            RecursiveMechanism::new(seq, MechanismParams::paper_node_privacy(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let releases = mech.release_many(30, &mut rng).unwrap();
        for r in &releases {
            assert_eq!(r.true_answer, 3.0);
            assert!(r.x <= 3.0 + 1e-7, "X must never exceed the true answer");
            assert!(r.noisy_answer.is_finite());
        }
        // Δ is determined by G and the ladder; for this tiny relation it is
        // a small constant ≥ θ = 1.
        let delta = mech.delta().unwrap();
        assert!((1.0..20.0).contains(&delta), "Δ = {delta}");
    }

    #[test]
    fn parallel_precompute_is_bit_identical_to_lazy_serial() {
        let mut lazy = EfficientSequences::new(fig2a());
        let mut eager = EfficientSequences::new(fig2a());
        eager.precompute(Parallelism::Threads(3)).unwrap();
        assert_eq!(eager.stats().h_solves, 6);
        assert_eq!(eager.stats().g_solves, 6);
        for i in 0..=5usize {
            // Bitwise equality, not tolerance: both paths must execute the
            // exact same deterministic chain runs.
            assert_eq!(lazy.h(i).unwrap(), eager.h(i).unwrap(), "H_{i}");
            assert_eq!(lazy.g(i).unwrap(), eager.g(i).unwrap(), "G_{i}");
        }
        // All entries were cached by precompute: serving them solved nothing.
        assert_eq!(eager.stats().h_solves, 6);
        assert_eq!(eager.stats().g_solves, 6);
        assert_eq!(lazy.stats().total_pivots, eager.stats().total_pivots);
        assert_eq!(lazy.stats().warm_start_hits, eager.stats().warm_start_hits);
    }

    #[test]
    fn precompute_skips_already_cached_entries() {
        let mut seq = EfficientSequences::new(fig2a());
        let _ = seq.h(2).unwrap();
        let _ = seq.g(4).unwrap();
        seq.precompute(Parallelism::Threads(2)).unwrap();
        assert_eq!(seq.stats().h_solves, 6);
        assert_eq!(seq.stats().g_solves, 6);
    }

    #[test]
    fn parallel_params_release_matches_serial_release_bit_for_bit() {
        let serial_params = MechanismParams::paper_node_privacy(1.0);
        let parallel_params = serial_params.with_parallelism(Parallelism::Threads(4));
        let mut serial_mech =
            RecursiveMechanism::new(EfficientSequences::new(fig2a()), serial_params).unwrap();
        let mut parallel_mech =
            RecursiveMechanism::new(EfficientSequences::new(fig2a()), parallel_params).unwrap();
        let a = serial_mech
            .release_many(5, &mut StdRng::seed_from_u64(42))
            .unwrap();
        let b = parallel_mech
            .release_many(5, &mut StdRng::seed_from_u64(42))
            .unwrap();
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.noisy_answer, rb.noisy_answer);
            assert_eq!(ra.delta, rb.delta);
            assert_eq!(ra.delta_hat, rb.delta_hat);
            assert_eq!(ra.x, rb.x);
            assert_eq!(ra.argmin_index, rb.argmin_index);
        }
    }

    #[test]
    fn general_and_efficient_agree_on_the_true_answer_and_h0() {
        let query = fig2a();
        let mut eff = EfficientSequences::new(query.clone());
        let mut gen = GeneralSequences::build(&query).unwrap();
        assert!((eff.h(5).unwrap() - gen.h(5).unwrap()).abs() < 1e-7);
        assert!((eff.h(0).unwrap() - gen.h(0).unwrap()).abs() < 1e-7);
    }

    /// The fig-4 workload shapes at unit-test scale: triangles and 2-stars
    /// under node privacy on a small G(n, p) graph.
    fn fig4_relation(pattern: Pattern) -> SensitiveKRelation {
        let mut rng = StdRng::seed_from_u64(31);
        let graph = generators::gnp_average_degree(16, 5.0, &mut rng);
        SubgraphCounter::new(
            pattern,
            PrivacyUnit::Node,
            MechanismParams::paper_node_privacy(1.0),
        )
        .build_sensitive_relation(&graph)
    }

    #[test]
    fn warm_chains_match_the_dense_oracle_on_fig4_entry_models() {
        // Differential test on the *real* sequence models: every H_i/G_i
        // value produced by the warm-started revised chain must match a cold
        // dense-tableau solve of the same entry model.
        let oracle = SimplexOptions {
            backend: SolverBackend::DenseTableau,
            ..SimplexOptions::default()
        };
        for pattern in [Pattern::triangle(), Pattern::k_star(2)] {
            let relation = fig4_relation(pattern);
            let n = relation.num_participants();
            let mut seq = EfficientSequences::new(relation);
            for i in 0..=n {
                let h_chain = seq.h(i).unwrap();
                let (h_model, offset) = seq.lps.build_h_model(i);
                let h_dense = h_model.solve_with(&oracle).unwrap().objective + offset;
                assert!(
                    (h_chain - h_dense).abs() < 1e-6,
                    "H_{i}: chain {h_chain} vs dense {h_dense}"
                );
                let g_chain = seq.g(i).unwrap();
                let g_dense = seq
                    .lps
                    .build_g_model(i)
                    .solve_with(&oracle)
                    .unwrap()
                    .objective;
                assert!(
                    (g_chain - g_dense).abs() < 1e-6,
                    "G_{i}: chain {g_chain} vs dense {g_dense}"
                );
            }
        }
    }

    #[test]
    fn sparse_lu_and_dense_inverse_chains_agree_on_fig4_models() {
        // The two revised backends share pivot logic but run independent
        // linear algebra (LU substitution vs an explicit inverse), so entry
        // values can differ by rounding ulps once pivots turn fractional;
        // whole warm chains are held to a relative 1e-12 — far below the
        // 1e-7 feasibility tolerance and the release's noise floor. (True
        // bit-identity across *runs of the same backend* is covered by
        // `parallel_precompute_is_bit_identical_to_lazy_serial`.)
        for pattern in [Pattern::triangle(), Pattern::k_star(2)] {
            let relation = fig4_relation(pattern.clone());
            let n = relation.num_participants();
            let mut sparse = EfficientSequences::new(relation.clone());
            let mut dense = EfficientSequences::new(relation).with_solver_options(SimplexOptions {
                backend: SolverBackend::Revised,
                ..SimplexOptions::default()
            });
            for i in 0..=n {
                let (hs, hd) = (sparse.h(i).unwrap(), dense.h(i).unwrap());
                assert!(
                    (hs - hd).abs() <= 1e-12 * hd.abs().max(1.0),
                    "{}: H_{i} sparse-LU {hs} vs dense B⁻¹ {hd}",
                    pattern.name()
                );
                let (gs, gd) = (sparse.g(i).unwrap(), dense.g(i).unwrap());
                assert!(
                    (gs - gd).abs() <= 1e-12 * gd.abs().max(1.0),
                    "{}: G_{i} sparse-LU {gs} vs dense B⁻¹ {gd}",
                    pattern.name()
                );
            }
            assert!(sparse.stats().fill_in_nnz > 0);
            assert_eq!(dense.stats().fill_in_nnz, 0);
        }
    }

    #[test]
    fn warm_chains_solve_the_full_family_with_fewer_pivots_than_cold() {
        for pattern in [Pattern::triangle(), Pattern::k_star(2)] {
            let relation = fig4_relation(pattern.clone());
            let mut chained = EfficientSequences::new(relation.clone());
            let mut cold = EfficientSequences::new(relation).with_chain_run_len(1);
            chained.precompute(Parallelism::Serial).unwrap();
            cold.precompute(Parallelism::Serial).unwrap();
            let n = chained.num_participants();
            for i in 0..=n {
                assert!((chained.h(i).unwrap() - cold.h(i).unwrap()).abs() < 1e-6);
                assert!((chained.g(i).unwrap() - cold.g(i).unwrap()).abs() < 1e-6);
            }
            assert!(chained.stats().warm_start_hits > 0);
            assert_eq!(cold.stats().warm_start_hits, 0);
            assert!(
                chained.stats().total_pivots < cold.stats().total_pivots,
                "{}: chain {} pivots vs cold {}",
                pattern.name(),
                chained.stats().total_pivots,
                cold.stats().total_pivots
            );
        }
    }

    #[test]
    fn chain_failures_name_the_failing_entry() {
        // An unsatisfiable iteration budget makes the very first entry of
        // the run fail; the error must say which one.
        let mut seq = EfficientSequences::new(fig2a()).with_solver_options(SimplexOptions {
            max_iterations: 0,
            ..SimplexOptions::default()
        });
        match seq.h(3) {
            Err(MechanismError::SequenceLp {
                family: SequenceFamily::H,
                index,
                ..
            }) => assert_eq!(index, 0, "the chain fails at its first entry"),
            other => panic!("expected a named SequenceLp error, got {other:?}"),
        }
        match seq.g(2) {
            Err(MechanismError::SequenceLp {
                family: SequenceFamily::G,
                ..
            }) => {}
            other => panic!("expected a named SequenceLp error, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_entries_error_instead_of_panicking() {
        // fig2a has 5 participants; entries 0..=5 exist. Anything beyond
        // must surface as a named infeasible-entry error, not a panic.
        let mut seq = EfficientSequences::new(fig2a());
        match seq.h(6) {
            Err(MechanismError::SequenceLp {
                family: SequenceFamily::H,
                index: 6,
                ..
            }) => {}
            other => panic!("expected a named out-of-range error, got {other:?}"),
        }
        match seq.g(99) {
            Err(MechanismError::SequenceLp {
                family: SequenceFamily::G,
                index: 99,
                ..
            }) => {}
            other => panic!("expected a named out-of-range error, got {other:?}"),
        }
    }

    #[test]
    fn run_partitioning_is_independent_of_parallelism_and_atomic() {
        // Even with more workers than runs the values stay identical to the
        // serial walk, and a partially queried family completes consistently.
        let mut reference = EfficientSequences::new(fig2a());
        for workers in [2usize, 3, 8] {
            let mut par = EfficientSequences::new(fig2a());
            let _ = par.h(1).unwrap(); // pre-populate one run lazily
            par.precompute(Parallelism::Threads(workers)).unwrap();
            for i in 0..=5usize {
                assert_eq!(reference.h(i).unwrap(), par.h(i).unwrap());
                assert_eq!(reference.g(i).unwrap(), par.g(i).unwrap());
            }
            assert_eq!(par.stats().h_solves, 6);
            assert_eq!(par.stats().g_solves, 6);
        }
    }
}
