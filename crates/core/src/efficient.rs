//! The efficient instantiation over sensitive K-relations (paper Sec. 5).
//!
//! For a nonnegative linear query `q` over a sensitive K-relation `(P, R)`
//! the sequences are defined through the relaxation `φ`:
//!
//! * `H_i = min_{f ∈ [0,1]^P, |f| = i} Σ_t q(t)·φ_{R(t)}(f)` (Eq. 16)
//! * `G_i = 2·min_{f ∈ [0,1]^P, |f| = i} max_p Σ_t q(t)·φ_{R(t)}(f)·S_{R(t),p}`
//!   (Eq. 19)
//!
//! `H` is a recursive sequence with `H_{|P|} = q(supp(R))` (Theorem 3) and
//! `G` is a 2-bounding sequence of `H` (Theorem 4). Both minimisations are
//! convex piecewise-linear programs and are encoded as LPs with `O(L)`
//! variables (Sec. 5.3):
//!
//! * every participant gets a variable `f_p ∈ [0,1]` and a single equality
//!   `Σ_p f_p = i` ties the mass to the index;
//! * every `∧` node becomes an epigraph variable `v ≥ Σ(children) − (n−1)`,
//!   `v ≥ 0` — one row per conjunction thanks to the flattened n-ary form
//!   (`φ_{∧(x₁..x_n)} = max(0, Σφ_{x_i} − (n−1))`), which is what keeps
//!   subgraph-counting LPs at one row per matched subgraph;
//! * every `∨` node becomes `v ≥ φ(child)` for each child;
//! * for `G_i` an extra variable `z` dominates the weighted per-participant
//!   sums and the objective is `2z`.
//!
//! Because the objective only ever pushes epigraph variables down and all
//! weights are nonnegative, the LP optimum equals the exact minimum of the
//! relaxed objective — no approximation is introduced.

use crate::error::MechanismError;
use crate::krelation_query::SensitiveKRelation;
use crate::sequences::MechanismSequences;
use rmdp_krelation::hash::FxHashMap;
use rmdp_krelation::participant::ParticipantId;
use rmdp_krelation::phi::phi_sensitivities;
use rmdp_krelation::Expr;
use rmdp_lp::{Model, Sense, Var};
use rmdp_runtime::{par_map_indexed, Parallelism};

/// Cumulative counters describing the LP work done by one instantiation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LpWorkStats {
    /// Number of LPs solved for `H` entries.
    pub h_solves: usize,
    /// Number of LPs solved for `G` entries.
    pub g_solves: usize,
    /// Total simplex pivots across all solves.
    pub total_pivots: usize,
}

/// The LP-based instantiation of the recursive mechanism over a sensitive
/// K-relation. Computed entries are cached, so repeated releases on the same
/// relation only pay for the entries they newly touch.
///
/// Entries are independent LPs over a shared immutable view of the query
/// (the internal `SequenceLps`), so [`MechanismSequences::precompute`] can
/// solve all of them concurrently on the scoped worker pool of
/// `rmdp-runtime`; the values (and the resulting releases) are bit-identical
/// to the lazy serial path.
pub struct EfficientSequences {
    /// The shared immutable problem view each LP solve reads from.
    lps: SequenceLps,
    h_cache: FxHashMap<usize, f64>,
    g_cache: FxHashMap<usize, f64>,
    stats: LpWorkStats,
}

/// The immutable LP-construction view: the query plus its precomputed
/// φ-sensitivities. Every `solve_*` call builds its own [`Model`] from this
/// shared data (`&self` only), so the struct is `Sync` and worker threads can
/// build and solve entry LPs concurrently without any cache contention —
/// caching stays in [`EfficientSequences`], outside the parallel region.
struct SequenceLps {
    query: SensitiveKRelation,
    /// φ-sensitivities of each term's annotation (aligned with the query's
    /// terms), precomputed once.
    term_sensitivities: Vec<FxHashMap<ParticipantId, f64>>,
}

/// Either a constant or an LP variable — the value of an encoded
/// sub-expression.
#[derive(Clone, Copy, Debug)]
enum Operand {
    Const(f64),
    Variable(Var),
}

/// One sequence entry to solve: which sequence and which index.
#[derive(Clone, Copy, Debug)]
enum EntryJob {
    H(usize),
    G(usize),
}

impl EfficientSequences {
    /// Wraps a sensitive K-relation.
    pub fn new(query: SensitiveKRelation) -> Self {
        let term_sensitivities = query
            .terms()
            .iter()
            .map(|(e, _)| phi_sensitivities(e))
            .collect();
        EfficientSequences {
            lps: SequenceLps {
                query,
                term_sensitivities,
            },
            h_cache: FxHashMap::default(),
            g_cache: FxHashMap::default(),
            stats: LpWorkStats::default(),
        }
    }

    /// The wrapped query.
    pub fn query(&self) -> &SensitiveKRelation {
        &self.lps.query
    }

    /// LP work counters.
    pub fn stats(&self) -> LpWorkStats {
        self.stats
    }
}

impl SequenceLps {
    /// Creates the per-participant variables `f_p ∈ [0,1]` and the mass
    /// constraint `Σ_p f_p = i`.
    fn add_participant_vars(&self, model: &mut Model, i: usize) -> FxHashMap<ParticipantId, Var> {
        let mut f_vars = FxHashMap::default();
        for &p in self.query.participants() {
            f_vars.insert(p, model.add_var(0.0, 1.0, 0.0));
        }
        if !f_vars.is_empty() {
            model.add_eq(f_vars.values().map(|&v| (v, 1.0)), i as f64);
        }
        f_vars
    }

    /// Recursively encodes `φ_expr` into the model, returning the operand
    /// holding its value.
    fn encode_expr(
        expr: &Expr,
        model: &mut Model,
        f_vars: &FxHashMap<ParticipantId, Var>,
    ) -> Operand {
        match expr {
            Expr::False => Operand::Const(0.0),
            Expr::True => Operand::Const(1.0),
            Expr::Var(p) => Operand::Variable(f_vars[p]),
            Expr::And(children) => {
                let mut const_sum = 0.0;
                let mut var_terms: Vec<Var> = Vec::with_capacity(children.len());
                for child in children {
                    match Self::encode_expr(child, model, f_vars) {
                        Operand::Const(c) => {
                            if c <= 0.0 {
                                return Operand::Const(0.0);
                            }
                            const_sum += c;
                        }
                        Operand::Variable(v) => var_terms.push(v),
                    }
                }
                let slack = children.len() as f64 - 1.0;
                if var_terms.is_empty() {
                    return Operand::Const((const_sum - slack).max(0.0));
                }
                // v ≥ Σ children − (n−1), v ≥ 0 — written as
                // Σ children − v ≤ (n−1) − const_sum so the row's slack can
                // serve as the initial basic variable (no artificial needed,
                // which keeps phase 1 small and non-degenerate).
                let v = model.add_var(0.0, f64::INFINITY, 0.0);
                let mut terms: Vec<(Var, f64)> = Vec::with_capacity(var_terms.len() + 1);
                terms.push((v, -1.0));
                for x in var_terms {
                    terms.push((x, 1.0));
                }
                model.add_le(terms, slack - const_sum);
                Operand::Variable(v)
            }
            Expr::Or(children) => {
                let mut max_const = 0.0f64;
                let mut var_terms: Vec<Var> = Vec::with_capacity(children.len());
                for child in children {
                    match Self::encode_expr(child, model, f_vars) {
                        Operand::Const(c) => {
                            if c >= 1.0 {
                                return Operand::Const(1.0);
                            }
                            max_const = max_const.max(c);
                        }
                        Operand::Variable(v) => var_terms.push(v),
                    }
                }
                if var_terms.is_empty() {
                    return Operand::Const(max_const);
                }
                // v ≥ each child (written as child − v ≤ 0 so the slack forms
                // the initial basis); a nonzero constant child becomes the
                // lower bound of v.
                let v = model.add_var(max_const, f64::INFINITY, 0.0);
                for x in var_terms {
                    model.add_le([(x, 1.0), (v, -1.0)], 0.0);
                }
                Operand::Variable(v)
            }
        }
    }

    /// Builds and solves the `H_i` LP, returning the entry value and the
    /// number of simplex pivots it took.
    fn solve_h(&self, i: usize) -> Result<(f64, usize), MechanismError> {
        let mut model = Model::new(Sense::Minimize);
        let f_vars = self.add_participant_vars(&mut model, i);

        let mut constant_offset = 0.0;
        let mut objective_weights: FxHashMap<Var, f64> = FxHashMap::default();
        for (expr, weight) in self.query.terms() {
            match Self::encode_expr(expr, &mut model, &f_vars) {
                Operand::Const(c) => constant_offset += weight * c,
                Operand::Variable(v) => *objective_weights.entry(v).or_insert(0.0) += weight,
            }
        }
        for (v, w) in objective_weights {
            model.set_objective(v, w);
        }

        let solution = model.solve()?;
        let pivots = solution.stats.phase1_iterations + solution.stats.phase2_iterations;
        Ok((solution.objective + constant_offset, pivots))
    }

    /// Builds and solves the `G_i` LP, returning the entry value and the
    /// number of simplex pivots it took.
    fn solve_g(&self, i: usize) -> Result<(f64, usize), MechanismError> {
        let mut model = Model::new(Sense::Minimize);
        let f_vars = self.add_participant_vars(&mut model, i);

        // Encode every annotation once; remember its root operand.
        let roots: Vec<Operand> = self
            .query
            .terms()
            .iter()
            .map(|(expr, _)| Self::encode_expr(expr, &mut model, &f_vars))
            .collect();

        // z dominates the weighted sums for every participant; objective 2z.
        let z = model.add_var(0.0, f64::INFINITY, 2.0);

        // Group the per-participant rows: z ≥ Σ_t q_t·S_{t,p}·φ_t.
        let mut per_participant: FxHashMap<ParticipantId, (Vec<(Var, f64)>, f64)> =
            FxHashMap::default();
        for (t, (root, sens)) in roots.iter().zip(&self.term_sensitivities).enumerate() {
            let weight = self.query.terms()[t].1;
            for (&p, &s) in sens {
                if s == 0.0 {
                    continue;
                }
                let coeff = weight * s;
                let entry = per_participant
                    .entry(p)
                    .or_insert_with(|| (Vec::new(), 0.0));
                match root {
                    Operand::Const(c) => entry.1 += coeff * c,
                    Operand::Variable(v) => entry.0.push((*v, coeff)),
                }
            }
        }
        for (_, (terms, constant)) in per_participant {
            // Σ coeff·v + constant ≤ z  ⇔  Σ coeff·v − z ≤ −constant.
            let mut row = terms;
            row.push((z, -1.0));
            model.add_le(row, -constant);
        }

        let solution = model.solve()?;
        let pivots = solution.stats.phase1_iterations + solution.stats.phase2_iterations;
        Ok((solution.objective, pivots))
    }
}

impl MechanismSequences for EfficientSequences {
    fn num_participants(&self) -> usize {
        self.lps.query.num_participants()
    }

    fn h(&mut self, i: usize) -> Result<f64, MechanismError> {
        debug_assert!(i <= self.num_participants());
        if let Some(&v) = self.h_cache.get(&i) {
            return Ok(v);
        }
        let (v, pivots) = self.lps.solve_h(i)?;
        self.stats.h_solves += 1;
        self.stats.total_pivots += pivots;
        self.h_cache.insert(i, v);
        Ok(v)
    }

    fn g(&mut self, i: usize) -> Result<f64, MechanismError> {
        debug_assert!(i <= self.num_participants());
        if let Some(&v) = self.g_cache.get(&i) {
            return Ok(v);
        }
        let (v, pivots) = self.lps.solve_g(i)?;
        self.stats.g_solves += 1;
        self.stats.total_pivots += pivots;
        self.g_cache.insert(i, v);
        Ok(v)
    }

    fn bounding_factor(&self) -> f64 {
        2.0
    }

    /// Solves every not-yet-cached `H_i` and `G_i` LP (`2(|P|+1)` independent
    /// solves when the caches are cold) on the scoped worker pool. Each
    /// worker builds its own [`Model`] from the shared immutable problem
    /// view; results and stats are folded back in entry order on the calling
    /// thread, so the caches end up exactly as the serial path would leave
    /// them.
    ///
    /// Best-effort by design: an entry whose LP fails (e.g. the simplex
    /// iteration limit on a pathological instance) is simply left uncached
    /// and will be re-solved lazily if the driver ever asks for it — so a
    /// failure on an entry the driver never touches cannot fail a query that
    /// would have succeeded serially, and the error surface is identical for
    /// every [`Parallelism`] setting.
    fn precompute(&mut self, parallelism: Parallelism) -> Result<(), MechanismError> {
        let n = self.num_participants();
        let mut jobs: Vec<EntryJob> = Vec::with_capacity(2 * (n + 1));
        jobs.extend(
            (0..=n)
                .filter(|i| !self.h_cache.contains_key(i))
                .map(EntryJob::H),
        );
        jobs.extend(
            (0..=n)
                .filter(|i| !self.g_cache.contains_key(i))
                .map(EntryJob::G),
        );

        let lps = &self.lps;
        let solved = par_map_indexed(parallelism, jobs.len(), |k| match jobs[k] {
            EntryJob::H(i) => lps.solve_h(i),
            EntryJob::G(i) => lps.solve_g(i),
        });

        for (job, result) in jobs.iter().zip(solved) {
            let Ok((value, pivots)) = result else {
                continue;
            };
            self.stats.total_pivots += pivots;
            match *job {
                EntryJob::H(i) => {
                    self.stats.h_solves += 1;
                    self.h_cache.insert(i, value);
                }
                EntryJob::G(i) => {
                    self.stats.g_solves += 1;
                    self.g_cache.insert(i, value);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::general::GeneralSequences;
    use crate::mechanism::RecursiveMechanism;
    use crate::params::MechanismParams;
    use crate::sequences::{
        validate_bounding_property, validate_convexity, validate_monotone_start_at_zero,
        validate_recursive_monotonicity,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rmdp_krelation::{KRelation, Tuple};

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    /// The triangle K-relation of Fig. 2(a) under node privacy: triangles
    /// abc, bcd, cde over participants a..e (= 0..4).
    fn fig2a() -> SensitiveKRelation {
        let mut r = KRelation::new(["t"]);
        r.insert(
            Tuple::new([("t", "abc")]),
            Expr::conjunction_of_vars([p(0), p(1), p(2)]),
        );
        r.insert(
            Tuple::new([("t", "bcd")]),
            Expr::conjunction_of_vars([p(1), p(2), p(3)]),
        );
        r.insert(
            Tuple::new([("t", "cde")]),
            Expr::conjunction_of_vars([p(2), p(3), p(4)]),
        );
        SensitiveKRelation::counting(&r)
    }

    #[test]
    fn h_endpoints_match_the_definition() {
        let mut seq = EfficientSequences::new(fig2a());
        assert!((seq.h(0).unwrap() - 0.0).abs() < 1e-7);
        assert!(
            (seq.h(5).unwrap() - 3.0).abs() < 1e-7,
            "H_|P| must be the true answer"
        );
        assert!((seq.true_answer().unwrap() - 3.0).abs() < 1e-7);
    }

    #[test]
    fn h_matches_hand_computed_values_on_fig2a() {
        let mut seq = EfficientSequences::new(fig2a());
        // Dropping node c (f_c = 0, all others 1) kills every triangle.
        assert!((seq.h(4).unwrap() - 0.0).abs() < 1e-7);
        // With |f| = 4.5 the best split keeps c at 0.5: each triangle hinge is
        // at most max(0, 1 + 1 + 0.5 − 2) = 0.5 and the middle one can be
        // driven to 0.5 too; the optimum is 1.0 (c = 0.5, a=b=d=e=1 gives
        // 0.5 + 0.5 + 0.5 = 1.5; better: c = 1, e = 0.5, a = 1, b = 1,
        // d = 0.5 gives 1 + 0.5 + 0 = 1.5; c = 0.75, d = 0.75 and a=b=e=1
        // gives 0.75 + 0.5 + 0.5 = 1.75; the LP finds the exact optimum —
        // just sanity-check monotonicity and the known integer points).
        let h4 = seq.h(4).unwrap();
        let h5 = seq.h(5).unwrap();
        assert!(h4 <= h5);
        // Fractional relaxation can only lower the subset-based minimum.
        let general = GeneralSequences::build(&fig2a()).unwrap();
        for i in 0..=5usize {
            let relaxed = seq.h(i).unwrap();
            let subset_min = general.h_entries()[i];
            assert!(
                relaxed <= subset_min + 1e-7,
                "H_{i}: relaxed {relaxed} > subset minimum {subset_min}"
            );
        }
    }

    #[test]
    fn sequences_satisfy_defining_properties_on_fig2a() {
        let mut seq = EfficientSequences::new(fig2a());
        validate_monotone_start_at_zero(&mut seq, |s, i| s.h(i)).unwrap();
        validate_monotone_start_at_zero(&mut seq, |s, i| s.g(i)).unwrap();
        validate_convexity(&mut seq).unwrap();
        validate_bounding_property(&mut seq).unwrap();
    }

    #[test]
    fn g_full_is_bounded_by_twice_s_times_universal_sensitivity() {
        let query = fig2a();
        let bound = 2.0 * query.max_phi_sensitivity() * query.universal_sensitivity();
        let mut seq = EfficientSequences::new(query);
        let g_full = seq.g(5).unwrap();
        assert!(
            g_full <= bound + 1e-7,
            "G_|P| = {g_full} exceeds 2·S·ŨS = {bound}"
        );
        assert!(g_full > 0.0);
    }

    #[test]
    fn recursive_monotonicity_across_neighbouring_krelations() {
        // The neighbour without participant e (p4): annotations restricted
        // with p4 → False, support loses the cde triangle.
        let larger = fig2a();
        let mut smaller_terms = Vec::new();
        for (e, w) in larger.terms() {
            let restricted = e.restrict(p(4), false);
            smaller_terms.push((restricted, *w));
        }
        let smaller = SensitiveKRelation::from_terms((0..4).map(p).collect(), smaller_terms);
        assert_eq!(smaller.true_answer(), 2.0);

        let mut small_seq = EfficientSequences::new(smaller);
        let mut large_seq = EfficientSequences::new(larger);
        validate_recursive_monotonicity(&mut small_seq, &mut large_seq).unwrap();
    }

    #[test]
    fn or_annotations_are_encoded_correctly() {
        // Two participants can each independently support the same tuple:
        // R(t) = p0 ∨ p1, plus a second tuple requiring both.
        let terms = vec![
            (Expr::or2(Expr::var(p(0)), Expr::var(p(1))), 1.0),
            (Expr::conjunction_of_vars([p(0), p(1)]), 1.0),
        ];
        let query = SensitiveKRelation::from_terms(vec![p(0), p(1)], terms);
        let mut seq = EfficientSequences::new(query);
        // |f| = 1: put the whole unit on one participant: first tuple φ = 1,
        // second φ = 0 ⇒ H_1 = ... but the minimiser can split 0.5/0.5:
        // φ_or = 0.5, φ_and = 0 ⇒ 0.5. The LP must find 0.5.
        assert!((seq.h(1).unwrap() - 0.5).abs() < 1e-7);
        assert!((seq.h(2).unwrap() - 2.0).abs() < 1e-7);
        assert!((seq.h(0).unwrap() - 0.0).abs() < 1e-7);
    }

    #[test]
    fn cnf_annotations_have_larger_phi_sensitivity_and_valid_sequences() {
        // (p0 ∨ p1) ∧ (p0 ∨ p2): S_{k,p0} = 2.
        let terms = vec![(
            Expr::and2(
                Expr::or2(Expr::var(p(0)), Expr::var(p(1))),
                Expr::or2(Expr::var(p(0)), Expr::var(p(2))),
            ),
            1.0,
        )];
        let query = SensitiveKRelation::from_terms((0..3).map(p).collect(), terms);
        assert_eq!(query.max_phi_sensitivity(), 2.0);
        let mut seq = EfficientSequences::new(query);
        assert!((seq.h(3).unwrap() - 1.0).abs() < 1e-7);
        validate_monotone_start_at_zero(&mut seq, |s, i| s.h(i)).unwrap();
        validate_bounding_property(&mut seq).unwrap();
    }

    #[test]
    fn constant_true_annotations_contribute_a_constant_offset() {
        let terms = vec![(Expr::True, 2.5), (Expr::var(p(0)), 1.0)];
        let query = SensitiveKRelation::from_terms(vec![p(0)], terms);
        let mut seq = EfficientSequences::new(query);
        assert!((seq.h(0).unwrap() - 2.5).abs() < 1e-7);
        assert!((seq.h(1).unwrap() - 3.5).abs() < 1e-7);
        // A True annotation depends on no participant, so G stays 1·2 at most
        // (driven only by the p0 tuple).
        assert!(seq.g(1).unwrap() <= 2.0 + 1e-7);
    }

    #[test]
    fn caching_avoids_repeated_lp_solves() {
        let mut seq = EfficientSequences::new(fig2a());
        let _ = seq.h(3).unwrap();
        let solves_after_first = seq.stats().h_solves;
        let _ = seq.h(3).unwrap();
        assert_eq!(seq.stats().h_solves, solves_after_first);
    }

    #[test]
    fn end_to_end_release_on_fig2a() {
        let seq = EfficientSequences::new(fig2a());
        let mut mech =
            RecursiveMechanism::new(seq, MechanismParams::paper_node_privacy(1.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let releases = mech.release_many(30, &mut rng).unwrap();
        for r in &releases {
            assert_eq!(r.true_answer, 3.0);
            assert!(r.x <= 3.0 + 1e-7, "X must never exceed the true answer");
            assert!(r.noisy_answer.is_finite());
        }
        // Δ is determined by G and the ladder; for this tiny relation it is
        // a small constant ≥ θ = 1.
        let delta = mech.delta().unwrap();
        assert!((1.0..20.0).contains(&delta), "Δ = {delta}");
    }

    #[test]
    fn parallel_precompute_is_bit_identical_to_lazy_serial() {
        let mut lazy = EfficientSequences::new(fig2a());
        let mut eager = EfficientSequences::new(fig2a());
        eager.precompute(Parallelism::Threads(3)).unwrap();
        assert_eq!(eager.stats().h_solves, 6);
        assert_eq!(eager.stats().g_solves, 6);
        for i in 0..=5usize {
            // Bitwise equality, not tolerance: the parallel path must run the
            // exact same deterministic LP solves as the serial one.
            assert_eq!(lazy.h(i).unwrap(), eager.h(i).unwrap(), "H_{i}");
            assert_eq!(lazy.g(i).unwrap(), eager.g(i).unwrap(), "G_{i}");
        }
        // All entries were cached by precompute: serving them solved nothing.
        assert_eq!(eager.stats().h_solves, 6);
        assert_eq!(eager.stats().g_solves, 6);
        assert_eq!(lazy.stats().total_pivots, eager.stats().total_pivots);
    }

    #[test]
    fn precompute_skips_already_cached_entries() {
        let mut seq = EfficientSequences::new(fig2a());
        let _ = seq.h(2).unwrap();
        let _ = seq.g(4).unwrap();
        seq.precompute(Parallelism::Threads(2)).unwrap();
        assert_eq!(seq.stats().h_solves, 6);
        assert_eq!(seq.stats().g_solves, 6);
    }

    #[test]
    fn parallel_params_release_matches_serial_release_bit_for_bit() {
        let serial_params = MechanismParams::paper_node_privacy(1.0);
        let parallel_params = serial_params.with_parallelism(Parallelism::Threads(4));
        let mut serial_mech =
            RecursiveMechanism::new(EfficientSequences::new(fig2a()), serial_params).unwrap();
        let mut parallel_mech =
            RecursiveMechanism::new(EfficientSequences::new(fig2a()), parallel_params).unwrap();
        let a = serial_mech
            .release_many(5, &mut StdRng::seed_from_u64(42))
            .unwrap();
        let b = parallel_mech
            .release_many(5, &mut StdRng::seed_from_u64(42))
            .unwrap();
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.noisy_answer, rb.noisy_answer);
            assert_eq!(ra.delta, rb.delta);
            assert_eq!(ra.delta_hat, rb.delta_hat);
            assert_eq!(ra.x, rb.x);
            assert_eq!(ra.argmin_index, rb.argmin_index);
        }
    }

    #[test]
    fn general_and_efficient_agree_on_the_true_answer_and_h0() {
        let query = fig2a();
        let mut eff = EfficientSequences::new(query.clone());
        let mut gen = GeneralSequences::build(&query).unwrap();
        assert!((eff.h(5).unwrap() - gen.h(5).unwrap()).abs() < 1e-7);
        assert!((eff.h(0).unwrap() - gen.h(0).unwrap()).abs() < 1e-7);
    }
}
