//! Recursive sequences and bounding sequences.
//!
//! The mechanism driver only needs three things from an instantiation
//! (Defs. 17, 18):
//!
//! * the number of participants `|P|`,
//! * the recursive sequence entries `H_0 … H_{|P|}` with
//!   `H_{|P|} = q(M(P))`,
//! * a g-bounding sequence `G_0 … G_{|P|}` together with its factor `g`.
//!
//! [`MechanismSequences`] abstracts over the two instantiations (the general
//! subset-enumeration one and the efficient LP-based one). Entry computation
//! is allowed to be expensive, so implementations cache; the driver accesses
//! entries through `&mut self`.
//!
//! [`validate_recursive_monotonicity`] and [`validate_bounding_property`] are
//! test oracles for the defining inequalities; they are used by the unit and
//! property tests of both instantiations.

use crate::error::MechanismError;
use rmdp_runtime::Parallelism;

/// The interface the mechanism driver needs from an instantiation.
pub trait MechanismSequences {
    /// Number of participants `|P|`.
    fn num_participants(&self) -> usize;

    /// The recursive-sequence entry `H_i`, `0 ≤ i ≤ |P|`.
    fn h(&mut self, i: usize) -> Result<f64, MechanismError>;

    /// The bounding-sequence entry `G_i`, `0 ≤ i ≤ |P|`.
    fn g(&mut self, i: usize) -> Result<f64, MechanismError>;

    /// The factor `g` of the g-bounding property (1 for the general
    /// instantiation, 2 for the efficient one).
    fn bounding_factor(&self) -> f64;

    /// The true answer `H_{|P|}` (provided for reporting; by default computed
    /// through [`MechanismSequences::h`]).
    fn true_answer(&mut self) -> Result<f64, MechanismError> {
        let n = self.num_participants();
        self.h(n)
    }

    /// Computes (and caches) every entry the instantiation can serve, using
    /// up to `parallelism` worker threads. A performance hook, not a
    /// semantic one: afterwards [`MechanismSequences::h`] and
    /// [`MechanismSequences::g`] must return exactly the values they would
    /// have computed lazily. The default does nothing, which is correct for
    /// instantiations that are already eager (e.g. the general one).
    fn precompute(&mut self, parallelism: Parallelism) -> Result<(), MechanismError> {
        let _ = parallelism;
        Ok(())
    }
}

/// Checks `H_0 = 0` and the within-database consequences of recursive
/// monotonicity: `H` must be non-decreasing in `i` (test helper).
pub fn validate_monotone_start_at_zero<S: MechanismSequences>(
    seq: &mut S,
    extract: fn(&mut S, usize) -> Result<f64, MechanismError>,
) -> Result<(), String> {
    let n = seq.num_participants();
    let first = extract(seq, 0).map_err(|e| e.to_string())?;
    if first.abs() > 1e-7 {
        return Err(format!("entry 0 is {first}, expected 0"));
    }
    let mut prev = first;
    for i in 1..=n {
        let cur = extract(seq, i).map_err(|e| e.to_string())?;
        if cur + 1e-7 < prev {
            return Err(format!(
                "entry {i} = {cur} decreased below entry {} = {prev}",
                i - 1
            ));
        }
        prev = cur;
    }
    Ok(())
}

/// Checks the cross-database half of recursive monotonicity (Def. 17):
/// `H_i(P₂) ≤ H_i(P₁) ≤ H_{i+1}(P₂)` for a neighbouring pair where `P₂` has
/// one more participant than `P₁` (test helper; `smaller` must be the
/// ancestor).
pub fn validate_recursive_monotonicity<A, B>(smaller: &mut A, larger: &mut B) -> Result<(), String>
where
    A: MechanismSequences,
    B: MechanismSequences,
{
    let n1 = smaller.num_participants();
    let n2 = larger.num_participants();
    if n2 != n1 + 1 {
        return Err(format!("expected |P2| = |P1| + 1, got {n1} and {n2}"));
    }
    for i in 0..=n1 {
        let h1 = smaller.h(i).map_err(|e| e.to_string())?;
        let h2 = larger.h(i).map_err(|e| e.to_string())?;
        let h2_next = larger.h(i + 1).map_err(|e| e.to_string())?;
        if h2 > h1 + 1e-7 {
            return Err(format!("H_{i}(P2) = {h2} exceeds H_{i}(P1) = {h1}"));
        }
        if h1 > h2_next + 1e-7 {
            return Err(format!(
                "H_{i}(P1) = {h1} exceeds H_{}(P2) = {h2_next}",
                i + 1
            ));
        }
        let g1 = smaller.g(i).map_err(|e| e.to_string())?;
        let g2 = larger.g(i).map_err(|e| e.to_string())?;
        let g2_next = larger.g(i + 1).map_err(|e| e.to_string())?;
        if g2 > g1 + 1e-7 {
            return Err(format!("G_{i}(P2) = {g2} exceeds G_{i}(P1) = {g1}"));
        }
        if g1 > g2_next + 1e-7 {
            return Err(format!(
                "G_{i}(P1) = {g1} exceeds G_{}(P2) = {g2_next}",
                i + 1
            ));
        }
    }
    Ok(())
}

/// Checks the g-bounding property (Def. 18):
/// `H_j ≤ H_i + (|P| − i) · G_k` with `k = |P| − ⌊(|P| − j)/g⌋`, for all
/// `0 ≤ i ≤ j ≤ |P|` (test helper).
pub fn validate_bounding_property<S: MechanismSequences>(seq: &mut S) -> Result<(), String> {
    let n = seq.num_participants();
    let g = seq.bounding_factor();
    for j in 0..=n {
        let k = n - ((n - j) as f64 / g).floor() as usize;
        let hj = seq.h(j).map_err(|e| e.to_string())?;
        let gk = seq.g(k).map_err(|e| e.to_string())?;
        for i in 0..=j {
            let hi = seq.h(i).map_err(|e| e.to_string())?;
            let bound = hi + (n - i) as f64 * gk;
            if hj > bound + 1e-6 {
                return Err(format!(
                    "H_{j} = {hj} exceeds H_{i} + (|P|-{i})·G_{k} = {bound}"
                ));
            }
        }
    }
    Ok(())
}

/// Checks convexity of `H` over integer indices (Lemma 10), used to justify
/// the ternary-search argmin in the driver (test helper).
pub fn validate_convexity<S: MechanismSequences>(seq: &mut S) -> Result<(), String> {
    let n = seq.num_participants();
    for i in 0..n.saturating_sub(1) {
        let a = seq.h(i).map_err(|e| e.to_string())?;
        let b = seq.h(i + 1).map_err(|e| e.to_string())?;
        let c = seq.h(i + 2).map_err(|e| e.to_string())?;
        if (b - a) > (c - b) + 1e-6 {
            return Err(format!(
                "convexity violated at {i}: increments {} then {}",
                b - a,
                c - b
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy sequence pair for exercising the validators: H_i = i² (convex,
    /// monotone, 0 at 0), G_i = 2i + 1 ≥ max marginal of H up to |P|.
    struct Quadratic {
        n: usize,
    }

    impl MechanismSequences for Quadratic {
        fn num_participants(&self) -> usize {
            self.n
        }
        fn h(&mut self, i: usize) -> Result<f64, MechanismError> {
            Ok((i * i) as f64)
        }
        fn g(&mut self, i: usize) -> Result<f64, MechanismError> {
            // The largest marginal of H on a database with i participants is
            // H_i − H_{i−1} = 2i − 1; use 2i + 1 ≥ that, monotone, G_0 = 1.
            Ok((2 * i + 1) as f64)
        }
        fn bounding_factor(&self) -> f64 {
            1.0
        }
    }

    #[test]
    fn quadratic_sequence_passes_monotonicity_and_convexity() {
        let mut q = Quadratic { n: 8 };
        assert!(validate_monotone_start_at_zero(&mut q, |s, i| s.h(i)).is_ok());
        assert!(validate_convexity(&mut q).is_ok());
        assert_eq!(q.true_answer().unwrap(), 64.0);
    }

    #[test]
    fn bounding_property_holds_for_quadratic() {
        // H_j − H_i = j² − i² ≤ (n − i)(2n+1)? For j ≤ n this holds since
        // j² − i² = (j−i)(j+i) ≤ (n − i)·2n < (n − i)·G_n; the validator
        // uses G_k with k ≥ j which is even larger.
        let mut q = Quadratic { n: 8 };
        assert!(validate_bounding_property(&mut q).is_ok());
    }

    #[test]
    fn violations_are_detected() {
        struct Bad;
        impl MechanismSequences for Bad {
            fn num_participants(&self) -> usize {
                3
            }
            fn h(&mut self, i: usize) -> Result<f64, MechanismError> {
                // Not convex and not starting at zero.
                Ok(match i {
                    0 => 1.0,
                    1 => 5.0,
                    2 => 6.0,
                    _ => 7.0,
                })
            }
            fn g(&mut self, _i: usize) -> Result<f64, MechanismError> {
                Ok(0.0)
            }
            fn bounding_factor(&self) -> f64 {
                1.0
            }
        }
        let mut b = Bad;
        assert!(validate_monotone_start_at_zero(&mut b, |s, i| s.h(i)).is_err());
        assert!(validate_bounding_property(&mut b).is_err());
    }
}
