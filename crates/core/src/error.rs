//! Error type of the recursive mechanism.

use rmdp_lp::LpError;
use std::fmt;

/// Errors reported by the mechanism.
#[derive(Clone, Debug, PartialEq)]
pub enum MechanismError {
    /// An LP solved while computing `H_i` or `G_i` failed.
    Lp(LpError),
    /// The mechanism parameters are invalid (non-positive ε, β or θ).
    InvalidParams(String),
    /// The instantiation cannot handle the instance (e.g. the general
    /// instantiation was given too many participants to enumerate).
    UnsupportedInstance(String),
}

impl fmt::Display for MechanismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MechanismError::Lp(e) => write!(f, "linear program failed: {e}"),
            MechanismError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
            MechanismError::UnsupportedInstance(msg) => {
                write!(f, "unsupported instance: {msg}")
            }
        }
    }
}

impl std::error::Error for MechanismError {}

impl From<LpError> for MechanismError {
    fn from(e: LpError) -> Self {
        MechanismError::Lp(e)
    }
}
