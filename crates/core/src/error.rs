//! Error type of the recursive mechanism.

use rmdp_lp::LpError;
use std::fmt;

/// Which of the two sequence families an entry belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SequenceFamily {
    /// The recursive sequence `H` (paper Eq. 16).
    H,
    /// The bounding sequence `G` (paper Eq. 19).
    G,
}

impl fmt::Display for SequenceFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SequenceFamily::H => write!(f, "H"),
            SequenceFamily::G => write!(f, "G"),
        }
    }
}

/// Errors reported by the mechanism.
#[derive(Clone, Debug, PartialEq)]
pub enum MechanismError {
    /// An LP failed outside the sequence-entry pipeline.
    Lp(LpError),
    /// The LP behind one specific sequence entry failed — the error names
    /// the entry (`H_7`, `G_3`) so a failure inside a warm-started chain or
    /// a parallel precompute can be traced to the exact solve.
    SequenceLp {
        /// The family the failing entry belongs to.
        family: SequenceFamily,
        /// The entry index `i` of `H_i` / `G_i`.
        index: usize,
        /// The underlying solver error.
        source: LpError,
    },
    /// The mechanism parameters are invalid (non-positive ε, β or θ).
    InvalidParams(String),
    /// The instantiation cannot handle the instance (e.g. the general
    /// instantiation was given too many participants to enumerate).
    UnsupportedInstance(String),
}

impl MechanismError {
    /// Wraps an [`LpError`] with the sequence entry it occurred in.
    pub fn sequence_lp(family: SequenceFamily, index: usize, source: LpError) -> Self {
        MechanismError::SequenceLp {
            family,
            index,
            source,
        }
    }
}

impl fmt::Display for MechanismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MechanismError::Lp(e) => write!(f, "linear program failed: {e}"),
            MechanismError::SequenceLp {
                family,
                index,
                source,
            } => {
                write!(
                    f,
                    "sequence entry {family}_{index}: linear program failed: {source}"
                )
            }
            MechanismError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
            MechanismError::UnsupportedInstance(msg) => {
                write!(f, "unsupported instance: {msg}")
            }
        }
    }
}

impl std::error::Error for MechanismError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MechanismError::Lp(e) | MechanismError::SequenceLp { source: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<LpError> for MechanismError {
    fn from(e: LpError) -> Self {
        MechanismError::Lp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_errors_name_the_entry() {
        let e = MechanismError::sequence_lp(
            SequenceFamily::H,
            7,
            LpError::IterationLimit { limit: 100 },
        );
        let msg = e.to_string();
        assert!(msg.contains("H_7"), "{msg}");
        assert!(msg.contains("iteration limit"), "{msg}");
        let e = MechanismError::sequence_lp(SequenceFamily::G, 3, LpError::Infeasible);
        assert!(e.to_string().contains("G_3"), "{e}");
    }

    #[test]
    fn the_underlying_lp_error_is_exposed_as_the_source() {
        use std::error::Error;
        let e = MechanismError::sequence_lp(SequenceFamily::G, 2, LpError::Unbounded);
        assert!(e.source().is_some());
    }
}
