//! Subgraph counting under node or edge differential privacy.
//!
//! Subgraph counting is the paper's flagship instance of a linear statistic
//! over an unrestricted-join query: every occurrence of the query pattern
//! becomes one tuple of the sensitive K-relation, annotated with
//!
//! * the conjunction of its **node** participants (node privacy — the first
//!   mechanism to achieve this for arbitrary patterns), or
//! * the conjunction of its **edge** participants (edge privacy, the setting
//!   of the prior work it is compared against),
//!
//! exactly as in the paper's Fig. 2. The annotations are single conjunctions
//! (DNF clauses), so every φ-sensitivity is 1 and the mechanism's error is
//! roughly proportional to the *local empirical sensitivity* of the count.
//!
//! Optional occurrence constraints ("only triangles whose nodes all satisfy
//! X") are supported by filtering the matched occurrences before annotation —
//! the privacy argument is unchanged because the constraint only removes
//! tuples from the K-relation.

use crate::efficient::EfficientSequences;
use crate::error::MechanismError;
use crate::krelation_query::SensitiveKRelation;
use crate::mechanism::{RecursiveMechanism, Release};
use crate::params::MechanismParams;
use rand::Rng;
use rmdp_graph::subgraph::{enumerate_pattern, k_stars, k_triangles, triangles, Occurrence};
use rmdp_graph::{Graph, Pattern};
use rmdp_krelation::participant::ParticipantId;
use rmdp_krelation::{Expr, KRelation, Tuple};
use rmdp_observe::Stopwatch;
use std::time::Duration;

/// The unit of privacy protection: who counts as one participant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrivacyUnit {
    /// Each graph node is a participant; withdrawing removes the node's
    /// incident edges. The stronger notion.
    Node,
    /// Each edge is a participant; withdrawing removes that edge. The notion
    /// used by the prior local-sensitivity mechanisms.
    Edge,
}

/// A differentially private subgraph counter built on the efficient recursive
/// mechanism.
pub struct SubgraphCounter {
    pattern: Pattern,
    privacy: PrivacyUnit,
    params: MechanismParams,
    enumeration_limit: usize,
    constraint: Option<OccurrenceConstraint>,
}

/// A caller-supplied filter on enumerated occurrences.
type OccurrenceConstraint = Box<dyn Fn(&Occurrence) -> bool + Send + Sync>;

/// A subgraph query that has been matched against a concrete graph: the
/// mechanism is ready to produce any number of releases, reusing the cached
/// `H`/`G` entries.
pub struct PreparedSubgraphQuery {
    mechanism: RecursiveMechanism<EfficientSequences>,
    /// True number of (constraint-satisfying) occurrences.
    pub true_count: f64,
    /// Support size of the K-relation (equals `true_count` for unweighted
    /// counting).
    pub support_size: usize,
    /// Number of participants `|P|` (nodes or edges of the graph).
    pub num_participants: usize,
    /// Universal empirical sensitivity `ŨS_q(P, R)`.
    pub universal_sensitivity: f64,
    /// Wall-clock time spent matching the pattern and building the
    /// K-relation.
    pub build_time: Duration,
}

/// One differentially private subgraph-count release plus diagnostics.
#[derive(Clone, Copy, Debug)]
pub struct SubgraphAnswer {
    /// The released noisy count.
    pub noisy_count: f64,
    /// The true count (diagnostic — never publish).
    pub true_count: f64,
    /// The underlying mechanism release.
    pub release: Release,
    /// Number of participants (nodes or edges).
    pub num_participants: usize,
    /// Wall-clock time of this release (pattern matching excluded).
    pub release_time: Duration,
}

impl SubgraphCounter {
    /// A counter for `pattern` under the given privacy unit and parameters.
    pub fn new(pattern: Pattern, privacy: PrivacyUnit, params: MechanismParams) -> Self {
        SubgraphCounter {
            pattern,
            privacy,
            params,
            enumeration_limit: usize::MAX,
            constraint: None,
        }
    }

    /// Caps the number of enumerated occurrences (protective cap for very
    /// dense graphs; the default is unlimited).
    pub fn with_enumeration_limit(mut self, limit: usize) -> Self {
        self.enumeration_limit = limit;
        self
    }

    /// Restricts counting to occurrences satisfying a predicate (e.g.
    /// attribute constraints on the matched nodes or edges).
    pub fn with_constraint<F>(mut self, constraint: F) -> Self
    where
        F: Fn(&Occurrence) -> bool + Send + Sync + 'static,
    {
        self.constraint = Some(Box::new(constraint));
        self
    }

    /// The query pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The privacy unit.
    pub fn privacy(&self) -> PrivacyUnit {
        self.privacy
    }

    /// Enumerates the pattern occurrences, using the specialised fast
    /// enumerators for triangles, k-stars and k-triangles and the generic
    /// backtracking matcher otherwise.
    pub fn occurrences(&self, graph: &Graph) -> Vec<Occurrence> {
        let limit = self.enumeration_limit;
        let raw: Vec<Occurrence> = if self.pattern.edges() == Pattern::triangle().edges() {
            triangles(graph)
                .into_iter()
                .take(limit)
                .map(|[a, b, c]| Occurrence {
                    nodes: vec![a, b, c],
                    edges: vec![(a, b), (a, c), (b, c)],
                })
                .collect()
        } else if let Some(k) = star_arity(&self.pattern) {
            k_stars(graph, k, limit)
                .into_iter()
                .map(|(centre, leaves)| {
                    let mut nodes = vec![centre];
                    nodes.extend(&leaves);
                    nodes.sort_unstable();
                    let edges = leaves
                        .iter()
                        .map(|&l| (centre.min(l), centre.max(l)))
                        .collect();
                    Occurrence { nodes, edges }
                })
                .collect()
        } else if let Some(k) = k_triangle_arity(&self.pattern) {
            k_triangles(graph, k, limit)
                .into_iter()
                .map(|((u, v), apexes)| {
                    let mut nodes = vec![u, v];
                    nodes.extend(&apexes);
                    nodes.sort_unstable();
                    let mut edges = vec![(u.min(v), u.max(v))];
                    for &a in &apexes {
                        edges.push((u.min(a), u.max(a)));
                        edges.push((v.min(a), v.max(a)));
                    }
                    edges.sort_unstable();
                    Occurrence { nodes, edges }
                })
                .collect()
        } else {
            enumerate_pattern(graph, &self.pattern, limit)
        };
        match &self.constraint {
            Some(pred) => raw.into_iter().filter(|o| pred(o)).collect(),
            None => raw,
        }
    }

    /// Builds the sensitive K-relation of the matched occurrences: one tuple
    /// per occurrence, annotated per the privacy unit, unit weight.
    pub fn build_sensitive_relation(&self, graph: &Graph) -> SensitiveKRelation {
        let occurrences = self.occurrences(graph);
        let mut relation = KRelation::new(["occurrence"]);
        for (idx, occ) in occurrences.iter().enumerate() {
            let annotation = match self.privacy {
                PrivacyUnit::Node => {
                    Expr::conjunction_of_vars(occ.nodes.iter().map(|&n| ParticipantId(n)))
                }
                PrivacyUnit::Edge => Expr::conjunction_of_vars(occ.edges.iter().map(|&(u, v)| {
                    ParticipantId(
                        graph
                            .edge_id(u, v)
                            .expect("occurrence edge must exist in the graph")
                            as u32,
                    )
                })),
            };
            relation.insert(Tuple::new([("occurrence", idx as i64)]), annotation);
        }
        let participants: Vec<ParticipantId> = match self.privacy {
            PrivacyUnit::Node => (0..graph.num_nodes() as u32).map(ParticipantId).collect(),
            PrivacyUnit::Edge => (0..graph.num_edges() as u32).map(ParticipantId).collect(),
        };
        SensitiveKRelation::new(&relation, participants, |_| 1.0)
    }

    /// Matches the pattern and sets the mechanism up; the result can release
    /// any number of times.
    pub fn prepare(&self, graph: &Graph) -> Result<PreparedSubgraphQuery, MechanismError> {
        let watch = Stopwatch::start();
        let query = self.build_sensitive_relation(graph);
        let build_time = watch.elapsed();
        let true_count = query.true_answer();
        let support_size = query.support_size();
        let num_participants = query.num_participants();
        let universal_sensitivity = query.universal_sensitivity();
        let mechanism = RecursiveMechanism::new(EfficientSequences::new(query), self.params)?;
        Ok(PreparedSubgraphQuery {
            mechanism,
            true_count,
            support_size,
            num_participants,
            universal_sensitivity,
            build_time,
        })
    }

    /// Convenience: prepare and produce a single release.
    pub fn release<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        rng: &mut R,
    ) -> Result<SubgraphAnswer, MechanismError> {
        let mut prepared = self.prepare(graph)?;
        prepared.release(rng)
    }
}

impl PreparedSubgraphQuery {
    /// Produces one ε₁+ε₂ differentially private release.
    pub fn release<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> Result<SubgraphAnswer, MechanismError> {
        let watch = Stopwatch::start();
        let release = self.mechanism.release(rng)?;
        Ok(SubgraphAnswer {
            noisy_count: release.noisy_answer,
            true_count: self.true_count,
            release,
            num_participants: self.num_participants,
            release_time: watch.elapsed(),
        })
    }

    /// Produces many independent releases (the experiments use the median
    /// relative error over these).
    pub fn release_many<R: Rng + ?Sized>(
        &mut self,
        trials: usize,
        rng: &mut R,
    ) -> Result<Vec<SubgraphAnswer>, MechanismError> {
        (0..trials).map(|_| self.release(rng)).collect()
    }

    /// Access to the underlying mechanism (e.g. to read `Δ` in experiments).
    pub fn mechanism_mut(&mut self) -> &mut RecursiveMechanism<EfficientSequences> {
        &mut self.mechanism
    }
}

/// Detects whether the pattern is a k-star and returns `k`.
fn star_arity(pattern: &Pattern) -> Option<usize> {
    let n = pattern.num_nodes();
    if n < 3 || pattern.num_edges() != n - 1 {
        return None;
    }
    let centre_count = (0..n).filter(|&v| pattern.degree(v) == n - 1).count();
    let leaf_count = (0..n).filter(|&v| pattern.degree(v) == 1).count();
    (centre_count == 1 && leaf_count == n - 1).then_some(n - 1)
}

/// Detects whether the pattern is a k-triangle (k ≥ 2: `k` triangles sharing
/// one edge) and returns `k`.
fn k_triangle_arity(pattern: &Pattern) -> Option<usize> {
    let n = pattern.num_nodes();
    if n < 4 {
        return None;
    }
    let k = n - 2;
    if pattern.num_edges() != 2 * k + 1 {
        return None;
    }
    let hubs: Vec<usize> = (0..n)
        .filter(|&v| pattern.degree(v) == k + 1)
        .count()
        .eq(&2)
        .then(|| (0..n).filter(|&v| pattern.degree(v) == k + 1).collect())?;
    let apexes_ok = (0..n)
        .filter(|&v| !hubs.contains(&v))
        .all(|v| pattern.degree(v) == 2);
    let hub_edge = pattern
        .edges()
        .iter()
        .any(|&(a, b)| hubs.contains(&a) && hubs.contains(&b));
    (apexes_ok && hub_edge).then_some(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rmdp_graph::generators;

    /// The 6-node social network of the paper's Fig. 2 (a–e connected, f
    /// isolated).
    fn paper_graph() -> Graph {
        Graph::from_edges(6, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (2, 4), (3, 4)])
    }

    fn node_params() -> MechanismParams {
        MechanismParams::paper_node_privacy(0.5)
    }

    fn edge_params() -> MechanismParams {
        MechanismParams::paper_edge_privacy(0.5)
    }

    #[test]
    fn fig2a_node_privacy_krelation_matches_the_paper() {
        let counter = SubgraphCounter::new(Pattern::triangle(), PrivacyUnit::Node, node_params());
        let query = counter.build_sensitive_relation(&paper_graph());
        assert_eq!(query.support_size(), 3);
        assert_eq!(
            query.num_participants(),
            6,
            "all nodes, including isolated f"
        );
        assert_eq!(query.true_answer(), 3.0);
        // Every annotation is a 3-variable conjunction.
        for (e, _) in query.terms() {
            assert!(e.is_simple_conjunction());
            assert_eq!(e.len(), 3);
        }
        // Node c (id 2) is in every triangle.
        assert_eq!(query.universal_sensitivity_of(ParticipantId(2)), 3.0);
        assert_eq!(query.universal_sensitivity(), 3.0);
    }

    #[test]
    fn fig2a_edge_privacy_krelation_uses_edge_participants() {
        let g = paper_graph();
        let counter = SubgraphCounter::new(Pattern::triangle(), PrivacyUnit::Edge, edge_params());
        let query = counter.build_sensitive_relation(&g);
        assert_eq!(query.support_size(), 3);
        assert_eq!(query.num_participants(), 7, "one participant per edge");
        // Edge bc (between nodes 1 and 2) is in triangles abc and bcd.
        let bc = ParticipantId(g.edge_id(1, 2).unwrap() as u32);
        assert_eq!(query.universal_sensitivity_of(bc), 2.0);
    }

    #[test]
    fn node_and_edge_privacy_release_reasonable_counts() {
        let g = paper_graph();
        let mut rng = StdRng::seed_from_u64(17);
        for (privacy, params) in [
            (PrivacyUnit::Node, node_params()),
            (PrivacyUnit::Edge, edge_params()),
        ] {
            let counter = SubgraphCounter::new(Pattern::triangle(), privacy, params);
            let answer = counter.release(&g, &mut rng).unwrap();
            assert_eq!(answer.true_count, 3.0);
            assert!(answer.noisy_count.is_finite());
            assert!(answer.release.x <= 3.0 + 1e-7);
        }
    }

    #[test]
    fn star_and_k_triangle_arity_detection() {
        assert_eq!(star_arity(&Pattern::k_star(2)), Some(2));
        assert_eq!(star_arity(&Pattern::k_star(5)), Some(5));
        assert_eq!(star_arity(&Pattern::triangle()), None);
        assert_eq!(star_arity(&Pattern::path(3)), None);
        assert_eq!(k_triangle_arity(&Pattern::k_triangle(2)), Some(2));
        assert_eq!(k_triangle_arity(&Pattern::k_triangle(3)), Some(3));
        assert_eq!(k_triangle_arity(&Pattern::triangle()), None);
        assert_eq!(k_triangle_arity(&Pattern::clique(4)), None);
    }

    #[test]
    fn fast_paths_agree_with_generic_enumeration() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = generators::gnp_average_degree(25, 6.0, &mut rng);
        for pattern in [
            Pattern::triangle(),
            Pattern::k_star(2),
            Pattern::k_triangle(2),
        ] {
            let counter = SubgraphCounter::new(pattern.clone(), PrivacyUnit::Node, node_params());
            let fast = counter.occurrences(&g).len();
            let generic = enumerate_pattern(&g, &pattern, usize::MAX).len();
            assert_eq!(fast, generic, "pattern {pattern}");
        }
    }

    #[test]
    fn constraints_filter_occurrences() {
        let g = paper_graph();
        // Count only triangles containing node 4 (= e): exactly one (cde).
        let counter = SubgraphCounter::new(Pattern::triangle(), PrivacyUnit::Node, node_params())
            .with_constraint(|occ: &Occurrence| occ.nodes.contains(&4));
        let query = counter.build_sensitive_relation(&g);
        assert_eq!(query.true_answer(), 1.0);
    }

    #[test]
    fn enumeration_limit_caps_the_relation() {
        let g = paper_graph();
        let counter = SubgraphCounter::new(Pattern::triangle(), PrivacyUnit::Node, node_params())
            .with_enumeration_limit(2);
        assert_eq!(counter.build_sensitive_relation(&g).support_size(), 2);
    }

    #[test]
    fn two_star_counting_end_to_end_on_a_small_random_graph() {
        let mut rng = StdRng::seed_from_u64(29);
        let g = generators::gnp_average_degree(20, 4.0, &mut rng);
        let true_count = rmdp_graph::subgraph::k_star_count(&g, 2) as f64;
        let counter = SubgraphCounter::new(Pattern::k_star(2), PrivacyUnit::Edge, edge_params());
        let mut prepared = counter.prepare(&g).unwrap();
        assert_eq!(prepared.true_count, true_count);
        let answers = prepared.release_many(5, &mut rng).unwrap();
        for a in &answers {
            assert!(a.noisy_count.is_finite());
            assert!(a.release.x <= true_count + 1e-6);
        }
    }

    #[test]
    fn repeated_releases_reuse_cached_lp_entries() {
        let g = paper_graph();
        let counter = SubgraphCounter::new(Pattern::triangle(), PrivacyUnit::Node, node_params());
        let mut prepared = counter.prepare(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let _ = prepared.release_many(10, &mut rng).unwrap();
        let stats = prepared.mechanism_mut().sequences_mut().stats();
        // With |P| = 6 there are at most 7 distinct H entries and 7 distinct
        // G entries; 10 releases must not have solved more LPs than that.
        assert!(stats.h_solves <= 7, "h_solves = {}", stats.h_solves);
        assert!(stats.g_solves <= 7, "g_solves = {}", stats.g_solves);
    }
}
