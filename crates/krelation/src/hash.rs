//! A small, fast, non-cryptographic hasher (FxHash-style) used throughout the
//! workspace for integer-keyed maps.
//!
//! The default `SipHash` hasher in the standard library is DoS-resistant but
//! slow for the small integer keys (participant ids, tuple indices) that
//! dominate this workload. This is the classic Fx multiply-xor hash used by
//! rustc, implemented locally so the workspace stays within its approved
//! dependency set.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher suitable for small keys.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the fast Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the fast Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        m.insert(1, "c");
        assert_eq!(m.len(), 2);
        assert_eq!(m[&1], "c");
    }

    #[test]
    fn set_deduplicates() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000u64 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn hash_differs_for_different_inputs() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(42);
        b.write_u64(43);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn byte_stream_hashing_covers_remainder() {
        let mut a = FxHasher::default();
        a.write(b"hello world, this is longer than eight bytes");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is longer than eight bytez");
        assert_ne!(a.finish(), b.finish());
    }
}
