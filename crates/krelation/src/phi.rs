//! The relaxation `φ` of positive Boolean expressions and its sensitivities.
//!
//! Sec. 5.2 of the paper defines, for every expression `k`, a function
//! `φ_k : [0,1]^P → [0,1]`:
//!
//! * `φ_False(f) = 0`, `φ_True(f) = 1`,
//! * `φ_p(f) = f(p)`,
//! * `φ_{x∧y}(f) = max(0, φ_x(f) + φ_y(f) − 1)`  (Łukasiewicz t-norm),
//! * `φ_{x∨y}(f) = max(φ_x(f), φ_y(f))`.
//!
//! `φ` is correct on Boolean inputs, natural, monotone, convex and satisfies
//! truncated linearity (Theorem 5). For an n-ary conjunction the associative
//! law gives the closed form `φ_{∧(x_1..x_n)}(f) = max(0, Σφ_{x_i}(f) − (n−1))`
//! and for an n-ary disjunction `φ_{∨(x_1..x_n)}(f) = max_i φ_{x_i}(f)`; both
//! are used directly here and by the LP encoding.
//!
//! The φ-sensitivity `S_{k,p}` bounds the partial derivative of `φ_k` with
//! respect to `f(p)` (Eq. 17) and is computed recursively:
//! `S_{True,p} = S_{False,p} = 0`, `S_{p,p} = 1`,
//! `S_{x∧y,p} = S_{x,p} + S_{y,p}`, `S_{x∨y,p} = max(S_{x,p}, S_{y,p})`.

use crate::expr::Expr;
use crate::hash::FxHashMap;
use crate::participant::ParticipantId;

/// A real assignment `f : P → [0,1]`.
///
/// Implemented for dense vectors/slices indexed by participant id and for
/// hash maps (missing entries read as `0`, i.e. the participant has opted
/// out).
pub trait RealAssignment {
    /// The value `f(p) ∈ [0,1]`.
    fn value(&self, p: ParticipantId) -> f64;
}

impl RealAssignment for [f64] {
    #[inline]
    fn value(&self, p: ParticipantId) -> f64 {
        self.get(p.index()).copied().unwrap_or(0.0)
    }
}

impl RealAssignment for Vec<f64> {
    #[inline]
    fn value(&self, p: ParticipantId) -> f64 {
        self.as_slice().value(p)
    }
}

impl RealAssignment for FxHashMap<ParticipantId, f64> {
    #[inline]
    fn value(&self, p: ParticipantId) -> f64 {
        self.get(&p).copied().unwrap_or(0.0)
    }
}

impl<T: RealAssignment + ?Sized> RealAssignment for &T {
    #[inline]
    fn value(&self, p: ParticipantId) -> f64 {
        (**self).value(p)
    }
}

/// A closure-based assignment, convenient in tests.
pub struct FnAssignment<F>(pub F);

impl<F: Fn(ParticipantId) -> f64> RealAssignment for FnAssignment<F> {
    #[inline]
    fn value(&self, p: ParticipantId) -> f64 {
        (self.0)(p)
    }
}

/// Evaluates the relaxation `φ_k(f)`.
///
/// The result always lies in `[0, 1]` when every `f(p)` does.
///
/// ```
/// use rmdp_krelation::expr::Expr;
/// use rmdp_krelation::participant::ParticipantId;
/// use rmdp_krelation::phi::phi;
///
/// let a = ParticipantId(0);
/// let b = ParticipantId(1);
/// let k = Expr::and2(Expr::Var(a), Expr::Var(b));
/// assert_eq!(phi(&k, &vec![0.9, 0.8]), 0.7000000000000002);
/// assert_eq!(phi(&k, &vec![0.3, 0.4]), 0.0);
/// ```
pub fn phi<A: RealAssignment + ?Sized>(expr: &Expr, f: &A) -> f64 {
    match expr {
        Expr::False => 0.0,
        Expr::True => 1.0,
        Expr::Var(p) => f.value(*p).clamp(0.0, 1.0),
        Expr::And(children) => {
            let sum: f64 = children.iter().map(|c| phi(c, f)).sum();
            (sum - (children.len() as f64 - 1.0)).max(0.0)
        }
        Expr::Or(children) => children.iter().map(|c| phi(c, f)).fold(0.0_f64, f64::max),
    }
}

/// Evaluates `φ*_k(f) = 1 − φ_k(1 − ψ∘f)` with `ψ(x) = min(1, x)`, the dual
/// used in the truncated-linearity property (Sec. 5.1).
pub fn phi_star<A: RealAssignment + ?Sized>(expr: &Expr, f: &A) -> f64 {
    let complement = FnAssignment(|p: ParticipantId| 1.0 - f.value(p).min(1.0));
    1.0 - phi(expr, &complement)
}

/// The φ-sensitivity `S_{k,p}` of expression `k` for participant `p`.
///
/// `S_{k,p}` upper-bounds the change of `φ_k(f)` per unit change of `f(p)`
/// (Eq. 17). It is `0` when `p` does not occur in `k`.
pub fn phi_sensitivity(expr: &Expr, p: ParticipantId) -> f64 {
    match expr {
        Expr::False | Expr::True => 0.0,
        Expr::Var(q) => {
            if *q == p {
                1.0
            } else {
                0.0
            }
        }
        Expr::And(children) => children.iter().map(|c| phi_sensitivity(c, p)).sum(),
        Expr::Or(children) => children
            .iter()
            .map(|c| phi_sensitivity(c, p))
            .fold(0.0_f64, f64::max),
    }
}

/// All non-zero φ-sensitivities of an expression in one pass.
///
/// Equivalent to calling [`phi_sensitivity`] for every variable of the
/// expression but traverses the tree only once.
pub fn phi_sensitivities(expr: &Expr) -> FxHashMap<ParticipantId, f64> {
    fn go(expr: &Expr, out: &mut FxHashMap<ParticipantId, f64>) {
        match expr {
            Expr::False | Expr::True => {}
            Expr::Var(p) => {
                *out.entry(*p).or_insert(0.0) += 1.0;
            }
            Expr::And(children) => {
                // Sensitivities of a conjunction add up across children.
                for c in children {
                    go(c, out);
                }
            }
            Expr::Or(children) => {
                // Sensitivities of a disjunction take the max across children.
                let mut acc: FxHashMap<ParticipantId, f64> = FxHashMap::default();
                for c in children {
                    let mut child_map = FxHashMap::default();
                    go(c, &mut child_map);
                    for (p, s) in child_map {
                        let entry = acc.entry(p).or_insert(0.0);
                        if s > *entry {
                            *entry = s;
                        }
                    }
                }
                for (p, s) in acc {
                    *out.entry(p).or_insert(0.0) += s;
                }
            }
        }
    }
    // The accumulation above is additive, which matches the And rule; the Or
    // rule is handled by combining complete child maps with max before adding
    // into the parent accumulator. Starting from an empty map at the root
    // yields exactly the recursive definition.
    let mut out = FxHashMap::default();
    go(expr, &mut out);
    out
}

/// The maximum φ-sensitivity of an expression over all participants
/// (the quantity `S` in the error discussion of Sec. 5.2).
pub fn max_phi_sensitivity(expr: &Expr) -> f64 {
    phi_sensitivities(expr)
        .values()
        .fold(0.0_f64, |a, &b| a.max(b))
}

/// Evaluates `φ` for a whole family of weighted expressions:
/// `Σ_t q(t) · φ_{R(t)}(f)`, the objective of Eq. 16.
pub fn weighted_phi_sum<'a, A, I>(terms: I, f: &A) -> f64
where
    A: RealAssignment + ?Sized,
    I: IntoIterator<Item = (&'a Expr, f64)>,
{
    terms.into_iter().map(|(e, q)| q * phi(e, f)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn constants_and_variables() {
        let f = vec![0.25, 0.75];
        assert_close(phi(&Expr::False, &f), 0.0);
        assert_close(phi(&Expr::True, &f), 1.0);
        assert_close(phi(&Expr::var(p(0)), &f), 0.25);
        assert_close(phi(&Expr::var(p(1)), &f), 0.75);
    }

    #[test]
    fn and_is_lukasiewicz() {
        let k = Expr::and2(Expr::var(p(0)), Expr::var(p(1)));
        assert_close(phi(&k, &vec![1.0, 1.0]), 1.0);
        assert_close(phi(&k, &vec![0.6, 0.6]), 0.2);
        assert_close(phi(&k, &vec![0.4, 0.4]), 0.0);
    }

    #[test]
    fn or_is_max() {
        let k = Expr::or2(Expr::var(p(0)), Expr::var(p(1)));
        assert_close(phi(&k, &vec![0.3, 0.8]), 0.8);
        assert_close(phi(&k, &vec![0.0, 0.0]), 0.0);
    }

    #[test]
    fn nary_and_matches_binary_chain() {
        // Flattened n-ary And must equal the binary chain (associativity is
        // φ-invariant).
        let nary = Expr::And(vec![Expr::var(p(0)), Expr::var(p(1)), Expr::var(p(2))]);
        let chain = Expr::And(vec![
            Expr::var(p(0)),
            Expr::And(vec![Expr::var(p(1)), Expr::var(p(2))]),
        ]);
        for f in [
            vec![1.0, 1.0, 1.0],
            vec![0.9, 0.9, 0.9],
            vec![0.9, 0.5, 0.9],
            vec![0.2, 0.9, 0.9],
        ] {
            assert_close(phi(&nary, &f), phi(&chain, &f));
        }
    }

    #[test]
    fn correctness_on_boolean_inputs() {
        // φ_k(f) = k(f) for Boolean f (Theorem 5, correctness).
        let exprs = [
            Expr::and2(Expr::var(p(0)), Expr::var(p(1))),
            Expr::or2(
                Expr::var(p(0)),
                Expr::and2(Expr::var(p(1)), Expr::var(p(2))),
            ),
            Expr::and2(
                Expr::or2(Expr::var(p(0)), Expr::var(p(1))),
                Expr::or2(Expr::var(p(0)), Expr::var(p(2))),
            ),
        ];
        for e in &exprs {
            for bits in 0..8u32 {
                let f: Vec<f64> = (0..3).map(|i| f64::from((bits >> i) & 1)).collect();
                let truth = |q: ParticipantId| (bits >> q.0) & 1 == 1;
                assert_close(phi(e, &f), if e.evaluate(&truth) { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn phi_sensitivity_paper_examples() {
        // Figure 3 of the paper.
        let a = p(0);
        let b = p(1);
        let c = p(2);
        let d = p(3);

        // a ∧ b ∧ c : all sensitivities 1.
        let k1 = Expr::conjunction_of_vars([a, b, c]);
        for q in [a, b, c] {
            assert_close(phi_sensitivity(&k1, q), 1.0);
        }

        // (a ∨ b) ∧ (a ∨ c) ∧ (b ∨ d) : S_a = S_b = 2, S_c = S_d = 1.
        let k2 = Expr::and(vec![
            Expr::or2(Expr::var(a), Expr::var(b)),
            Expr::or2(Expr::var(a), Expr::var(c)),
            Expr::or2(Expr::var(b), Expr::var(d)),
        ]);
        assert_close(phi_sensitivity(&k2, a), 2.0);
        assert_close(phi_sensitivity(&k2, b), 2.0);
        assert_close(phi_sensitivity(&k2, c), 1.0);
        assert_close(phi_sensitivity(&k2, d), 1.0);

        // (a ∧ b) ∨ (a ∧ c) ∨ (b ∧ d) : all sensitivities 1 (DNF ⇒ S ≤ 1).
        let k3 = Expr::or(vec![
            Expr::and2(Expr::var(a), Expr::var(b)),
            Expr::and2(Expr::var(a), Expr::var(c)),
            Expr::and2(Expr::var(b), Expr::var(d)),
        ]);
        for q in [a, b, c, d] {
            assert_close(phi_sensitivity(&k3, q), 1.0);
        }
    }

    #[test]
    fn phi_sensitivities_map_matches_single_queries() {
        let k = Expr::and(vec![
            Expr::or2(Expr::var(p(0)), Expr::var(p(1))),
            Expr::or2(Expr::var(p(0)), Expr::var(p(2))),
            Expr::var(p(3)),
        ]);
        let all = phi_sensitivities(&k);
        for q in k.variables() {
            assert_close(all[&q], phi_sensitivity(&k, q));
        }
        assert_close(max_phi_sensitivity(&k), 2.0);
    }

    #[test]
    fn sensitivity_bounds_hold() {
        // S_{k,p} never exceeds the number of occurrences of p (property 1,
        // Sec. 5.2).
        let k = Expr::and(vec![
            Expr::or2(Expr::var(p(0)), Expr::var(p(1))),
            Expr::var(p(0)),
            Expr::or2(Expr::var(p(0)), Expr::var(p(2))),
        ]);
        assert!(phi_sensitivity(&k, p(0)) <= 3.0);
        assert_close(phi_sensitivity(&k, p(0)), 3.0);
    }

    #[test]
    fn sensitivity_is_zero_for_absent_variables() {
        let k = Expr::conjunction_of_vars([p(0), p(1)]);
        assert_close(phi_sensitivity(&k, p(9)), 0.0);
        assert!(!phi_sensitivities(&k).contains_key(&p(9)));
    }

    #[test]
    fn monotonicity_sampled() {
        // f ≤ g pointwise implies φ(f) ≤ φ(g) (Theorem 5, monotonicity).
        let k = Expr::or(vec![
            Expr::and2(Expr::var(p(0)), Expr::var(p(1))),
            Expr::and2(Expr::var(p(1)), Expr::var(p(2))),
        ]);
        let grid: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];
        for &a in &grid {
            for &b in &grid {
                for &c in &grid {
                    let f = vec![a, b, c];
                    let g = vec![(a + 0.2).min(1.0), (b + 0.2).min(1.0), (c + 0.2).min(1.0)];
                    assert!(phi(&k, &f) <= phi(&k, &g) + 1e-12);
                }
            }
        }
    }

    #[test]
    fn convexity_sampled() {
        // φ(λf + (1-λ)g) ≤ λφ(f) + (1-λ)φ(g) (Theorem 5, convexity).
        let k = Expr::and2(
            Expr::or2(Expr::var(p(0)), Expr::var(p(1))),
            Expr::or2(Expr::var(p(1)), Expr::var(p(2))),
        );
        let points = [
            vec![0.1, 0.9, 0.3],
            vec![0.7, 0.2, 0.8],
            vec![1.0, 0.0, 0.5],
            vec![0.4, 0.4, 0.4],
        ];
        for f in &points {
            for g in &points {
                for lambda in [0.25, 0.5, 0.75] {
                    let mix: Vec<f64> = f
                        .iter()
                        .zip(g)
                        .map(|(&x, &y)| lambda * x + (1.0 - lambda) * y)
                        .collect();
                    assert!(
                        phi(&k, &mix) <= lambda * phi(&k, f) + (1.0 - lambda) * phi(&k, g) + 1e-12
                    );
                }
            }
        }
    }

    #[test]
    fn naturalness_sampled() {
        // f(p) = 0 ⇒ φ_k(f) = φ_{k|p→False}(f); f(p) = 1 ⇒ φ_k(f) = φ_{k|p→True}(f).
        let k = Expr::and2(
            Expr::or2(Expr::var(p(0)), Expr::var(p(1))),
            Expr::or2(Expr::var(p(0)), Expr::var(p(2))),
        );
        let mut f = vec![0.0, 0.6, 0.7];
        assert_close(phi(&k, &f), phi(&k.restrict(p(0), false), &f));
        f[0] = 1.0;
        assert_close(phi(&k, &f), phi(&k.restrict(p(0), true), &f));
    }

    #[test]
    fn truncated_linearity_sampled() {
        // φ*_k(c·f) = min(1, c·φ*_k(f)) for c ≥ 1 (Theorem 5).
        let k = Expr::or(vec![
            Expr::and2(Expr::var(p(0)), Expr::var(p(1))),
            Expr::var(p(2)),
        ]);
        let f = vec![0.2, 0.3, 0.1];
        for c in [1.0, 1.5, 2.0, 4.0] {
            let scaled: Vec<f64> = f.iter().map(|&x| c * x).collect();
            let lhs = phi_star(&k, &scaled);
            let rhs = (c * phi_star(&k, &f)).min(1.0);
            assert_close(lhs, rhs);
        }
    }

    #[test]
    fn weighted_sum_matches_manual_computation() {
        let e1 = Expr::conjunction_of_vars([p(0), p(1)]);
        let e2 = Expr::var(p(2));
        let f = vec![0.9, 0.8, 0.5];
        let total = weighted_phi_sum([(&e1, 2.0), (&e2, 3.0)], &f);
        assert_close(total, 2.0 * 0.7000000000000002 + 3.0 * 0.5);
    }
}
