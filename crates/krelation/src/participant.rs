//! Participants: the unit of privacy protection.
//!
//! In the sensitive-database model of the paper (Def. 5) a database is a pair
//! `(P, M)` where `P` is a finite set of participants. Each participant gets a
//! compact numeric [`ParticipantId`]; the [`ParticipantUniverse`] maps between
//! human-readable labels (graph nodes, edges, table keys, …) and ids and fixes
//! the dimension of the real assignments `f : P → [0,1]` used by the
//! relaxation `φ`.

use crate::hash::FxHashMap;
use std::fmt;

/// A compact identifier for a participant (a node, an edge, a person, …).
///
/// Ids are dense indices `0..universe.len()` so assignments over participants
/// can be stored in plain vectors.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ParticipantId(pub u32);

impl ParticipantId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ParticipantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ParticipantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ParticipantId {
    fn from(v: u32) -> Self {
        ParticipantId(v)
    }
}

/// A registry of participants: maps labels to dense [`ParticipantId`]s.
///
/// ```
/// use rmdp_krelation::participant::ParticipantUniverse;
///
/// let mut universe = ParticipantUniverse::new();
/// let alice = universe.intern("alice");
/// let bob = universe.intern("bob");
/// assert_ne!(alice, bob);
/// assert_eq!(universe.intern("alice"), alice);
/// assert_eq!(universe.len(), 2);
/// assert_eq!(universe.label(alice), Some("alice"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct ParticipantUniverse {
    labels: Vec<String>,
    by_label: FxHashMap<String, ParticipantId>,
}

impl ParticipantUniverse {
    /// An empty universe.
    pub fn new() -> Self {
        Self::default()
    }

    /// A universe of `n` anonymous participants labelled `"0"..."n-1"`.
    pub fn with_size(n: usize) -> Self {
        let mut u = Self::new();
        for i in 0..n {
            u.intern(&i.to_string());
        }
        u
    }

    /// Returns the id for `label`, registering it if it is new.
    pub fn intern(&mut self, label: &str) -> ParticipantId {
        if let Some(&id) = self.by_label.get(label) {
            return id;
        }
        let id = ParticipantId(self.labels.len() as u32);
        self.labels.push(label.to_owned());
        self.by_label.insert(label.to_owned(), id);
        id
    }

    /// Looks a label up without registering it.
    pub fn get(&self, label: &str) -> Option<ParticipantId> {
        self.by_label.get(label).copied()
    }

    /// The label of an id, if the id belongs to this universe.
    pub fn label(&self, id: ParticipantId) -> Option<&str> {
        self.labels.get(id.index()).map(String::as_str)
    }

    /// Number of registered participants.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether no participant has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterates over all ids in increasing order.
    pub fn ids(&self) -> impl Iterator<Item = ParticipantId> + '_ {
        (0..self.labels.len() as u32).map(ParticipantId)
    }

    /// Iterates over `(id, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParticipantId, &str)> + '_ {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, l)| (ParticipantId(i as u32), l.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut u = ParticipantUniverse::new();
        let a = u.intern("a");
        let a2 = u.intern("a");
        assert_eq!(a, a2);
        assert_eq!(u.len(), 1);
    }

    #[test]
    fn ids_are_dense() {
        let mut u = ParticipantUniverse::new();
        for i in 0..100 {
            let id = u.intern(&format!("node-{i}"));
            assert_eq!(id.index(), i);
        }
        assert_eq!(u.ids().count(), 100);
    }

    #[test]
    fn with_size_creates_anonymous_participants() {
        let u = ParticipantUniverse::with_size(5);
        assert_eq!(u.len(), 5);
        assert_eq!(u.get("3"), Some(ParticipantId(3)));
        assert_eq!(u.label(ParticipantId(4)), Some("4"));
        assert_eq!(u.label(ParticipantId(5)), None);
    }

    #[test]
    fn lookup_of_unknown_label_is_none() {
        let u = ParticipantUniverse::with_size(2);
        assert_eq!(u.get("zzz"), None);
    }

    #[test]
    fn display_and_debug() {
        let p = ParticipantId(7);
        assert_eq!(format!("{p}"), "p7");
        assert_eq!(format!("{p:?}"), "p7");
    }
}
