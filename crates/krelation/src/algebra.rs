//! Positive relational algebra over K-relations.
//!
//! The operations follow Green, Karvounarakis and Tannen's provenance
//! semirings (paper Sec. 2.4), specialised to the semiring of positive
//! Boolean expressions where `+` is `∨` and `·` is `∧`:
//!
//! * union: `(R₁ ∪ R₂)(t) = R₁(t) ∨ R₂(t)`
//! * projection: `(π_V R)(t) = ∨ { R(t') | t' agrees with t on V }`
//! * selection: `(σ_P R)(t) = R(t) ∧ P(t)` with `P(t) ∈ {⊥, ⊤}`
//! * natural join: `(R₁ ⋈ R₂)(t) = R₁(t|U₁) ∧ R₂(t|U₂)`
//! * renaming: `(ρ_β R)(t) = R(t ∘ β)`
//!
//! Cartesian product and intersection are the disjoint-schema and
//! equal-schema special cases of the natural join. Difference is *not*
//! provided: it is not part of positive relational algebra and would break
//! the monotonicity the mechanism relies on.
//!
//! These operators are the reason the mechanism supports **unrestricted
//! joins**: a join multiplies annotations, so a single participant's variable
//! can end up in arbitrarily many output annotations — the empirical
//! sensitivity machinery of the mechanism absorbs exactly this.

use crate::expr::Expr;
use crate::relation::KRelation;
use crate::tuple::{Attr, Tuple};
use std::collections::BTreeSet;

/// Union of two K-relations (annotations combined with `∨`).
pub fn union(r1: &KRelation, r2: &KRelation) -> KRelation {
    let mut schema: BTreeSet<Attr> = r1.schema().clone();
    schema.extend(r2.schema().iter().cloned());
    let mut out = KRelation::new(schema);
    for (t, e) in r1.iter().chain(r2.iter()) {
        out.insert(t.clone(), e.clone());
    }
    out
}

/// Projection of a K-relation onto attribute set `attrs` (annotations of
/// tuples with the same image are combined with `∨`).
pub fn project<'a, I>(r: &KRelation, attrs: I) -> KRelation
where
    I: IntoIterator<Item = &'a Attr>,
{
    let keep: BTreeSet<Attr> = attrs.into_iter().cloned().collect();
    let mut out = KRelation::new(keep.iter().cloned());
    for (t, e) in r.iter() {
        out.insert(t.project(keep.iter()), e.clone());
    }
    out
}

/// Selection by a tuple predicate (annotation kept iff the predicate holds).
pub fn select<F>(r: &KRelation, predicate: F) -> KRelation
where
    F: Fn(&Tuple) -> bool,
{
    let mut out = KRelation::new(r.schema().iter().cloned());
    for (t, e) in r.iter() {
        if predicate(t) {
            out.insert(t.clone(), e.clone());
        }
    }
    out
}

/// Natural join of two K-relations (annotations combined with `∧`).
///
/// Tuples join when they agree on all shared attributes. A hash join on the
/// shared attributes keeps the cost close to the output size.
pub fn natural_join(r1: &KRelation, r2: &KRelation) -> KRelation {
    use crate::hash::FxHashMap;

    let shared: Vec<Attr> = r1.schema().intersection(r2.schema()).cloned().collect();

    let mut schema: BTreeSet<Attr> = r1.schema().clone();
    schema.extend(r2.schema().iter().cloned());
    let mut out = KRelation::new(schema);

    // Build side: index r2 by its key on the shared attributes.
    let mut index: FxHashMap<Tuple, Vec<(&Tuple, &Expr)>> = FxHashMap::default();
    for (t, e) in r2.iter() {
        index
            .entry(t.project(shared.iter()))
            .or_default()
            .push((t, e));
    }

    for (t1, e1) in r1.iter() {
        let key = t1.project(shared.iter());
        if let Some(matches) = index.get(&key) {
            for (t2, e2) in matches {
                if let Some(joined) = t1.join(t2) {
                    out.insert(joined, Expr::and2(e1.clone(), (*e2).clone()));
                }
            }
        }
    }
    out
}

/// Cartesian product (natural join of relations with disjoint schemas).
pub fn product(r1: &KRelation, r2: &KRelation) -> KRelation {
    natural_join(r1, r2)
}

/// Intersection (natural join of relations with identical schemas).
pub fn intersect(r1: &KRelation, r2: &KRelation) -> KRelation {
    natural_join(r1, r2)
}

/// Equi-join on explicit attribute pairs (annotations combined with `∧`).
///
/// `on` lists `(left, right)` attribute pairs; a tuple of `r1` joins a tuple
/// of `r2` when `t1[left] = t2[right]` for every pair. Unlike
/// [`natural_join`] the joined attributes keep their distinct names, so
/// callers (e.g. a SQL planner joining `v1.person = r1.person` over aliased
/// scans) do not have to rename both sides into a shared name first. Shared
/// attribute names outside `on` must still agree for tuples to merge.
pub fn equi_join_on(r1: &KRelation, r2: &KRelation, on: &[(Attr, Attr)]) -> KRelation {
    theta_join(r1, r2, on, |_| true)
}

/// Theta-join: an [`equi_join_on`] hash join followed by an arbitrary
/// residual predicate over the merged tuple (annotation kept iff the
/// predicate holds — the `σ_P(R₁ ⋈ R₂)` composition done in one pass).
///
/// Tuples lacking one of the `on` attributes never join. With `on` empty this
/// degenerates to a filtered Cartesian product over distinct schemas.
pub fn theta_join<F>(r1: &KRelation, r2: &KRelation, on: &[(Attr, Attr)], residual: F) -> KRelation
where
    F: Fn(&Tuple) -> bool,
{
    use crate::hash::FxHashMap;
    use crate::tuple::Value;

    let mut schema: BTreeSet<Attr> = r1.schema().clone();
    schema.extend(r2.schema().iter().cloned());
    let mut out = KRelation::new(schema);

    // Build side: index r2 by its values on the right-hand join attributes.
    let mut index: FxHashMap<Vec<Value>, Vec<(&Tuple, &Expr)>> = FxHashMap::default();
    for (t, e) in r2.iter() {
        let key: Option<Vec<Value>> = on.iter().map(|(_, b)| t.get(b).cloned()).collect();
        if let Some(key) = key {
            index.entry(key).or_default().push((t, e));
        }
    }

    for (t1, e1) in r1.iter() {
        let key: Option<Vec<Value>> = on.iter().map(|(a, _)| t1.get(a).cloned()).collect();
        let Some(key) = key else { continue };
        if let Some(matches) = index.get(&key) {
            for (t2, e2) in matches {
                if let Some(joined) = t1.join(t2) {
                    if residual(&joined) {
                        out.insert(joined, Expr::and2(e1.clone(), (*e2).clone()));
                    }
                }
            }
        }
    }
    out
}

/// Renaming of attributes. `mapping(a)` gives the new name of attribute `a`;
/// unmapped attributes keep their names. The mapping must stay injective on
/// the schema.
pub fn rename<F>(r: &KRelation, mapping: F) -> KRelation
where
    F: Fn(&Attr) -> Attr,
{
    let mut out = KRelation::new(r.schema().iter().map(&mapping));
    for (t, e) in r.iter() {
        out.insert(t.rename(&mapping), e.clone());
    }
    out
}

/// Renames a single attribute, a common convenience for self-joins.
pub fn rename_attr(r: &KRelation, from: &str, to: &str) -> KRelation {
    let from = Attr::new(from);
    let to = Attr::new(to);
    rename(r, |a| if *a == from { to.clone() } else { a.clone() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participant::ParticipantId;
    use crate::tuple::Value;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    /// An edge relation E(src, dst) over a small directed graph, each edge
    /// annotated with the conjunction of its endpoint participants.
    fn edge_relation(edges: &[(u32, u32)]) -> KRelation {
        let mut r = KRelation::new(["src", "dst"]);
        for &(u, v) in edges {
            r.insert(
                Tuple::new([("src", u), ("dst", v)]),
                Expr::conjunction_of_vars([p(u), p(v)]),
            );
        }
        r
    }

    #[test]
    fn union_merges_annotations() {
        let mut r1 = KRelation::new(["x"]);
        r1.insert(Tuple::new([("x", 1i64)]), Expr::var(p(0)));
        let mut r2 = KRelation::new(["x"]);
        r2.insert(Tuple::new([("x", 1i64)]), Expr::var(p(1)));
        r2.insert(Tuple::new([("x", 2i64)]), Expr::var(p(2)));

        let u = union(&r1, &r2);
        assert_eq!(u.len(), 2);
        assert_eq!(
            u.annotation(&Tuple::new([("x", 1i64)])),
            Expr::or2(Expr::var(p(0)), Expr::var(p(1)))
        );
    }

    #[test]
    fn projection_ors_annotations_of_merged_tuples() {
        let mut r = KRelation::new(["x", "y"]);
        r.insert(Tuple::new([("x", 1i64), ("y", 1i64)]), Expr::var(p(0)));
        r.insert(Tuple::new([("x", 1i64), ("y", 2i64)]), Expr::var(p(1)));
        let attrs = [Attr::new("x")];
        let proj = project(&r, attrs.iter());
        assert_eq!(proj.len(), 1);
        // Merge order depends on hash iteration order; accept either operand
        // order of the disjunction.
        let ann = proj.annotation(&Tuple::new([("x", 1i64)]));
        let expected_ab = Expr::or2(Expr::var(p(0)), Expr::var(p(1)));
        let expected_ba = Expr::or2(Expr::var(p(1)), Expr::var(p(0)));
        assert!(ann == expected_ab || ann == expected_ba, "got {ann}");
    }

    #[test]
    fn selection_filters_tuples() {
        let r = edge_relation(&[(0, 1), (1, 2), (2, 0)]);
        let sel = select(&r, |t| t.get_named("src").unwrap().as_int() == Some(1));
        assert_eq!(sel.len(), 1);
        assert!(sel.contains(&Tuple::new([("src", 1u32), ("dst", 2u32)])));
    }

    #[test]
    fn natural_join_multiplies_annotations() {
        // Path of length 2: E(a,b) ⋈ ρ(E)(b,c).
        let e = edge_relation(&[(0, 1), (1, 2)]);
        let e1 = rename(&e, |a| {
            if a.name() == "src" {
                Attr::new("a")
            } else {
                Attr::new("b")
            }
        });
        let e2 = rename(&e, |a| {
            if a.name() == "src" {
                Attr::new("b")
            } else {
                Attr::new("c")
            }
        });
        let paths = natural_join(&e1, &e2);
        assert_eq!(paths.len(), 1);
        let t = Tuple::new([("a", 0u32), ("b", 1u32), ("c", 2u32)]);
        let ann = paths.annotation(&t);
        // (p0 ∧ p1) ∧ (p1 ∧ p2) — note p1 occurs twice; the join must NOT
        // collapse it, because idempotence is not φ-invariant.
        assert_eq!(ann.len(), 4);
        assert!(ann.contains_var(p(0)));
        assert!(ann.contains_var(p(1)));
        assert!(ann.contains_var(p(2)));
    }

    #[test]
    fn join_respects_shared_attribute_values() {
        let mut r1 = KRelation::new(["k", "v1"]);
        r1.insert(Tuple::new([("k", 1i64), ("v1", 10i64)]), Expr::True);
        r1.insert(Tuple::new([("k", 2i64), ("v1", 20i64)]), Expr::True);
        let mut r2 = KRelation::new(["k", "v2"]);
        r2.insert(Tuple::new([("k", 1i64), ("v2", 100i64)]), Expr::True);

        let j = natural_join(&r1, &r2);
        assert_eq!(j.len(), 1);
        assert!(j.contains(&Tuple::new([("k", 1i64), ("v1", 10i64), ("v2", 100i64)])));
    }

    #[test]
    fn product_of_disjoint_schemas() {
        let mut r1 = KRelation::new(["a"]);
        r1.insert(Tuple::new([("a", 1i64)]), Expr::var(p(0)));
        r1.insert(Tuple::new([("a", 2i64)]), Expr::var(p(1)));
        let mut r2 = KRelation::new(["b"]);
        r2.insert(Tuple::new([("b", 7i64)]), Expr::var(p(2)));

        let prod = product(&r1, &r2);
        assert_eq!(prod.len(), 2);
        assert_eq!(
            prod.annotation(&Tuple::new([("a", 1i64), ("b", 7i64)])),
            Expr::and2(Expr::var(p(0)), Expr::var(p(2)))
        );
    }

    #[test]
    fn intersection_of_equal_schemas() {
        let mut r1 = KRelation::new(["x"]);
        r1.insert(Tuple::new([("x", 1i64)]), Expr::var(p(0)));
        r1.insert(Tuple::new([("x", 2i64)]), Expr::var(p(1)));
        let mut r2 = KRelation::new(["x"]);
        r2.insert(Tuple::new([("x", 2i64)]), Expr::var(p(2)));

        let i = intersect(&r1, &r2);
        assert_eq!(i.len(), 1);
        assert_eq!(
            i.annotation(&Tuple::new([("x", 2i64)])),
            Expr::and2(Expr::var(p(1)), Expr::var(p(2)))
        );
    }

    #[test]
    fn equi_join_on_matches_renamed_natural_join() {
        // Joining Visits(person, place) with itself on place, via explicit
        // pairs, must agree with the rename-into-natural-join encoding.
        let mut v1 = KRelation::new(["p1", "place1"]);
        let mut v2 = KRelation::new(["p2", "place2"]);
        let data = [("ada", "museum"), ("bo", "museum"), ("cy", "cafe")];
        for (i, (person, place)) in data.iter().enumerate() {
            let ann = Expr::var(p(i as u32));
            v1.insert(
                Tuple::new([("p1", Value::str(person)), ("place1", Value::str(place))]),
                ann.clone(),
            );
            v2.insert(
                Tuple::new([("p2", Value::str(person)), ("place2", Value::str(place))]),
                ann,
            );
        }
        let joined = equi_join_on(&v1, &v2, &[(Attr::new("place1"), Attr::new("place2"))]);
        // museum×museum gives 4 pairs, cafe×cafe gives 1.
        assert_eq!(joined.len(), 5);
        let ada_bo = Tuple::new([
            ("p1", Value::str("ada")),
            ("place1", Value::str("museum")),
            ("p2", Value::str("bo")),
            ("place2", Value::str("museum")),
        ]);
        assert_eq!(
            joined.annotation(&ada_bo),
            Expr::and2(Expr::var(p(0)), Expr::var(p(1)))
        );
    }

    #[test]
    fn theta_join_applies_the_residual_predicate() {
        let mut l = KRelation::new(["a"]);
        l.insert(Tuple::new([("a", 1i64)]), Expr::var(p(0)));
        l.insert(Tuple::new([("a", 2i64)]), Expr::var(p(1)));
        let mut r = KRelation::new(["b"]);
        r.insert(Tuple::new([("b", 1i64)]), Expr::var(p(2)));
        r.insert(Tuple::new([("b", 3i64)]), Expr::var(p(3)));

        // No equi pairs: filtered Cartesian product a < b.
        let lt = theta_join(&l, &r, &[], |t| {
            t.get_named("a").unwrap().as_int() < t.get_named("b").unwrap().as_int()
        });
        assert_eq!(lt.len(), 2);
        assert!(lt.contains(&Tuple::new([("a", 1i64), ("b", 3i64)])));
        assert!(lt.contains(&Tuple::new([("a", 2i64), ("b", 3i64)])));
        assert!(!lt.contains(&Tuple::new([("a", 1i64), ("b", 1i64)])));
    }

    #[test]
    fn theta_join_skips_tuples_missing_a_join_attribute() {
        let mut l = KRelation::new(["k"]);
        l.insert(Tuple::new([("k", 1i64)]), Expr::True);
        let r = KRelation::new(["k2"]); // empty, and no "k2" values anywhere
        let j = theta_join(&l, &r, &[(Attr::new("k"), Attr::new("k2"))], |_| true);
        assert!(j.is_empty());
        // Missing left attribute: pair on an attribute l does not have.
        let mut r2 = KRelation::new(["z"]);
        r2.insert(Tuple::new([("z", 1i64)]), Expr::True);
        let j2 = theta_join(&l, &r2, &[(Attr::new("nope"), Attr::new("z"))], |_| true);
        assert!(j2.is_empty());
    }

    #[test]
    fn set_semantics_recovered_when_all_annotations_are_true() {
        // With every annotation True, the K-relation algebra must agree with
        // ordinary set-semantics relational algebra.
        let mut users = KRelation::new(["uid", "city"]);
        users.insert(
            Tuple::new([("uid", Value::Int(1)), ("city", Value::str("rome"))]),
            Expr::True,
        );
        users.insert(
            Tuple::new([("uid", Value::Int(2)), ("city", Value::str("oslo"))]),
            Expr::True,
        );
        let mut visits = KRelation::new(["uid", "place"]);
        visits.insert(
            Tuple::new([("uid", Value::Int(1)), ("place", Value::str("museum"))]),
            Expr::True,
        );
        visits.insert(
            Tuple::new([("uid", Value::Int(1)), ("place", Value::str("park"))]),
            Expr::True,
        );
        visits.insert(
            Tuple::new([("uid", Value::Int(2)), ("place", Value::str("park"))]),
            Expr::True,
        );

        let joined = natural_join(&users, &visits);
        assert_eq!(joined.len(), 3);
        for (_, e) in joined.iter() {
            assert!(e.is_true());
        }
        let attrs = [Attr::new("city")];
        let cities = project(&joined, attrs.iter());
        assert_eq!(cities.len(), 2);
    }

    #[test]
    fn triangle_query_via_three_way_self_join_matches_paper_example() {
        // Figure 2(a): triangles of the 6-node graph a-b-c-d-e(-f isolated)
        // under node annotations. Build an undirected edge relation and join
        // E(x,y) ⋈ E(y,z) ⋈ E(x,z) with x < y < z to enumerate each triangle
        // once.
        let undirected = [(0u32, 1u32), (0, 2), (1, 2), (1, 3), (2, 3), (2, 4), (3, 4)];
        // store both directions so the self-join can follow either orientation
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for &(u, v) in &undirected {
            edges.push((u, v));
            edges.push((v, u));
        }
        // Node-privacy annotation: an edge exists iff both endpoints opt in.
        let mut e_xy = KRelation::new(["x", "y"]);
        for &(u, v) in &edges {
            e_xy.insert(
                Tuple::new([("x", u), ("y", v)]),
                Expr::conjunction_of_vars([p(u), p(v)]),
            );
        }
        let e_yz = rename(&rename_attr(&e_xy, "x", "y0"), |a| match a.name() {
            "y0" => Attr::new("y"),
            "y" => Attr::new("z"),
            other => Attr::new(other),
        });
        let e_xz = rename(&rename_attr(&e_xy, "y", "z"), |a| a.clone());

        let two_path = natural_join(&e_xy, &e_yz);
        let triangles = natural_join(&two_path, &e_xz);
        let ordered = select(&triangles, |t| {
            let x = t.get_named("x").unwrap().as_int().unwrap();
            let y = t.get_named("y").unwrap().as_int().unwrap();
            let z = t.get_named("z").unwrap().as_int().unwrap();
            x < y && y < z
        });
        // The graph has triangles {a,b,c}, {b,c,d}, {c,d,e} (paper Fig. 2a).
        assert_eq!(ordered.len(), 3);
        let abc = Tuple::new([("x", 0u32), ("y", 1u32), ("z", 2u32)]);
        let ann = ordered.annotation(&abc);
        // Every participant of the triangle must appear; the join-produced
        // expression mentions them with multiplicity (it is not collapsed).
        for q in [p(0), p(1), p(2)] {
            assert!(ann.contains_var(q));
        }
        assert!(!ann.contains_var(p(3)));
    }
}
