//! Disjunctive and conjunctive normal forms of positive expressions.
//!
//! Sec. 5.2 of the paper notes that expanding annotations into disjunctive
//! normal form makes annotation always safe and caps every φ-sensitivity at 1
//! (each variable occurs at most once per clause and `∨` takes the max).
//! Distributivity of `∧` over `∨` is a φ-invariant transformation, so the DNF
//! of an expression has the same relaxation `φ` — at the price of a possibly
//! exponentially larger expression.
//!
//! For *positive* (monotone) expressions, removing clauses that are supersets
//! of other clauses (absorption) yields exactly the set of prime implicants,
//! which is a canonical form: two positive expressions have the same truth
//! table iff their canonical DNFs are equal. Note that truth-table equality is
//! weaker than φ-equivalence (Def. 19); see [`crate::equiv`].

use crate::expr::Expr;
use crate::participant::ParticipantId;
use std::collections::BTreeSet;

/// A DNF clause: a conjunction of distinct participant variables.
pub type Clause = BTreeSet<ParticipantId>;

/// A positive expression in disjunctive normal form: a disjunction of
/// conjunctive clauses. The empty disjunction is `False`; a clause that is the
/// empty conjunction makes the whole formula `True`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dnf {
    clauses: Vec<Clause>,
}

/// Error returned when DNF expansion would exceed the configured clause
/// budget (expansion is worst-case exponential).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DnfTooLarge {
    /// The budget that was exceeded.
    pub max_clauses: usize,
}

impl std::fmt::Display for DnfTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DNF expansion exceeded the clause budget of {}",
            self.max_clauses
        )
    }
}

impl std::error::Error for DnfTooLarge {}

impl Dnf {
    /// The DNF with no clause (`False`).
    pub fn r#false() -> Self {
        Dnf { clauses: vec![] }
    }

    /// The DNF with a single empty clause (`True`).
    pub fn r#true() -> Self {
        Dnf {
            clauses: vec![Clause::new()],
        }
    }

    /// A DNF from explicit clauses.
    pub fn from_clauses<I>(clauses: I) -> Self
    where
        I: IntoIterator<Item = Clause>,
    {
        Dnf {
            clauses: clauses.into_iter().collect(),
        }
    }

    /// The clauses of the DNF.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the DNF is the constant `False`.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Whether the DNF is the constant `True`.
    pub fn is_true(&self) -> bool {
        self.clauses.iter().any(Clause::is_empty)
    }

    /// Expands an arbitrary positive expression into DNF.
    ///
    /// Returns an error if the number of intermediate clauses would exceed
    /// `max_clauses` (distribution of `∧` over `∨` is worst-case exponential).
    pub fn expand(expr: &Expr, max_clauses: usize) -> Result<Self, DnfTooLarge> {
        let clauses = expand_rec(expr, max_clauses)?;
        Ok(Dnf { clauses })
    }

    /// Removes clauses that are supersets of other clauses (absorption) and
    /// duplicate clauses, producing the canonical prime-implicant form of the
    /// underlying monotone Boolean function.
    pub fn canonicalize(mut self) -> Self {
        if self.is_true() {
            return Dnf::r#true();
        }
        self.clauses
            .sort_by(|a, b| a.len().cmp(&b.len()).then(a.cmp(b)));
        self.clauses.dedup();
        let mut kept: Vec<Clause> = Vec::with_capacity(self.clauses.len());
        for clause in self.clauses {
            // Clauses are visited by increasing size, so any absorber is
            // already in `kept`.
            if !kept.iter().any(|k| k.is_subset(&clause)) {
                kept.push(clause);
            }
        }
        kept.sort();
        Dnf { clauses: kept }
    }

    /// Converts back into an expression (a disjunction of variable
    /// conjunctions). Each clause keeps every variable exactly once, so every
    /// φ-sensitivity of the result is at most 1.
    pub fn to_expr(&self) -> Expr {
        Expr::or(
            self.clauses
                .iter()
                .map(|c| Expr::conjunction_of_vars(c.iter().copied())),
        )
    }

    /// Evaluates the DNF under a Boolean assignment.
    pub fn evaluate<F>(&self, truth: &F) -> bool
    where
        F: Fn(ParticipantId) -> bool,
    {
        self.clauses.iter().any(|c| c.iter().all(|&p| truth(p)))
    }
}

fn expand_rec(expr: &Expr, max_clauses: usize) -> Result<Vec<Clause>, DnfTooLarge> {
    match expr {
        Expr::False => Ok(vec![]),
        Expr::True => Ok(vec![Clause::new()]),
        Expr::Var(p) => {
            let mut c = Clause::new();
            c.insert(*p);
            Ok(vec![c])
        }
        Expr::Or(children) => {
            let mut out: Vec<Clause> = Vec::new();
            for child in children {
                out.extend(expand_rec(child, max_clauses)?);
                if out.len() > max_clauses {
                    return Err(DnfTooLarge { max_clauses });
                }
            }
            Ok(out)
        }
        Expr::And(children) => {
            let mut acc: Vec<Clause> = vec![Clause::new()];
            for child in children {
                let child_clauses = expand_rec(child, max_clauses)?;
                let mut next = Vec::with_capacity(acc.len() * child_clauses.len().max(1));
                for a in &acc {
                    for c in &child_clauses {
                        let mut merged = a.clone();
                        merged.extend(c.iter().copied());
                        next.push(merged);
                        if next.len() > max_clauses {
                            return Err(DnfTooLarge { max_clauses });
                        }
                    }
                }
                acc = next;
            }
            Ok(acc)
        }
    }
}

/// A CNF clause: a disjunction of distinct participant variables. Used by the
/// experiment workload generators (a 3-CNF K-relation models a join of many
/// unions, Sec. 6.2).
pub type CnfClause = BTreeSet<ParticipantId>;

/// A positive expression in conjunctive normal form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cnf {
    clauses: Vec<CnfClause>,
}

impl Cnf {
    /// A CNF from explicit clauses. The empty CNF is `True`.
    pub fn from_clauses<I>(clauses: I) -> Self
    where
        I: IntoIterator<Item = CnfClause>,
    {
        Cnf {
            clauses: clauses.into_iter().collect(),
        }
    }

    /// The clauses.
    pub fn clauses(&self) -> &[CnfClause] {
        &self.clauses
    }

    /// Converts into an expression: a conjunction of variable disjunctions.
    pub fn to_expr(&self) -> Expr {
        Expr::and(
            self.clauses
                .iter()
                .map(|c| Expr::disjunction_of_vars(c.iter().copied())),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phi::phi;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn clause(vars: &[u32]) -> Clause {
        vars.iter().map(|&i| p(i)).collect()
    }

    #[test]
    fn expand_distributes_and_over_or() {
        // (a ∨ b) ∧ c  =>  (a ∧ c) ∨ (b ∧ c)
        let e = Expr::and2(Expr::or2(Expr::var(p(0)), Expr::var(p(1))), Expr::var(p(2)));
        let d = Dnf::expand(&e, 100).unwrap().canonicalize();
        assert_eq!(d.clauses(), &[clause(&[0, 2]), clause(&[1, 2])]);
    }

    #[test]
    fn expansion_preserves_truth_table() {
        let e = Expr::and2(
            Expr::or2(Expr::var(p(0)), Expr::var(p(1))),
            Expr::or2(Expr::var(p(0)), Expr::var(p(2))),
        );
        let d = Dnf::expand(&e, 100).unwrap();
        for bits in 0..8u32 {
            let truth = |q: ParticipantId| (bits >> q.0) & 1 == 1;
            assert_eq!(e.evaluate(&truth), d.evaluate(&truth));
        }
    }

    #[test]
    fn expansion_preserves_phi() {
        // Distributivity is φ-invariant (Sec. 5.2), so expansion must not
        // change φ as long as no idempotence collapse happens.
        let e = Expr::and2(Expr::or2(Expr::var(p(0)), Expr::var(p(1))), Expr::var(p(2)));
        let d = Dnf::expand(&e, 100).unwrap().to_expr();
        let grid = [0.0, 0.3, 0.6, 1.0];
        for &a in &grid {
            for &b in &grid {
                for &c in &grid {
                    let f = vec![a, b, c];
                    assert!((phi(&e, &f) - phi(&d, &f)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn canonicalize_applies_absorption() {
        // (a) ∨ (a ∧ b) ∨ (b ∧ c)  =>  a ∨ (b ∧ c)
        let d = Dnf::from_clauses([clause(&[0]), clause(&[0, 1]), clause(&[1, 2])]).canonicalize();
        assert_eq!(d.clauses(), &[clause(&[0]), clause(&[1, 2])]);
    }

    #[test]
    fn canonical_form_identifies_equal_truth_tables() {
        // (b1 ∨ b2) ∧ (b1 ∨ b3) and b1 ∨ (b2 ∧ b3) have the same truth table,
        // hence the same canonical DNF — even though they are NOT
        // φ-equivalent (see crate::equiv tests).
        let lhs = Expr::and2(
            Expr::or2(Expr::var(p(1)), Expr::var(p(2))),
            Expr::or2(Expr::var(p(1)), Expr::var(p(3))),
        );
        let rhs = Expr::or2(
            Expr::var(p(1)),
            Expr::and2(Expr::var(p(2)), Expr::var(p(3))),
        );
        let dl = Dnf::expand(&lhs, 100).unwrap().canonicalize();
        let dr = Dnf::expand(&rhs, 100).unwrap().canonicalize();
        assert_eq!(dl, dr);
    }

    #[test]
    fn constants_expand_correctly() {
        assert!(Dnf::expand(&Expr::False, 10).unwrap().is_empty());
        assert!(Dnf::expand(&Expr::True, 10).unwrap().is_true());
        assert_eq!(Dnf::r#false().to_expr(), Expr::False);
        assert_eq!(Dnf::r#true().to_expr(), Expr::True);
    }

    #[test]
    fn expansion_respects_budget() {
        // (a1 ∨ b1) ∧ ... ∧ (a10 ∨ b10) has 2^10 clauses.
        let e = Expr::and((0..10).map(|i| Expr::or2(Expr::var(p(2 * i)), Expr::var(p(2 * i + 1)))));
        assert_eq!(Dnf::expand(&e, 100), Err(DnfTooLarge { max_clauses: 100 }));
        assert!(Dnf::expand(&e, 2000).is_ok());
    }

    #[test]
    fn dnf_expression_has_unit_sensitivities() {
        use crate::phi::max_phi_sensitivity;
        let e = Expr::and2(
            Expr::or2(Expr::var(p(0)), Expr::var(p(1))),
            Expr::or2(Expr::var(p(0)), Expr::var(p(2))),
        );
        assert!(max_phi_sensitivity(&e) > 1.0);
        let d = Dnf::expand(&e, 100).unwrap().canonicalize().to_expr();
        assert!(max_phi_sensitivity(&d) <= 1.0);
    }

    #[test]
    fn cnf_roundtrip() {
        let c = Cnf::from_clauses([clause(&[0, 1]), clause(&[2, 3])]);
        let e = c.to_expr();
        assert_eq!(e.len(), 4);
        let truth_true = |q: ParticipantId| q.0 == 0 || q.0 == 2;
        assert!(e.evaluate(&truth_true));
        let truth_false = |q: ParticipantId| q.0 == 0;
        assert!(!e.evaluate(&truth_false));
    }
}
