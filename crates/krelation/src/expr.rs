//! Positive Boolean provenance expressions.
//!
//! Tuples of a sensitive K-relation are annotated with *positive* Boolean
//! expressions over participant variables: no negation, only conjunction,
//! disjunction and the constants `True` / `False` (paper Sec. 2.4).
//!
//! Conjunction and disjunction are stored n-ary. Flattening an associative
//! chain (`a ∧ (b ∧ c)` ↦ `∧(a, b, c)`) is one of the φ-invariant
//! transformations listed in Sec. 5.2, so the n-ary representation never
//! changes the relaxation `φ` — and it lets the LP encoding of the efficient
//! mechanism use a single constraint row per conjunction.
//!
//! The *smart constructors* [`Expr::and`] and [`Expr::or`] additionally apply
//! the identity and annihilator laws (also φ-invariant). They never apply
//! idempotence of `∧` (`x ∧ x ↦ x`), which is **not** φ-invariant
//! (`φ_{x∧x}(f) = max(0, 2f(x) − 1) ≠ f(x)` in general).

use crate::hash::FxHashSet;
use crate::participant::ParticipantId;
use std::fmt;

/// A positive Boolean expression over participant variables.
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Expr {
    /// The constant `False` (annotation of an absent tuple).
    False,
    /// The constant `True` (tuple present regardless of participants).
    True,
    /// A single participant variable.
    Var(ParticipantId),
    /// n-ary conjunction. Invariant: at least two children, no nested `And`,
    /// no `True`/`False` children.
    And(Vec<Expr>),
    /// n-ary disjunction. Invariant: at least two children, no nested `Or`,
    /// no `True`/`False` children.
    Or(Vec<Expr>),
}

impl Expr {
    /// A single participant variable.
    #[inline]
    pub fn var(p: impl Into<ParticipantId>) -> Self {
        Expr::Var(p.into())
    }

    /// Smart n-ary conjunction.
    ///
    /// Applies only φ-invariant rewrites: flattening of nested conjunctions,
    /// dropping `True` children (identity) and collapsing to `False` if any
    /// child is `False` (annihilator). The empty conjunction is `True`.
    pub fn and<I>(children: I) -> Self
    where
        I: IntoIterator<Item = Expr>,
    {
        let mut flat = Vec::new();
        for child in children {
            match child {
                Expr::True => {}
                Expr::False => return Expr::False,
                Expr::And(grand) => flat.extend(grand),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Expr::True,
            1 => flat.pop().expect("len checked"),
            _ => Expr::And(flat),
        }
    }

    /// Smart n-ary disjunction.
    ///
    /// Applies only φ-invariant rewrites: flattening of nested disjunctions,
    /// dropping `False` children (identity) and collapsing to `True` if any
    /// child is `True` (annihilator). The empty disjunction is `False`.
    pub fn or<I>(children: I) -> Self
    where
        I: IntoIterator<Item = Expr>,
    {
        let mut flat = Vec::new();
        for child in children {
            match child {
                Expr::False => {}
                Expr::True => return Expr::True,
                Expr::Or(grand) => flat.extend(grand),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Expr::False,
            1 => flat.pop().expect("len checked"),
            _ => Expr::Or(flat),
        }
    }

    /// Conjunction of two expressions.
    pub fn and2(a: Expr, b: Expr) -> Self {
        Expr::and([a, b])
    }

    /// Disjunction of two expressions.
    pub fn or2(a: Expr, b: Expr) -> Self {
        Expr::or([a, b])
    }

    /// Conjunction of a set of participant variables (the typical annotation
    /// of one matched subgraph: `a ∧ b ∧ c`).
    pub fn conjunction_of_vars<I>(vars: I) -> Self
    where
        I: IntoIterator<Item = ParticipantId>,
    {
        Expr::and(vars.into_iter().map(Expr::Var))
    }

    /// Disjunction of a set of participant variables.
    pub fn disjunction_of_vars<I>(vars: I) -> Self
    where
        I: IntoIterator<Item = ParticipantId>,
    {
        Expr::or(vars.into_iter().map(Expr::Var))
    }

    /// Evaluates the expression under a Boolean assignment.
    ///
    /// `truth(p)` gives the value of variable `p` (`true` iff participant `p`
    /// contributes its data).
    pub fn evaluate<F>(&self, truth: &F) -> bool
    where
        F: Fn(ParticipantId) -> bool,
    {
        match self {
            Expr::False => false,
            Expr::True => true,
            Expr::Var(p) => truth(*p),
            Expr::And(children) => children.iter().all(|c| c.evaluate(truth)),
            Expr::Or(children) => children.iter().any(|c| c.evaluate(truth)),
        }
    }

    /// Replaces every occurrence of variable `p` with the constant `value`
    /// and re-applies the φ-invariant identity/annihilator simplifications.
    ///
    /// `restrict(p, false)` is the operation `k|_{p→False}` used in the
    /// definition of neighbouring sensitive K-relations (Def. 14).
    pub fn restrict(&self, p: ParticipantId, value: bool) -> Expr {
        match self {
            Expr::False => Expr::False,
            Expr::True => Expr::True,
            Expr::Var(q) => {
                if *q == p {
                    if value {
                        Expr::True
                    } else {
                        Expr::False
                    }
                } else {
                    Expr::Var(*q)
                }
            }
            Expr::And(children) => Expr::and(children.iter().map(|c| c.restrict(p, value))),
            Expr::Or(children) => Expr::or(children.iter().map(|c| c.restrict(p, value))),
        }
    }

    /// Collects the distinct variables occurring in the expression.
    pub fn variables(&self) -> FxHashSet<ParticipantId> {
        let mut out = FxHashSet::default();
        self.collect_variables(&mut out);
        out
    }

    /// Collects variables into an existing set (avoids re-allocating when
    /// scanning a whole relation).
    pub fn collect_variables(&self, out: &mut FxHashSet<ParticipantId>) {
        match self {
            Expr::False | Expr::True => {}
            Expr::Var(p) => {
                out.insert(*p);
            }
            Expr::And(children) | Expr::Or(children) => {
                for c in children {
                    c.collect_variables(out);
                }
            }
        }
    }

    /// Whether variable `p` occurs anywhere in the expression.
    pub fn contains_var(&self, p: ParticipantId) -> bool {
        match self {
            Expr::False | Expr::True => false,
            Expr::Var(q) => *q == p,
            Expr::And(children) | Expr::Or(children) => children.iter().any(|c| c.contains_var(p)),
        }
    }

    /// Number of variable occurrences (the *length* `L` of the annotation in
    /// the paper's complexity statements, Sec. 5.3).
    pub fn len(&self) -> usize {
        match self {
            Expr::False | Expr::True => 0,
            Expr::Var(_) => 1,
            Expr::And(children) | Expr::Or(children) => children.iter().map(Expr::len).sum(),
        }
    }

    /// Whether the expression contains no variable occurrence.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of expression-tree nodes (constants, variables and operators).
    pub fn node_count(&self) -> usize {
        match self {
            Expr::False | Expr::True | Expr::Var(_) => 1,
            Expr::And(children) | Expr::Or(children) => {
                1 + children.iter().map(Expr::node_count).sum::<usize>()
            }
        }
    }

    /// Depth of the expression tree (a constant or a variable has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Expr::False | Expr::True | Expr::Var(_) => 1,
            Expr::And(children) | Expr::Or(children) => {
                1 + children.iter().map(Expr::depth).max().unwrap_or(0)
            }
        }
    }

    /// `true` iff the expression is the constant `False`.
    pub fn is_false(&self) -> bool {
        matches!(self, Expr::False)
    }

    /// `true` iff the expression is the constant `True`.
    pub fn is_true(&self) -> bool {
        matches!(self, Expr::True)
    }

    /// `true` iff the expression is a pure conjunction of distinct variables
    /// (possibly a single variable or `True`). Such annotations are produced
    /// by subgraph counting and admit a one-row LP encoding.
    pub fn is_simple_conjunction(&self) -> bool {
        match self {
            Expr::True | Expr::Var(_) => true,
            Expr::And(children) => children.iter().all(|c| matches!(c, Expr::Var(_))),
            _ => false,
        }
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn write_child(e: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match e {
                Expr::And(_) | Expr::Or(_) => write!(f, "({e})"),
                _ => write!(f, "{e}"),
            }
        }
        match self {
            Expr::False => write!(f, "⊥"),
            Expr::True => write!(f, "⊤"),
            Expr::Var(p) => write!(f, "{p}"),
            Expr::And(children) => {
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write_child(c, f)?;
                }
                Ok(())
            }
            Expr::Or(children) => {
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write_child(c, f)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    #[test]
    fn smart_and_applies_identity_and_annihilator() {
        assert_eq!(Expr::and([Expr::True, Expr::var(p(0))]), Expr::var(p(0)));
        assert_eq!(Expr::and([Expr::False, Expr::var(p(0))]), Expr::False);
        assert_eq!(Expr::and(std::iter::empty()), Expr::True);
    }

    #[test]
    fn smart_or_applies_identity_and_annihilator() {
        assert_eq!(Expr::or([Expr::False, Expr::var(p(0))]), Expr::var(p(0)));
        assert_eq!(Expr::or([Expr::True, Expr::var(p(0))]), Expr::True);
        assert_eq!(Expr::or(std::iter::empty()), Expr::False);
    }

    #[test]
    fn nested_operators_are_flattened() {
        let e = Expr::and2(
            Expr::var(p(0)),
            Expr::and2(Expr::var(p(1)), Expr::var(p(2))),
        );
        match &e {
            Expr::And(children) => assert_eq!(children.len(), 3),
            other => panic!("expected flattened And, got {other}"),
        }
        let e = Expr::or2(Expr::var(p(0)), Expr::or2(Expr::var(p(1)), Expr::var(p(2))));
        match &e {
            Expr::Or(children) => assert_eq!(children.len(), 3),
            other => panic!("expected flattened Or, got {other}"),
        }
    }

    #[test]
    fn idempotence_is_not_applied() {
        // x ∧ x must be kept as-is: collapsing it would change φ.
        let e = Expr::and([Expr::var(p(0)), Expr::var(p(0))]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn evaluate_matches_boolean_semantics() {
        // (a ∧ b) ∨ c
        let e = Expr::or2(
            Expr::and2(Expr::var(p(0)), Expr::var(p(1))),
            Expr::var(p(2)),
        );
        let t = |vals: [bool; 3]| e.evaluate(&|q: ParticipantId| vals[q.index()]);
        assert!(t([true, true, false]));
        assert!(t([false, false, true]));
        assert!(!t([true, false, false]));
        assert!(!t([false, false, false]));
    }

    #[test]
    fn restrict_to_false_removes_the_variable() {
        // a ∧ (b ∨ c), restrict c -> False gives a ∧ b.
        let e = Expr::and2(Expr::var(p(0)), Expr::or2(Expr::var(p(1)), Expr::var(p(2))));
        let r = e.restrict(p(2), false);
        assert_eq!(r, Expr::and2(Expr::var(p(0)), Expr::var(p(1))));
        assert!(!r.contains_var(p(2)));
    }

    #[test]
    fn restrict_to_true_simplifies() {
        // a ∧ (b ∨ c), restrict b -> True gives a.
        let e = Expr::and2(Expr::var(p(0)), Expr::or2(Expr::var(p(1)), Expr::var(p(2))));
        assert_eq!(e.restrict(p(1), true), Expr::var(p(0)));
    }

    #[test]
    fn length_counts_variable_occurrences() {
        let e = Expr::or2(
            Expr::and2(Expr::var(p(0)), Expr::var(p(1))),
            Expr::and2(Expr::var(p(0)), Expr::var(p(2))),
        );
        assert_eq!(e.len(), 4);
        assert_eq!(e.variables().len(), 3);
        assert_eq!(e.depth(), 3);
        assert_eq!(e.node_count(), 7);
    }

    #[test]
    fn simple_conjunction_detection() {
        assert!(Expr::conjunction_of_vars([p(0), p(1), p(2)]).is_simple_conjunction());
        assert!(Expr::var(p(0)).is_simple_conjunction());
        assert!(Expr::True.is_simple_conjunction());
        let mixed = Expr::and2(Expr::var(p(0)), Expr::or2(Expr::var(p(1)), Expr::var(p(2))));
        assert!(!mixed.is_simple_conjunction());
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::or2(
            Expr::and2(Expr::var(p(0)), Expr::var(p(1))),
            Expr::var(p(2)),
        );
        assert_eq!(format!("{e}"), "(p0 ∧ p1) ∨ p2");
    }
}
