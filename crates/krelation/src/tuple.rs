//! Attributes, values and tuples.
//!
//! A tuple is a function `t : U → C` from a finite attribute set `U` to a
//! domain of constants `C` (paper Sec. 2.4). Tuples are stored as sorted
//! attribute/value pairs so they hash and compare cheaply and deterministically.

use std::fmt;
use std::sync::Arc;

/// An attribute name. Cloning is cheap (shared string).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Attr(Arc<str>);

impl Attr {
    /// Creates an attribute from a name.
    pub fn new(name: &str) -> Self {
        Attr(Arc::from(name))
    }

    /// The attribute name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Attr {
    fn from(s: &str) -> Self {
        Attr::new(s)
    }
}

impl From<String> for Attr {
    fn from(s: String) -> Self {
        Attr(Arc::from(s.as_str()))
    }
}

/// A constant value of the tuple domain `C`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An integer constant.
    Int(i64),
    /// A string constant.
    Str(Arc<str>),
    /// A Boolean constant.
    Bool(bool),
}

impl Value {
    /// A string value.
    pub fn str(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }

    /// Returns the integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A tuple: a finite map from attributes to values, stored sorted by
/// attribute.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Tuple {
    entries: Vec<(Attr, Value)>,
}

impl Tuple {
    /// The empty tuple (over the empty attribute set).
    pub fn empty() -> Self {
        Tuple::default()
    }

    /// Builds a tuple from attribute/value pairs. Later duplicates of an
    /// attribute overwrite earlier ones.
    pub fn new<I, A, V>(entries: I) -> Self
    where
        I: IntoIterator<Item = (A, V)>,
        A: Into<Attr>,
        V: Into<Value>,
    {
        let mut t = Tuple::empty();
        for (a, v) in entries {
            t.set(a.into(), v.into());
        }
        t
    }

    /// Sets (or overwrites) an attribute.
    pub fn set(&mut self, attr: Attr, value: Value) {
        match self.entries.binary_search_by(|(a, _)| a.cmp(&attr)) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (attr, value)),
        }
    }

    /// The value of an attribute, if present.
    pub fn get(&self, attr: &Attr) -> Option<&Value> {
        self.entries
            .binary_search_by(|(a, _)| a.cmp(attr))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Convenience lookup by attribute name.
    pub fn get_named(&self, name: &str) -> Option<&Value> {
        self.get(&Attr::new(name))
    }

    /// The attributes of the tuple, in sorted order.
    pub fn attrs(&self) -> impl Iterator<Item = &Attr> + '_ {
        self.entries.iter().map(|(a, _)| a)
    }

    /// Iterates over `(attribute, value)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&Attr, &Value)> + '_ {
        self.entries.iter().map(|(a, v)| (a, v))
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tuple is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Projection of the tuple onto a set of attributes. Attributes absent
    /// from the tuple are silently ignored.
    pub fn project<'a, I>(&self, attrs: I) -> Tuple
    where
        I: IntoIterator<Item = &'a Attr>,
    {
        let mut t = Tuple::empty();
        for a in attrs {
            if let Some(v) = self.get(a) {
                t.set(a.clone(), v.clone());
            }
        }
        t
    }

    /// Renames attributes according to `rename`; attributes not mentioned are
    /// kept unchanged.
    pub fn rename<F>(&self, rename: F) -> Tuple
    where
        F: Fn(&Attr) -> Attr,
    {
        let mut t = Tuple::empty();
        for (a, v) in &self.entries {
            t.set(rename(a), v.clone());
        }
        t
    }

    /// Merges two tuples with compatible shared attributes (natural-join
    /// semantics). Returns `None` when a shared attribute disagrees.
    pub fn join(&self, other: &Tuple) -> Option<Tuple> {
        let mut t = self.clone();
        for (a, v) in &other.entries {
            match t.get(a) {
                Some(existing) if existing != v => return None,
                Some(_) => {}
                None => t.set(a.clone(), v.clone()),
            }
        }
        Some(t)
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, (a, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}={v:?}")?;
        }
        write!(f, "⟩")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get_roundtrip() {
        let mut t = Tuple::empty();
        t.set("b".into(), 2i64.into());
        t.set("a".into(), 1i64.into());
        t.set("b".into(), 3i64.into());
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get_named("a"), Some(&Value::Int(1)));
        assert_eq!(t.get_named("b"), Some(&Value::Int(3)));
        assert_eq!(t.get_named("c"), None);
    }

    #[test]
    fn tuples_with_same_content_are_equal_regardless_of_insertion_order() {
        let t1 = Tuple::new([("x", 1i64), ("y", 2i64)]);
        let t2 = Tuple::new([("y", 2i64), ("x", 1i64)]);
        assert_eq!(t1, t2);
    }

    #[test]
    fn projection_keeps_only_requested_attributes() {
        let t = Tuple::new([("a", 1i64), ("b", 2i64), ("c", 3i64)]);
        let attrs = [Attr::new("a"), Attr::new("c"), Attr::new("zzz")];
        let proj = t.project(attrs.iter());
        assert_eq!(proj, Tuple::new([("a", 1i64), ("c", 3i64)]));
    }

    #[test]
    fn join_agrees_on_shared_attributes() {
        let t1 = Tuple::new([("a", 1i64), ("b", 2i64)]);
        let t2 = Tuple::new([("b", 2i64), ("c", 3i64)]);
        let joined = t1.join(&t2).unwrap();
        assert_eq!(joined, Tuple::new([("a", 1i64), ("b", 2i64), ("c", 3i64)]));
        let t3 = Tuple::new([("b", 9i64), ("c", 3i64)]);
        assert_eq!(t1.join(&t3), None);
    }

    #[test]
    fn rename_changes_attribute_names() {
        let t = Tuple::new([("a", 1i64), ("b", 2i64)]);
        let renamed = t.rename(|a| {
            if a.name() == "a" {
                Attr::new("x")
            } else {
                a.clone()
            }
        });
        assert_eq!(renamed, Tuple::new([("x", 1i64), ("b", 2i64)]));
    }

    #[test]
    fn mixed_value_types() {
        let t = Tuple::new::<_, Attr, Value>([
            (Attr::new("id"), Value::Int(7)),
            (Attr::new("name"), Value::str("alice")),
            (Attr::new("active"), Value::Bool(true)),
        ]);
        assert_eq!(t.get_named("name").unwrap().as_str(), Some("alice"));
        assert_eq!(t.get_named("id").unwrap().as_int(), Some(7));
        assert_eq!(format!("{t}"), "⟨active=true, id=7, name=\"alice\"⟩");
    }
}
