//! Stable structured fingerprints for cross-query caching.
//!
//! The sequence cache of `rmdp-core` keys completed `H`/`G` sequence tables
//! by a fingerprint of everything that determines their values: the canonical
//! query plan, the database identity and mutation epoch, and the
//! sensitivity-relevant mechanism parameters. Two requirements shape this
//! module:
//!
//! * **stability** — the fingerprint of the same canonical encoding must be
//!   the same across processes, platforms and sessions (so persisted or
//!   shared caches stay meaningful). [`std::collections::hash_map`]'s SipHash
//!   is randomly keyed per process and the workspace's `FxHasher` is tuned
//!   for speed, not for collision resistance over long inputs, so the
//!   fingerprint uses a fixed-key 128-bit FNV-1a instead;
//! * **width** — a cache collision between two *different* queries would
//!   silently release one query's answer calibrated with another query's
//!   sequences, a privacy-relevant bug. 128 bits makes an accidental
//!   collision astronomically unlikely (birthday bound ≈ 2⁻⁶⁴ even after
//!   billions of distinct plans).
//!
//! The canonical *encoding* hashed here is produced by the caller (see
//! `rmdp_sql::fingerprint`); this module only guarantees that equal encodings
//! yield equal fingerprints and that the framing is injective (length-prefixed
//! byte strings, tagged scalars), so distinct encodings cannot alias by
//! concatenation tricks.

use std::fmt;

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A 128-bit stable fingerprint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({:032x})", self.0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// An incremental 128-bit FNV-1a hasher over framed, type-tagged inputs.
///
/// Every `write_*` method frames its input (a one-byte type tag, plus a
/// length prefix for variable-length data) so that the map from *sequences of
/// write calls* to the digested byte stream is injective: `"ab" + "c"` and
/// `"a" + "bc"` hash differently, as do `write_u64(0)` and `write_f64(0.0)`.
#[derive(Clone, Copy, Debug)]
pub struct FingerprintHasher {
    state: u128,
}

impl Default for FingerprintHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl FingerprintHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        FingerprintHasher { state: FNV_OFFSET }
    }

    fn absorb(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a one-byte domain/type tag.
    pub fn write_tag(&mut self, tag: u8) {
        self.absorb(&[0x01, tag]);
    }

    /// Absorbs a `u64` (tagged, little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.absorb(&[0x02]);
        self.absorb(&v.to_le_bytes());
    }

    /// Absorbs an `i64` (tagged, little-endian two's complement).
    pub fn write_i64(&mut self, v: i64) {
        self.absorb(&[0x03]);
        self.absorb(&v.to_le_bytes());
    }

    /// Absorbs an `f64` by its IEEE-754 bit pattern (tagged). `0.0` and
    /// `-0.0` therefore hash differently, which is the conservative choice
    /// for a cache key.
    pub fn write_f64(&mut self, v: f64) {
        self.absorb(&[0x04]);
        self.absorb(&v.to_bits().to_le_bytes());
    }

    /// Absorbs a length-prefixed byte string (tagged).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.absorb(&[0x05]);
        self.absorb(&(bytes.len() as u64).to_le_bytes());
        self.absorb(bytes);
    }

    /// Absorbs a length-prefixed UTF-8 string (tagged).
    pub fn write_str(&mut self, s: &str) {
        self.absorb(&[0x06]);
        self.absorb(&(s.len() as u64).to_le_bytes());
        self.absorb(s.as_bytes());
    }

    /// The fingerprint of everything absorbed so far.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(f: impl FnOnce(&mut FingerprintHasher)) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn equal_inputs_hash_equal_and_stable_across_instances() {
        let a = fp(|h| {
            h.write_str("triangle");
            h.write_u64(7);
        });
        let b = fp(|h| {
            h.write_str("triangle");
            h.write_u64(7);
        });
        assert_eq!(a, b);
        assert_ne!(a, FingerprintHasher::new().finish());
    }

    #[test]
    fn framing_is_injective_across_concatenation() {
        let ab_c = fp(|h| {
            h.write_str("ab");
            h.write_str("c");
        });
        let a_bc = fp(|h| {
            h.write_str("a");
            h.write_str("bc");
        });
        let abc = fp(|h| h.write_str("abc"));
        assert_ne!(ab_c, a_bc);
        assert_ne!(ab_c, abc);
        assert_ne!(a_bc, abc);
    }

    #[test]
    fn type_tags_separate_equal_bit_patterns() {
        let as_u64 = fp(|h| h.write_u64(0));
        let as_i64 = fp(|h| h.write_i64(0));
        let as_f64 = fp(|h| h.write_f64(0.0));
        assert_ne!(as_u64, as_i64);
        assert_ne!(as_u64, as_f64);
        assert_ne!(as_i64, as_f64);
        // And the f64 hash is over bits, not value: -0.0 ≠ 0.0.
        assert_ne!(as_f64, fp(|h| h.write_f64(-0.0)));
    }

    #[test]
    fn display_renders_fixed_width_hex() {
        let f = Fingerprint(0xabc);
        assert_eq!(f.to_string().len(), 32);
        assert!(f.to_string().ends_with("abc"));
        assert!(format!("{f:?}").starts_with("Fingerprint("));
    }
}
