//! K-relations: relations whose tuples carry positive Boolean annotations.
//!
//! A K-relation over attribute set `U` is a function `R : U-Tup → K` with
//! finite support (paper Sec. 2.4). Here `K` is the set of positive Boolean
//! expressions over participant variables, so `R(t)` states under which
//! participant subsets the tuple `t` is present — exactly the c-table special
//! case the paper builds its efficient mechanism on.

use crate::expr::Expr;
use crate::hash::{FxHashMap, FxHashSet};
use crate::participant::ParticipantId;
use crate::tuple::{Attr, Tuple};
use std::collections::BTreeSet;
use std::fmt;

/// A relation annotated with positive Boolean provenance expressions.
///
/// Tuples annotated with `False` are not stored: the support
/// `supp(R) = {t | R(t) ≠ False}` is exactly the stored tuple set.
#[derive(Clone, Default)]
pub struct KRelation {
    schema: BTreeSet<Attr>,
    tuples: FxHashMap<Tuple, Expr>,
}

impl KRelation {
    /// An empty relation over the given schema.
    pub fn new<I, A>(schema: I) -> Self
    where
        I: IntoIterator<Item = A>,
        A: Into<Attr>,
    {
        KRelation {
            schema: schema.into_iter().map(Into::into).collect(),
            tuples: FxHashMap::default(),
        }
    }

    /// An empty relation with an empty schema (useful as a unit for joins).
    pub fn empty() -> Self {
        KRelation::default()
    }

    /// The schema (attribute set `U`).
    pub fn schema(&self) -> &BTreeSet<Attr> {
        &self.schema
    }

    /// Inserts a tuple with an annotation. If the tuple is already present the
    /// annotations are combined with `∨` (the semiring `+` of the Boolean
    /// expression semiring), matching the union/projection semantics of
    /// positive relational algebra.
    pub fn insert(&mut self, tuple: Tuple, annotation: Expr) {
        if annotation.is_false() {
            return;
        }
        for a in tuple.attrs() {
            self.schema.insert(a.clone());
        }
        match self.tuples.remove(&tuple) {
            Some(existing) => {
                self.tuples.insert(tuple, Expr::or2(existing, annotation));
            }
            None => {
                self.tuples.insert(tuple, annotation);
            }
        }
    }

    /// Inserts a tuple whose presence is unconditional.
    pub fn insert_certain(&mut self, tuple: Tuple) {
        self.insert(tuple, Expr::True);
    }

    /// The annotation `R(t)`; `False` when the tuple is not in the support.
    pub fn annotation(&self, tuple: &Tuple) -> Expr {
        self.tuples.get(tuple).cloned().unwrap_or(Expr::False)
    }

    /// Whether the tuple is in the support.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains_key(tuple)
    }

    /// Size of the support `|supp(R)|`.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the support is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over `(tuple, annotation)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &Expr)> + '_ {
        self.tuples.iter()
    }

    /// Iterates over the support tuples.
    pub fn support(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.keys()
    }

    /// The annotations in unspecified order.
    pub fn annotations(&self) -> impl Iterator<Item = &Expr> + '_ {
        self.tuples.values()
    }

    /// All participants mentioned by any annotation.
    pub fn participants(&self) -> FxHashSet<ParticipantId> {
        let mut out = FxHashSet::default();
        for e in self.tuples.values() {
            e.collect_variables(&mut out);
        }
        out
    }

    /// Total length `L` of all annotations (number of variable occurrences),
    /// the size parameter of the paper's complexity bounds (Sec. 5.3).
    pub fn total_annotation_length(&self) -> usize {
        self.tuples.values().map(Expr::len).sum()
    }

    /// The relation obtained when participant `p` withdraws: every annotation
    /// is restricted with `p → False`; tuples whose annotation collapses to
    /// `False` drop out of the support.
    pub fn without_participant(&self, p: ParticipantId) -> KRelation {
        let mut out = KRelation::new(self.schema.iter().cloned());
        for (t, e) in &self.tuples {
            let restricted = e.restrict(p, false);
            if !restricted.is_false() {
                out.insert(t.clone(), restricted);
            }
        }
        out
    }

    /// The content of the relation when exactly the participants in `present`
    /// contribute: annotations are evaluated as Boolean expressions, tuples
    /// evaluating to `False` are dropped, the rest become certain.
    pub fn instantiate(&self, present: &FxHashSet<ParticipantId>) -> KRelation {
        let mut out = KRelation::new(self.schema.iter().cloned());
        for (t, e) in &self.tuples {
            if e.evaluate(&|p| present.contains(&p)) {
                out.insert_certain(t.clone());
            }
        }
        out
    }

    /// The tuples whose annotation mentions participant `p` in a way that is
    /// not removable, i.e. `R(t)` is not φ-equivalent to `R(t)|_{p→False}`.
    ///
    /// This is the *impact* of `p` at `R` (Def. 15). The φ-equivalence test is
    /// conservative and syntactic: an annotation counts as impacted when `p`
    /// occurs in it and the restriction changes the expression. For the
    /// annotations produced by positive relational algebra and subgraph
    /// counting this coincides with the definition.
    pub fn impact(&self, p: ParticipantId) -> Vec<&Tuple> {
        self.tuples
            .iter()
            .filter(|(_, e)| {
                if !e.contains_var(p) {
                    return false;
                }
                e.restrict(p, false) != **e
            })
            .map(|(t, _)| t)
            .collect()
    }
}

impl fmt::Debug for KRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "KRelation({} tuples) {{", self.tuples.len())?;
        let mut rows: Vec<String> = self
            .tuples
            .iter()
            .map(|(t, e)| format!("  {t} ↦ {e}"))
            .collect();
        rows.sort();
        for row in rows {
            writeln!(f, "{row}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(Tuple, Expr)> for KRelation {
    fn from_iter<I: IntoIterator<Item = (Tuple, Expr)>>(iter: I) -> Self {
        let mut r = KRelation::empty();
        for (t, e) in iter {
            r.insert(t, e);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn tup(name: &str) -> Tuple {
        Tuple::new([("t", name)])
    }

    #[test]
    fn insert_merges_duplicate_tuples_with_or() {
        let mut r = KRelation::new(["t"]);
        r.insert(tup("x"), Expr::var(p(0)));
        r.insert(tup("x"), Expr::var(p(1)));
        assert_eq!(r.len(), 1);
        assert_eq!(
            r.annotation(&tup("x")),
            Expr::or2(Expr::var(p(0)), Expr::var(p(1)))
        );
    }

    #[test]
    fn false_annotations_are_not_stored() {
        let mut r = KRelation::new(["t"]);
        r.insert(tup("x"), Expr::False);
        assert!(r.is_empty());
        assert_eq!(r.annotation(&tup("x")), Expr::False);
    }

    #[test]
    fn participants_and_length_are_collected() {
        let mut r = KRelation::new(["t"]);
        r.insert(tup("x"), Expr::conjunction_of_vars([p(0), p(1), p(2)]));
        r.insert(tup("y"), Expr::conjunction_of_vars([p(1), p(2), p(3)]));
        assert_eq!(r.participants().len(), 4);
        assert_eq!(r.total_annotation_length(), 6);
    }

    #[test]
    fn without_participant_drops_dependent_tuples() {
        let mut r = KRelation::new(["t"]);
        r.insert(tup("abc"), Expr::conjunction_of_vars([p(0), p(1), p(2)]));
        r.insert(tup("bcd"), Expr::conjunction_of_vars([p(1), p(2), p(3)]));
        let without_a = r.without_participant(p(0));
        assert_eq!(without_a.len(), 1);
        assert!(without_a.contains(&tup("bcd")));
    }

    #[test]
    fn instantiate_evaluates_annotations() {
        let mut r = KRelation::new(["t"]);
        r.insert(tup("ab"), Expr::conjunction_of_vars([p(0), p(1)]));
        r.insert(
            tup("bc"),
            Expr::and(vec![
                Expr::var(p(1)),
                Expr::var(p(2)),
                Expr::or2(Expr::var(p(0)), Expr::var(p(3))),
            ]),
        );
        let present: FxHashSet<ParticipantId> = [p(1), p(2), p(3)].into_iter().collect();
        let inst = r.instantiate(&present);
        assert_eq!(inst.len(), 1);
        assert!(inst.contains(&tup("bc")));
        assert!(inst.annotation(&tup("bc")).is_true());
    }

    #[test]
    fn impact_counts_tuples_mentioning_participant() {
        let mut r = KRelation::new(["t"]);
        r.insert(tup("abc"), Expr::conjunction_of_vars([p(0), p(1), p(2)]));
        r.insert(tup("bcd"), Expr::conjunction_of_vars([p(1), p(2), p(3)]));
        r.insert(tup("cde"), Expr::conjunction_of_vars([p(2), p(3), p(4)]));
        assert_eq!(r.impact(p(0)).len(), 1);
        assert_eq!(r.impact(p(2)).len(), 3);
        assert_eq!(r.impact(p(9)).len(), 0);
    }

    #[test]
    fn schema_grows_with_inserted_tuples() {
        let mut r = KRelation::empty();
        r.insert(Tuple::new([("a", 1i64), ("b", 2i64)]), Expr::True);
        assert_eq!(r.schema().len(), 2);
        assert!(r.schema().contains(&Attr::new("a")));
    }

    #[test]
    fn from_iterator_collects() {
        let r: KRelation = [
            (tup("x"), Expr::var(p(0))),
            (tup("y"), Expr::var(p(1))),
            (tup("x"), Expr::var(p(2))),
        ]
        .into_iter()
        .collect();
        assert_eq!(r.len(), 2);
    }
}
