//! Positive Boolean provenance expressions, the relaxation `φ`, K-relations
//! and positive relational algebra.
//!
//! This crate implements the data-model substrate of the recursive mechanism
//! (Chen & Zhou, SIGMOD 2013, Sec. 2.4 and 5.2):
//!
//! * [`expr::Expr`] — positive Boolean expressions over participant variables
//!   (no negation; only `∧`, `∨`, `True`, `False`).
//! * [`phi`] — the relaxation `φ : K → [0,1]^{[0,1]^P}` with
//!   `φ_{x∧y} = max(0, φ_x + φ_y − 1)` and `φ_{x∨y} = max(φ_x, φ_y)`, and the
//!   φ-sensitivities `S_{k,p}` bounding `∂φ_k/∂f(p)`.
//! * [`dnf`] — disjunctive/conjunctive normal forms and the canonical
//!   (absorption-reduced) DNF of a monotone expression.
//! * [`relation::KRelation`] — relations whose tuples are annotated with
//!   positive Boolean expressions (c-tables with positive conditions).
//! * [`algebra`] — the positive relational algebra of Green et al. lifted to
//!   annotated relations: union, projection, selection, natural join,
//!   renaming, product and intersection.
//! * [`annotate`] — safe annotation helpers for building sensitive base
//!   tables from per-participant data.

#![deny(missing_docs)]

pub mod algebra;
pub mod annotate;
pub mod dnf;
pub mod equiv;
pub mod expr;
pub mod fingerprint;
pub mod hash;
pub mod participant;
pub mod phi;
pub mod relation;
pub mod tuple;

pub use annotate::{AnnotatedDatabase, AnnotationRule, DeltaError};
pub use expr::Expr;
pub use participant::{ParticipantId, ParticipantUniverse};
pub use relation::KRelation;
pub use tuple::{Attr, Tuple, Value};
