//! Equivalence of annotations.
//!
//! Def. 19 of the paper calls two expressions equivalent when their relaxed
//! functions under `φ` coincide: `k₁ ∼ k₂ ⇔ φ_{k₁} = φ_{k₂}`. Equivalence
//! implies equal truth tables but is strictly finer: `(b₁∨b₂)∧(b₁∨b₃)` and
//! `b₁∨(b₂∧b₃)` agree on Boolean inputs yet differ under `φ`, which is why the
//! efficient mechanism must not rewrite one into the other.
//!
//! φ is invariant under the transformations listed in Sec. 5.2 (identity,
//! annihilator, associativity, distributivity of `∧` over `∨`). This module
//! provides:
//!
//! * [`phi_equivalent_sampled`] — a randomized check of `φ_{k₁} = φ_{k₂}`.
//!   Because both sides are piecewise-linear functions with breakpoints on a
//!   known lattice, agreement on a dense random sample is strong evidence of
//!   equality; it is used in tests and debug assertions, not in the privacy
//!   path.
//! * [`truth_table_equivalent`] — exact equality of the underlying monotone
//!   Boolean functions via canonical DNF.
//! * [`safe_after_withdrawal`] — the "safe annotation" check of Sec. 5.2: an
//!   annotation update after participant `p` opts out is safe when the new
//!   expression is φ-equivalent to `old|_{p→False}`.

use crate::dnf::Dnf;
use crate::expr::Expr;
use crate::hash::FxHashSet;
use crate::participant::ParticipantId;
use crate::phi::phi;

/// Randomized check that two expressions have the same relaxation `φ`.
///
/// Samples `samples` random assignments over the union of the two variable
/// sets (plus all Boolean corners when there are at most `12` variables) and
/// compares `φ` values within `1e-9`.
pub fn phi_equivalent_sampled<R: rand::Rng>(
    a: &Expr,
    b: &Expr,
    samples: usize,
    rng: &mut R,
) -> bool {
    let mut vars: FxHashSet<ParticipantId> = a.variables();
    vars.extend(b.variables());
    let vars: Vec<ParticipantId> = vars.into_iter().collect();
    let dim = vars.iter().map(|p| p.index() + 1).max().unwrap_or(0);

    let check = |f: &Vec<f64>| (phi(a, f) - phi(b, f)).abs() < 1e-9;

    // Boolean corners give exact truth-table agreement for small dimension.
    if vars.len() <= 12 {
        for bits in 0..(1u32 << vars.len()) {
            let mut f = vec![0.0; dim];
            for (i, p) in vars.iter().enumerate() {
                if (bits >> i) & 1 == 1 {
                    f[p.index()] = 1.0;
                }
            }
            if !check(&f) {
                return false;
            }
        }
    }

    for _ in 0..samples {
        let mut f = vec![0.0; dim];
        for p in &vars {
            // lint:allow(rng-confinement): Monte-Carlo equivalence probing draws from the caller's seeded RNG; this is offline verification, not a noisy release
            f[p.index()] = rng.gen_range(0.0..=1.0);
        }
        if !check(&f) {
            return false;
        }
    }
    true
}

/// Exact equality of the truth tables of two positive expressions, decided by
/// comparing canonical (prime-implicant) DNFs.
///
/// Returns `None` when either DNF expansion exceeds `max_clauses`.
pub fn truth_table_equivalent(a: &Expr, b: &Expr, max_clauses: usize) -> Option<bool> {
    let da = Dnf::expand(a, max_clauses).ok()?.canonicalize();
    let db = Dnf::expand(b, max_clauses).ok()?.canonicalize();
    Some(da == db)
}

/// Checks the safe-annotation condition of Sec. 5.2: after participant `p`
/// withdraws, the updated annotation `new` must be φ-equivalent to
/// `old|_{p→False}`.
///
/// The check is randomized (see [`phi_equivalent_sampled`]); it is intended
/// for tests and validation tooling around annotation pipelines.
pub fn safe_after_withdrawal<R: rand::Rng>(
    old: &Expr,
    new: &Expr,
    withdrawn: ParticipantId,
    samples: usize,
    rng: &mut R,
) -> bool {
    let restricted = old.restrict(withdrawn, false);
    phi_equivalent_sampled(&restricted, new, samples, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(i: u32) -> ParticipantId {
        ParticipantId(i)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5eed)
    }

    #[test]
    fn associativity_is_phi_invariant() {
        let lhs = Expr::And(vec![
            Expr::var(p(0)),
            Expr::And(vec![Expr::var(p(1)), Expr::var(p(2))]),
        ]);
        let rhs = Expr::And(vec![
            Expr::And(vec![Expr::var(p(0)), Expr::var(p(1))]),
            Expr::var(p(2)),
        ]);
        assert!(phi_equivalent_sampled(&lhs, &rhs, 200, &mut rng()));
    }

    #[test]
    fn distributivity_is_phi_invariant() {
        // x ∧ (y ∨ z) ~ (x ∧ y) ∨ (x ∧ z)
        let lhs = Expr::and2(Expr::var(p(0)), Expr::or2(Expr::var(p(1)), Expr::var(p(2))));
        let rhs = Expr::or2(
            Expr::and2(Expr::var(p(0)), Expr::var(p(1))),
            Expr::and2(Expr::var(p(0)), Expr::var(p(2))),
        );
        assert!(phi_equivalent_sampled(&lhs, &rhs, 200, &mut rng()));
    }

    #[test]
    fn truth_table_equal_but_not_phi_equivalent() {
        // The paper's running example (Sec. 2.4): (b1∨b2)∧(b1∨b3) vs b1∨(b2∧b3).
        let lhs = Expr::and2(
            Expr::or2(Expr::var(p(1)), Expr::var(p(2))),
            Expr::or2(Expr::var(p(1)), Expr::var(p(3))),
        );
        let rhs = Expr::or2(
            Expr::var(p(1)),
            Expr::and2(Expr::var(p(2)), Expr::var(p(3))),
        );
        assert_eq!(truth_table_equivalent(&lhs, &rhs, 100), Some(true));
        assert!(!phi_equivalent_sampled(&lhs, &rhs, 500, &mut rng()));
    }

    #[test]
    fn idempotent_collapse_is_not_phi_invariant() {
        let lhs = Expr::And(vec![Expr::var(p(0)), Expr::var(p(0))]);
        let rhs = Expr::var(p(0));
        assert!(!phi_equivalent_sampled(&lhs, &rhs, 500, &mut rng()));
        assert_eq!(truth_table_equivalent(&lhs, &rhs, 10), Some(true));
    }

    #[test]
    fn safe_annotation_after_withdrawal() {
        // Annotation of the bc tuple in Fig. 2(b): b ∧ c ∧ (a ∨ d).
        let old = Expr::and(vec![
            Expr::var(p(1)),
            Expr::var(p(2)),
            Expr::or2(Expr::var(p(0)), Expr::var(p(3))),
        ]);
        // After a withdraws, the condition becomes b ∧ c ∧ d.
        let new = Expr::conjunction_of_vars([p(1), p(2), p(3)]);
        assert!(safe_after_withdrawal(&old, &new, p(0), 200, &mut rng()));
        // Writing b ∧ c instead would NOT be safe.
        let wrong = Expr::conjunction_of_vars([p(1), p(2)]);
        assert!(!safe_after_withdrawal(&old, &wrong, p(0), 500, &mut rng()));
    }

    #[test]
    fn truth_table_equivalence_detects_differences() {
        let lhs = Expr::or2(Expr::var(p(0)), Expr::var(p(1)));
        let rhs = Expr::and2(Expr::var(p(0)), Expr::var(p(1)));
        assert_eq!(truth_table_equivalent(&lhs, &rhs, 10), Some(false));
    }
}
