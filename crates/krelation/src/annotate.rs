//! Safe annotation of sensitive base tables.
//!
//! Before the efficient mechanism can run, the sensitive database has to be
//! turned into a sensitive K-relation: every base-table tuple is annotated
//! with a positive Boolean expression stating which participants it depends
//! on (Sec. 3.2). Positive relational algebra then propagates the annotations
//! to the query output, and Sec. 5.2 shows this propagation is always *safe*
//! (neighbouring databases yield neighbouring K-relations).
//!
//! This module provides the typical annotation strategies:
//!
//! * [`annotate_per_tuple_owner`] — each tuple owned by exactly one
//!   participant (the classical one-row-per-person table).
//! * [`annotate_with`] — arbitrary per-tuple annotation derived from the
//!   tuple content (e.g. an edge table annotated with the conjunction of its
//!   endpoints for node privacy, or with a dedicated edge participant for
//!   edge privacy).
//! * [`AnnotatedDatabase`] — a named collection of annotated base tables plus
//!   the shared participant universe, the starting point for relational
//!   algebra pipelines.

use crate::expr::Expr;
use crate::hash::FxHashMap;
use crate::participant::{ParticipantId, ParticipantUniverse};
use crate::relation::KRelation;
use crate::tuple::Tuple;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide source of unique [`AnnotatedDatabase::instance_id`] values.
static NEXT_INSTANCE_ID: AtomicU64 = AtomicU64::new(1);

/// Annotates each tuple with a single participant variable chosen by `owner`.
///
/// This models the classical differential-privacy setting where each row
/// belongs to exactly one individual.
pub fn annotate_per_tuple_owner<I, F>(
    tuples: I,
    universe: &mut ParticipantUniverse,
    mut owner: F,
) -> KRelation
where
    I: IntoIterator<Item = Tuple>,
    F: FnMut(&Tuple) -> String,
{
    let mut out = KRelation::empty();
    for t in tuples {
        let label = owner(&t);
        let p = universe.intern(&label);
        out.insert(t, Expr::Var(p));
    }
    out
}

/// Annotates each tuple with an arbitrary expression derived from its
/// content.
pub fn annotate_with<I, F>(tuples: I, mut annotation: F) -> KRelation
where
    I: IntoIterator<Item = Tuple>,
    F: FnMut(&Tuple) -> Expr,
{
    let mut out = KRelation::empty();
    for t in tuples {
        let e = annotation(&t);
        out.insert(t, e);
    }
    out
}

/// A named collection of annotated base tables sharing one participant
/// universe — the "sensitive database turned into K-relations" that a
/// relational-algebra query plan consumes.
///
/// Every database carries a process-unique [`instance id`] and a monotone
/// [`annotation epoch`] that together identify *this content of this
/// database*: the epoch is bumped by every mutation (table insertion or
/// mutable universe access), and cloning assigns a fresh instance id, so two
/// databases that could ever diverge never share an `(instance, epoch)`
/// pair. Cross-query caches (the sequence cache of `rmdp-core`) hash both
/// into their keys, which makes "any mutation invalidates every cached
/// sequence of this database" hold by construction.
///
/// [`instance id`]: AnnotatedDatabase::instance_id
/// [`annotation epoch`]: AnnotatedDatabase::annotation_epoch
#[derive(Debug)]
pub struct AnnotatedDatabase {
    universe: ParticipantUniverse,
    tables: FxHashMap<String, KRelation>,
    instance_id: u64,
    epoch: u64,
}

impl Default for AnnotatedDatabase {
    fn default() -> Self {
        AnnotatedDatabase {
            universe: ParticipantUniverse::new(),
            tables: FxHashMap::default(),
            instance_id: NEXT_INSTANCE_ID.fetch_add(1, Ordering::Relaxed),
            epoch: 0,
        }
    }
}

impl Clone for AnnotatedDatabase {
    /// Clones the content under a **fresh instance id**. Reusing the id
    /// would let the original and the clone mutate independently to the same
    /// `(instance, epoch)` pair with different content — exactly the false
    /// cache collision the id exists to prevent.
    fn clone(&self) -> Self {
        AnnotatedDatabase {
            universe: self.universe.clone(),
            tables: self.tables.clone(),
            instance_id: NEXT_INSTANCE_ID.fetch_add(1, Ordering::Relaxed),
            epoch: self.epoch,
        }
    }
}

impl AnnotatedDatabase {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a table.
    pub fn insert_table(&mut self, name: &str, table: KRelation) {
        self.epoch += 1;
        self.tables.insert(name.to_owned(), table);
    }

    /// The process-unique identity of this database value (fresh for every
    /// `new()` and every `clone()`).
    pub fn instance_id(&self) -> u64 {
        self.instance_id
    }

    /// The mutation epoch: bumped by [`AnnotatedDatabase::insert_table`] and
    /// every [`AnnotatedDatabase::universe_mut`] access. Cache keys that
    /// include `(instance_id, annotation_epoch)` are invalidated by any
    /// mutation of the data or the participant universe.
    pub fn annotation_epoch(&self) -> u64 {
        self.epoch
    }

    /// Looks a table up by name.
    pub fn table(&self, name: &str) -> Option<&KRelation> {
        self.tables.get(name)
    }

    /// The shared participant universe.
    pub fn universe(&self) -> &ParticipantUniverse {
        &self.universe
    }

    /// Mutable access to the participant universe (for interning new
    /// participants while loading data). Conservatively bumps the annotation
    /// epoch — the universe defines `|P|`, so growing it changes every
    /// sequence even when no table changes.
    pub fn universe_mut(&mut self) -> &mut ParticipantUniverse {
        self.epoch += 1;
        &mut self.universe
    }

    /// All participant ids that occur in any table annotation.
    pub fn participants_in_use(&self) -> Vec<ParticipantId> {
        let mut ids: Vec<ParticipantId> = self
            .tables
            .values()
            .flat_map(|r| r.participants())
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Table names in sorted order.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Value;

    #[test]
    fn per_tuple_owner_annotation() {
        let tuples = vec![
            Tuple::new([("uid", 1i64), ("age", 30i64)]),
            Tuple::new([("uid", 2i64), ("age", 40i64)]),
        ];
        let mut universe = ParticipantUniverse::new();
        let r = annotate_per_tuple_owner(tuples, &mut universe, |t| {
            format!("user-{}", t.get_named("uid").unwrap())
        });
        assert_eq!(r.len(), 2);
        assert_eq!(universe.len(), 2);
        let ann = r.annotation(&Tuple::new([("uid", 1i64), ("age", 30i64)]));
        assert_eq!(ann, Expr::Var(universe.get("user-1").unwrap()));
    }

    #[test]
    fn annotate_with_custom_expression() {
        // Edge table annotated for node privacy: both endpoints must opt in.
        let universe = ParticipantUniverse::with_size(3);
        let edges = vec![
            Tuple::new([("u", 0i64), ("v", 1i64)]),
            Tuple::new([("u", 1i64), ("v", 2i64)]),
        ];
        let r = annotate_with(edges, |t| {
            let u = t.get_named("u").unwrap().as_int().unwrap() as u32;
            let v = t.get_named("v").unwrap().as_int().unwrap() as u32;
            Expr::conjunction_of_vars([ParticipantId(u), ParticipantId(v)])
        });
        assert_eq!(r.len(), 2);
        assert_eq!(r.participants().len(), 3);
        assert_eq!(universe.len(), 3);
    }

    #[test]
    fn annotated_database_round_trips_tables() {
        let mut db = AnnotatedDatabase::new();
        let alice = db.universe_mut().intern("alice");
        let bob = db.universe_mut().intern("bob");

        let mut friends = KRelation::new(["a", "b"]);
        friends.insert(
            Tuple::new([("a", Value::str("alice")), ("b", Value::str("bob"))]),
            Expr::conjunction_of_vars([alice, bob]),
        );
        db.insert_table("friends", friends);

        assert_eq!(db.table_names(), vec!["friends"]);
        assert_eq!(db.table("friends").unwrap().len(), 1);
        assert!(db.table("missing").is_none());
        assert_eq!(db.participants_in_use(), vec![alice, bob]);
    }

    #[test]
    fn every_mutation_bumps_the_epoch_and_clones_get_fresh_identities() {
        let mut db = AnnotatedDatabase::new();
        let e0 = db.annotation_epoch();
        let _ = db.universe_mut().intern("alice");
        assert!(db.annotation_epoch() > e0, "universe access must bump");
        let e1 = db.annotation_epoch();
        db.insert_table("t", KRelation::empty());
        assert!(db.annotation_epoch() > e1, "table insertion must bump");
        // Read-only access never bumps.
        let e2 = db.annotation_epoch();
        let _ = db.table("t");
        let _ = db.universe();
        let _ = db.table_names();
        assert_eq!(db.annotation_epoch(), e2);

        // Distinct databases — and clones — never share an instance id, so
        // divergent mutations can never produce an equal (instance, epoch).
        let other = AnnotatedDatabase::new();
        let cloned = db.clone();
        assert_ne!(db.instance_id(), other.instance_id());
        assert_ne!(db.instance_id(), cloned.instance_id());
        assert_eq!(cloned.annotation_epoch(), db.annotation_epoch());
    }
}
