//! Safe annotation of sensitive base tables.
//!
//! Before the efficient mechanism can run, the sensitive database has to be
//! turned into a sensitive K-relation: every base-table tuple is annotated
//! with a positive Boolean expression stating which participants it depends
//! on (Sec. 3.2). Positive relational algebra then propagates the annotations
//! to the query output, and Sec. 5.2 shows this propagation is always *safe*
//! (neighbouring databases yield neighbouring K-relations).
//!
//! This module provides the typical annotation strategies:
//!
//! * [`annotate_per_tuple_owner`] — each tuple owned by exactly one
//!   participant (the classical one-row-per-person table).
//! * [`annotate_with`] — arbitrary per-tuple annotation derived from the
//!   tuple content (e.g. an edge table annotated with the conjunction of its
//!   endpoints for node privacy, or with a dedicated edge participant for
//!   edge privacy).
//! * [`AnnotatedDatabase`] — a named collection of annotated base tables plus
//!   the shared participant universe, the starting point for relational
//!   algebra pipelines.

use crate::expr::Expr;
use crate::hash::FxHashMap;
use crate::participant::{ParticipantId, ParticipantUniverse};
use crate::relation::KRelation;
use crate::tuple::{Tuple, Value};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide source of unique [`AnnotatedDatabase::instance_id`] values.
static NEXT_INSTANCE_ID: AtomicU64 = AtomicU64::new(1);

/// Annotates each tuple with a single participant variable chosen by `owner`.
///
/// This models the classical differential-privacy setting where each row
/// belongs to exactly one individual.
pub fn annotate_per_tuple_owner<I, F>(
    tuples: I,
    universe: &mut ParticipantUniverse,
    mut owner: F,
) -> KRelation
where
    I: IntoIterator<Item = Tuple>,
    F: FnMut(&Tuple) -> String,
{
    let mut out = KRelation::empty();
    for t in tuples {
        let label = owner(&t);
        let p = universe.intern(&label);
        out.insert(t, Expr::Var(p));
    }
    out
}

/// Annotates each tuple with an arbitrary expression derived from its
/// content.
pub fn annotate_with<I, F>(tuples: I, mut annotation: F) -> KRelation
where
    I: IntoIterator<Item = Tuple>,
    F: FnMut(&Tuple) -> Expr,
{
    let mut out = KRelation::empty();
    for t in tuples {
        let e = annotation(&t);
        out.insert(t, e);
    }
    out
}

/// A named collection of annotated base tables sharing one participant
/// universe — the "sensitive database turned into K-relations" that a
/// relational-algebra query plan consumes.
///
/// Every database carries a process-unique [`instance id`] and a monotone
/// [`annotation epoch`] that together identify *this content of this
/// database*: the epoch is bumped by every mutation (table insertion or
/// mutable universe access), and cloning assigns a fresh instance id, so two
/// databases that could ever diverge never share an `(instance, epoch)`
/// pair. Cross-query caches (the sequence cache of `rmdp-core`) hash both
/// into their keys, which makes "any mutation invalidates every cached
/// sequence of this database" hold by construction.
///
/// [`instance id`]: AnnotatedDatabase::instance_id
/// [`annotation epoch`]: AnnotatedDatabase::annotation_epoch
#[derive(Debug)]
pub struct AnnotatedDatabase {
    universe: ParticipantUniverse,
    tables: FxHashMap<String, KRelation>,
    /// Declared public key domains: `table → column → values`. Public
    /// metadata (never derived from the sensitive rows), so mutating it does
    /// not bump the annotation epoch.
    domains: FxHashMap<String, FxHashMap<String, Vec<Value>>>,
    instance_id: u64,
    epoch: u64,
}

impl Default for AnnotatedDatabase {
    fn default() -> Self {
        AnnotatedDatabase {
            universe: ParticipantUniverse::new(),
            tables: FxHashMap::default(),
            domains: FxHashMap::default(),
            instance_id: NEXT_INSTANCE_ID.fetch_add(1, Ordering::Relaxed),
            epoch: 0,
        }
    }
}

impl Clone for AnnotatedDatabase {
    /// Clones the content under a **fresh instance id**. Reusing the id
    /// would let the original and the clone mutate independently to the same
    /// `(instance, epoch)` pair with different content — exactly the false
    /// cache collision the id exists to prevent.
    fn clone(&self) -> Self {
        AnnotatedDatabase {
            universe: self.universe.clone(),
            tables: self.tables.clone(),
            domains: self.domains.clone(),
            instance_id: NEXT_INSTANCE_ID.fetch_add(1, Ordering::Relaxed),
            epoch: self.epoch,
        }
    }
}

impl AnnotatedDatabase {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a table.
    pub fn insert_table(&mut self, name: &str, table: KRelation) {
        self.epoch += 1;
        self.tables.insert(name.to_owned(), table);
    }

    /// Declares the **public** value domain of `table.column` — the key set a
    /// `GROUP BY` over that column may range over.
    ///
    /// The domain must come from public knowledge (an enum of product
    /// categories, the 50 US states, …), **never** from the sensitive rows: a
    /// data-derived key set leaks which keys occur, before any noise is
    /// added. Declaring (or re-declaring) a domain does not bump the
    /// [`annotation epoch`](AnnotatedDatabase::annotation_epoch): the domain
    /// changes which per-group queries exist, not what any query answers, and
    /// per-group cache keys embed the key literal itself — so cached
    /// sequences stay valid across domain edits by construction.
    ///
    /// Duplicate values are dropped (first occurrence wins); the surviving
    /// order is the order grouped reports release their groups in. All
    /// values must be of one type (`Int` / `Str` / `Bool`) — a mixed domain
    /// is always a declaration bug, and a domain whose type differs from the
    /// column's stored values would silently release a noised zero for every
    /// key (equality across value types is `false`, SQL's "unknown is not
    /// true"), while still spending the report's full budget.
    ///
    /// # Panics
    ///
    /// Panics when `values` mixes value types.
    pub fn declare_public_domain<I>(&mut self, table: &str, column: &str, values: I)
    where
        I: IntoIterator<Item = Value>,
    {
        let mut domain: Vec<Value> = Vec::new();
        let mut seen: std::collections::HashSet<Value> = std::collections::HashSet::new();
        for v in values {
            assert!(
                domain.first().is_none_or(|first| {
                    std::mem::discriminant(first) == std::mem::discriminant(&v)
                }),
                "public domain for {table}.{column} mixes value types \
                 ({:?} vs {v:?})",
                domain[0],
            );
            if seen.insert(v.clone()) {
                domain.push(v);
            }
        }
        self.domains
            .entry(table.to_owned())
            .or_default()
            .insert(column.to_owned(), domain);
    }

    /// The declared public domain of `table.column`, if any.
    pub fn public_domain(&self, table: &str, column: &str) -> Option<&[Value]> {
        self.domains.get(table)?.get(column).map(Vec::as_slice)
    }

    /// The process-unique identity of this database value (fresh for every
    /// `new()` and every `clone()`).
    pub fn instance_id(&self) -> u64 {
        self.instance_id
    }

    /// The mutation epoch: bumped by [`AnnotatedDatabase::insert_table`] and
    /// every [`AnnotatedDatabase::universe_mut`] access. Cache keys that
    /// include `(instance_id, annotation_epoch)` are invalidated by any
    /// mutation of the data or the participant universe.
    pub fn annotation_epoch(&self) -> u64 {
        self.epoch
    }

    /// Looks a table up by name.
    pub fn table(&self, name: &str) -> Option<&KRelation> {
        self.tables.get(name)
    }

    /// The shared participant universe (read-only). Use this — not
    /// [`AnnotatedDatabase::universe_mut`] — for lookups: reading through the
    /// `mut` accessor bumps the annotation epoch and silently evicts every
    /// cached sequence of this database.
    pub fn universe(&self) -> &ParticipantUniverse {
        &self.universe
    }

    /// Interns `label` into the participant universe, bumping the annotation
    /// epoch **only when the universe actually grows**. Re-interning an
    /// existing participant is a read: it changes neither `|P|` nor any
    /// sequence, so it must not invalidate cached sequences the way a
    /// [`AnnotatedDatabase::universe_mut`] access would.
    pub fn intern(&mut self, label: &str) -> ParticipantId {
        if let Some(id) = self.universe.get(label) {
            return id;
        }
        self.epoch += 1;
        self.universe.intern(label)
    }

    /// Mutable access to the participant universe. Conservatively bumps the
    /// annotation epoch — the universe defines `|P|`, so growing it changes
    /// every sequence even when no table changes. Prefer
    /// [`AnnotatedDatabase::intern`] (which bumps only on actual growth) for
    /// loading data and [`AnnotatedDatabase::universe`] for read-only access;
    /// reach for this accessor only when you genuinely need `&mut` to the
    /// universe and accept the cache eviction.
    pub fn universe_mut(&mut self) -> &mut ParticipantUniverse {
        self.epoch += 1;
        &mut self.universe
    }

    /// All participant ids that occur in any table annotation.
    pub fn participants_in_use(&self) -> Vec<ParticipantId> {
        let mut ids: Vec<ParticipantId> = self
            .tables
            .values()
            .flat_map(|r| r.participants())
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Table names in sorted order.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Value;

    #[test]
    fn per_tuple_owner_annotation() {
        let tuples = vec![
            Tuple::new([("uid", 1i64), ("age", 30i64)]),
            Tuple::new([("uid", 2i64), ("age", 40i64)]),
        ];
        let mut universe = ParticipantUniverse::new();
        let r = annotate_per_tuple_owner(tuples, &mut universe, |t| {
            format!("user-{}", t.get_named("uid").unwrap())
        });
        assert_eq!(r.len(), 2);
        assert_eq!(universe.len(), 2);
        let ann = r.annotation(&Tuple::new([("uid", 1i64), ("age", 30i64)]));
        assert_eq!(ann, Expr::Var(universe.get("user-1").unwrap()));
    }

    #[test]
    fn annotate_with_custom_expression() {
        // Edge table annotated for node privacy: both endpoints must opt in.
        let universe = ParticipantUniverse::with_size(3);
        let edges = vec![
            Tuple::new([("u", 0i64), ("v", 1i64)]),
            Tuple::new([("u", 1i64), ("v", 2i64)]),
        ];
        let r = annotate_with(edges, |t| {
            let u = t.get_named("u").unwrap().as_int().unwrap() as u32;
            let v = t.get_named("v").unwrap().as_int().unwrap() as u32;
            Expr::conjunction_of_vars([ParticipantId(u), ParticipantId(v)])
        });
        assert_eq!(r.len(), 2);
        assert_eq!(r.participants().len(), 3);
        assert_eq!(universe.len(), 3);
    }

    #[test]
    fn annotated_database_round_trips_tables() {
        let mut db = AnnotatedDatabase::new();
        let alice = db.universe_mut().intern("alice");
        let bob = db.universe_mut().intern("bob");

        let mut friends = KRelation::new(["a", "b"]);
        friends.insert(
            Tuple::new([("a", Value::str("alice")), ("b", Value::str("bob"))]),
            Expr::conjunction_of_vars([alice, bob]),
        );
        db.insert_table("friends", friends);

        assert_eq!(db.table_names(), vec!["friends"]);
        assert_eq!(db.table("friends").unwrap().len(), 1);
        assert!(db.table("missing").is_none());
        assert_eq!(db.participants_in_use(), vec![alice, bob]);
    }

    #[test]
    fn every_mutation_bumps_the_epoch_and_clones_get_fresh_identities() {
        let mut db = AnnotatedDatabase::new();
        let e0 = db.annotation_epoch();
        let _ = db.universe_mut().intern("alice");
        assert!(db.annotation_epoch() > e0, "universe access must bump");
        let e1 = db.annotation_epoch();
        db.insert_table("t", KRelation::empty());
        assert!(db.annotation_epoch() > e1, "table insertion must bump");
        // Read-only access never bumps.
        let e2 = db.annotation_epoch();
        let _ = db.table("t");
        let _ = db.universe();
        let _ = db.table_names();
        assert_eq!(db.annotation_epoch(), e2);

        // Distinct databases — and clones — never share an instance id, so
        // divergent mutations can never produce an equal (instance, epoch).
        let other = AnnotatedDatabase::new();
        let cloned = db.clone();
        assert_ne!(db.instance_id(), other.instance_id());
        assert_ne!(db.instance_id(), cloned.instance_id());
        assert_eq!(cloned.annotation_epoch(), db.annotation_epoch());
    }

    #[test]
    fn intern_bumps_the_epoch_only_on_actual_growth() {
        let mut db = AnnotatedDatabase::new();
        let e0 = db.annotation_epoch();
        let alice = db.intern("alice");
        assert!(db.annotation_epoch() > e0, "a new participant must bump");

        // Re-interning, reads through `universe()`, and lookups are all
        // epoch-neutral: none of them may evict cached sequences.
        let e1 = db.annotation_epoch();
        assert_eq!(db.intern("alice"), alice);
        assert_eq!(db.universe().get("alice"), Some(alice));
        assert_eq!(db.universe().len(), 1);
        assert_eq!(db.annotation_epoch(), e1);

        // The conservative `universe_mut` accessor still bumps on every
        // access — that is exactly why loaders should prefer `intern`.
        let _ = db.universe_mut();
        assert!(db.annotation_epoch() > e1);
    }

    #[test]
    fn public_domains_are_declared_deduplicated_and_epoch_neutral() {
        let mut db = AnnotatedDatabase::new();
        db.insert_table("visits", KRelation::new(["person", "place"]));
        let epoch = db.annotation_epoch();

        assert_eq!(db.public_domain("visits", "place"), None);
        db.declare_public_domain(
            "visits",
            "place",
            [
                Value::str("museum"),
                Value::str("cafe"),
                Value::str("museum"), // duplicate: dropped, first wins
            ],
        );
        assert_eq!(
            db.public_domain("visits", "place"),
            Some(&[Value::str("museum"), Value::str("cafe")][..])
        );
        assert_eq!(db.public_domain("visits", "person"), None);
        assert_eq!(db.public_domain("nowhere", "place"), None);

        // Declaring public metadata never bumps the epoch; clones carry it.
        assert_eq!(db.annotation_epoch(), epoch);
        let cloned = db.clone();
        assert_eq!(
            cloned.public_domain("visits", "place").map(<[Value]>::len),
            Some(2)
        );

        // Re-declaring replaces the domain wholesale.
        db.declare_public_domain("visits", "place", [Value::str("park")]);
        assert_eq!(
            db.public_domain("visits", "place"),
            Some(&[Value::str("park")][..])
        );
        assert_eq!(db.annotation_epoch(), epoch);
    }

    #[test]
    #[should_panic(expected = "mixes value types")]
    fn mixed_type_public_domains_are_rejected_at_declaration() {
        // A domain whose type differs from the column's values would release
        // a noised zero for every key while spending the report's budget; a
        // *mixed* domain is unambiguously that bug, caught eagerly.
        let mut db = AnnotatedDatabase::new();
        db.declare_public_domain("visits", "place", [Value::str("museum"), Value::Int(3)]);
    }
}
