//! Safe annotation of sensitive base tables.
//!
//! Before the efficient mechanism can run, the sensitive database has to be
//! turned into a sensitive K-relation: every base-table tuple is annotated
//! with a positive Boolean expression stating which participants it depends
//! on (Sec. 3.2). Positive relational algebra then propagates the annotations
//! to the query output, and Sec. 5.2 shows this propagation is always *safe*
//! (neighbouring databases yield neighbouring K-relations).
//!
//! This module provides the typical annotation strategies:
//!
//! * [`annotate_per_tuple_owner`] — each tuple owned by exactly one
//!   participant (the classical one-row-per-person table).
//! * [`annotate_with`] — arbitrary per-tuple annotation derived from the
//!   tuple content (e.g. an edge table annotated with the conjunction of its
//!   endpoints for node privacy, or with a dedicated edge participant for
//!   edge privacy).
//! * [`AnnotatedDatabase`] — a named collection of annotated base tables plus
//!   the shared participant universe, the starting point for relational
//!   algebra pipelines.
//!
//! ## Epoch discipline
//!
//! Cross-query caches key cached sequences on *which data a plan read*. To
//! scope invalidation to exactly the tables a mutation touched, every
//! database tracks one epoch stamp **per table** plus one for the
//! participant universe. Stamps are drawn from a process-wide monotone
//! clock, so a stamp value is globally unique: two databases (or two forks
//! of one database — see [`AnnotatedDatabase::fork_with_delta`]) agree on a
//! table's stamp only if the table content is literally the same un-mutated
//! value. A cache key that hashes the universe stamp and the stamps of the
//! tables a plan scans is therefore invalidated by exactly the mutations
//! that could change the plan's answer, and survives every other one.

use crate::expr::Expr;
use crate::hash::FxHashMap;
use crate::participant::{ParticipantId, ParticipantUniverse};
use crate::relation::KRelation;
use crate::tuple::{Tuple, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide source of unique [`AnnotatedDatabase::instance_id`] values.
static NEXT_INSTANCE_ID: AtomicU64 = AtomicU64::new(1);

/// Process-wide monotone clock behind every epoch stamp. Starting at 1 keeps
/// 0 free as "never stamped".
static NEXT_EPOCH_STAMP: AtomicU64 = AtomicU64::new(1);

fn next_epoch_stamp() -> u64 {
    NEXT_EPOCH_STAMP.fetch_add(1, Ordering::Relaxed)
}

/// Annotates each tuple with a single participant variable chosen by `owner`.
///
/// This models the classical differential-privacy setting where each row
/// belongs to exactly one individual.
pub fn annotate_per_tuple_owner<I, F>(
    tuples: I,
    universe: &mut ParticipantUniverse,
    mut owner: F,
) -> KRelation
where
    I: IntoIterator<Item = Tuple>,
    F: FnMut(&Tuple) -> String,
{
    let mut out = KRelation::empty();
    for t in tuples {
        let label = owner(&t);
        let p = universe.intern(&label);
        out.insert(t, Expr::Var(p));
    }
    out
}

/// Annotates each tuple with an arbitrary expression derived from its
/// content.
pub fn annotate_with<I, F>(tuples: I, mut annotation: F) -> KRelation
where
    I: IntoIterator<Item = Tuple>,
    F: FnMut(&Tuple) -> Expr,
{
    let mut out = KRelation::empty();
    for t in tuples {
        let e = annotation(&t);
        out.insert(t, e);
    }
    out
}

/// How tuples appended to a table through [`AnnotatedDatabase::apply_delta`]
/// derive their annotation from their own columns.
///
/// A rule is declared once per table (public schema metadata, never derived
/// from the sensitive rows, so declaring one is epoch-neutral) and applied to
/// every ingested row. The participant label of a column is the plain
/// display form of its value prefixed with the column name
/// (`"uid:42"`, `"node:alice"`), so initial loads that want ingest to
/// recognise their participants should intern the same labels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnnotationRule {
    /// Each row is owned by exactly one participant named by this column
    /// (the classical one-row-per-person table): annotation `Var(owner)`.
    OwnerColumn(String),
    /// Each row depends on the conjunction of the participants named by
    /// these columns (e.g. an edge table under node privacy).
    OwnerColumns(Vec<String>),
}

impl AnnotationRule {
    /// The participant label an owner column derives from a value.
    pub fn owner_label(column: &str, value: &Value) -> String {
        format!("{column}:{value}")
    }

    fn columns(&self) -> impl Iterator<Item = &str> {
        match self {
            AnnotationRule::OwnerColumn(c) => std::slice::from_ref(c),
            AnnotationRule::OwnerColumns(cs) => cs.as_slice(),
        }
        .iter()
        .map(String::as_str)
    }
}

/// Why a delta could not be applied. Every error leaves the database — and
/// all of its epoch stamps — exactly as it was: deltas are all-or-nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// The named table does not exist; deltas append, they never create.
    UnknownTable(String),
    /// The table has no [`AnnotationRule`], so raw tuples cannot be
    /// annotated. Use [`AnnotatedDatabase::apply_annotated_delta`] or declare
    /// a rule first.
    NoAnnotationRule(String),
    /// An ingested row is missing a column the table's rule needs.
    MissingColumn {
        /// The delta's target table.
        table: String,
        /// The column the rule needed but the row lacked.
        column: String,
    },
    /// An explicitly annotated delta references a participant id outside the
    /// universe.
    UnknownParticipant {
        /// The delta's target table.
        table: String,
        /// The out-of-universe participant id.
        id: ParticipantId,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::UnknownTable(t) => write!(f, "delta targets unknown table {t:?}"),
            DeltaError::NoAnnotationRule(t) => {
                write!(f, "table {t:?} has no annotation rule for raw-tuple deltas")
            }
            DeltaError::MissingColumn { table, column } => {
                write!(f, "delta row for {table:?} is missing column {column:?}")
            }
            DeltaError::UnknownParticipant { table, id } => {
                write!(
                    f,
                    "delta for {table:?} references unknown participant {id:?}"
                )
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// A named collection of annotated base tables sharing one participant
/// universe — the "sensitive database turned into K-relations" that a
/// relational-algebra query plan consumes.
///
/// Every database carries a process-unique [`instance id`] and per-table /
/// per-universe epoch stamps drawn from a process-wide monotone clock: a
/// table's stamp is replaced on every mutation of that table (and only
/// then), the universe stamp on every growth of the participant universe.
/// Cloning assigns a fresh instance id, so two databases that could ever
/// diverge never share an `(instance, stamps)` combination — except through
/// [`AnnotatedDatabase::fork_with_delta`], whose children keep the instance
/// id precisely so that the stamps of *untouched* tables keep matching (the
/// shared content is literally the same [`Arc`]'d relation). Cross-query
/// caches (the sequence cache of `rmdp-core`) hash the instance id, the
/// universe stamp and the stamps of the tables a plan scans into their keys,
/// which scopes "a mutation invalidates cached sequences" to exactly the
/// queries that read the mutated table.
///
/// [`instance id`]: AnnotatedDatabase::instance_id
#[derive(Debug)]
pub struct AnnotatedDatabase {
    universe: ParticipantUniverse,
    /// Tables behind `Arc` so forked snapshots share untouched tables
    /// copy-on-write ([`AnnotatedDatabase::fork_with_delta`]).
    tables: FxHashMap<String, Arc<KRelation>>,
    /// Declared public key domains: `table → column → values`. Public
    /// metadata (never derived from the sensitive rows), so mutating it does
    /// not bump any epoch.
    domains: FxHashMap<String, FxHashMap<String, Vec<Value>>>,
    /// Declared ingestion rules: `table → rule`. Public schema metadata,
    /// epoch-neutral like `domains`.
    rules: FxHashMap<String, AnnotationRule>,
    instance_id: u64,
    /// Epoch stamp per table, replaced on every mutation of that table.
    table_epochs: FxHashMap<String, u64>,
    /// Epoch stamp of the participant universe, replaced on growth (and on
    /// conservative [`AnnotatedDatabase::universe_mut`] access).
    universe_epoch: u64,
    /// The newest stamp ever applied to this database — the backward
    /// compatible "any mutation bumps it" epoch.
    latest_epoch: u64,
}

impl Default for AnnotatedDatabase {
    fn default() -> Self {
        AnnotatedDatabase {
            universe: ParticipantUniverse::new(),
            tables: FxHashMap::default(),
            domains: FxHashMap::default(),
            rules: FxHashMap::default(),
            instance_id: NEXT_INSTANCE_ID.fetch_add(1, Ordering::Relaxed),
            table_epochs: FxHashMap::default(),
            universe_epoch: 0,
            latest_epoch: 0,
        }
    }
}

impl Clone for AnnotatedDatabase {
    /// Clones the content under a **fresh instance id**. Reusing the id
    /// would let the original and the clone mutate independently, and
    /// although every mutation takes a globally unique stamp, a scoped cache
    /// key only hashes the stamps of the tables a plan *scans* — a clone
    /// must therefore not be mistaken for its origin. (The controlled
    /// exception is [`AnnotatedDatabase::fork_with_delta`].) Table contents
    /// are shared (`Arc`), so cloning is cheap.
    fn clone(&self) -> Self {
        AnnotatedDatabase {
            universe: self.universe.clone(),
            tables: self.tables.clone(),
            domains: self.domains.clone(),
            rules: self.rules.clone(),
            instance_id: NEXT_INSTANCE_ID.fetch_add(1, Ordering::Relaxed),
            table_epochs: self.table_epochs.clone(),
            universe_epoch: self.universe_epoch,
            latest_epoch: self.latest_epoch,
        }
    }
}

impl AnnotatedDatabase {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stamps one table with a fresh epoch.
    fn stamp_table(&mut self, name: &str) {
        let stamp = next_epoch_stamp();
        self.table_epochs.insert(name.to_owned(), stamp);
        self.latest_epoch = stamp;
    }

    /// Stamps the participant universe with a fresh epoch.
    fn stamp_universe(&mut self) {
        let stamp = next_epoch_stamp();
        self.universe_epoch = stamp;
        self.latest_epoch = stamp;
    }

    /// Registers (or replaces) a table, stamping its epoch.
    pub fn insert_table(&mut self, name: &str, table: KRelation) {
        self.stamp_table(name);
        self.tables.insert(name.to_owned(), Arc::new(table));
    }

    /// Declares the **public** value domain of `table.column` — the key set a
    /// `GROUP BY` over that column may range over.
    ///
    /// The domain must come from public knowledge (an enum of product
    /// categories, the 50 US states, …), **never** from the sensitive rows: a
    /// data-derived key set leaks which keys occur, before any noise is
    /// added. Declaring (or re-declaring) a domain does not stamp any epoch:
    /// the domain changes which per-group queries exist, not what any query
    /// answers, and per-group cache keys embed the key literal itself — so
    /// cached sequences stay valid across domain edits by construction.
    ///
    /// Duplicate values are dropped (first occurrence wins); the surviving
    /// order is the order grouped reports release their groups in. All
    /// values must be of one type (`Int` / `Str` / `Bool`) — a mixed domain
    /// is always a declaration bug, and a domain whose type differs from the
    /// column's stored values would silently release a noised zero for every
    /// key (equality across value types is `false`, SQL's "unknown is not
    /// true"), while still spending the report's full budget.
    ///
    /// # Panics
    ///
    /// Panics when `values` mixes value types.
    pub fn declare_public_domain<I>(&mut self, table: &str, column: &str, values: I)
    where
        I: IntoIterator<Item = Value>,
    {
        let mut domain: Vec<Value> = Vec::new();
        let mut seen: std::collections::HashSet<Value> = std::collections::HashSet::new();
        for v in values {
            assert!(
                domain.first().is_none_or(|first| {
                    std::mem::discriminant(first) == std::mem::discriminant(&v)
                }),
                "public domain for {table}.{column} mixes value types \
                 ({:?} vs {v:?})",
                domain[0],
            );
            if seen.insert(v.clone()) {
                domain.push(v);
            }
        }
        self.domains
            .entry(table.to_owned())
            .or_default()
            .insert(column.to_owned(), domain);
    }

    /// The declared public domain of `table.column`, if any.
    pub fn public_domain(&self, table: &str, column: &str) -> Option<&[Value]> {
        self.domains.get(table)?.get(column).map(Vec::as_slice)
    }

    /// Declares how raw tuples appended to `table` through
    /// [`AnnotatedDatabase::apply_delta`] derive their annotation. Schema
    /// metadata: declaring (or re-declaring) a rule stamps no epoch — it
    /// changes how *future* rows are annotated, not what any existing query
    /// answers.
    pub fn declare_annotation_rule(&mut self, table: &str, rule: AnnotationRule) {
        self.rules.insert(table.to_owned(), rule);
    }

    /// The declared ingestion rule of `table`, if any.
    pub fn annotation_rule(&self, table: &str) -> Option<&AnnotationRule> {
        self.rules.get(table)
    }

    /// The process-unique identity of this database value (fresh for every
    /// `new()` and every `clone()`; preserved across
    /// [`AnnotatedDatabase::fork_with_delta`]).
    pub fn instance_id(&self) -> u64 {
        self.instance_id
    }

    /// The newest epoch stamp ever applied to this database: replaced by
    /// every table mutation and every universe growth. Coarse by design —
    /// cache keys that want delta-scoped invalidation should hash
    /// [`AnnotatedDatabase::table_epoch`] of the scanned tables and
    /// [`AnnotatedDatabase::universe_epoch`] instead.
    pub fn annotation_epoch(&self) -> u64 {
        self.latest_epoch
    }

    /// The epoch stamp of one table: replaced by exactly the mutations that
    /// touch this table ([`AnnotatedDatabase::insert_table`],
    /// [`AnnotatedDatabase::apply_delta`]). 0 for tables that do not exist.
    pub fn table_epoch(&self, name: &str) -> u64 {
        self.table_epochs.get(name).copied().unwrap_or(0)
    }

    /// The epoch stamp of the participant universe: replaced when the
    /// universe grows (a new participant changes `|P|` and therefore every
    /// sequence), and by every conservative
    /// [`AnnotatedDatabase::universe_mut`] access.
    pub fn universe_epoch(&self) -> u64 {
        self.universe_epoch
    }

    /// Every epoch stamp currently live on this database: the universe stamp
    /// plus one per table, in unspecified order. This is the validity set
    /// for stale-entry sweeps — an epoch-scoped cache key built from stamps
    /// outside this set can never be produced by this database again
    /// (stamps are globally unique and never reused).
    pub fn current_epoch_stamps(&self) -> Vec<u64> {
        let mut stamps = Vec::with_capacity(self.table_epochs.len() + 1);
        stamps.push(self.universe_epoch);
        stamps.extend(self.table_epochs.values().copied());
        stamps
    }

    /// Looks a table up by name.
    pub fn table(&self, name: &str) -> Option<&KRelation> {
        self.tables.get(name).map(Arc::as_ref)
    }

    /// The shared participant universe (read-only). Use this — not
    /// [`AnnotatedDatabase::universe_mut`] — for lookups: reading through the
    /// `mut` accessor stamps the universe epoch and silently evicts every
    /// cached sequence of this database.
    pub fn universe(&self) -> &ParticipantUniverse {
        &self.universe
    }

    /// Interns `label` into the participant universe, stamping the universe
    /// epoch **only when the universe actually grows**. Re-interning an
    /// existing participant is a read: it changes neither `|P|` nor any
    /// sequence, so it must not invalidate cached sequences the way a
    /// [`AnnotatedDatabase::universe_mut`] access would.
    pub fn intern(&mut self, label: &str) -> ParticipantId {
        if let Some(id) = self.universe.get(label) {
            return id;
        }
        self.stamp_universe();
        self.universe.intern(label)
    }

    /// Mutable access to the participant universe. Conservatively stamps the
    /// universe epoch — the universe defines `|P|`, so growing it changes
    /// every sequence even when no table changes. Prefer
    /// [`AnnotatedDatabase::intern`] (which stamps only on actual growth) for
    /// loading data and [`AnnotatedDatabase::universe`] for read-only access;
    /// reach for this accessor only when you genuinely need `&mut` to the
    /// universe and accept the cache eviction.
    pub fn universe_mut(&mut self) -> &mut ParticipantUniverse {
        self.stamp_universe();
        &mut self.universe
    }

    /// Appends explicitly annotated tuples to `table`, stamping **only that
    /// table's** epoch (annotations may only reference participants already
    /// in the universe, so the universe stamp never moves). All-or-nothing:
    /// on any error the database is untouched.
    pub fn apply_annotated_delta<I>(&mut self, table: &str, rows: I) -> Result<usize, DeltaError>
    where
        I: IntoIterator<Item = (Tuple, Expr)>,
    {
        if !self.tables.contains_key(table) {
            return Err(DeltaError::UnknownTable(table.to_owned()));
        }
        let rows: Vec<(Tuple, Expr)> = rows.into_iter().collect();
        let known = self.universe.len();
        for (_, expr) in &rows {
            if let Some(&id) = expr.variables().iter().find(|id| id.index() >= known) {
                return Err(DeltaError::UnknownParticipant {
                    table: table.to_owned(),
                    id,
                });
            }
        }
        let appended = rows.len();
        if appended == 0 {
            // An empty delta mutates nothing, so it must not invalidate
            // anything either.
            return Ok(0);
        }
        let relation = Arc::make_mut(self.tables.get_mut(table).expect("presence checked above"));
        for (tuple, expr) in rows {
            relation.insert(tuple, expr);
        }
        self.stamp_table(table);
        Ok(appended)
    }

    /// Appends raw tuples to `table`, annotating each through the table's
    /// declared [`AnnotationRule`], and stamps **only that table's** epoch.
    /// Participant lookups are intern-only — a row owned by an already-known
    /// participant never moves the universe stamp, so queries over other
    /// tables keep their cache keys byte-for-byte. All-or-nothing: on any
    /// error the database (including every epoch stamp) is untouched.
    pub fn apply_delta<I>(&mut self, table: &str, rows: I) -> Result<usize, DeltaError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        if !self.tables.contains_key(table) {
            return Err(DeltaError::UnknownTable(table.to_owned()));
        }
        let rule = self
            .rules
            .get(table)
            .ok_or_else(|| DeltaError::NoAnnotationRule(table.to_owned()))?
            .clone();

        // Derive every label before mutating anything (all-or-nothing), then
        // intern: only genuinely new participants stamp the universe.
        let rows: Vec<Tuple> = rows.into_iter().collect();
        let mut labels: Vec<Vec<String>> = Vec::with_capacity(rows.len());
        for row in &rows {
            let mut owners = Vec::new();
            for column in rule.columns() {
                let value = row
                    .get_named(column)
                    .ok_or_else(|| DeltaError::MissingColumn {
                        table: table.to_owned(),
                        column: column.to_owned(),
                    })?;
                owners.push(AnnotationRule::owner_label(column, value));
            }
            labels.push(owners);
        }
        if rows.is_empty() {
            return Ok(0);
        }

        let mut annotated = Vec::with_capacity(rows.len());
        for (row, owners) in rows.into_iter().zip(labels) {
            let ids: Vec<ParticipantId> = owners.iter().map(|l| self.intern(l)).collect();
            let expr = if ids.len() == 1 {
                Expr::Var(ids[0])
            } else {
                Expr::conjunction_of_vars(ids)
            };
            annotated.push((row, expr));
        }
        self.apply_annotated_delta(table, annotated)
    }

    /// A copy-on-write fork of this database with `rows` appended to
    /// `table` — the building block of versioned catalog snapshots. The fork
    /// **keeps the instance id**: untouched tables share both their content
    /// (the same `Arc`'d relations) and their epoch stamps, so cached
    /// sequences keyed on them keep hitting, while the touched table gets a
    /// globally unique fresh stamp that can never collide with any other
    /// database state.
    pub fn fork_with_delta<I>(&self, table: &str, rows: I) -> Result<Self, DeltaError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut fork = self.clone();
        fork.instance_id = self.instance_id;
        fork.apply_delta(table, rows)?;
        Ok(fork)
    }

    /// All participant ids that occur in any table annotation.
    pub fn participants_in_use(&self) -> Vec<ParticipantId> {
        let mut ids: Vec<ParticipantId> = self
            .tables
            .values()
            .flat_map(|r| r.participants())
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Table names in sorted order.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Value;

    #[test]
    fn per_tuple_owner_annotation() {
        let tuples = vec![
            Tuple::new([("uid", 1i64), ("age", 30i64)]),
            Tuple::new([("uid", 2i64), ("age", 40i64)]),
        ];
        let mut universe = ParticipantUniverse::new();
        let r = annotate_per_tuple_owner(tuples, &mut universe, |t| {
            format!("user-{}", t.get_named("uid").unwrap())
        });
        assert_eq!(r.len(), 2);
        assert_eq!(universe.len(), 2);
        let ann = r.annotation(&Tuple::new([("uid", 1i64), ("age", 30i64)]));
        assert_eq!(ann, Expr::Var(universe.get("user-1").unwrap()));
    }

    #[test]
    fn annotate_with_custom_expression() {
        // Edge table annotated for node privacy: both endpoints must opt in.
        let universe = ParticipantUniverse::with_size(3);
        let edges = vec![
            Tuple::new([("u", 0i64), ("v", 1i64)]),
            Tuple::new([("u", 1i64), ("v", 2i64)]),
        ];
        let r = annotate_with(edges, |t| {
            let u = t.get_named("u").unwrap().as_int().unwrap() as u32;
            let v = t.get_named("v").unwrap().as_int().unwrap() as u32;
            Expr::conjunction_of_vars([ParticipantId(u), ParticipantId(v)])
        });
        assert_eq!(r.len(), 2);
        assert_eq!(r.participants().len(), 3);
        assert_eq!(universe.len(), 3);
    }

    #[test]
    fn annotated_database_round_trips_tables() {
        let mut db = AnnotatedDatabase::new();
        let alice = db.universe_mut().intern("alice");
        let bob = db.universe_mut().intern("bob");

        let mut friends = KRelation::new(["a", "b"]);
        friends.insert(
            Tuple::new([("a", Value::str("alice")), ("b", Value::str("bob"))]),
            Expr::conjunction_of_vars([alice, bob]),
        );
        db.insert_table("friends", friends);

        assert_eq!(db.table_names(), vec!["friends"]);
        assert_eq!(db.table("friends").unwrap().len(), 1);
        assert!(db.table("missing").is_none());
        assert_eq!(db.participants_in_use(), vec![alice, bob]);
    }

    #[test]
    fn every_mutation_bumps_the_epoch_and_clones_get_fresh_identities() {
        let mut db = AnnotatedDatabase::new();
        let e0 = db.annotation_epoch();
        let _ = db.universe_mut().intern("alice");
        assert!(db.annotation_epoch() > e0, "universe access must bump");
        let e1 = db.annotation_epoch();
        db.insert_table("t", KRelation::empty());
        assert!(db.annotation_epoch() > e1, "table insertion must bump");
        // Read-only access never bumps.
        let e2 = db.annotation_epoch();
        let _ = db.table("t");
        let _ = db.universe();
        let _ = db.table_names();
        assert_eq!(db.annotation_epoch(), e2);

        // Distinct databases — and clones — never share an instance id, so
        // divergent mutations can never produce an equal (instance, epoch).
        let other = AnnotatedDatabase::new();
        let cloned = db.clone();
        assert_ne!(db.instance_id(), other.instance_id());
        assert_ne!(db.instance_id(), cloned.instance_id());
        assert_eq!(cloned.annotation_epoch(), db.annotation_epoch());
    }

    #[test]
    fn intern_bumps_the_epoch_only_on_actual_growth() {
        let mut db = AnnotatedDatabase::new();
        let e0 = db.annotation_epoch();
        let alice = db.intern("alice");
        assert!(db.annotation_epoch() > e0, "a new participant must bump");

        // Re-interning, reads through `universe()`, and lookups are all
        // epoch-neutral: none of them may evict cached sequences.
        let e1 = db.annotation_epoch();
        assert_eq!(db.intern("alice"), alice);
        assert_eq!(db.universe().get("alice"), Some(alice));
        assert_eq!(db.universe().len(), 1);
        assert_eq!(db.annotation_epoch(), e1);

        // The conservative `universe_mut` accessor still bumps on every
        // access — that is exactly why loaders should prefer `intern`.
        let _ = db.universe_mut();
        assert!(db.annotation_epoch() > e1);
    }

    #[test]
    fn epochs_are_scoped_per_table() {
        let mut db = AnnotatedDatabase::new();
        db.insert_table("a", KRelation::new(["x"]));
        db.insert_table("b", KRelation::new(["y"]));
        let (ea, eb, eu) = (
            db.table_epoch("a"),
            db.table_epoch("b"),
            db.universe_epoch(),
        );
        assert_ne!(ea, eb, "stamps are globally unique");
        assert_eq!(db.table_epoch("missing"), 0);

        // Replacing `a` restamps `a` and only `a`.
        db.insert_table("a", KRelation::new(["x"]));
        assert_ne!(db.table_epoch("a"), ea);
        assert_eq!(db.table_epoch("b"), eb);
        assert_eq!(db.universe_epoch(), eu);

        // Universe growth stamps the universe and no table.
        let ea = db.table_epoch("a");
        let _ = db.intern("alice");
        assert_ne!(db.universe_epoch(), eu);
        assert_eq!(db.table_epoch("a"), ea);
        assert_eq!(db.table_epoch("b"), eb);

        // The validity set is the universe stamp plus one per table.
        let mut stamps = db.current_epoch_stamps();
        stamps.sort_unstable();
        let mut expected = vec![
            db.universe_epoch(),
            db.table_epoch("a"),
            db.table_epoch("b"),
        ];
        expected.sort_unstable();
        assert_eq!(stamps, expected);
    }

    #[test]
    fn apply_delta_stamps_only_the_touched_table() {
        let mut db = AnnotatedDatabase::new();
        db.insert_table("visits", KRelation::new(["person", "place"]));
        db.insert_table("payments", KRelation::new(["person", "amount"]));
        db.declare_annotation_rule("visits", AnnotationRule::OwnerColumn("person".into()));
        // Pre-intern the owners the way a loader would.
        let alice = db.intern(&AnnotationRule::owner_label("person", &Value::str("alice")));
        let (ev, ep, eu) = (
            db.table_epoch("visits"),
            db.table_epoch("payments"),
            db.universe_epoch(),
        );

        // A delta over a known participant: only the visits stamp moves.
        let n = db
            .apply_delta(
                "visits",
                [Tuple::new([
                    ("person", Value::str("alice")),
                    ("place", Value::str("cafe")),
                ])],
            )
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(db.table("visits").unwrap().len(), 1);
        assert_ne!(db.table_epoch("visits"), ev);
        assert_eq!(
            db.table_epoch("payments"),
            ep,
            "untouched table keeps its stamp"
        );
        assert_eq!(
            db.universe_epoch(),
            eu,
            "known participant: universe stamp keeps"
        );
        let ann = db.table("visits").unwrap().annotation(&Tuple::new([
            ("person", Value::str("alice")),
            ("place", Value::str("cafe")),
        ]));
        assert_eq!(ann, Expr::Var(alice));

        // A delta introducing a new participant stamps the universe too.
        let ev = db.table_epoch("visits");
        db.apply_delta(
            "visits",
            [Tuple::new([
                ("person", Value::str("bob")),
                ("place", Value::str("park")),
            ])],
        )
        .unwrap();
        assert_ne!(db.table_epoch("visits"), ev);
        assert_ne!(db.universe_epoch(), eu);
        assert_eq!(db.universe().len(), 2);

        // An empty delta invalidates nothing.
        let stamps = db.current_epoch_stamps();
        assert_eq!(db.apply_delta("visits", []).unwrap(), 0);
        assert_eq!(db.current_epoch_stamps(), stamps);
    }

    #[test]
    fn delta_errors_are_all_or_nothing() {
        let mut db = AnnotatedDatabase::new();
        db.insert_table("visits", KRelation::new(["person", "place"]));
        let stamps = db.current_epoch_stamps();

        assert_eq!(
            db.apply_delta("nowhere", [Tuple::new([("person", Value::str("a"))])]),
            Err(DeltaError::UnknownTable("nowhere".into()))
        );
        assert_eq!(
            db.apply_delta("visits", [Tuple::new([("person", Value::str("a"))])]),
            Err(DeltaError::NoAnnotationRule("visits".into()))
        );
        db.declare_annotation_rule("visits", AnnotationRule::OwnerColumn("person".into()));
        assert_eq!(
            db.apply_delta(
                "visits",
                [
                    Tuple::new([("person", Value::str("a")), ("place", Value::str("x"))]),
                    Tuple::new([("place", Value::str("y"))]),
                ]
            ),
            Err(DeltaError::MissingColumn {
                table: "visits".into(),
                column: "person".into()
            })
        );
        // A failed delta appended nothing — not even the valid first row —
        // and moved no stamp (the universe is still empty: no participant
        // was interned for the doomed batch).
        assert_eq!(db.table("visits").unwrap().len(), 0);
        assert_eq!(db.universe().len(), 0);
        assert_eq!(db.current_epoch_stamps(), stamps);

        let outside = ParticipantId(7);
        assert_eq!(
            db.apply_annotated_delta(
                "visits",
                [(
                    Tuple::new([("person", Value::str("a"))]),
                    Expr::Var(outside)
                )]
            ),
            Err(DeltaError::UnknownParticipant {
                table: "visits".into(),
                id: outside
            })
        );
    }

    #[test]
    fn fork_with_delta_shares_untouched_tables_and_identity() {
        let mut db = AnnotatedDatabase::new();
        db.insert_table("visits", KRelation::new(["person", "place"]));
        db.insert_table("payments", KRelation::new(["person", "amount"]));
        db.declare_annotation_rule("visits", AnnotationRule::OwnerColumn("person".into()));
        let _ = db.intern(&AnnotationRule::owner_label("person", &Value::str("alice")));

        let fork = db
            .fork_with_delta(
                "visits",
                [Tuple::new([
                    ("person", Value::str("alice")),
                    ("place", Value::str("cafe")),
                ])],
            )
            .unwrap();

        // Same identity, same stamps for everything the delta did not touch…
        assert_eq!(fork.instance_id(), db.instance_id());
        assert_eq!(fork.table_epoch("payments"), db.table_epoch("payments"));
        assert_eq!(fork.universe_epoch(), db.universe_epoch());
        // …a fresh stamp for the touched table, and untouched content is the
        // very same allocation (copy-on-write sharing).
        assert_ne!(fork.table_epoch("visits"), db.table_epoch("visits"));
        assert_eq!(fork.table("visits").unwrap().len(), 1);
        assert_eq!(db.table("visits").unwrap().len(), 0, "parent is untouched");
        assert!(Arc::ptr_eq(
            &fork.tables["payments"],
            &db.tables["payments"]
        ));

        // Plain clones still take a fresh identity.
        assert_ne!(db.clone().instance_id(), db.instance_id());
    }

    #[test]
    fn public_domains_are_declared_deduplicated_and_epoch_neutral() {
        let mut db = AnnotatedDatabase::new();
        db.insert_table("visits", KRelation::new(["person", "place"]));
        let epoch = db.annotation_epoch();

        assert_eq!(db.public_domain("visits", "place"), None);
        db.declare_public_domain(
            "visits",
            "place",
            [
                Value::str("museum"),
                Value::str("cafe"),
                Value::str("museum"), // duplicate: dropped, first wins
            ],
        );
        assert_eq!(
            db.public_domain("visits", "place"),
            Some(&[Value::str("museum"), Value::str("cafe")][..])
        );
        assert_eq!(db.public_domain("visits", "person"), None);
        assert_eq!(db.public_domain("nowhere", "place"), None);

        // Declaring public metadata never bumps the epoch; clones carry it.
        assert_eq!(db.annotation_epoch(), epoch);
        db.declare_annotation_rule("visits", AnnotationRule::OwnerColumn("person".into()));
        assert_eq!(db.annotation_epoch(), epoch);
        let cloned = db.clone();
        assert_eq!(
            cloned.public_domain("visits", "place").map(<[Value]>::len),
            Some(2)
        );
        assert_eq!(
            cloned.annotation_rule("visits"),
            Some(&AnnotationRule::OwnerColumn("person".into()))
        );

        // Re-declaring replaces the domain wholesale.
        db.declare_public_domain("visits", "place", [Value::str("park")]);
        assert_eq!(
            db.public_domain("visits", "place"),
            Some(&[Value::str("park")][..])
        );
        assert_eq!(db.annotation_epoch(), epoch);
    }

    #[test]
    #[should_panic(expected = "mixes value types")]
    fn mixed_type_public_domains_are_rejected_at_declaration() {
        // A domain whose type differs from the column's values would release
        // a noised zero for every key while spending the report's budget; a
        // *mixed* domain is unambiguously that bug, caught eagerly.
        let mut db = AnnotatedDatabase::new();
        db.declare_public_domain("visits", "place", [Value::str("museum"), Value::Int(3)]);
    }
}
