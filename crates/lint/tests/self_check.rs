//! The gate's gate: the live workspace must lint clean, every suppression
//! must carry a justification, and the JSON artifact CI uploads must
//! round-trip through the same parser an external auditor would use.

use rmdp_lint::{run_workspace, LintReport};
use std::path::Path;

fn workspace_report() -> LintReport {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    run_workspace(&root).expect("workspace scan succeeds")
}

#[test]
fn live_workspace_lints_clean() {
    let report = workspace_report();
    assert!(
        report.is_clean(),
        "the workspace must lint clean; run `cargo run -p rmdp-lint` for \
         details:\n{}",
        report.render_text()
    );
    assert!(
        report.files_scanned >= 100,
        "suspiciously few files scanned ({}) — did the walker lose a root?",
        report.files_scanned
    );
}

#[test]
fn every_live_suppression_is_justified() {
    let report = workspace_report();
    assert!(
        !report.suppressed.is_empty(),
        "the workspace carries known sanctioned exceptions (seeded RNG \
         construction in the sql crate, exact zero-scale guards in noise); \
         an empty list means allows stopped being recorded"
    );
    for s in &report.suppressed {
        assert!(
            !s.justification.is_empty(),
            "unjustified suppression at {}",
            s.violation.span()
        );
    }
}

#[test]
fn live_report_round_trips_through_json() {
    let report = workspace_report();
    let json = report.to_json();
    let back = LintReport::parse_json(&json).expect("CI artifact parses back");
    assert_eq!(back, report);
}
