//! Fixture corpus: every rule family catches its seeded violation, and
//! each fixture's clean twin — same virtual path, disciplined code — lints
//! clean. Fixtures live under `crates/lint/fixtures/` (excluded from the
//! workspace scan) and are linted here under *virtual* paths, so the
//! path-scoped rules see them exactly as they would see live code.

use rmdp_lint::{lint_files, FileContext, LintReport};

fn fixture(rel: &str) -> String {
    let path = format!("{}/fixtures/{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

fn lint_at(virtual_path: &str, rel: &str) -> LintReport {
    lint_files(&[FileContext::new(virtual_path, &fixture(rel))])
}

/// Asserts the bad fixture trips `rule` at least `min` times and nothing
/// else, and that its clean twin is violation-free.
fn assert_pair(virtual_path: &str, dir: &str, rule: &str, min: usize) {
    let bad = lint_at(virtual_path, &format!("{dir}/bad.rs"));
    assert!(
        bad.violations.len() >= min,
        "{dir}/bad.rs: expected >= {min} violations, got:\n{}",
        bad.render_text()
    );
    for v in &bad.violations {
        assert_eq!(
            v.rule,
            rule,
            "unexpected rule in {dir}/bad.rs:\n{}",
            bad.render_text()
        );
        assert_eq!(v.path, virtual_path);
        assert!(v.line > 0 && v.col > 0, "violations carry 1-based spans");
    }
    let clean = lint_at(virtual_path, &format!("{dir}/clean.rs"));
    assert!(
        clean.is_clean(),
        "{dir}/clean.rs should lint clean:\n{}",
        clean.render_text()
    );
}

#[test]
fn rng_confinement_catches_unsanctioned_call_sites() {
    // thread_rng + seed_from_u64 + two gen_range calls.
    assert_pair("crates/core/src/sampler.rs", "rng", "rng-confinement", 4);
}

#[test]
fn clock_confinement_catches_instant_and_system_time() {
    // Grouped import, Instant::now, std::time::SystemTime::now.
    assert_pair(
        "crates/runtime/src/timing.rs",
        "clock",
        "clock-confinement",
        3,
    );
}

#[test]
fn net_confinement_catches_listener_and_udp() {
    // TcpListener (import + bind) and UdpSocket (import + bind).
    let bad = lint_at("crates/runtime/src/side_channel.rs", "net/bad.rs");
    assert!(bad.violations.len() >= 4, "{}", bad.render_text());
    assert!(bad.violations.iter().all(|v| v.rule == "net-confinement"));
    // The clean twin lives at the sanctioned stream home — and the same
    // code anywhere else would be flagged.
    let clean = lint_at("crates/server/src/client.rs", "net/clean.rs");
    assert!(clean.is_clean(), "{}", clean.render_text());
    let misplaced = lint_at("crates/runtime/src/side_channel.rs", "net/clean.rs");
    assert!(
        !misplaced.is_clean(),
        "TcpStream outside the server crate must be flagged"
    );
}

#[test]
fn float_rules_catch_sort_eq_and_cast() {
    let bad = lint_at("crates/noise/src/scale.rs", "float/bad.rs");
    let rules: Vec<&str> = bad.violations.iter().map(|v| v.rule.as_str()).collect();
    assert!(rules.contains(&"float-total-cmp"), "{}", bad.render_text());
    assert!(rules.contains(&"float-eq"), "{}", bad.render_text());
    assert!(rules.contains(&"float-cast"), "{}", bad.render_text());
    let clean = lint_at("crates/noise/src/scale.rs", "float/clean.rs");
    assert!(clean.is_clean(), "{}", clean.render_text());
}

#[test]
fn panic_freedom_catches_the_request_path_idioms() {
    // Indexing, unwrap, expect, panic!.
    assert_pair("crates/server/src/handler.rs", "panic", "panic-freedom", 4);
}

#[test]
fn panic_fixture_is_ignored_off_the_request_path() {
    let elsewhere = lint_at("crates/graph/src/handler.rs", "panic/bad.rs");
    assert!(
        elsewhere
            .violations
            .iter()
            .all(|v| v.rule != "panic-freedom"),
        "{}",
        elsewhere.render_text()
    );
}

#[test]
fn lock_order_catches_cycle_convoy_and_reacquisition() {
    let bad = lint_at("crates/server/src/convoy.rs", "locks/bad.rs");
    let messages: Vec<&str> = bad.violations.iter().map(|v| v.message.as_str()).collect();
    assert!(
        messages.iter().any(|m| m.contains("cycle")),
        "{}",
        bad.render_text()
    );
    assert!(
        messages.iter().any(|m| m.contains("blocking call `solve")),
        "{}",
        bad.render_text()
    );
    assert!(
        messages.iter().any(|m| m.contains("re-acquired")),
        "{}",
        bad.render_text()
    );
    assert!(bad.violations.iter().all(|v| v.rule == "lock-order"));
    let clean = lint_at("crates/server/src/convoy.rs", "locks/clean.rs");
    assert!(clean.is_clean(), "{}", clean.render_text());
}

#[test]
fn allow_audit_catches_unknown_unjustified_and_stale_directives() {
    let bad = lint_at("crates/noise/src/guard.rs", "allow/bad.rs");
    let audit: Vec<&rmdp_lint::Violation> = bad
        .violations
        .iter()
        .filter(|v| v.rule == "lint-allow")
        .collect();
    assert_eq!(audit.len(), 3, "{}", bad.render_text());
    assert!(audit.iter().any(|v| v.message.contains("unknown rule")));
    assert!(audit.iter().any(|v| v.message.contains("no justification")));
    assert!(audit
        .iter()
        .any(|v| v.message.contains("suppresses nothing")));
    // The two float-eq findings the broken directives failed to cover.
    assert_eq!(
        bad.violations
            .iter()
            .filter(|v| v.rule == "float-eq")
            .count(),
        2,
        "{}",
        bad.render_text()
    );
    assert!(bad.suppressed.is_empty());

    let clean = lint_at("crates/noise/src/guard.rs", "allow/clean.rs");
    assert!(clean.is_clean(), "{}", clean.render_text());
    assert_eq!(clean.suppressed.len(), 1);
    assert_eq!(
        clean.suppressed[0].justification,
        "exact zero-scale short-circuit is intentional"
    );
}
