// Fixture: clean twin of panic/bad.rs at the same virtual path: every
// failure becomes a refusal, and poisoned locks are recovered.
use std::sync::PoisonError;

pub fn handle(server: &DpServer, parts: &[&str]) -> Result<String, ServerError> {
    let verb = parts.first().ok_or(ServerError::Protocol)?;
    let snapshot = server.snapshot_at(7).ok_or(ServerError::UnknownSnapshot)?;
    let budget = parse_budget(parts).map_err(|_| ServerError::Protocol)?;
    debug_assert!(!verb.is_empty());
    let state = server.state.lock().unwrap_or_else(PoisonError::into_inner);
    respond(state, snapshot, budget)
}
