// Fixture: seeded violations for `panic-freedom`. Linted as if it lived at
// `crates/server/src/handler.rs` (the request path).
pub fn handle(server: &DpServer, parts: &[&str]) -> String {
    // Indexing panics on a short request line.
    let verb = parts[0];
    // unwrap/expect panic instead of refusing.
    let snapshot = server.snapshot_at(7).unwrap();
    let budget = parse_budget(parts).expect("budget parses");
    if verb.is_empty() {
        panic!("empty verb");
    }
    respond(snapshot, budget)
}
