// Fixture: clean twin of float/bad.rs at the same virtual path.
pub fn summarize(samples: &mut Vec<f64>, spent: f64, budget: f64) -> f64 {
    samples.sort_by(f64::total_cmp);
    let exhausted = spent >= budget;
    let scale = samples[0];
    if exhausted {
        0.0
    } else {
        scale
    }
}
