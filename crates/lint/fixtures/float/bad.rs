// Fixture: seeded violations for all three float rules. Linted as if it
// lived at `crates/noise/src/scale.rs` (budget/noise-critical).
pub fn summarize(samples: &mut Vec<f64>, spent: f64) -> i64 {
    // float-total-cmp: panics the moment a NaN reaches the sort.
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // float-eq: three 0.1 debits never compare equal to 0.3.
    let exhausted = spent == 0.3;
    // float-cast: silently truncates the noise scale.
    let scale = samples[0] as i64;
    if exhausted {
        0
    } else {
        scale
    }
}
