// Fixture: seeded violations for `clock-confinement`. Linted as if it
// lived at `crates/runtime/src/timing.rs` (outside the clock home).
use std::time::{Duration, Instant};

pub fn time_a_solve() -> Duration {
    let start = Instant::now();
    expensive();
    start.elapsed()
}

pub fn wall_stamp() -> u64 {
    let t = std::time::SystemTime::now();
    stamp(t)
}
