// Fixture: clean twin of clock/bad.rs at the same virtual path. Durations
// are fine; wall-clock reads go through the observe crate's Clock trait.
use rmdp_observe::Clock;
use std::time::Duration;

pub fn time_a_solve<C: Clock>(clock: &C) -> Duration {
    let start = clock.now_ms();
    expensive();
    Duration::from_millis(clock.now_ms().saturating_sub(start))
}
