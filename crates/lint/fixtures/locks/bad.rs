// Fixture: seeded violations for `lock-order`. Linted as if it lived at
// `crates/server/src/convoy.rs`. Contains all three violation shapes:
// an ABBA cycle, a blocking call under a guard, and a re-acquisition.
pub fn forward(s: &Shared) {
    let state = s.state.lock();
    let ledger = s.ledger.lock();
    touch(state, ledger);
}

pub fn backward(s: &Shared) {
    // Opposite order from `forward`: classic ABBA deadlock shape.
    let ledger = s.ledger.lock();
    let state = s.state.lock();
    touch(state, ledger);
}

pub fn convoy(s: &Shared) {
    let model = s.model.lock();
    // An LP solve while holding the model lock stalls every other tenant.
    s.solver.solve(&model);
}

pub fn twice(s: &Shared) {
    let first = s.state.lock();
    let second = s.state.lock();
    touch(first, second);
}
