// Fixture: clean twin of locks/bad.rs at the same virtual path: one
// global order, guards dropped before blocking work, no re-acquisition.
pub fn forward(s: &Shared) {
    let state = s.state.lock();
    let ledger = s.ledger.lock();
    touch(state, ledger);
}

pub fn also_forward(s: &Shared) {
    let state = s.state.lock();
    let ledger = s.ledger.lock();
    touch(state, ledger);
}

pub fn no_convoy(s: &Shared) {
    let snapshot = {
        let model = s.model.lock();
        model.snapshot()
    };
    s.solver.solve(&snapshot);
}

pub fn once(s: &Shared) {
    let first = s.state.lock();
    touch_one(first);
}
