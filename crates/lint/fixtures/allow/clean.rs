// Fixture: clean twin of allow/bad.rs at the same virtual path — one
// justified directive that suppresses a real finding.
pub fn exact_guard(scale: f64) -> bool {
    // lint:allow(float-eq): exact zero-scale short-circuit is intentional
    scale == 0.0
}
