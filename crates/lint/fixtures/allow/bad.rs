// Fixture: seeded violations for the `lint-allow` audit rule. Linted as if
// it lived at `crates/noise/src/guard.rs`.
pub fn misuse(x: f64, y: u32) -> bool {
    // lint:allow(not-a-rule): the rule name is misspelled
    let a = x == 0.0;
    // lint:allow(float-eq)
    let b = x == 1.0;
    // lint:allow(float-eq): stale — the next comparison is integral
    let c = y == 0;
    a && b && c
}
