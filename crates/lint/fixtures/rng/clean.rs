// Fixture: clean twin of rng/bad.rs at the same virtual path. All
// randomness flows through a caller-provided generator and rmdp-noise's
// distribution functions.
use rand::rngs::StdRng;
use rmdp_noise::laplace_noise;

pub fn confined_noise(rng: &mut StdRng, scale: f64) -> f64 {
    laplace_noise(rng, scale)
}
