// Fixture: seeded violations for `rng-confinement`. Linted as if it lived
// at `crates/core/src/sampler.rs` (a confined crate).
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub fn leak_entropy() -> f64 {
    // Nondeterministic source: banned everywhere, tests included.
    let mut ambient = rand::thread_rng();
    // Unsanctioned construction on the release path.
    let mut fresh = StdRng::seed_from_u64(42);
    // Raw sampling outside rmdp-noise.
    ambient.gen_range(0.0..1.0) + fresh.gen_range(0.0..1.0)
}
