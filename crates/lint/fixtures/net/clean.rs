// Fixture: clean twin of net/bad.rs, linted as if it lived at
// `crates/server/src/client.rs` — the sanctioned home for client-side
// stream connections.
use std::net::TcpStream;

pub fn dial(addr: &str) -> std::io::Result<TcpStream> {
    TcpStream::connect(addr)
}
