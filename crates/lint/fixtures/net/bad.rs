// Fixture: seeded violations for `net-confinement`. Linted as if it lived
// at `crates/runtime/src/side_channel.rs` (no sockets belong there).
use std::net::{TcpListener, UdpSocket};

pub fn open_side_channel() -> std::io::Result<TcpListener> {
    let _beacon = UdpSocket::bind("127.0.0.1:0")?;
    TcpListener::bind("127.0.0.1:0")
}
