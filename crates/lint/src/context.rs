//! Per-file analysis context: which tokens are test code, and which
//! `lint:allow(rule): justification` directives the file carries.
//!
//! Test code plays by different rules (seeded RNG construction, `unwrap`,
//! float equality in assertions are all fine there), so every rule checks
//! the mask before reporting. Test regions are:
//!
//! * whole files under `tests/` or `benches/` directories, and
//! * any item decorated with an attribute containing the `test` identifier
//!   (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`) — the mask covers
//!   the item's entire token range, so a `#[cfg(test)] mod tests { … }`
//!   exempts everything inside it.

use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};

/// One parsed suppression directive. The comment form is
/// `// lint:allow(<rule>): <justification>`; it suppresses matching
/// violations on its own line (trailing form) or on the next code line
/// (preceding form). The tool records every directive in the report so
/// justifications can be audited; an empty justification, an unknown rule
/// name, or a directive that suppresses nothing is itself a violation.
#[derive(Clone, Debug)]
pub struct Allow {
    /// The rule id the directive names.
    pub rule: String,
    /// The line the directive sits on.
    pub line: u32,
    /// The code line the directive applies to.
    pub target_line: u32,
    /// The justification after the closing `):`.
    pub justification: String,
}

/// Everything the rules need to know about one source file.
#[derive(Clone, Debug)]
pub struct FileContext {
    /// Workspace-relative path with `/` separators
    /// (e.g. `crates/server/src/server.rs`).
    pub path: String,
    /// The file's code tokens.
    pub tokens: Vec<Token>,
    /// `test_mask[i]` is `true` when token `i` is test code.
    pub test_mask: Vec<bool>,
    /// Suppression directives found in the file's comments.
    pub allows: Vec<Allow>,
}

impl FileContext {
    /// Lexes `source` and computes the test mask and allow directives.
    pub fn new(path: &str, source: &str) -> Self {
        let Lexed { tokens, comments } = lex(source);
        let file_is_test =
            path.starts_with("tests/") || path.contains("/tests/") || path.contains("/benches/");
        let test_mask = if file_is_test {
            vec![true; tokens.len()]
        } else {
            test_mask(&tokens)
        };
        let allows = parse_allows(&comments, &tokens);
        FileContext {
            path: path.to_owned(),
            tokens,
            test_mask,
            allows,
        }
    }

    /// Whether token `i` is inside test code.
    pub fn is_test(&self, i: usize) -> bool {
        self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// Whether `self.path` lives under `crates/<krate>/src/`.
    pub fn in_crate_src(&self, krate: &str) -> bool {
        self.path.starts_with(&format!("crates/{krate}/src/"))
    }
}

/// Marks the token span of every item decorated by a `test`-mentioning
/// attribute.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let close = match matching_bracket(tokens, i + 1, '[', ']') {
                Some(c) => c,
                None => break,
            };
            let mentions_test = tokens[i + 2..close].iter().any(|t| t.is_ident("test"));
            if mentions_test {
                let end = item_end(tokens, close + 1);
                for m in mask.iter_mut().take(end.min(tokens.len())).skip(i) {
                    *m = true;
                }
                i = end;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Index one past the end of the item starting at `start`: past further
/// attributes, then either the matching `}` of the item's body or the
/// terminating `;` at nesting level zero.
fn item_end(tokens: &[Token], mut start: usize) -> usize {
    // Skip stacked attributes (`#[test] #[ignore] fn …`).
    while start + 1 < tokens.len() && tokens[start].is_punct('#') && tokens[start + 1].is_punct('[')
    {
        match matching_bracket(tokens, start + 1, '[', ']') {
            Some(c) => start = c + 1,
            None => return tokens.len(),
        }
    }
    let mut depth = 0i64;
    let mut i = start;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_bytes()[0] {
                b'{' | b'(' | b'[' => depth += 1,
                b'}' | b')' | b']' => {
                    depth -= 1;
                    if depth == 0 && t.is_punct('}') {
                        return i + 1;
                    }
                }
                b';' if depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Index of the bracket closing the one at `open` (which must hold the
/// opening `open_ch`).
fn matching_bracket(tokens: &[Token], open: usize, open_ch: char, close_ch: char) -> Option<usize> {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_ch) {
            depth += 1;
        } else if t.is_punct(close_ch) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

const ALLOW_PREFIX: &str = "lint:allow(";

fn parse_allows(comments: &[Comment], tokens: &[Token]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix(ALLOW_PREFIX) else {
            continue;
        };
        let (rule, after) = match rest.split_once(')') {
            Some(pair) => pair,
            None => ("", rest),
        };
        let justification = after.strip_prefix(':').unwrap_or("").trim().to_owned();
        let target_line = if c.trailing {
            c.line
        } else {
            tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > c.line)
                .unwrap_or(c.line)
        };
        allows.push(Allow {
            rule: rule.trim().to_owned(),
            line: c.line,
            target_line,
            justification,
        });
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = r#"
            fn live() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn t() { y.unwrap(); }
            }
            fn also_live() {}
        "#;
        let ctx = FileContext::new("crates/server/src/x.rs", src);
        let by_name = |name: &str| {
            ctx.tokens
                .iter()
                .position(|t| t.is_ident(name))
                .expect("token present")
        };
        assert!(!ctx.is_test(by_name("live")));
        assert!(ctx.is_test(by_name("tests")));
        assert!(ctx.is_test(by_name("y")));
        assert!(!ctx.is_test(by_name("also_live")));
    }

    #[test]
    fn test_fn_attribute_masks_only_that_fn() {
        let src = "
            #[test]
            fn a_test() { q.unwrap(); }
            fn live() {}
        ";
        let ctx = FileContext::new("crates/server/src/x.rs", src);
        let q = ctx.tokens.iter().position(|t| t.is_ident("q")).unwrap();
        let live = ctx.tokens.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(ctx.is_test(q));
        assert!(!ctx.is_test(live));
    }

    #[test]
    fn files_under_tests_are_all_test_code() {
        let ctx = FileContext::new("tests/end_to_end.rs", "fn f() { x.unwrap(); }");
        assert!(ctx.tokens.iter().enumerate().all(|(i, _)| ctx.is_test(i)));
    }

    #[test]
    fn allow_directives_bind_to_next_code_line() {
        let src = "\
fn f() {
    // lint:allow(float-eq): exact boundary rejection
    let a = x == 0.0;
    let b = y == 0.0; // lint:allow(float-eq): trailing form
}
";
        let ctx = FileContext::new("crates/noise/src/x.rs", src);
        assert_eq!(ctx.allows.len(), 2);
        assert_eq!(ctx.allows[0].rule, "float-eq");
        assert_eq!(ctx.allows[0].target_line, 3);
        assert_eq!(ctx.allows[0].justification, "exact boundary rejection");
        assert_eq!(ctx.allows[1].target_line, 4);
    }

    #[test]
    fn allow_without_justification_is_recorded_empty() {
        let src = "// lint:allow(float-eq)\nlet a = 1;";
        let ctx = FileContext::new("crates/noise/src/x.rs", src);
        assert_eq!(ctx.allows.len(), 1);
        assert!(ctx.allows[0].justification.is_empty());
    }
}
