//! rmdp-lint: dependency-free static analysis enforcing the workspace's
//! DP and concurrency invariants.
//!
//! The recursive mechanism's guarantees are only as strong as a handful of
//! conventions the type system cannot see: every random draw descends from
//! a logged seed, wall clocks stay behind `rmdp_observe::Clock`, sockets
//! answer to the server's shutdown discipline, budget arithmetic never
//! trips over NaN or truncation, the request path refuses instead of
//! panicking, and locks are taken in one global order. Each started as a
//! code-review rule or a CI `grep`; this crate turns them into a checked
//! gate with its own lightweight Rust lexer ([`lexer`]), a per-file
//! analysis context ([`context`]), five rule families plus a suppression
//! audit ([`rules`]), and a report that renders for humans and round-trips
//! through `rmdp-observe`'s JSON grammar for CI artifacts ([`report`]).
//!
//! Justified exceptions are written in the source as
//! `// lint:allow(<rule>): <why>`; the tool records every one in the
//! report, and a directive that names an unknown rule, carries no
//! justification, or suppresses nothing is itself a violation.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod context;
pub mod lexer;
pub mod report;
pub mod rules;

pub use context::{Allow, FileContext};
pub use report::{LintReport, Suppressed, Violation};
pub use rules::{RuleInfo, RULES};

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names excluded from the scan wherever they appear: lint
/// fixtures are violations on purpose, `target` is build output, `vendor`
/// is third-party code the workspace does not own.
const EXCLUDED_DIRS: &[&str] = &["fixtures", "target", "vendor"];

/// The workspace-relative directories the scan covers.
const SCAN_ROOTS: &[&str] = &["src", "crates", "tests"];

/// Lints a set of already-built file contexts: runs every rule, applies
/// `lint:allow` suppressions, and audits the directives themselves.
pub fn lint_files(files: &[FileContext]) -> LintReport {
    let raw = rules::check_files(files);
    let mut used: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut violations = Vec::new();
    let mut suppressed = Vec::new();
    for v in raw {
        let file_idx = files.iter().position(|f| f.path == v.path);
        let hit = file_idx.and_then(|fi| {
            files[fi].allows.iter().enumerate().find_map(|(ai, a)| {
                let applicable = a.rule == v.rule
                    && a.target_line == v.line
                    && rules::is_known_rule(&a.rule)
                    && !a.justification.is_empty();
                applicable.then_some((fi, ai))
            })
        });
        match hit {
            Some((fi, ai)) => {
                used.insert((fi, ai));
                suppressed.push(Suppressed {
                    justification: files[fi].allows[ai].justification.clone(),
                    violation: v,
                });
            }
            None => violations.push(v),
        }
    }
    // Audit the directives: unknown rule, empty justification, or unused.
    for (fi, f) in files.iter().enumerate() {
        for (ai, a) in f.allows.iter().enumerate() {
            let problem = if !rules::is_known_rule(&a.rule) {
                Some(format!(
                    "lint:allow names unknown rule `{}`; known rules are listed by \
                     `rmdp-lint --list`",
                    a.rule
                ))
            } else if a.justification.is_empty() {
                Some(format!(
                    "lint:allow({}) carries no justification; write \
                     `lint:allow({}): <why this exception is sound>`",
                    a.rule, a.rule
                ))
            } else if !used.contains(&(fi, ai)) {
                Some(format!(
                    "lint:allow({}) suppresses nothing on line {}; delete the stale \
                     directive",
                    a.rule, a.target_line
                ))
            } else {
                None
            };
            if let Some(message) = problem {
                violations.push(Violation {
                    rule: "lint-allow".to_owned(),
                    path: f.path.clone(),
                    line: a.line,
                    col: 1,
                    message,
                });
            }
        }
    }
    violations
        .sort_by(|a, b| (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule)));
    LintReport {
        files_scanned: files.len() as u64,
        violations,
        suppressed,
    }
}

/// Lints the workspace rooted at `root`: scans `src/`, `crates/` and
/// `tests/` recursively for `.rs` files (excluding fixture, target and
/// vendor directories) and runs [`lint_files`] over them.
pub fn run_workspace(root: &Path) -> io::Result<LintReport> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::new();
    for p in &paths {
        let source = fs::read_to_string(p)?;
        let rel = p.strip_prefix(root).unwrap_or(p);
        let rel_str = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push(FileContext::new(&rel_str, &source));
    }
    Ok(lint_files(&files))
}

/// Recursively collects `.rs` files under `dir`, skipping excluded
/// directory names.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !EXCLUDED_DIRS.contains(&name.as_ref()) {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn justified_allow_suppresses_and_is_recorded() {
        let src = "\
fn f(x: f64) -> bool {
    // lint:allow(float-eq): exact zero-scale short-circuit
    x == 0.0
}
";
        let report = lint_files(&[FileContext::new("crates/noise/src/x.rs", src)]);
        assert!(report.is_clean(), "{}", report.render_text());
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(
            report.suppressed[0].justification,
            "exact zero-scale short-circuit"
        );
    }

    #[test]
    fn unknown_rule_and_missing_justification_are_violations() {
        let src = "\
// lint:allow(no-such-rule): whatever
// lint:allow(float-eq)
fn f() {}
";
        let report = lint_files(&[FileContext::new("crates/noise/src/x.rs", src)]);
        assert_eq!(report.violations.len(), 2);
        assert!(report.violations.iter().all(|v| v.rule == "lint-allow"));
    }

    #[test]
    fn stale_allow_is_a_violation() {
        let src = "\
fn f(x: u32) -> bool {
    // lint:allow(float-eq): stale — the comparison below is integral now
    x == 0
}
";
        let report = lint_files(&[FileContext::new("crates/noise/src/x.rs", src)]);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "lint-allow");
        assert!(report.violations[0].message.contains("suppresses nothing"));
    }

    #[test]
    fn unjustified_allow_does_not_suppress() {
        let src = "\
fn f(x: f64) -> bool {
    // lint:allow(float-eq)
    x == 0.0
}
";
        let report = lint_files(&[FileContext::new("crates/noise/src/x.rs", src)]);
        // Both the float-eq violation and the lint-allow audit fire.
        assert_eq!(report.violations.len(), 2);
        let rules: Vec<&str> = report.violations.iter().map(|v| v.rule.as_str()).collect();
        assert!(rules.contains(&"float-eq"));
        assert!(rules.contains(&"lint-allow"));
    }
}
