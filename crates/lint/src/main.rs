//! Command-line entry point for rmdp-lint.
//!
//! ```text
//! rmdp-lint [--format text|json] [--out FILE] [--list] [ROOT]
//! ```
//!
//! Scans the workspace rooted at `ROOT` (default: the current directory)
//! and prints the report in the requested format. With `--out`, the
//! requested format goes to the file and the human-readable report still
//! goes to stdout, which is the shape CI wants: a failing log you can read
//! and a machine-readable artifact you can archive. Exit status is 0 when
//! clean, 1 on violations, 2 on usage or I/O errors.

use rmdp_lint::{run_workspace, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

/// Parsed command line.
struct Options {
    /// Output format: `"text"` or `"json"`.
    format: String,
    /// Where to write the formatted report instead of stdout.
    out: Option<PathBuf>,
    /// Print the rule table and exit.
    list: bool,
    /// Workspace root to scan.
    root: PathBuf,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        format: "text".to_owned(),
        out: None,
        list: false,
        root: PathBuf::from("."),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                let value = args.next().ok_or("--format needs a value")?;
                if value != "text" && value != "json" {
                    return Err(format!("unknown format `{value}` (text|json)"));
                }
                opts.format = value;
            }
            "--out" => {
                opts.out = Some(PathBuf::from(args.next().ok_or("--out needs a path")?));
            }
            "--list" => opts.list = true,
            "--help" | "-h" => {
                return Err(
                    "usage: rmdp-lint [--format text|json] [--out FILE] [--list] [ROOT]".to_owned(),
                )
            }
            other if !other.starts_with('-') => opts.root = PathBuf::from(other),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("rmdp-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if opts.list {
        for rule in RULES {
            println!("{:<18} {}", rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }
    let report = match run_workspace(&opts.root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("rmdp-lint: scanning {}: {err}", opts.root.display());
            return ExitCode::from(2);
        }
    };
    let rendered = if opts.format == "json" {
        report.to_json()
    } else {
        report.render_text()
    };
    match &opts.out {
        Some(path) => {
            if let Err(err) = std::fs::write(path, &rendered) {
                eprintln!("rmdp-lint: writing {}: {err}", path.display());
                return ExitCode::from(2);
            }
            print!("{}", report.render_text());
        }
        None => print!("{rendered}"),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
