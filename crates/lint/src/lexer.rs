//! A lightweight Rust lexer: enough of the real token grammar that path-
//! and call-shaped rules can match on identifier sequences without ever
//! being fooled by comments, string literals or lifetimes.
//!
//! The same spirit as `rmdp-observe`'s hand-rolled JSON parser: no external
//! dependencies, no full grammar — just the token classes the rules need,
//! each carrying its source span. Comments are not tokens; they are
//! collected separately so [`crate::context::FileContext`] can mine them
//! for `lint:allow(...)` directives.

/// What kind of token one [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`foo`, `fn`, `r#type`).
    Ident,
    /// A lifetime (`'a`, `'static`) — kept distinct so a `'a` is never
    /// confused with the opening quote of a character literal.
    Lifetime,
    /// An integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// A floating-point literal (`0.5`, `1e-9`, `2f64`).
    Float,
    /// A string, raw-string, byte-string or char literal.
    Str,
    /// A single punctuation byte (`::` is two consecutive `:` tokens).
    Punct,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Clone, Debug)]
pub struct Token {
    /// The token class.
    pub kind: TokenKind,
    /// The token's source text (for [`TokenKind::Punct`], one byte).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in bytes).
    pub col: u32,
}

impl Token {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation byte `p`.
    pub fn is_punct(&self, p: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes() == [p as u8]
    }
}

/// One `//` or `/* */` comment, with the line it starts on and whether any
/// code token precedes it on that line (a *trailing* comment).
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// `true` when a code token precedes the comment on its line.
    pub trailing: bool,
}

/// The result of lexing one file: code tokens plus the comment side-channel.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// All code tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `source` into tokens and comments. The lexer never fails: bytes it
/// does not understand become single [`TokenKind::Punct`] tokens, which no
/// rule pattern matches — a sound default for an analysis that only ever
/// *adds* findings on recognised shapes.
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();
    let mut last_code_line = 0u32;

    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let start = cur.pos + 2;
                while cur.peek().is_some_and(|c| c != b'\n') {
                    cur.bump();
                }
                let text = source[start..cur.pos].trim().to_owned();
                out.comments.push(Comment {
                    text,
                    line,
                    trailing: last_code_line == line,
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                let start = cur.pos + 2;
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                let mut end = cur.pos;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            end = cur.pos;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => {
                            end = cur.pos;
                            break;
                        }
                    }
                }
                out.comments.push(Comment {
                    text: source[start..end.min(source.len())].trim().to_owned(),
                    line,
                    trailing: last_code_line == line,
                });
            }
            b'"' => {
                lex_string(&mut cur);
                out.tokens.push(token(TokenKind::Str, "\"…\"", line, col));
                last_code_line = cur.line;
            }
            b'r' | b'b' if starts_raw_or_byte_string(&cur) => {
                lex_raw_or_byte_string(&mut cur);
                out.tokens.push(token(TokenKind::Str, "\"…\"", line, col));
                last_code_line = cur.line;
            }
            b'\'' => {
                if lex_char_or_lifetime(&mut cur, source, &mut out, line, col) {
                    last_code_line = cur.line;
                }
            }
            b if is_ident_start(b) => {
                let start = cur.pos;
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                out.tokens
                    .push(token(TokenKind::Ident, &source[start..cur.pos], line, col));
                last_code_line = line;
            }
            b if b.is_ascii_digit() => {
                let start = cur.pos;
                let kind = lex_number(&mut cur);
                out.tokens
                    .push(token(kind, &source[start..cur.pos], line, col));
                last_code_line = cur.line;
            }
            _ => {
                cur.bump();
                out.tokens.push(token(
                    TokenKind::Punct,
                    std::str::from_utf8(&[b]).unwrap_or("?"),
                    line,
                    col,
                ));
                last_code_line = line;
            }
        }
    }
    out
}

fn token(kind: TokenKind, text: &str, line: u32, col: u32) -> Token {
    Token {
        kind,
        text: text.to_owned(),
        line,
        col,
    }
}

fn starts_raw_or_byte_string(cur: &Cursor<'_>) -> bool {
    // r"…", r#"…"#, b"…", br"…", br#"…"#, b'…'
    let b0 = cur.peek();
    let b1 = cur.peek_at(1);
    match (b0, b1) {
        (Some(b'r'), Some(b'"' | b'#')) => after_hashes_is_quote(cur, 1),
        (Some(b'b'), Some(b'"')) => true,
        (Some(b'b'), Some(b'\'')) => true,
        (Some(b'b'), Some(b'r')) => after_hashes_is_quote(cur, 2),
        _ => false,
    }
}

fn after_hashes_is_quote(cur: &Cursor<'_>, mut ahead: usize) -> bool {
    while cur.peek_at(ahead) == Some(b'#') {
        ahead += 1;
    }
    cur.peek_at(ahead) == Some(b'"')
}

fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(b) = cur.bump() {
        match b {
            b'\\' => {
                cur.bump();
            }
            b'"' => return,
            _ => {}
        }
    }
}

fn lex_raw_or_byte_string(cur: &mut Cursor<'_>) {
    // Consume the r/b/br prefix.
    if cur.peek() == Some(b'b') {
        cur.bump();
    }
    if cur.peek() == Some(b'\'') {
        // b'…' byte literal: same shape as a char literal.
        cur.bump();
        while let Some(b) = cur.bump() {
            match b {
                b'\\' => {
                    cur.bump();
                }
                b'\'' => return,
                _ => {}
            }
        }
        return;
    }
    let raw = cur.peek() == Some(b'r');
    if raw {
        cur.bump();
    }
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    if !raw {
        // Plain b"…": escapes apply.
        while let Some(b) = cur.bump() {
            match b {
                b'\\' => {
                    cur.bump();
                }
                b'"' => return,
                _ => {}
            }
        }
        return;
    }
    // Raw string: ends at `"` followed by `hashes` hash marks.
    while let Some(b) = cur.bump() {
        if b == b'"' {
            let mut seen = 0usize;
            while seen < hashes && cur.peek() == Some(b'#') {
                cur.bump();
                seen += 1;
            }
            if seen == hashes {
                return;
            }
        }
    }
}

/// Returns `true` when a token was pushed (always) — the return value keeps
/// the caller's `last_code_line` bookkeeping in one place.
fn lex_char_or_lifetime(
    cur: &mut Cursor<'_>,
    source: &str,
    out: &mut Lexed,
    line: u32,
    col: u32,
) -> bool {
    // Disambiguate 'a' (char) from 'a (lifetime): after the quote, an
    // identifier char not followed by a closing quote is a lifetime.
    let next = cur.peek_at(1);
    let after = cur.peek_at(2);
    let is_lifetime =
        next.is_some_and(is_ident_start) && after != Some(b'\'') && next != Some(b'\\');
    if is_lifetime {
        cur.bump(); // quote
        let start = cur.pos;
        while cur.peek().is_some_and(is_ident_continue) {
            cur.bump();
        }
        out.tokens.push(token(
            TokenKind::Lifetime,
            &source[start..cur.pos],
            line,
            col,
        ));
    } else {
        cur.bump(); // quote
        while let Some(b) = cur.bump() {
            match b {
                b'\\' => {
                    cur.bump();
                }
                b'\'' => break,
                _ => {}
            }
        }
        out.tokens.push(token(TokenKind::Str, "'…'", line, col));
    }
    true
}

fn lex_number(cur: &mut Cursor<'_>) -> TokenKind {
    let mut is_float = false;
    // Hex/octal/binary prefixes never contain `.`/exponents we care about.
    if cur.peek() == Some(b'0') && matches!(cur.peek_at(1), Some(b'x' | b'o' | b'b')) {
        cur.bump();
        cur.bump();
        while cur
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            cur.bump();
        }
        return TokenKind::Int;
    }
    while cur.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
        cur.bump();
    }
    // A `.` starts a fraction only when followed by a digit — `0..n` is a
    // range and `x.method()` never reaches here.
    if cur.peek() == Some(b'.') && cur.peek_at(1).is_some_and(|b| b.is_ascii_digit()) {
        is_float = true;
        cur.bump();
        while cur.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
            cur.bump();
        }
    }
    if matches!(cur.peek(), Some(b'e' | b'E')) {
        let sign_ahead = matches!(cur.peek_at(1), Some(b'+' | b'-'));
        let digit_pos = if sign_ahead { 2 } else { 1 };
        if cur.peek_at(digit_pos).is_some_and(|b| b.is_ascii_digit()) {
            is_float = true;
            cur.bump();
            if sign_ahead {
                cur.bump();
            }
            while cur.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                cur.bump();
            }
        }
    }
    // Type suffix: f32/f64 forces float; integer suffixes leave it as is.
    if cur.peek() == Some(b'f') && (cur.peek_at(1) == Some(b'3') || cur.peek_at(1) == Some(b'6')) {
        is_float = true;
    }
    while cur.peek().is_some_and(is_ident_continue) {
        cur.bump();
    }
    if is_float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r###"
            // thread_rng in a comment
            /* Instant::now() in a block /* nested */ still comment */
            let s = "thread_rng inside a string";
            let r = r#"Instant "quoted" inside raw"#;
            let c = 'I';
            fn real_ident() {}
        "###;
        let ids = idents(src);
        assert!(!ids.contains(&"thread_rng".to_owned()));
        assert!(!ids.contains(&"Instant".to_owned()));
        assert!(ids.contains(&"real_ident".to_owned()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'static str { 'q'; x }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a", "static"]);
        // 'q' is the only char literal; `str` stays an identifier.
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Str)
                .count(),
            1
        );
    }

    #[test]
    fn float_literals_are_flagged() {
        let lexed = lex("let a = 0.5; let b = 1e-9; let c = 3; let r = 0..4; let d = 2f64;");
        let kinds: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Int | TokenKind::Float))
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Float, // 0.5
                TokenKind::Float, // 1e-9
                TokenKind::Int,   // 3
                TokenKind::Int,   // 0
                TokenKind::Int,   // 4
                TokenKind::Float, // 2f64
            ]
        );
    }

    #[test]
    fn trailing_comments_are_marked() {
        let lexed = lex("let x = 1; // trailing\n// own line\nlet y = 2;");
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
    }

    #[test]
    fn spans_are_one_based() {
        let lexed = lex("a\n  b");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }
}
