//! Confinement rules: randomness, clocks and sockets may each live only in
//! their sanctioned home, because each one is a channel through which
//! nondeterminism or untracked side effects could leak into a release.

use super::{prev, seq_matches, violation};
use crate::context::FileContext;
use crate::report::Violation;

/// Crates whose non-test code sits on (or under) the release path: a stray
/// RNG there could break bit-identical replay. `rmdp-noise` itself is the
/// sanctioned sampling home (its functions take a caller-seeded `Rng`);
/// `graph`, `baselines` and `experiments` are offline harnesses seeded at
/// their top level.
const RNG_CONFINED: &[&str] = &[
    "core",
    "sql",
    "server",
    "krelation",
    "lp",
    "runtime",
    "observe",
];

/// Entropy sources that are nondeterministic by construction. Banned in
/// *all* code, tests included: a test that passes under one entropy draw
/// and fails under another is flaky by design.
const NONDETERMINISTIC: &[&str] = &["thread_rng", "from_entropy", "OsRng", "ThreadRng"];

/// Seeded-construction entry points: fine in tests and harnesses, but in
/// confined crates every generator must descend from the session's logged
/// seed schedule, so fresh construction needs a sanctioned (allow-listed)
/// call site.
const CONSTRUCTORS: &[&str] = &["seed_from_u64", "from_seed", "from_rng"];

/// Raw sampling methods. In confined crates all sampling must flow through
/// `rmdp-noise`'s distribution functions, which own the replay-stable
/// rejection loops and NaN guards.
const RAW_SAMPLING: &[&str] = &[
    "gen",
    "gen_range",
    "gen_bool",
    "gen_ratio",
    "sample",
    "sample_iter",
    "fill_bytes",
    "next_u32",
    "next_u64",
];

/// Randomness confinement (`rng-confinement`).
pub fn check_rng(ctx: &FileContext, out: &mut Vec<Violation>) {
    let in_confined = RNG_CONFINED.iter().any(|c| ctx.in_crate_src(c));
    for (i, t) in ctx.tokens.iter().enumerate() {
        if t.kind != crate::lexer::TokenKind::Ident {
            continue;
        }
        if NONDETERMINISTIC.contains(&t.text.as_str()) {
            out.push(violation(
                ctx,
                t,
                "rng-confinement",
                format!(
                    "`{}` is a nondeterministic entropy source; every draw must descend \
                     from the seeded, replay-logged sampler paths",
                    t.text
                ),
            ));
            continue;
        }
        if !in_confined || ctx.is_test(i) {
            continue;
        }
        if CONSTRUCTORS.contains(&t.text.as_str()) {
            out.push(violation(
                ctx,
                t,
                "rng-confinement",
                format!(
                    "RNG construction (`{}`) outside a sanctioned call site; seed \
                     derivation on the release path must be confined so replay stays \
                     bit-identical",
                    t.text
                ),
            ));
            continue;
        }
        // Raw sampling: a method call `.gen(…)` / `.gen::<T>(…)` / `.sample(…)`.
        if RAW_SAMPLING.contains(&t.text.as_str())
            && prev(&ctx.tokens, i).is_some_and(|p| p.is_punct('.'))
            && ctx
                .tokens
                .get(i + 1)
                .is_some_and(|n| n.is_punct('(') || n.is_punct(':'))
        {
            out.push(violation(
                ctx,
                t,
                "rng-confinement",
                format!(
                    "raw sampling call `.{}(…)`; sampling on the release path must go \
                     through rmdp-noise's distribution functions",
                    t.text
                ),
            ));
        }
    }
}

/// The single file allowed to read a wall clock.
const CLOCK_HOME: &str = "crates/observe/src/clock.rs";

/// Clock confinement (`clock-confinement`): subsumes the old CI grep for
/// `std::time::(Instant|SystemTime)` and is stricter — it also catches
/// grouped imports (`use std::time::{Duration, Instant}`) and bare
/// `Instant::…` path uses, and it narrows the sanctioned surface from the
/// whole observe crate to `clock.rs`.
pub fn check_clock(ctx: &FileContext, out: &mut Vec<Violation>) {
    if ctx.path == CLOCK_HOME {
        return;
    }
    let clocky = |name: &str| name == "Instant" || name == "SystemTime";
    let mut i = 0;
    while i < ctx.tokens.len() {
        // Fully-qualified path or `std::time::{…}` group.
        if seq_matches(&ctx.tokens, i, &["std", ":", ":", "time", ":", ":"]) {
            let after = i + 6;
            if let Some(t) = ctx.tokens.get(after) {
                if clocky(&t.text) {
                    out.push(clock_violation(ctx, t));
                    i = after + 1;
                    continue;
                }
                if t.is_punct('{') {
                    if let Some(close) = super::matching(&ctx.tokens, after, '{', '}') {
                        for t in &ctx.tokens[after..close] {
                            if clocky(&t.text) {
                                out.push(clock_violation(ctx, t));
                            }
                        }
                        i = close + 1;
                        continue;
                    }
                }
            }
        }
        // Bare `Instant::…` / `SystemTime::…` (reachable only via an import,
        // which is itself flagged — this catches the uses too).
        let t = &ctx.tokens[i];
        if clocky(&t.text) && seq_matches(&ctx.tokens, i + 1, &[":", ":"]) {
            out.push(clock_violation(ctx, t));
        }
        i += 1;
    }
}

fn clock_violation(ctx: &FileContext, t: &crate::lexer::Token) -> Violation {
    violation(
        ctx,
        t,
        "clock-confinement",
        format!(
            "`{}` outside {CLOCK_HOME}; all wall-clock reads go through \
             rmdp_observe::Clock so telemetry stays mockable and deterministic",
            t.text
        ),
    )
}

/// Network confinement (`net-confinement`): subsumes the old CI grep for
/// `TcpListener` outside `crates/server/` and is stricter — listeners are
/// pinned to `protocol.rs` (the one module whose shutdown discipline closes
/// them), streams to the server crate's wire modules, and `UdpSocket` has
/// no sanctioned home at all.
pub fn check_net(ctx: &FileContext, out: &mut Vec<Violation>) {
    for t in &ctx.tokens {
        let (allowed, why): (&[&str], &str) = match t.text.as_str() {
            "TcpListener" => (
                &["crates/server/src/protocol.rs"],
                "all listening sockets must answer to ServerHandle's shutdown/drain \
                 discipline",
            ),
            "TcpStream" => (
                &[
                    "crates/server/src/protocol.rs",
                    "crates/server/src/client.rs",
                ],
                "wire connections live in the server crate's protocol/client modules",
            ),
            "UdpSocket" => (&[], "the workspace has no sanctioned UDP surface"),
            _ => continue,
        };
        if t.kind == crate::lexer::TokenKind::Ident && !allowed.contains(&ctx.path.as_str()) {
            out.push(violation(
                ctx,
                t,
                "net-confinement",
                format!("`{}` outside its sanctioned module: {why}", t.text),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_all(path: &str, src: &str) -> Vec<Violation> {
        let ctx = FileContext::new(path, src);
        let mut out = Vec::new();
        check_rng(&ctx, &mut out);
        check_clock(&ctx, &mut out);
        check_net(&ctx, &mut out);
        out
    }

    #[test]
    fn thread_rng_is_banned_even_in_tests() {
        let v = check_all(
            "tests/something.rs",
            "fn f() { let mut r = rand::thread_rng(); }",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "rng-confinement");
    }

    #[test]
    fn seeded_construction_flagged_only_in_confined_nontest_code() {
        let bad = "fn f() { let r = StdRng::seed_from_u64(1); }";
        assert_eq!(check_all("crates/core/src/x.rs", bad).len(), 1);
        assert_eq!(check_all("crates/experiments/src/x.rs", bad).len(), 0);
        let in_test = format!("#[cfg(test)] mod tests {{ {bad} }}");
        assert_eq!(check_all("crates/core/src/x.rs", &in_test).len(), 0);
    }

    #[test]
    fn raw_sampling_needs_the_noise_crate() {
        let bad = "fn f(r: &mut R) { let x: f64 = r.gen_range(0.0..1.0); }";
        assert_eq!(check_all("crates/krelation/src/x.rs", bad).len(), 1);
        assert_eq!(check_all("crates/noise/src/x.rs", bad).len(), 0);
        // `gen` as a plain identifier (not a method call) is fine.
        assert_eq!(
            check_all("crates/core/src/x.rs", "fn f() { let gen = 3; }").len(),
            0
        );
    }

    #[test]
    fn clock_paths_are_confined_to_clock_rs() {
        let qualified = "fn f() { let t = std::time::Instant::now(); }";
        let grouped = "use std::time::{Duration, Instant};";
        let bare_use = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        assert!(!check_all("crates/sql/src/x.rs", qualified).is_empty());
        assert!(!check_all("crates/sql/src/x.rs", grouped).is_empty());
        assert_eq!(check_all("crates/sql/src/x.rs", bare_use).len(), 2);
        assert!(check_all("crates/observe/src/clock.rs", qualified).is_empty());
        // Duration alone is not a clock read.
        assert!(check_all("crates/sql/src/x.rs", "use std::time::Duration;").is_empty());
    }

    #[test]
    fn sockets_are_confined() {
        let listener = "use std::net::TcpListener;";
        assert!(!check_all("crates/runtime/src/x.rs", listener).is_empty());
        assert!(check_all("crates/server/src/protocol.rs", listener).is_empty());
        let stream = "use std::net::TcpStream;";
        assert!(!check_all("crates/sql/src/x.rs", stream).is_empty());
        assert!(check_all("crates/server/src/client.rs", stream).is_empty());
    }
}
