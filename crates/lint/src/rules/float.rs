//! Float-discipline rules — the exact bug classes earlier PRs fixed by
//! hand: NaN-panicking `partial_cmp(..).unwrap()` sorts, exact float
//! equality in budget arithmetic, and silently lossy narrowing casts.

use super::{matching, prev, violation};
use crate::context::FileContext;
use crate::lexer::TokenKind;
use crate::report::Violation;

/// `float-total-cmp`: `partial_cmp(..).unwrap()` / `.expect(..)` is banned
/// everywhere, tests included — a NaN reaching such a sort panics, and the
/// workspace-wide sweep replaced every site with `f64::total_cmp`. Applies
/// to all scanned code: a comparator that can panic is no more welcome in a
/// test than on the release path.
pub fn check_total_cmp(ctx: &FileContext, out: &mut Vec<Violation>) {
    let tokens = &ctx.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("partial_cmp") || !prev(tokens, i).is_some_and(|p| p.is_punct('.')) {
            continue;
        }
        let Some(open) = tokens.get(i + 1).filter(|n| n.is_punct('(')).map(|_| i + 1) else {
            continue;
        };
        let Some(close) = matching(tokens, open, '(', ')') else {
            continue;
        };
        if tokens.get(close + 1).is_some_and(|n| n.is_punct('.'))
            && tokens
                .get(close + 2)
                .is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
        {
            out.push(violation(
                ctx,
                t,
                "float-total-cmp",
                "`partial_cmp(..)` followed by unwrap/expect panics on NaN; \
                 use `f64::total_cmp` (NaN-deterministic total order)"
                    .to_owned(),
            ));
        }
    }
}

/// Where float arithmetic is budget- or noise-critical: ε ledgers, noise
/// scale derivations and samplers all live in the noise crate.
fn in_float_critical(ctx: &FileContext) -> bool {
    ctx.in_crate_src("noise")
}

/// `float-eq`: `==` / `!=` against a float literal in budget/noise
/// arithmetic. Token-level, so only literal comparisons are detected —
/// which is exactly the dangerous idiom (`spent == 0.3` after three 0.1
/// debits is false); intentional exact guards (`scale == 0.0`
/// short-circuits) carry a justified `lint:allow`.
pub fn check_float_eq(ctx: &FileContext, out: &mut Vec<Violation>) {
    if !in_float_critical(ctx) {
        return;
    }
    let tokens = &ctx.tokens;
    for i in 0..tokens.len() {
        if ctx.is_test(i) {
            continue;
        }
        // `==` is '=' '=' not preceded by a comparison/compound-assign head
        // and not followed by another '='; `!=` is '!' '='.
        let (op_len, is_eq) = if tokens[i].is_punct('=')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('='))
            && !tokens.get(i + 2).is_some_and(|t| t.is_punct('='))
            && !prev(tokens, i).is_some_and(|p| {
                p.kind == TokenKind::Punct
                    && matches!(
                        p.text.as_bytes()[0],
                        b'<' | b'>'
                            | b'!'
                            | b'='
                            | b'+'
                            | b'-'
                            | b'*'
                            | b'/'
                            | b'%'
                            | b'&'
                            | b'|'
                            | b'^'
                    )
            }) {
            (2, true)
        } else if tokens[i].is_punct('!') && tokens.get(i + 1).is_some_and(|t| t.is_punct('=')) {
            (2, false)
        } else {
            continue;
        };
        let left_float = prev(tokens, i).is_some_and(|p| p.kind == TokenKind::Float);
        let right = tokens
            .get(i + op_len)
            .map(|t| {
                if t.is_punct('-') {
                    tokens.get(i + op_len + 1)
                } else {
                    Some(t)
                }
            })
            .unwrap_or(None);
        let right_float = right.is_some_and(|t| t.kind == TokenKind::Float);
        if left_float || right_float {
            out.push(violation(
                ctx,
                &tokens[i],
                "float-eq",
                format!(
                    "float-literal `{}` comparison in budget/noise arithmetic; exact \
                     float equality is rounding-fragile — compare with a tolerance or \
                     justify the exact guard",
                    if is_eq { "==" } else { "!=" }
                ),
            ));
        }
    }
}

/// Cast targets that silently drop precision or range when the source is a
/// float or a wider integer.
const LOSSY_TARGETS: &[&str] = &[
    "f32", "i64", "i32", "i16", "i8", "u64", "u32", "u16", "u8", "usize", "isize",
];

/// `float-cast`: lossy narrowing `as` casts in budget/noise arithmetic.
/// `as f64` stays legal (and common: `count() as f64`); everything
/// narrowing needs a justification, because a saturating or truncating
/// cast in a noise scale or ε sum is exactly the PR-5 underflow bug class.
pub fn check_float_cast(ctx: &FileContext, out: &mut Vec<Violation>) {
    if !in_float_critical(ctx) {
        return;
    }
    let tokens = &ctx.tokens;
    for i in 0..tokens.len() {
        if ctx.is_test(i) || !tokens[i].is_ident("as") {
            continue;
        }
        if let Some(target) = tokens.get(i + 1) {
            if LOSSY_TARGETS.contains(&target.text.as_str()) {
                out.push(violation(
                    ctx,
                    &tokens[i],
                    "float-cast",
                    format!(
                        "lossy `as {}` cast in budget/noise arithmetic; truncation and \
                         saturation here silently corrupt ε sums and noise scales",
                        target.text
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_all(path: &str, src: &str) -> Vec<Violation> {
        let ctx = FileContext::new(path, src);
        let mut out = Vec::new();
        check_total_cmp(&ctx, &mut out);
        check_float_eq(&ctx, &mut out);
        check_float_cast(&ctx, &mut out);
        out
    }

    #[test]
    fn partial_cmp_unwrap_is_flagged_everywhere() {
        let bad = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        assert_eq!(check_all("crates/experiments/src/x.rs", bad).len(), 1);
        let expect =
            "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).expect(\"finite\")); }";
        assert_eq!(check_all("tests/x.rs", expect).len(), 1);
        let good = "fn f(v: &mut Vec<f64>) { v.sort_by(f64::total_cmp); }";
        assert!(check_all("crates/experiments/src/x.rs", good).is_empty());
        // A bare partial_cmp without unwrap is fine.
        let bare = "fn f(a: f64, b: f64) { let _ = a.partial_cmp(&b); }";
        assert!(check_all("crates/core/src/x.rs", bare).is_empty());
    }

    #[test]
    fn float_literal_equality_flagged_in_noise_only() {
        let bad = "fn f(x: f64) -> bool { x == 0.0 }";
        assert_eq!(check_all("crates/noise/src/x.rs", bad).len(), 1);
        assert!(check_all("crates/core/src/x.rs", bad).is_empty());
        let neq = "fn f(x: f64) -> bool { 1.5 != x }";
        assert_eq!(check_all("crates/noise/src/x.rs", neq).len(), 1);
        let negated = "fn f(x: f64) -> bool { x == -0.5 }";
        assert_eq!(check_all("crates/noise/src/x.rs", negated).len(), 1);
        // Integer equality, <=, >= and pattern arrows stay silent.
        let fine = "fn f(n: u32, x: f64) -> bool { n % 2 == 1 && x <= 0.5 && x >= 0.1 }";
        assert!(check_all("crates/noise/src/x.rs", fine).is_empty());
        let arm = "fn f(p: P) -> f64 { match p { P::A => 1.0, _ => 0.0 } }";
        assert!(check_all("crates/noise/src/x.rs", arm).is_empty());
    }

    #[test]
    fn lossy_casts_flagged_in_noise_only() {
        let bad = "fn f(x: f64) -> i64 { x as i64 }";
        assert_eq!(check_all("crates/noise/src/x.rs", bad).len(), 1);
        assert!(check_all("crates/lp/src/x.rs", bad).is_empty());
        let widen = "fn f(n: usize) -> f64 { n as f64 }";
        assert!(check_all("crates/noise/src/x.rs", widen).is_empty());
    }
}
