//! `panic-freedom`: the server request path must refuse, never die.
//!
//! A panic in a connection handler kills that thread mid-request; a panic
//! under a lock poisons it for every other tenant. Every failure on the
//! path must instead surface as a [`ServerError`]-shaped refusal that
//! consumes no ε. The rule bans the panicking idioms in the server crate's
//! non-test code: `unwrap`/`expect` method calls, panicking macros, and
//! direct slice/array indexing (`xs[i]` panics out of bounds — use `get`).
//! `debug_assert!` stays legal: it compiles out of release builds.

use super::{prev, violation};
use crate::context::FileContext;
use crate::lexer::TokenKind;
use crate::report::Violation;

/// Macros that panic at runtime.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Keywords that can legitimately precede `[` without forming an index
/// expression (`&mut [T]`, `for x in [..]`, `return [..]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "dyn", "ref", "in", "as", "return", "break", "else", "match", "if", "while", "loop",
    "unsafe", "let", "move", "const", "static", "impl", "where", "await", "box",
];

/// Whether this file is on the server request path.
fn on_request_path(ctx: &FileContext) -> bool {
    ctx.in_crate_src("server")
}

/// Runs the `panic-freedom` checks over one file.
pub fn check(ctx: &FileContext, out: &mut Vec<Violation>) {
    if !on_request_path(ctx) {
        return;
    }
    let tokens = &ctx.tokens;
    for i in 0..tokens.len() {
        if ctx.is_test(i) {
            continue;
        }
        let t = &tokens[i];
        if t.kind == TokenKind::Ident {
            // `.unwrap()` / `.expect(…)` method calls. The leading dot keeps
            // `unwrap_or_else(PoisonError::into_inner)` and the free function
            // forms legal.
            if (t.text == "unwrap" || t.text == "expect")
                && prev(tokens, i).is_some_and(|p| p.is_punct('.'))
                && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                out.push(violation(
                    ctx,
                    t,
                    "panic-freedom",
                    format!(
                        "`.{}()` on the server request path; a panic here kills the \
                         connection thread (and poisons any held lock) — refuse the \
                         request with a ServerError instead",
                        t.text
                    ),
                ));
                continue;
            }
            if PANIC_MACROS.contains(&t.text.as_str())
                && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                out.push(violation(
                    ctx,
                    t,
                    "panic-freedom",
                    format!(
                        "`{}!` on the server request path; panics must not reach a \
                         connection handler — return a refusal instead",
                        t.text
                    ),
                ));
                continue;
            }
        }
        // Index expressions: `[` directly after an identifier, `)`, `]` or
        // `?` is an index (attribute `#[…]`, slice types `&[T]`, array
        // literals `= […]` and macro brackets `vec![…]` all have other
        // predecessors).
        if t.is_punct('[') {
            let is_index = prev(tokens, i).is_some_and(|p| match p.kind {
                TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
                TokenKind::Punct => {
                    matches!(p.text.as_bytes()[0], b')' | b']' | b'?')
                }
                _ => false,
            });
            if is_index {
                out.push(violation(
                    ctx,
                    t,
                    "panic-freedom",
                    "direct slice/array indexing on the server request path panics out \
                     of bounds; use `.get(…)` and refuse the request"
                        .to_owned(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_path(path: &str, src: &str) -> Vec<Violation> {
        let ctx = FileContext::new(path, src);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn unwrap_and_expect_flagged_only_in_server_nontest_code() {
        let bad = "fn f() { let x = y.lock().unwrap(); let z = w.expect(\"msg\"); }";
        assert_eq!(check_path("crates/server/src/server.rs", bad).len(), 2);
        assert!(check_path("crates/core/src/x.rs", bad).is_empty());
        let in_test = format!("#[cfg(test)] mod tests {{ {bad} }}");
        assert!(check_path("crates/server/src/server.rs", &in_test).is_empty());
    }

    #[test]
    fn poison_recovery_is_legal() {
        let good =
            "fn f() { let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner); }";
        assert!(check_path("crates/server/src/server.rs", good).is_empty());
    }

    #[test]
    fn panicking_macros_flagged_but_debug_assert_is_fine() {
        let bad = "fn f() { panic!(\"boom\"); assert!(x > 0); unreachable!(); }";
        assert_eq!(check_path("crates/server/src/protocol.rs", bad).len(), 3);
        let good = "fn f() { debug_assert!(x > 0); }";
        assert!(check_path("crates/server/src/protocol.rs", good).is_empty());
    }

    #[test]
    fn indexing_flagged_but_types_literals_and_macros_are_not() {
        let bad = "fn f(xs: &[u8], i: usize) -> u8 { xs[i] }";
        assert_eq!(check_path("crates/server/src/server.rs", bad).len(), 1);
        let chained = "fn f(m: &M) -> u8 { m.rows()[0] }";
        assert_eq!(check_path("crates/server/src/server.rs", chained).len(), 1);
        let good = "
            fn f(xs: &mut [u8]) -> Option<u8> {
                let arr = [1u8, 2, 3];
                let v = vec![0u8; 4];
                let t: [u8; 2] = [0, 1];
                for x in [1, 2] { let _ = x; }
                xs.get(0).copied()
            }
        ";
        assert!(check_path("crates/server/src/server.rs", good).is_empty());
    }
}
