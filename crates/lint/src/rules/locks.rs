//! `lock-order`: deadlock-shape analysis over guard-binding scopes.
//!
//! The rule builds a per-crate lock acquisition graph from the token
//! stream. An *acquisition* is a `.lock()` / `.read()` / `.write()` call
//! with empty parentheses (the empty argument list is what separates a
//! `Mutex`/`RwLock` acquisition from `io::Read::read(&mut buf)`); the lock
//! is named by the last identifier before the dot (`self.snapshot.read()`
//! acquires `snapshot`). A guard *persists* when the acquisition sits in a
//! `let` binding (until its block closes or the variable is `drop`ped) or
//! in a `for`/`match`/`if`/`while` head (until the body closes — slightly
//! conservative for `if`/`while`, whose condition temporaries really die
//! earlier). Any acquisition while guards are held adds held→new edges.
//!
//! Three violation shapes come out of the walk:
//! 1. a cycle in any crate's acquisition graph (ABBA deadlock shape),
//! 2. re-acquiring a lock name already held (self-deadlock for `Mutex`,
//!    writer-starvation hazard for `RwLock`),
//! 3. holding any guard across a blocking call — LP solves
//!    (`solve`/`solve_warm`/`precompute`) or network I/O (`write_all`,
//!    `read_*`, `connect`, `accept`) — which turns one slow tenant into a
//!    lock convoy for every other tenant.
//!
//! Known limits (by design — this is lexical, intra-procedural analysis):
//! locks acquired inside callees are invisible, and a guard returned from a
//! function is treated as transient at the return site. Lock names are
//! field names, so two different objects sharing a field name merge into
//! one graph node — conservative in the cycle direction. Test code
//! (`#[cfg(test)]` / `tests/`) is exempt: tests may sequence locks freely.

use super::{prev, violation};
use crate::context::FileContext;
use crate::lexer::TokenKind;
use crate::report::Violation;
use std::collections::{BTreeMap, BTreeSet};

/// Guard-producing method names (with empty argument lists).
const ACQUIRE: &[&str] = &["lock", "read", "write"];

/// Calls that block for unbounded or long times: LP solver entry points and
/// socket I/O. Holding any lock across these is a convoy hazard.
const BLOCKING: &[&str] = &[
    "solve",
    "solve_warm",
    "precompute",
    "write_all",
    "read_line",
    "read_exact",
    "read_to_string",
    "connect",
    "accept",
];

/// A live lock guard during the lexical walk.
struct Guard {
    /// Lock name (receiver field/variable identifier).
    lock: String,
    /// Binding variable, when bound via `let` (enables `drop(var)`).
    var: Option<String>,
    /// Brace depth the guard lives at; it dies when the walk closes back
    /// below this depth.
    depth: usize,
}

/// Where an edge was first observed: (path, line, col).
type Site = (String, u32, u32);

/// Per-crate acquisition graphs: crate key → (held → acquired) → first site.
type EdgeMap = BTreeMap<String, BTreeMap<(String, String), Site>>;

/// Runs the lock-order analysis over the whole file set (the graph spans
/// files within a crate: `ingest` in one file and `serve` in another must
/// still agree on order).
pub fn check(files: &[FileContext], out: &mut Vec<Violation>) {
    let mut edges: EdgeMap = BTreeMap::new();
    for ctx in files {
        scan_file(ctx, &mut edges, out);
    }
    for (krate, graph) in &edges {
        find_cycles(krate, graph, out);
    }
}

/// The graph partition a file belongs to: its crate directory (locks never
/// cross crate boundaries by value in this workspace).
fn crate_key(path: &str) -> String {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("crates").to_owned(),
        Some(first) => first.to_owned(),
        None => "unknown".to_owned(),
    }
}

fn scan_file(ctx: &FileContext, edges: &mut EdgeMap, out: &mut Vec<Violation>) {
    let tokens = &ctx.tokens;
    let krate = crate_key(&ctx.path);
    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();
    // `let [mut] <ident> =` seen, awaiting the initializer: (var, depth).
    let mut pending_let: Option<(String, usize)> = None;
    // Between a `for`/`match`/`if`/`while` keyword and its body `{`.
    let mut control_head = false;
    for i in 0..tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokenKind::Punct => match t.text.as_bytes()[0] {
                b'{' => {
                    depth += 1;
                    control_head = false;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|g| g.depth <= depth);
                }
                b';' => {
                    pending_let = None;
                    control_head = false;
                }
                _ => {}
            },
            TokenKind::Ident if !ctx.is_test(i) => match t.text.as_str() {
                "let" => {
                    let mut j = i + 1;
                    if tokens.get(j).is_some_and(|n| n.is_ident("mut")) {
                        j += 1;
                    }
                    if tokens.get(j).is_some_and(|n| n.kind == TokenKind::Ident)
                        && tokens.get(j + 1).is_some_and(|n| n.is_punct('='))
                    {
                        pending_let = Some((tokens[j].text.clone(), depth));
                    }
                }
                "for" | "while" | "if" | "match" => control_head = true,
                "drop"
                    if tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                        && tokens.get(i + 3).is_some_and(|n| n.is_punct(')')) =>
                {
                    if let Some(var) = tokens.get(i + 2).filter(|n| n.kind == TokenKind::Ident) {
                        guards.retain(|g| g.var.as_deref() != Some(var.text.as_str()));
                    }
                }
                name if ACQUIRE.contains(&name)
                    && prev(tokens, i).is_some_and(|p| p.is_punct('.'))
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && tokens.get(i + 2).is_some_and(|n| n.is_punct(')')) =>
                {
                    let recv = i
                        .checked_sub(2)
                        .and_then(|j| tokens.get(j))
                        .filter(|r| r.kind == TokenKind::Ident)
                        .map(|r| r.text.clone())
                        .unwrap_or_else(|| "<expr>".to_owned());
                    if guards.iter().any(|g| g.lock == recv) {
                        out.push(violation(
                            ctx,
                            t,
                            "lock-order",
                            format!(
                                "lock `{recv}` re-acquired while already held; a Mutex \
                                 self-deadlocks and an RwLock read-under-read stalls \
                                 behind a queued writer"
                            ),
                        ));
                    }
                    for g in &guards {
                        if g.lock != recv {
                            edges
                                .entry(krate.clone())
                                .or_default()
                                .entry((g.lock.clone(), recv.clone()))
                                .or_insert_with(|| (ctx.path.clone(), t.line, t.col));
                        }
                    }
                    if let Some((var, let_depth)) = pending_let.take() {
                        guards.push(Guard {
                            lock: recv,
                            var: Some(var),
                            depth: let_depth,
                        });
                    } else if control_head {
                        guards.push(Guard {
                            lock: recv,
                            var: None,
                            depth: depth + 1,
                        });
                    }
                }
                name if BLOCKING.contains(&name)
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && prev(tokens, i).is_some_and(|p| p.is_punct('.') || p.is_punct(':'))
                    && !guards.is_empty() =>
                {
                    let held = guards
                        .iter()
                        .map(|g| format!("`{}`", g.lock))
                        .collect::<Vec<_>>()
                        .join(", ");
                    out.push(violation(
                        ctx,
                        t,
                        "lock-order",
                        format!(
                            "blocking call `{name}(…)` while holding {held}; an LP \
                             solve or socket write under a lock convoys every other \
                             tenant — release the guard first"
                        ),
                    ));
                }
                _ => {}
            },
            _ => {}
        }
    }
}

/// DFS cycle detection over one crate's acquisition graph; each back edge
/// yields one violation anchored at the edge that closes the cycle.
fn find_cycles(krate: &str, graph: &BTreeMap<(String, String), Site>, out: &mut Vec<Violation>) {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (from, to) in graph.keys() {
        adj.entry(from).or_default().push(to);
        nodes.insert(from);
        nodes.insert(to);
    }
    let mut color: BTreeMap<&str, u8> = nodes.iter().map(|&n| (n, 0u8)).collect();
    let mut stack: Vec<&str> = Vec::new();
    for &node in &nodes {
        if color[node] == 0 {
            dfs(node, &adj, &mut color, &mut stack, graph, krate, out);
        }
    }
}

fn dfs<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    color: &mut BTreeMap<&'a str, u8>,
    stack: &mut Vec<&'a str>,
    graph: &BTreeMap<(String, String), Site>,
    krate: &str,
    out: &mut Vec<Violation>,
) {
    color.insert(node, 1);
    stack.push(node);
    for &next in adj.get(node).into_iter().flatten() {
        match color.get(next).copied().unwrap_or(0) {
            0 => dfs(next, adj, color, stack, graph, krate, out),
            1 => {
                // Back edge node→next closes a cycle through the gray stack.
                let cycle = match stack.iter().position(|&s| s == next) {
                    Some(pos) => {
                        let mut c: Vec<&str> = stack[pos..].to_vec();
                        c.push(next);
                        c.join(" -> ")
                    }
                    None => format!("{node} -> {next} -> {node}"),
                };
                if let Some((path, line, col)) = graph.get(&(node.to_owned(), next.to_owned())) {
                    out.push(Violation {
                        rule: "lock-order".to_owned(),
                        path: path.clone(),
                        line: *line,
                        col: *col,
                        message: format!(
                            "lock acquisition cycle in crate `{krate}`: {cycle}; two \
                             threads taking these locks in opposite orders deadlock"
                        ),
                    });
                }
            }
            _ => {}
        }
    }
    stack.pop();
    color.insert(node, 2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_sources(sources: &[(&str, &str)]) -> Vec<Violation> {
        let files: Vec<FileContext> = sources
            .iter()
            .map(|(path, src)| FileContext::new(path, src))
            .collect();
        let mut out = Vec::new();
        check(&files, &mut out);
        out
    }

    #[test]
    fn consistent_order_is_clean_and_opposite_order_cycles() {
        let ab = "fn f(s: &S) { let a = s.state.lock(); let b = s.ledger.lock(); }";
        let ab2 = "fn g(s: &S) { let a = s.state.lock(); let b = s.ledger.lock(); }";
        assert!(check_sources(&[
            ("crates/server/src/a.rs", ab),
            ("crates/server/src/b.rs", ab2),
        ])
        .is_empty());
        let ba = "fn g(s: &S) { let b = s.ledger.lock(); let a = s.state.lock(); }";
        let v = check_sources(&[
            ("crates/server/src/a.rs", ab),
            ("crates/server/src/b.rs", ba),
        ]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("cycle"));
    }

    #[test]
    fn same_names_in_different_crates_do_not_interact() {
        let ab = "fn f(s: &S) { let a = s.state.lock(); let b = s.ledger.lock(); }";
        let ba = "fn g(s: &S) { let b = s.ledger.lock(); let a = s.state.lock(); }";
        assert!(check_sources(&[
            ("crates/server/src/a.rs", ab),
            ("crates/runtime/src/b.rs", ba),
        ])
        .is_empty());
    }

    #[test]
    fn blocking_call_under_guard_flagged_and_freed_by_drop() {
        let bad = "fn f(s: &S) { let g = s.model.lock(); s.lp.solve(&m); }";
        let v = check_sources(&[("crates/runtime/src/x.rs", bad)]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("solve"));
        let good = "fn f(s: &S) { let g = s.model.lock(); drop(g); s.lp.solve(&m); }";
        assert!(check_sources(&[("crates/runtime/src/x.rs", good)]).is_empty());
        let scoped = "fn f(s: &S) { { let g = s.model.lock(); } s.lp.solve(&m); }";
        assert!(check_sources(&[("crates/runtime/src/x.rs", scoped)]).is_empty());
    }

    #[test]
    fn control_head_guard_lives_for_the_body() {
        let bad = "fn f(s: &S) { for c in s.streams.lock().drain(..) { c.write_all(b\"x\"); } }";
        let v = check_sources(&[("crates/server/src/x.rs", bad)]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("write_all"));
        let after = "fn f(s: &S) { for c in s.streams.lock().drain(..) { push(c); } s.out.write_all(b\"x\"); }";
        assert!(check_sources(&[("crates/server/src/x.rs", after)]).is_empty());
    }

    #[test]
    fn reacquisition_while_held_flagged() {
        let bad = "fn f(s: &S) { let a = s.state.lock(); let b = s.state.lock(); }";
        let v = check_sources(&[("crates/server/src/x.rs", bad)]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("re-acquired"));
    }

    #[test]
    fn io_read_with_arguments_is_not_an_acquisition() {
        let good = "fn f(s: &mut TcpStream, buf: &mut [u8]) { let n = s.read(buf); }";
        assert!(check_sources(&[("crates/server/src/x.rs", good)]).is_empty());
        // …and tests may lock in any order.
        let test_code = "#[cfg(test)] mod tests { fn g(s: &S) { let b = s.ledger.lock(); let a = s.state.lock(); s.lp.solve(&m); } }";
        let ab = "fn f(s: &S) { let a = s.state.lock(); let b = s.ledger.lock(); }";
        assert!(check_sources(&[
            ("crates/server/src/a.rs", ab),
            ("crates/server/src/b.rs", test_code),
        ])
        .is_empty());
    }
}
