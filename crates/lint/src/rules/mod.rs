//! The rule families and the driver that runs them over a file set.
//!
//! Every rule works on the token stream of [`FileContext`] — no type
//! information, no macro expansion. That makes each rule a *sound-by-
//! convention* check: it matches the shapes this workspace actually uses
//! (fully-qualified `std::time::Instant` paths, `.lock()`/`.read()`/
//! `.write()` guard bindings, `StdRng::seed_from_u64` construction) and the
//! fixture corpus plus the live-workspace self-check pin down both
//! directions. Known limits are documented per rule; the escape hatch for
//! a justified exception is a `lint:allow` directive, never a weaker rule.

mod confine;
mod float;
mod locks;
mod panic_free;

use crate::context::FileContext;
use crate::lexer::{Token, TokenKind};
use crate::report::Violation;

/// A rule family's id and one-line summary (used by `--list` and docs).
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Kebab-case rule id, as named in `lint:allow(<id>)`.
    pub id: &'static str,
    /// One-line description of what the rule enforces.
    pub summary: &'static str,
}

/// Every rule the tool knows, including the meta-rule that audits the
/// `lint:allow` directives themselves.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "rng-confinement",
        summary: "RNG construction and raw sampling only at sanctioned seeded call sites; \
                  nondeterministic entropy sources banned everywhere",
    },
    RuleInfo {
        id: "clock-confinement",
        summary: "std::time::{Instant, SystemTime} confined to crates/observe/src/clock.rs",
    },
    RuleInfo {
        id: "net-confinement",
        summary: "TcpListener confined to crates/server/src/protocol.rs; TcpStream to the \
                  server crate's protocol/client modules",
    },
    RuleInfo {
        id: "float-total-cmp",
        summary: "partial_cmp().unwrap()/expect() banned workspace-wide; use f64::total_cmp",
    },
    RuleInfo {
        id: "float-eq",
        summary: "float-literal ==/!= comparisons banned in budget/noise arithmetic",
    },
    RuleInfo {
        id: "float-cast",
        summary: "lossy narrowing `as` casts banned in budget/noise arithmetic",
    },
    RuleInfo {
        id: "panic-freedom",
        summary: "unwrap/expect/panic!/assert!/indexing banned on the server request path",
    },
    RuleInfo {
        id: "lock-order",
        summary: "lock acquisition graph must be acyclic; no lock held across LP solves or \
                  network I/O; no lock re-acquired while held",
    },
    RuleInfo {
        id: "lint-allow",
        summary: "every lint:allow directive must name a known rule, carry a justification, \
                  and suppress something",
    },
];

/// Whether `id` names a known rule (excluding the meta-rule, which cannot
/// itself be suppressed).
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id && r.id != "lint-allow")
}

/// Runs every rule over `files` and returns the raw violations, before
/// `lint:allow` suppression is applied ([`crate::lint_files`] owns that
/// step so suppressions are recorded centrally).
pub fn check_files(files: &[FileContext]) -> Vec<Violation> {
    let mut out = Vec::new();
    for ctx in files {
        confine::check_rng(ctx, &mut out);
        confine::check_clock(ctx, &mut out);
        confine::check_net(ctx, &mut out);
        float::check_total_cmp(ctx, &mut out);
        float::check_float_eq(ctx, &mut out);
        float::check_float_cast(ctx, &mut out);
        panic_free::check(ctx, &mut out);
    }
    locks::check(files, &mut out);
    out.sort_by(|a, b| (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule)));
    out
}

/// Builds a violation anchored at token `t`.
pub(crate) fn violation(ctx: &FileContext, t: &Token, rule: &str, message: String) -> Violation {
    Violation {
        rule: rule.to_owned(),
        path: ctx.path.clone(),
        line: t.line,
        col: t.col,
        message,
    }
}

/// The token before `i`, if any.
pub(crate) fn prev(tokens: &[Token], i: usize) -> Option<&Token> {
    i.checked_sub(1).and_then(|j| tokens.get(j))
}

/// Whether tokens starting at `i` spell the identifier/punct sequence in
/// `pattern` (multi-byte operators are written as consecutive single-byte
/// entries, e.g. `::` is `":", ":"`).
pub(crate) fn seq_matches(tokens: &[Token], i: usize, pattern: &[&str]) -> bool {
    pattern.iter().enumerate().all(|(k, want)| {
        tokens.get(i + k).is_some_and(|t| match t.kind {
            TokenKind::Ident => t.text == *want,
            TokenKind::Punct => t.text == *want,
            _ => false,
        })
    })
}

/// Index of the token closing the group opened at `open` (`(`→`)` etc.),
/// if the group is balanced.
pub(crate) fn matching(
    tokens: &[Token],
    open: usize,
    open_ch: char,
    close_ch: char,
) -> Option<usize> {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_ch) {
            depth += 1;
        } else if t.is_punct(close_ch) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}
