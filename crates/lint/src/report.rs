//! The lint run's result: violations, recorded suppressions, and the
//! human/JSON renderings CI consumes.
//!
//! The JSON writer reuses `rmdp-observe`'s deterministic JSON helpers and
//! the parser reuses its grammar, so the artifact round-trips the same way
//! `MetricsSnapshot` does: CI uploads `LINT_report.json`, and an external
//! auditor can parse it back with no dependencies beyond this workspace.

use rmdp_observe::{parse_json, write_json_string, JsonValue};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The violated rule's id (kebab-case, e.g. `panic-freedom`).
    pub rule: String,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// What was matched and why it is banned here.
    pub message: String,
}

impl Violation {
    /// The conventional `path:line:col` span prefix.
    pub fn span(&self) -> String {
        format!("{}:{}:{}", self.path, self.line, self.col)
    }
}

/// One violation that a justified `lint:allow` directive suppressed. The
/// report keeps these so every suppression stays auditable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppressed {
    /// The suppressed violation.
    pub violation: Violation,
    /// The directive's justification text.
    pub justification: String,
}

/// The complete result of linting a file set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LintReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: u64,
    /// Unsuppressed violations, in path/line order. CI fails on any.
    pub violations: Vec<Violation>,
    /// Violations suppressed by justified `lint:allow` directives.
    pub suppressed: Vec<Suppressed>,
}

impl LintReport {
    /// Whether the run found no violations (suppressions are fine).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation count per rule id, sorted by id.
    pub fn counts_by_rule(&self) -> BTreeMap<String, u64> {
        let mut counts = BTreeMap::new();
        for v in &self.violations {
            *counts.entry(v.rule.clone()).or_insert(0u64) += 1;
        }
        counts
    }

    /// Serializes the report as deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"files_scanned\":{}", self.files_scanned);
        out.push_str(",\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_violation(&mut out, v);
        }
        out.push_str("],\"suppressed\":[");
        for (i, s) in self.suppressed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut obj = String::new();
            write_violation(&mut obj, &s.violation);
            // Graft the justification into the violation object.
            obj.pop();
            out.push_str(&obj);
            out.push_str(",\"justification\":");
            write_json_string(&mut out, &s.justification);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Parses a report previously produced by [`LintReport::to_json`].
    /// Returns `None` on any structural mismatch.
    pub fn parse_json(text: &str) -> Option<LintReport> {
        let doc = parse_json(text).ok()?;
        let files_scanned = doc.get("files_scanned")?.as_u64()?;
        let violations = doc
            .get("violations")?
            .as_array()?
            .iter()
            .map(parse_violation)
            .collect::<Option<Vec<_>>>()?;
        let suppressed = doc
            .get("suppressed")?
            .as_array()?
            .iter()
            .map(|item| {
                Some(Suppressed {
                    violation: parse_violation(item)?,
                    justification: item.get("justification")?.as_str()?.to_owned(),
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(LintReport {
            files_scanned,
            violations,
            suppressed,
        })
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "rmdp-lint: {} file(s) scanned, {} violation(s), {} justified suppression(s)",
            self.files_scanned,
            self.violations.len(),
            self.suppressed.len()
        );
        for (rule, count) in self.counts_by_rule() {
            let _ = writeln!(out, "  {rule}: {count} violation(s)");
        }
        for v in &self.violations {
            let _ = writeln!(out, "{}: [{}] {}", v.span(), v.rule, v.message);
        }
        if !self.suppressed.is_empty() {
            let _ = writeln!(out, "suppressions (audited):");
            for s in &self.suppressed {
                let _ = writeln!(
                    out,
                    "  {}: [{}] allowed: {}",
                    s.violation.span(),
                    s.violation.rule,
                    s.justification
                );
            }
        }
        out
    }
}

fn write_violation(out: &mut String, v: &Violation) {
    out.push_str("{\"rule\":");
    write_json_string(out, &v.rule);
    out.push_str(",\"path\":");
    write_json_string(out, &v.path);
    let _ = write!(out, ",\"line\":{},\"col\":{}", v.line, v.col);
    out.push_str(",\"message\":");
    write_json_string(out, &v.message);
    out.push('}');
}

fn parse_violation(item: &JsonValue) -> Option<Violation> {
    Some(Violation {
        rule: item.get("rule")?.as_str()?.to_owned(),
        path: item.get("path")?.as_str()?.to_owned(),
        line: item.get("line")?.as_u64()? as u32,
        col: item.get("col")?.as_u64()? as u32,
        message: item.get("message")?.as_str()?.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        LintReport {
            files_scanned: 3,
            violations: vec![Violation {
                rule: "panic-freedom".to_owned(),
                path: "crates/server/src/server.rs".to_owned(),
                line: 12,
                col: 9,
                message: "`.unwrap()` on the request path".to_owned(),
            }],
            suppressed: vec![Suppressed {
                violation: Violation {
                    rule: "float-eq".to_owned(),
                    path: "crates/noise/src/laplace.rs".to_owned(),
                    line: 18,
                    col: 5,
                    message: "float `==` comparison".to_owned(),
                },
                justification: "exact zero-scale short-circuit".to_owned(),
            }],
        }
    }

    #[test]
    fn json_round_trips() {
        let report = sample();
        let back = LintReport::parse_json(&report.to_json()).expect("parses back");
        assert_eq!(back, report);
    }

    #[test]
    fn empty_report_round_trips_and_is_clean() {
        let report = LintReport {
            files_scanned: 7,
            ..LintReport::default()
        };
        assert!(report.is_clean());
        let back = LintReport::parse_json(&report.to_json()).expect("parses back");
        assert_eq!(back, report);
    }

    #[test]
    fn text_render_carries_spans_and_rules() {
        let text = sample().render_text();
        assert!(text.contains("crates/server/src/server.rs:12:9"));
        assert!(text.contains("[panic-freedom]"));
        assert!(text.contains("allowed: exact zero-scale short-circuit"));
    }
}
