//! k-star counting with local-sensitivity calibration
//! (Karwa, Raskhodnikova, Smith & Yaroslavtsev \[7\]).
//!
//! Edge privacy, ε-DP. Adding or removing an edge `{u, v}` changes the number
//! of k-stars by `C(d_u, k−1) + C(d_v, k−1)` (stars centred at `u` or `v`
//! using the edge as one leg), so the local sensitivity is bounded through
//! the maximum degree. At distance `s` every degree can grow by at most `s`,
//! giving the envelope `2·C(min(d_max + s, n − 1), k − 1)`; the release is
//! calibrated to the (ε/6)-smooth bound of this envelope with Cauchy noise.

use crate::laplace_gs::binomial_f;
use crate::{BaselineMechanism, Guarantee};
use rand::RngCore;
use rmdp_graph::stats::graph_stats;
use rmdp_graph::subgraph::k_star_count;
use rmdp_graph::Graph;
use rmdp_noise::smooth::{cauchy_beta, release_with_cauchy, smooth_sensitivity};

/// The k-star local-sensitivity mechanism.
#[derive(Clone, Copy, Debug)]
pub struct KStarMechanism {
    k: usize,
    epsilon: f64,
}

impl KStarMechanism {
    /// A k-star counter with total budget `epsilon` (ε-DP, edge privacy).
    pub fn new(k: usize, epsilon: f64) -> Self {
        assert!(k >= 1 && epsilon > 0.0);
        KStarMechanism { k, epsilon }
    }

    /// The smooth bound on the local sensitivity at `graph`.
    pub fn smooth_bound(&self, graph: &Graph) -> f64 {
        let n = graph.num_nodes();
        let d_max = graph_stats(graph, 0).max_degree;
        let beta = cauchy_beta(self.epsilon);
        smooth_sensitivity(beta, n.saturating_sub(1), |s| {
            let d = (d_max + s).min(n.saturating_sub(1));
            2.0 * binomial_f(d, self.k.saturating_sub(1))
        })
    }
}

impl BaselineMechanism for KStarMechanism {
    fn name(&self) -> &str {
        "local sensitivity (k-star)"
    }

    fn guarantee(&self) -> Guarantee {
        Guarantee::PureEdge {
            epsilon: self.epsilon,
        }
    }

    fn true_count(&self, graph: &Graph) -> f64 {
        k_star_count(graph, self.k) as f64
    }

    fn noise_scale(&self, graph: &Graph) -> f64 {
        2.0 * self.smooth_bound(graph) / self.epsilon
    }

    fn release(&self, graph: &Graph, rng: &mut dyn RngCore) -> f64 {
        release_with_cauchy(
            self.true_count(graph),
            self.smooth_bound(graph),
            self.epsilon,
            rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rmdp_graph::generators;

    #[test]
    fn smooth_bound_scales_with_max_degree() {
        let mut rng = StdRng::seed_from_u64(7);
        let sparse = generators::gnp_average_degree(100, 4.0, &mut rng);
        let dense = generators::gnp_average_degree(100, 16.0, &mut rng);
        let m = KStarMechanism::new(2, 0.5);
        assert!(m.smooth_bound(&dense) > m.smooth_bound(&sparse));
        // For 2-stars the local part is 2·d_max.
        let d_max = graph_stats(&sparse, 0).max_degree as f64;
        assert!(m.smooth_bound(&sparse) >= 2.0 * d_max);
    }

    #[test]
    fn relative_error_is_small_on_dense_graphs() {
        // k-star counts are huge (Σ C(d, k)) while the sensitivity is only
        // O(d_max), so the relative error of this baseline is small — which
        // matches the paper's Fig. 4 (the local-sensitivity curve is the
        // strongest baseline for 2-stars).
        let mut rng = StdRng::seed_from_u64(8);
        let g = generators::gnp_average_degree(150, 10.0, &mut rng);
        let m = KStarMechanism::new(2, 0.5);
        let truth = m.true_count(&g);
        assert!(m.noise_scale(&g) < 0.2 * truth);
    }

    #[test]
    fn one_star_count_is_twice_the_edges() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::gnp_average_degree(50, 6.0, &mut rng);
        let m = KStarMechanism::new(1, 0.5);
        assert_eq!(m.true_count(&g), 2.0 * g.num_edges() as f64);
    }
}
