//! k-triangle counting, the (ε, δ) local-sensitivity mechanism
//! (Karwa, Raskhodnikova, Smith & Yaroslavtsev \[7\]).
//!
//! Edge privacy, (ε, δ)-DP. A k-triangle is `k` triangles sharing one edge.
//! Removing or adding an edge `{u, v}` changes the count by
//! `C(a_uv, k)` (k-triangles based at the edge itself) plus at most
//! `a_max·C(a_max, k−1)` (k-triangles in which the edge is one of the side
//! pairs), so the local sensitivity is governed by the maximum
//! common-neighbour count `a_max`. The release adds Laplace noise calibrated
//! to a β-smooth bound of the distance-`s` envelope with
//! `β = ε / (2·ln(2/δ))`, which yields (ε, δ)-DP — matching the guarantee the
//! paper attributes to this baseline.

use crate::laplace_gs::binomial_f;
use crate::{BaselineMechanism, Guarantee};
use rand::RngCore;
use rmdp_graph::stats::graph_stats;
use rmdp_graph::subgraph::k_triangle_count;
use rmdp_graph::Graph;
use rmdp_noise::smooth::{laplace_beta, release_with_laplace, smooth_sensitivity};

/// The k-triangle local-sensitivity mechanism.
#[derive(Clone, Copy, Debug)]
pub struct KTriangleMechanism {
    k: usize,
    epsilon: f64,
    delta: f64,
}

impl KTriangleMechanism {
    /// A k-triangle counter with budget (`epsilon`, `delta`), edge privacy.
    pub fn new(k: usize, epsilon: f64, delta: f64) -> Self {
        assert!(k >= 1 && epsilon > 0.0 && delta > 0.0 && delta < 1.0);
        KTriangleMechanism { k, epsilon, delta }
    }

    /// The local-sensitivity envelope at common-neighbour level `a`.
    fn envelope(&self, a: f64) -> f64 {
        binomial_f(a as usize, self.k) + a * binomial_f(a as usize, self.k.saturating_sub(1))
    }

    /// The smooth bound on the local sensitivity at `graph`.
    pub fn smooth_bound(&self, graph: &Graph) -> f64 {
        let n = graph.num_nodes();
        let a_max = graph_stats(graph, 2_000).max_common_neighbors_any as f64;
        let cap = n.saturating_sub(2) as f64;
        let beta = laplace_beta(self.epsilon, self.delta);
        smooth_sensitivity(beta, n.saturating_sub(2), |s| {
            self.envelope((a_max + s as f64).min(cap))
        })
    }
}

impl BaselineMechanism for KTriangleMechanism {
    fn name(&self) -> &str {
        "local sensitivity (k-triangle)"
    }

    fn guarantee(&self) -> Guarantee {
        Guarantee::ApproxEdge {
            epsilon: self.epsilon,
            delta: self.delta,
        }
    }

    fn true_count(&self, graph: &Graph) -> f64 {
        k_triangle_count(graph, self.k) as f64
    }

    fn noise_scale(&self, graph: &Graph) -> f64 {
        2.0 * self.smooth_bound(graph) / self.epsilon
    }

    fn release(&self, graph: &Graph, rng: &mut dyn RngCore) -> f64 {
        release_with_laplace(
            self.true_count(graph),
            self.smooth_bound(graph),
            self.epsilon,
            rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rmdp_graph::generators;

    #[test]
    fn envelope_grows_with_common_neighbours() {
        let m = KTriangleMechanism::new(2, 0.5, 0.1);
        assert!(m.envelope(10.0) > m.envelope(3.0));
        // k = 2, a = 3: C(3,2) + 3·C(3,1) = 3 + 9 = 12.
        assert_eq!(m.envelope(3.0), 12.0);
    }

    #[test]
    fn smooth_bound_is_at_least_the_local_envelope() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = generators::gnp_average_degree(80, 10.0, &mut rng);
        let m = KTriangleMechanism::new(2, 0.5, 0.1);
        let a_max = graph_stats(&g, 2_000).max_common_neighbors_any as f64;
        assert!(m.smooth_bound(&g) >= m.envelope(a_max));
    }

    #[test]
    fn tighter_delta_means_more_noise() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::gnp_average_degree(80, 10.0, &mut rng);
        let loose = KTriangleMechanism::new(2, 0.5, 0.1);
        let tight = KTriangleMechanism::new(2, 0.5, 1e-6);
        assert!(tight.smooth_bound(&g) >= loose.smooth_bound(&g));
    }

    #[test]
    fn releases_are_finite() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = generators::gnp_average_degree(60, 8.0, &mut rng);
        let m = KTriangleMechanism::new(2, 0.5, 0.1);
        for _ in 0..20 {
            assert!(m.release(&g, &mut rng).is_finite());
        }
    }
}
