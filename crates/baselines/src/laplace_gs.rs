//! Global-sensitivity Laplace baseline.
//!
//! For edge-neighbouring graphs the global sensitivity of subgraph counting
//! is already enormous: adding one edge can create up to `n − 2` triangles or
//! `2·C(n−2, k−1)` k-stars. For node-neighbouring it is worse still (and the
//! recursive mechanism exists precisely because these worst cases make the
//! classical Laplace mechanism useless). This baseline calibrates to the
//! worst case and is included as the naïve reference point.

use crate::{BaselineMechanism, Guarantee};
use rand::RngCore;
use rmdp_graph::subgraph::{k_star_count, k_triangle_count, triangle_count};
use rmdp_graph::Graph;
use rmdp_noise::laplace::sample_laplace;

/// Which count the baseline releases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CountQuery {
    /// Triangles.
    Triangles,
    /// k-stars.
    KStars(usize),
    /// k-triangles.
    KTriangles(usize),
}

/// The global-sensitivity Laplace mechanism for a fixed subgraph count under
/// edge privacy.
#[derive(Clone, Debug)]
pub struct GlobalSensitivityLaplace {
    query: CountQuery,
    epsilon: f64,
    /// Global sensitivity used for calibration (depends on the maximum
    /// possible node count, fixed at construction).
    sensitivity: f64,
    name: String,
}

impl GlobalSensitivityLaplace {
    /// Triangle counting on graphs with at most `n` nodes: `GS = n − 2`.
    pub fn for_triangles(n: usize, epsilon: f64) -> Self {
        GlobalSensitivityLaplace {
            query: CountQuery::Triangles,
            epsilon,
            sensitivity: (n.saturating_sub(2)) as f64,
            name: "GS-Laplace (triangle)".to_owned(),
        }
    }

    /// k-star counting on graphs with at most `n` nodes:
    /// `GS = 2·C(n−2, k−1)` (each endpoint of a new edge can become the
    /// centre of that many new stars) plus the stars using the edge as a leg.
    pub fn for_k_stars(n: usize, k: usize, epsilon: f64) -> Self {
        let gs = 2.0 * binomial_f(n.saturating_sub(2), k.saturating_sub(1));
        GlobalSensitivityLaplace {
            query: CountQuery::KStars(k),
            epsilon,
            sensitivity: gs,
            name: format!("GS-Laplace ({k}-star)"),
        }
    }

    /// k-triangle counting on graphs with at most `n` nodes:
    /// `GS = C(n−2, k) + (n−2)·C(n−3, k−1)` (the new edge as base, or as a
    /// side of an existing base).
    pub fn for_k_triangles(n: usize, k: usize, epsilon: f64) -> Self {
        let n2 = n.saturating_sub(2);
        let gs =
            binomial_f(n2, k) + n2 as f64 * binomial_f(n.saturating_sub(3), k.saturating_sub(1));
        GlobalSensitivityLaplace {
            query: CountQuery::KTriangles(k),
            epsilon,
            sensitivity: gs,
            name: format!("GS-Laplace ({k}-triangle)"),
        }
    }

    /// An explicit query/sensitivity combination.
    pub fn with_sensitivity(query: CountQuery, sensitivity: f64, epsilon: f64) -> Self {
        GlobalSensitivityLaplace {
            query,
            epsilon,
            sensitivity,
            name: "GS-Laplace".to_owned(),
        }
    }
}

impl BaselineMechanism for GlobalSensitivityLaplace {
    fn name(&self) -> &str {
        &self.name
    }

    fn guarantee(&self) -> Guarantee {
        Guarantee::PureEdge {
            epsilon: self.epsilon,
        }
    }

    fn true_count(&self, graph: &Graph) -> f64 {
        match self.query {
            CountQuery::Triangles => triangle_count(graph) as f64,
            CountQuery::KStars(k) => k_star_count(graph, k) as f64,
            CountQuery::KTriangles(k) => k_triangle_count(graph, k) as f64,
        }
    }

    fn noise_scale(&self, _graph: &Graph) -> f64 {
        self.sensitivity / self.epsilon
    }

    fn release(&self, graph: &Graph, rng: &mut dyn RngCore) -> f64 {
        self.true_count(graph) + sample_laplace(self.noise_scale(graph), rng)
    }
}

pub(crate) fn binomial_f(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut result = 1.0f64;
    for i in 0..k {
        result = result * (n - i) as f64 / (i + 1) as f64;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rmdp_graph::generators;

    #[test]
    fn sensitivities_grow_with_graph_size() {
        let small = GlobalSensitivityLaplace::for_triangles(50, 0.5);
        let large = GlobalSensitivityLaplace::for_triangles(500, 0.5);
        assert!(large.sensitivity > small.sensitivity);
        assert_eq!(small.sensitivity, 48.0);

        let stars = GlobalSensitivityLaplace::for_k_stars(100, 2, 0.5);
        assert_eq!(stars.sensitivity, 2.0 * 98.0);

        let kt = GlobalSensitivityLaplace::for_k_triangles(100, 2, 0.5);
        assert!(kt.sensitivity > stars.sensitivity);
    }

    #[test]
    fn true_counts_match_the_graph_module() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::gnp_average_degree(30, 6.0, &mut rng);
        let m = GlobalSensitivityLaplace::for_triangles(30, 0.5);
        assert_eq!(m.true_count(&g), triangle_count(&g) as f64);
        let s = GlobalSensitivityLaplace::for_k_stars(30, 2, 0.5);
        assert_eq!(s.true_count(&g), k_star_count(&g, 2) as f64);
    }

    #[test]
    fn noise_scale_dwarfs_typical_counts_for_node_scale_graphs() {
        // The point of the baseline: at ε = 0.5 and |V| = 200 the noise scale
        // is 396, larger than typical sparse-graph triangle counts.
        let m = GlobalSensitivityLaplace::for_triangles(200, 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::gnp_average_degree(200, 10.0, &mut rng);
        assert!(m.noise_scale(&g) > m.true_count(&g));
    }

    #[test]
    fn binomial_helper_matches_known_values() {
        assert_eq!(binomial_f(5, 2), 10.0);
        assert_eq!(binomial_f(3, 5), 0.0);
        assert_eq!(binomial_f(7, 0), 1.0);
    }
}
