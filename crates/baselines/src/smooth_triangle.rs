//! Smooth-sensitivity triangle counting (Nissim, Raskhodnikova & Smith \[10\]).
//!
//! Edge privacy, ε-DP. The local sensitivity of the triangle count at a graph
//! `G` is `max_{i,j} a_{ij}` — the largest number of common neighbours over
//! node pairs — and the mechanism adds Cauchy noise scaled by a β-smooth
//! upper bound on it (`β = ε/6`).
//!
//! The distance-`s` local sensitivity is upper-bounded by
//! `min(n − 2, a_max + s)`: each of the `s` edge modifications can raise any
//! pair's common-neighbour count by at most one. We take the smooth bound of
//! this envelope, which upper-bounds the exact smooth sensitivity of \[10\]
//! (privacy is preserved; the error is within a small constant of the exact
//! computation — see DESIGN.md, substitutions).

use crate::{BaselineMechanism, Guarantee};
use rand::RngCore;
use rmdp_graph::stats::graph_stats;
use rmdp_graph::subgraph::triangle_count;
use rmdp_graph::Graph;
use rmdp_noise::smooth::{cauchy_beta, release_with_cauchy, smooth_sensitivity};

/// The smooth-sensitivity triangle-count mechanism.
#[derive(Clone, Copy, Debug)]
pub struct SmoothSensitivityTriangle {
    epsilon: f64,
}

impl SmoothSensitivityTriangle {
    /// A mechanism with total privacy budget `epsilon` (ε-DP, edge privacy).
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0);
        SmoothSensitivityTriangle { epsilon }
    }

    /// The β-smooth upper bound on the local sensitivity at `graph`.
    pub fn smooth_bound(&self, graph: &Graph) -> f64 {
        let n = graph.num_nodes();
        let stats = graph_stats(graph, 2_000);
        let a_max = stats.max_common_neighbors_any as f64;
        let cap = n.saturating_sub(2) as f64;
        let beta = cauchy_beta(self.epsilon);
        smooth_sensitivity(beta, n.saturating_sub(2), |s| (a_max + s as f64).min(cap))
    }
}

impl BaselineMechanism for SmoothSensitivityTriangle {
    fn name(&self) -> &str {
        "smooth sensitivity (triangle)"
    }

    fn guarantee(&self) -> Guarantee {
        Guarantee::PureEdge {
            epsilon: self.epsilon,
        }
    }

    fn true_count(&self, graph: &Graph) -> f64 {
        triangle_count(graph) as f64
    }

    fn noise_scale(&self, graph: &Graph) -> f64 {
        2.0 * self.smooth_bound(graph) / self.epsilon
    }

    fn release(&self, graph: &Graph, rng: &mut dyn RngCore) -> f64 {
        release_with_cauchy(
            self.true_count(graph),
            self.smooth_bound(graph),
            self.epsilon,
            rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rmdp_graph::generators;

    #[test]
    fn smooth_bound_dominates_local_sensitivity_and_respects_the_cap() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::gnp_average_degree(60, 8.0, &mut rng);
        let m = SmoothSensitivityTriangle::new(0.5);
        let stats = graph_stats(&g, 2_000);
        let bound = m.smooth_bound(&g);
        assert!(bound >= stats.max_common_neighbors_any as f64);
        assert!(bound <= 58.0);
    }

    #[test]
    fn denser_graphs_have_larger_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let sparse = generators::gnp_average_degree(80, 4.0, &mut rng);
        let dense = generators::gnp_average_degree(80, 20.0, &mut rng);
        let m = SmoothSensitivityTriangle::new(0.5);
        assert!(m.smooth_bound(&dense) >= m.smooth_bound(&sparse));
    }

    #[test]
    fn median_release_is_near_the_true_count() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::gnp_average_degree(60, 10.0, &mut rng);
        let m = SmoothSensitivityTriangle::new(1.0);
        let truth = m.true_count(&g);
        let mut answers: Vec<f64> = (0..2001).map(|_| m.release(&g, &mut rng)).collect();
        answers.sort_by(f64::total_cmp);
        let median = answers[answers.len() / 2];
        // Cauchy noise has no mean but the median error is ~ the noise scale.
        assert!((median - truth).abs() < 4.0 * m.noise_scale(&g));
    }
}
