//! Baseline mechanisms for the paper's evaluation (Sec. 6.1).
//!
//! The recursive mechanism is compared against four families of prior work,
//! all re-implemented here:
//!
//! * [`laplace_gs`] — the classical global-sensitivity Laplace mechanism
//!   (Dwork et al.), included as the "what if we just calibrated to the worst
//!   case" reference.
//! * [`smooth_triangle`] — triangle counting with smooth sensitivity and
//!   Cauchy noise (Nissim, Raskhodnikova & Smith \[10\]); ε-DP, edge privacy.
//! * [`kstar`] — k-star counting calibrated to a smooth bound on the local
//!   sensitivity (Karwa, Raskhodnikova, Smith & Yaroslavtsev \[7\]); ε-DP,
//!   edge privacy.
//! * [`ktriangle`] — k-triangle counting, the (ε, δ) local-sensitivity
//!   mechanism of the same paper; edge privacy.
//! * [`rhms`] — the output-perturbation mechanism of Rastogi, Hay, Miklau &
//!   Suciu \[12\] for arbitrary connected subgraphs, modelled at its published
//!   noise magnitude `Θ((k·l²·ln|V|)^{l−1}/ε)`; (ε, γ)-adversarial privacy,
//!   edge privacy.
//!
//! All baselines provide **edge** privacy only — none of them can offer node
//! privacy, which is the point of the comparison. See `DESIGN.md` for the
//! faithfulness discussion of each re-implementation.

#![deny(missing_docs)]

pub mod kstar;
pub mod ktriangle;
pub mod laplace_gs;
pub mod rhms;
pub mod smooth_triangle;

use rand::RngCore;
use rmdp_graph::Graph;

/// The privacy guarantee a baseline provides (always edge-level).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Guarantee {
    /// Pure ε-differential privacy (edge neighbouring).
    PureEdge {
        /// The ε parameter.
        epsilon: f64,
    },
    /// Approximate (ε, δ)-differential privacy (edge neighbouring).
    ApproxEdge {
        /// The ε parameter.
        epsilon: f64,
        /// The δ parameter.
        delta: f64,
    },
    /// (ε, γ)-adversarial privacy against a restricted adversary class.
    Adversarial {
        /// The ε parameter.
        epsilon: f64,
        /// The γ parameter.
        gamma: f64,
    },
}

/// A baseline mechanism releasing a noisy subgraph count for a fixed query.
pub trait BaselineMechanism {
    /// Short display name used in experiment tables.
    fn name(&self) -> &str;

    /// The privacy guarantee provided.
    fn guarantee(&self) -> Guarantee;

    /// The true count of the mechanism's query on `graph`.
    fn true_count(&self, graph: &Graph) -> f64;

    /// The noise scale the mechanism would apply on `graph` (used to reason
    /// about error without sampling).
    fn noise_scale(&self, graph: &Graph) -> f64;

    /// Releases a noisy count.
    fn release(&self, graph: &Graph, rng: &mut dyn RngCore) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplace_gs::GlobalSensitivityLaplace;
    use crate::rhms::Rhms;
    use crate::smooth_triangle::SmoothSensitivityTriangle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rmdp_graph::generators;

    #[test]
    fn baselines_can_be_used_through_the_trait_object() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::gnp_average_degree(40, 8.0, &mut rng);
        let mechanisms: Vec<Box<dyn BaselineMechanism>> = vec![
            Box::new(GlobalSensitivityLaplace::for_triangles(g.num_nodes(), 0.5)),
            Box::new(SmoothSensitivityTriangle::new(0.5)),
            Box::new(Rhms::new(3, 3, 0.5)),
        ];
        for m in &mechanisms {
            let answer = m.release(&g, &mut rng);
            assert!(
                answer.is_finite(),
                "{} returned a non-finite answer",
                m.name()
            );
            assert!(m.noise_scale(&g) > 0.0);
            assert!(!m.name().is_empty());
        }
    }
}
