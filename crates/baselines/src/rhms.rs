//! The RHMS output-perturbation mechanism
//! (Rastogi, Hay, Miklau & Suciu \[12\]).
//!
//! RHMS answers counting queries for arbitrary connected subgraphs under
//! (ε, γ)-*adversarial* privacy — a strictly weaker guarantee than
//! differential privacy, protecting only against a restricted class of
//! adversaries — and still needs noise of magnitude
//! `Θ((k·l²·ln|V|)^{l−1} / ε)` for a pattern with `k` nodes and `l` edges
//! (the figure the paper's comparison table quotes). The noise grows
//! exponentially with the number of pattern edges, which is why the paper's
//! Fig. 4 shows the RHMS curves off the chart for triangles and 2-triangles.
//!
//! We model the mechanism at exactly that published noise magnitude: the
//! release is the true count plus Laplace noise with the Θ(·) scale. This
//! preserves the quantity the evaluation compares (error magnitude) without
//! re-implementing the sketch machinery of the original paper (see DESIGN.md,
//! substitutions).

use crate::{BaselineMechanism, Guarantee};
use rand::RngCore;
use rmdp_graph::subgraph::count_pattern;
use rmdp_graph::{Graph, Pattern};
use rmdp_noise::laplace::sample_laplace;

/// The modelled RHMS mechanism for a `k`-node, `l`-edge connected pattern.
#[derive(Clone, Debug)]
pub struct Rhms {
    pattern_nodes: usize,
    pattern_edges: usize,
    epsilon: f64,
    gamma: f64,
    pattern: Option<Pattern>,
}

impl Rhms {
    /// A mechanism for a pattern with `k` nodes and `l` edges at budget
    /// `epsilon` (γ defaults to 0.1 as in the paper's experiments). The true
    /// count is evaluated with the triangle pattern shape when only sizes are
    /// given; use [`Rhms::for_pattern`] to attach a concrete pattern.
    pub fn new(pattern_nodes: usize, pattern_edges: usize, epsilon: f64) -> Self {
        Rhms {
            pattern_nodes,
            pattern_edges,
            epsilon,
            gamma: 0.1,
            pattern: None,
        }
    }

    /// A mechanism for a concrete pattern.
    pub fn for_pattern(pattern: Pattern, epsilon: f64) -> Self {
        Rhms {
            pattern_nodes: pattern.num_nodes(),
            pattern_edges: pattern.num_edges(),
            epsilon,
            gamma: 0.1,
            pattern: Some(pattern),
        }
    }

    /// Overrides the adversarial-privacy parameter γ.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }
}

impl BaselineMechanism for Rhms {
    fn name(&self) -> &str {
        "RHMS"
    }

    fn guarantee(&self) -> Guarantee {
        Guarantee::Adversarial {
            epsilon: self.epsilon,
            gamma: self.gamma,
        }
    }

    fn true_count(&self, graph: &Graph) -> f64 {
        match &self.pattern {
            Some(p) => count_pattern(graph, p, usize::MAX) as f64,
            None => count_pattern(graph, &Pattern::triangle(), usize::MAX) as f64,
        }
    }

    fn noise_scale(&self, graph: &Graph) -> f64 {
        let n = graph.num_nodes().max(2) as f64;
        let k = self.pattern_nodes as f64;
        let l = self.pattern_edges as f64;
        let base = k * l * l * n.ln();
        base.powf(l - 1.0) / self.epsilon
    }

    fn release(&self, graph: &Graph, rng: &mut dyn RngCore) -> f64 {
        self.true_count(graph) + sample_laplace(self.noise_scale(graph), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rmdp_graph::generators;

    #[test]
    fn noise_scale_grows_exponentially_with_pattern_edges() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = generators::gnp_average_degree(100, 10.0, &mut rng);
        let star = Rhms::for_pattern(Pattern::k_star(2), 0.5);
        let triangle = Rhms::for_pattern(Pattern::triangle(), 0.5);
        let two_triangle = Rhms::for_pattern(Pattern::k_triangle(2), 0.5);
        assert!(triangle.noise_scale(&g) > 50.0 * star.noise_scale(&g));
        assert!(two_triangle.noise_scale(&g) > 50.0 * triangle.noise_scale(&g));
    }

    #[test]
    fn triangle_noise_is_useless_but_two_star_noise_is_moderate() {
        // Matches the qualitative picture of the paper's Fig. 4: RHMS never
        // yields meaningful triangle counts, yet is usable for 2-stars.
        let mut rng = StdRng::seed_from_u64(14);
        let g = generators::gnp_average_degree(200, 10.0, &mut rng);
        let triangle = Rhms::for_pattern(Pattern::triangle(), 0.5);
        let star = Rhms::for_pattern(Pattern::k_star(2), 0.5);
        let true_triangles = triangle.true_count(&g);
        let true_stars = star.true_count(&g);
        assert!(triangle.noise_scale(&g) > 10.0 * true_triangles);
        assert!(star.noise_scale(&g) < true_stars);
    }

    #[test]
    fn release_uses_the_concrete_pattern_when_given() {
        let mut rng = StdRng::seed_from_u64(15);
        let g = generators::gnp_average_degree(30, 6.0, &mut rng);
        let m = Rhms::for_pattern(Pattern::k_star(2), 0.5);
        assert_eq!(
            m.true_count(&g),
            rmdp_graph::subgraph::k_star_count(&g, 2) as f64
        );
        assert!(m.release(&g, &mut rng).is_finite());
        assert!(matches!(
            m.with_gamma(0.2).guarantee(),
            Guarantee::Adversarial { gamma, .. } if (gamma - 0.2).abs() < 1e-12
        ));
    }
}
