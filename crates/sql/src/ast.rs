//! The typed AST the parser produces.
//!
//! The grammar is the positive SQL subset of the paper's setting: a single
//! aggregate (`COUNT(*)` or `SUM(col)`) over a chain of inner joins with
//! conjunctive `ON` / `WHERE` predicates. Everything that could make the
//! query non-monotone in the underlying data (negation, set difference,
//! outer joins) is unrepresentable here — the parser rejects it with a
//! targeted error before an AST exists.

use crate::token::Span;
use rmdp_krelation::tuple::Value;

/// The aggregate of the `SELECT` clause.
#[derive(Clone, Debug, PartialEq)]
pub enum Aggregate {
    /// `COUNT(*)` — each output row weighs 1.
    CountStar,
    /// `SUM(col)` — each output row weighs its value of `col`.
    Sum(ColumnRef),
}

/// A possibly-qualified column reference, e.g. `v1.person` or `city`.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnRef {
    /// The alias before the dot, if any.
    pub qualifier: Option<String>,
    /// The column name (folded to lowercase).
    pub column: String,
    /// Source span of the whole reference.
    pub span: Span,
}

impl ColumnRef {
    /// The reference as written, e.g. `v1.person`.
    pub fn display_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.column),
            None => self.column.clone(),
        }
    }
}

/// A table reference with its (explicit or implicit) alias.
#[derive(Clone, Debug, PartialEq)]
pub struct TableRef {
    /// The table name (folded to lowercase).
    pub table: String,
    /// The alias; defaults to the table name when none is written.
    pub alias: String,
    /// Span of the table name.
    pub table_span: Span,
    /// Span of the alias (= `table_span` for implicit aliases).
    pub alias_span: Span,
}

/// A comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Comparison {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Neq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
}

impl Comparison {
    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            Comparison::Eq => "=",
            Comparison::Neq => "<>",
            Comparison::Lt => "<",
            Comparison::Gt => ">",
            Comparison::Le => "<=",
            Comparison::Ge => ">=",
        }
    }
}

/// One side of a comparison.
#[derive(Clone, Debug, PartialEq)]
pub enum Operand {
    /// A column reference.
    Column(ColumnRef),
    /// A literal constant with its span.
    Literal(Value, Span),
}

impl Operand {
    /// The operand's source span.
    pub fn span(&self) -> Span {
        match self {
            Operand::Column(c) => c.span,
            Operand::Literal(_, span) => *span,
        }
    }
}

/// An atomic predicate `lhs op rhs`.
#[derive(Clone, Debug, PartialEq)]
pub struct Predicate {
    /// Left operand.
    pub lhs: Operand,
    /// Operator.
    pub op: Comparison,
    /// Right operand.
    pub rhs: Operand,
    /// Span covering the whole predicate.
    pub span: Span,
}

/// One `JOIN … ON …` step.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinClause {
    /// The joined table.
    pub table: TableRef,
    /// The conjuncts of the `ON` condition.
    pub on: Vec<Predicate>,
}

/// A `GROUP BY` clause: a single grouping key. The planner requires the key
/// to range over a **declared public domain**
/// (`AnnotatedDatabase::declare_public_domain`) — a data-derived key set
/// would leak which keys occur before any noise is added.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupBy {
    /// The grouping key column.
    pub key: ColumnRef,
    /// Span of the whole `GROUP BY <key>` clause.
    pub span: Span,
}

/// A full parsed query.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// The key column of the SELECT list (`SELECT key, COUNT(*) …`), present
    /// only on grouped queries; the planner checks it names the same column
    /// as the `GROUP BY` key.
    pub select_key: Option<ColumnRef>,
    /// The aggregate of the `SELECT` clause.
    pub aggregate: Aggregate,
    /// Span of the aggregate (for error reporting).
    pub aggregate_span: Span,
    /// The first table (`FROM …`).
    pub from: TableRef,
    /// The join chain, in source order.
    pub joins: Vec<JoinClause>,
    /// The conjuncts of the `WHERE` clause (empty when absent).
    pub filter: Vec<Predicate>,
    /// The `GROUP BY` clause, when the query is grouped.
    pub group_by: Option<GroupBy>,
    /// `true` when the query was prefixed with `EXPLAIN ANALYZE`: the
    /// release still runs (and still debits the budget), but the caller
    /// wants the [`ReleaseTrace`](rmdp_observe::ReleaseTrace) alongside it.
    pub explain: bool,
}
