//! SQL frontend errors, all carrying precise source spans.

use crate::token::Span;
use rmdp_core::MechanismError;
use std::fmt;

/// Everything that can go wrong between a SQL string and a DP release.
#[derive(Clone, Debug)]
pub enum SqlError {
    /// The tokenizer hit text it cannot lex.
    Lex {
        /// What went wrong.
        message: String,
        /// Where.
        span: Span,
    },
    /// The token stream does not match the grammar.
    Parse {
        /// What was expected / found.
        message: String,
        /// Offending token.
        span: Span,
    },
    /// A construct that is recognised but outside the positive fragment the
    /// recursive mechanism supports (negation, outer joins, …).
    Unsupported {
        /// The construct's name, e.g. `NOT IN`.
        construct: String,
        /// Why it is rejected.
        reason: String,
        /// Offending token(s).
        span: Span,
    },
    /// `FROM`/`JOIN` references a table the database does not have.
    UnknownTable {
        /// The missing table.
        name: String,
        /// Offending token.
        span: Span,
        /// The tables that do exist (sorted).
        available: Vec<String>,
    },
    /// A column reference that resolves to no visible table.
    UnknownColumn {
        /// The column as written.
        column: String,
        /// Offending token(s).
        span: Span,
    },
    /// An unqualified column that lives in more than one visible table.
    AmbiguousColumn {
        /// The column as written.
        column: String,
        /// Offending token.
        span: Span,
        /// Aliases that all carry the column, in `FROM`/`JOIN` order.
        candidates: Vec<String>,
    },
    /// Two table references share one alias.
    DuplicateAlias {
        /// The repeated alias.
        alias: String,
        /// The second occurrence.
        span: Span,
    },
    /// `SUM` over values that are not (nonnegative) numbers.
    BadAggregate {
        /// What went wrong.
        message: String,
        /// The aggregate's span.
        span: Span,
    },
    /// `GROUP BY` over a column whose table declares no public key domain.
    /// Grouping must range over schema-declared public values — a key set
    /// derived from the data would leak which keys occur.
    UndeclaredGroupDomain {
        /// The grouping key as written.
        column: String,
        /// The base table the key resolves into.
        table: String,
        /// Span of the grouping key.
        span: Span,
    },
    /// `SELECT key` and `GROUP BY key` name different columns.
    GroupKeyMismatch {
        /// The SELECT-list key as written.
        select: String,
        /// The `GROUP BY` key as written.
        group: String,
        /// Span of the SELECT-list key.
        span: Span,
    },
    /// A grouped query reached a scalar-only entry point (or vice versa);
    /// the message names the entry point to use instead.
    QueryShape {
        /// What went wrong and where to go.
        message: String,
        /// The span of the construct that fixed the query's shape.
        span: Span,
    },
    /// An incremental ingest (`CatalogSnapshot::with_delta`) was rejected:
    /// unknown table, missing annotation rule, or a malformed row. Nothing
    /// was mutated.
    Delta(rmdp_krelation::DeltaError),
    /// The underlying mechanism failed (LP solve, parameter validation, …).
    Mechanism(MechanismError),
    /// The release (or batch of releases) would exceed the session's total
    /// privacy budget; nothing was consumed.
    BudgetExhausted(rmdp_noise::BudgetExhausted),
}

impl SqlError {
    /// The span the error points at, when it has one.
    pub fn span(&self) -> Option<Span> {
        match self {
            SqlError::Lex { span, .. }
            | SqlError::Parse { span, .. }
            | SqlError::Unsupported { span, .. }
            | SqlError::UnknownTable { span, .. }
            | SqlError::UnknownColumn { span, .. }
            | SqlError::AmbiguousColumn { span, .. }
            | SqlError::DuplicateAlias { span, .. }
            | SqlError::BadAggregate { span, .. }
            | SqlError::UndeclaredGroupDomain { span, .. }
            | SqlError::GroupKeyMismatch { span, .. }
            | SqlError::QueryShape { span, .. } => Some(*span),
            SqlError::Delta(_) | SqlError::Mechanism(_) | SqlError::BudgetExhausted(_) => None,
        }
    }

    /// Renders the error with the query text and a caret line underlining the
    /// offending span:
    ///
    /// ```text
    /// error: negation (`NOT`) is not part of positive relational algebra …
    ///   | SELECT COUNT(*) FROM t WHERE NOT a = 1
    ///   |                               ^^^
    /// ```
    pub fn render(&self, sql: &str) -> String {
        let mut out = format!("error: {self}");
        if let Some(span) = self.span() {
            // Work on the line containing the span start.
            let line_start = sql[..span.start.min(sql.len())]
                .rfind('\n')
                .map_or(0, |i| i + 1);
            let line_end = sql[line_start..]
                .find('\n')
                .map_or(sql.len(), |i| line_start + i);
            let line = &sql[line_start..line_end];
            let col = span.start.saturating_sub(line_start);
            let width = span.end.min(line_end).saturating_sub(span.start).max(1);
            out.push_str(&format!("\n  | {line}\n  | "));
            out.push_str(&" ".repeat(col));
            out.push_str(&"^".repeat(width));
        }
        out
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { message, .. } => write!(f, "{message}"),
            SqlError::Parse { message, .. } => write!(f, "{message}"),
            SqlError::Unsupported {
                construct, reason, ..
            } => write!(f, "{construct} is not supported: {reason}"),
            SqlError::UnknownTable {
                name, available, ..
            } => {
                write!(f, "unknown table `{name}`")?;
                if !available.is_empty() {
                    write!(f, " (known tables: {})", available.join(", "))?;
                }
                Ok(())
            }
            SqlError::UnknownColumn { column, .. } => {
                write!(f, "unknown column `{column}`")
            }
            SqlError::AmbiguousColumn {
                column, candidates, ..
            } => write!(
                f,
                "ambiguous column `{column}` (found in {}); qualify it with an alias",
                candidates.join(", ")
            ),
            SqlError::DuplicateAlias { alias, .. } => {
                write!(f, "duplicate table alias `{alias}`")
            }
            SqlError::BadAggregate { message, .. } => write!(f, "{message}"),
            SqlError::UndeclaredGroupDomain { column, table, .. } => write!(
                f,
                "cannot GROUP BY `{column}`: table `{table}` declares no public key domain \
                 for it, and a data-derived key set would leak which keys occur; declare \
                 the domain with `AnnotatedDatabase::declare_public_domain`"
            ),
            SqlError::GroupKeyMismatch { select, group, .. } => write!(
                f,
                "SELECT key `{select}` does not match the GROUP BY key `{group}`"
            ),
            SqlError::QueryShape { message, .. } => write!(f, "{message}"),
            SqlError::Delta(e) => write!(f, "ingest rejected: {e}"),
            SqlError::Mechanism(e) => write!(f, "mechanism error: {e}"),
            SqlError::BudgetExhausted(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<MechanismError> for SqlError {
    fn from(e: MechanismError) -> Self {
        SqlError::Mechanism(e)
    }
}

impl From<rmdp_krelation::DeltaError> for SqlError {
    fn from(e: rmdp_krelation::DeltaError) -> Self {
        SqlError::Delta(e)
    }
}

impl From<rmdp_noise::BudgetExhausted> for SqlError {
    fn from(e: rmdp_noise::BudgetExhausted) -> Self {
        SqlError::BudgetExhausted(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_underlines_the_span() {
        let sql = "SELECT COUNT(*) FROM t WHERE NOT a = 1";
        let err = SqlError::Unsupported {
            construct: "negation (`NOT`)".to_owned(),
            reason: "only positive predicates are allowed".to_owned(),
            span: Span::new(29, 32),
        };
        let rendered = err.render(sql);
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("error: negation"));
        assert_eq!(lines[1], format!("  | {sql}"));
        let caret_col = lines[2].find('^').unwrap();
        assert_eq!(&lines[1][caret_col..caret_col + 3], "NOT");
        assert!(lines[2].contains("^^^"));
    }

    #[test]
    fn render_handles_multiline_queries() {
        let sql = "SELECT COUNT(*)\nFROM nope";
        let err = SqlError::UnknownTable {
            name: "nope".to_owned(),
            span: Span::new(21, 25),
            available: vec!["visits".to_owned()],
        };
        let rendered = err.render(sql);
        assert!(rendered.contains("  | FROM nope"));
        assert!(rendered.contains("known tables: visits"));
    }
}
