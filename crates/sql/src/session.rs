//! The public entry point: a SQL session over one annotated database.

use crate::error::SqlError;
use crate::exec::{execute, weigh};
use crate::plan::{plan, QueryPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rmdp_core::{
    EfficientSequences, MechanismParams, RecursiveMechanism, Release, SensitiveKRelation,
};
use rmdp_krelation::annotate::AnnotatedDatabase;
use rmdp_krelation::KRelation;

/// A SQL session: an annotated database plus mechanism parameters and a
/// seeded noise source.
///
/// One call to [`SqlSession::query`] spends `ε₁ + ε₂` of privacy budget (the
/// split lives in the [`MechanismParams`]); the session does not meter a
/// total budget across queries — compose releases with
/// `rmdp_noise::budget::PrivacyBudget`-style sequential accounting one level
/// up if needed.
///
/// ```
/// use rmdp_core::MechanismParams;
/// use rmdp_krelation::annotate::AnnotatedDatabase;
/// use rmdp_krelation::tuple::{Tuple, Value};
/// use rmdp_krelation::{Expr, KRelation};
/// use rmdp_sql::SqlSession;
///
/// let mut db = AnnotatedDatabase::new();
/// let mut visits = KRelation::new(["person", "place"]);
/// for (person, place) in [("ada", "museum"), ("bo", "museum"), ("bo", "cafe")] {
///     let p = db.universe_mut().intern(person);
///     visits.insert(
///         Tuple::new([("person", Value::str(person)), ("place", Value::str(place))]),
///         Expr::Var(p),
///     );
/// }
/// db.insert_table("visits", visits);
///
/// let mut session = SqlSession::new(db, MechanismParams::paper_edge_privacy(1.0));
/// let release = session
///     .query("SELECT COUNT(*) FROM visits WHERE place = 'museum'")
///     .unwrap();
/// assert_eq!(release.true_answer, 2.0);
/// assert!(release.noisy_answer.is_finite());
/// ```
pub struct SqlSession {
    db: AnnotatedDatabase,
    params: MechanismParams,
    rng: StdRng,
}

impl SqlSession {
    /// Opens a session with a fixed default noise seed (releases are
    /// deterministic given the database and query sequence; use
    /// [`SqlSession::with_seed`] to vary it).
    pub fn new(db: AnnotatedDatabase, params: MechanismParams) -> Self {
        Self::with_seed(db, params, 0x5EED)
    }

    /// Opens a session whose noise stream derives from `seed`.
    pub fn with_seed(db: AnnotatedDatabase, params: MechanismParams, seed: u64) -> Self {
        SqlSession {
            db,
            params,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying database.
    pub fn database(&self) -> &AnnotatedDatabase {
        &self.db
    }

    /// The mechanism parameters used by [`SqlSession::query`].
    pub fn params(&self) -> &MechanismParams {
        &self.params
    }

    /// Parses, validates and lowers `sql` without touching the data — the
    /// `EXPLAIN` of this frontend. The plan's `Display` renders the algebra
    /// pipeline.
    pub fn plan(&self, sql: &str) -> Result<QueryPlan, SqlError> {
        plan(&self.db, sql)
    }

    /// Evaluates `sql` **without differential privacy**, returning the
    /// annotated output relation. Intended for tests and debugging: the
    /// result reveals raw data.
    pub fn evaluate(&self, sql: &str) -> Result<KRelation, SqlError> {
        let plan = self.plan(sql)?;
        execute(&self.db, &plan)
    }

    /// Runs `sql` end-to-end and releases the aggregate through the
    /// recursive mechanism (efficient LP instantiation, paper Sec. 5).
    ///
    /// The participant universe is the database's full universe — people
    /// interned but absent from every table still count toward `|P|`, as in
    /// node privacy where isolated nodes are still protected.
    pub fn query(&mut self, sql: &str) -> Result<Release, SqlError> {
        let plan = self.plan(sql)?;
        let output = execute(&self.db, &plan)?;

        // Validate all weights before handing them to the mechanism (whose
        // constructor asserts) so bad aggregates surface as SqlError.
        for (tuple, _) in output.iter() {
            weigh(&plan, tuple)?;
        }
        let participants = self.db.universe().ids().collect();
        let query = SensitiveKRelation::new(&output, participants, |t| {
            weigh(&plan, t).expect("weights validated above")
        });

        let mut mechanism = RecursiveMechanism::new(EfficientSequences::new(query), self.params)?;
        Ok(mechanism.release(&mut self.rng)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmdp_krelation::tuple::{Tuple, Value};
    use rmdp_krelation::Expr;

    fn db() -> AnnotatedDatabase {
        let mut db = AnnotatedDatabase::new();
        let mut payments = KRelation::new(["person", "amount"]);
        for (person, amount) in [("ada", 3i64), ("bo", 5), ("cy", -2)] {
            let p = db.universe_mut().intern(person);
            payments.insert(
                Tuple::new([
                    ("person", Value::str(person)),
                    ("amount", Value::Int(amount)),
                ]),
                Expr::Var(p),
            );
        }
        db.insert_table("payments", payments);
        db
    }

    #[test]
    fn count_release_has_the_right_true_answer() {
        let mut session = SqlSession::new(db(), MechanismParams::paper_edge_privacy(1.0));
        let release = session.query("SELECT COUNT(*) FROM payments").unwrap();
        assert_eq!(release.true_answer, 3.0);
        assert!(release.noisy_answer.is_finite());
        assert!((release.epsilon_spent - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sum_aggregates_weights() {
        let mut session = SqlSession::new(db(), MechanismParams::paper_edge_privacy(1.0));
        let release = session
            .query("SELECT SUM(amount) FROM payments WHERE amount > 0")
            .unwrap();
        assert_eq!(release.true_answer, 8.0);
    }

    #[test]
    fn negative_sum_weights_are_a_sql_error_not_a_panic() {
        let mut session = SqlSession::new(db(), MechanismParams::paper_edge_privacy(1.0));
        let err = session
            .query("SELECT SUM(amount) FROM payments")
            .unwrap_err();
        match err {
            SqlError::BadAggregate { message, .. } => {
                assert!(message.contains("negative"), "{message}")
            }
            other => panic!("expected BadAggregate, got {other:?}"),
        }
    }

    #[test]
    fn sum_over_strings_is_a_sql_error() {
        let mut session = SqlSession::new(db(), MechanismParams::paper_edge_privacy(1.0));
        let err = session
            .query("SELECT SUM(person) FROM payments")
            .unwrap_err();
        assert!(matches!(err, SqlError::BadAggregate { .. }));
    }

    #[test]
    fn releases_are_deterministic_per_seed() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let a = SqlSession::with_seed(db(), params, 1)
            .query("SELECT COUNT(*) FROM payments")
            .unwrap();
        let b = SqlSession::with_seed(db(), params, 1)
            .query("SELECT COUNT(*) FROM payments")
            .unwrap();
        let c = SqlSession::with_seed(db(), params, 2)
            .query("SELECT COUNT(*) FROM payments")
            .unwrap();
        assert_eq!(a.noisy_answer, b.noisy_answer);
        assert_ne!(a.noisy_answer, c.noisy_answer);
    }

    #[test]
    fn invalid_params_surface_as_mechanism_errors() {
        let params = MechanismParams::new(0.0, 0.5, 0.1, 1.0, 0.5);
        let mut session = SqlSession::new(db(), params);
        let err = session.query("SELECT COUNT(*) FROM payments").unwrap_err();
        assert!(matches!(err, SqlError::Mechanism(_)));
    }
}
