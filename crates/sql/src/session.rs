//! The public entry point: a SQL session over one annotated database.

use crate::error::SqlError;
use crate::exec::{execute, weigh};
use crate::fingerprint::plan_fingerprint;
use crate::plan::{plan, QueryPlan};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rmdp_core::{
    CacheStats, CachedSequences, EfficientSequences, FrozenSequences, MechanismParams, Parallelism,
    RecursiveMechanism, Release, SensitiveKRelation, SequenceCache,
};
use rmdp_krelation::annotate::AnnotatedDatabase;
use rmdp_krelation::fingerprint::Fingerprint;
use rmdp_krelation::KRelation;
use rmdp_noise::{BudgetAccountant, BudgetExhausted, PrivacyBudget};
use rmdp_runtime::par_try_map_indexed;
use std::sync::Arc;

/// A SQL session: an annotated database plus mechanism parameters and a
/// seeded noise source.
///
/// One call to [`SqlSession::query`] spends `ε₁ + ε₂` of privacy budget (the
/// split lives in the [`MechanismParams`]). By default the session does not
/// meter a total budget across queries; [`SqlSession::with_budget`] attaches
/// a [`BudgetAccountant`] that meters every release under sequential
/// composition. Admission is checked **before** any work (an over-budget
/// query or batch is refused consuming nothing) and the debit is recorded
/// only **after** the release succeeds end to end — a query that fails
/// between admission and the noise draw (an LP failure, a bad aggregate)
/// released nothing and therefore consumes no ε.
///
/// [`SqlSession::query_batch`] releases several independent queries in one
/// call, running them concurrently on the worker pool when the params'
/// [`Parallelism`] knob allows; results are bit-identical to running the
/// batch serially.
///
/// ## Cross-query sequence caching
///
/// [`SqlSession::with_sequence_cache`] attaches a shared
/// [`SequenceCache`]: every query is keyed by its canonical plan
/// fingerprint ([`crate::fingerprint`] — alias names, join order and
/// conjunct order normalised away, database mutation epoch and
/// sensitivity-relevant params hashed in), and a repeat of a structurally
/// identical query serves its `H`/`G` sequences from the cache, skipping
/// plan execution and all `2(|P|+1)` sequence LPs. Per-query noise is
/// still drawn fresh from the session RNG, so caching changes **only**
/// wall-clock time: under a fixed seed the released values are
/// bit-identical with and without the cache.
///
/// ```
/// use rmdp_core::MechanismParams;
/// use rmdp_krelation::annotate::AnnotatedDatabase;
/// use rmdp_krelation::tuple::{Tuple, Value};
/// use rmdp_krelation::{Expr, KRelation};
/// use rmdp_sql::SqlSession;
///
/// let mut db = AnnotatedDatabase::new();
/// let mut visits = KRelation::new(["person", "place"]);
/// for (person, place) in [("ada", "museum"), ("bo", "museum"), ("bo", "cafe")] {
///     let p = db.universe_mut().intern(person);
///     visits.insert(
///         Tuple::new([("person", Value::str(person)), ("place", Value::str(place))]),
///         Expr::Var(p),
///     );
/// }
/// db.insert_table("visits", visits);
///
/// let mut session = SqlSession::new(db, MechanismParams::paper_edge_privacy(1.0));
/// let release = session
///     .query("SELECT COUNT(*) FROM visits WHERE place = 'museum'")
///     .unwrap();
/// assert_eq!(release.true_answer, 2.0);
/// assert!(release.noisy_answer.is_finite());
/// ```
pub struct SqlSession {
    db: AnnotatedDatabase,
    params: MechanismParams,
    rng: StdRng,
    accountant: Option<BudgetAccountant>,
    cache: Option<Arc<SequenceCache>>,
}

impl SqlSession {
    /// Opens a session with a fixed default noise seed (releases are
    /// deterministic given the database and query sequence; use
    /// [`SqlSession::with_seed`] to vary it).
    pub fn new(db: AnnotatedDatabase, params: MechanismParams) -> Self {
        Self::with_seed(db, params, 0x5EED)
    }

    /// Opens a session whose noise stream derives from `seed`.
    pub fn with_seed(db: AnnotatedDatabase, params: MechanismParams, seed: u64) -> Self {
        SqlSession {
            db,
            params,
            rng: StdRng::seed_from_u64(seed),
            accountant: None,
            cache: None,
        }
    }

    /// Attaches a (possibly shared) cross-query sequence cache. Queries that
    /// compile to structurally identical plans over the same database state
    /// reuse each other's completed `H`/`G` sequences instead of re-solving
    /// the sequence LPs; releases stay bit-identical to the uncached session
    /// under the same seed. The cache may be shared across sessions and
    /// threads — keys embed each database's identity and mutation epoch, so
    /// sessions over different (or since-mutated) databases can never read
    /// each other's entries.
    pub fn with_sequence_cache(mut self, cache: Arc<SequenceCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Convenience: attaches a fresh, private sequence cache bounded to
    /// `capacity` frozen tables.
    pub fn with_cache_capacity(self, capacity: usize) -> Self {
        self.with_sequence_cache(SequenceCache::shared(capacity))
    }

    /// The attached sequence cache, if any.
    pub fn sequence_cache(&self) -> Option<&Arc<SequenceCache>> {
        self.cache.as_ref()
    }

    /// Counters of the attached sequence cache (`None` when uncached).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Caps the session's total privacy spend. Every successful release
    /// debits `ε₁ + ε₂` from the accountant (sequential composition). A
    /// query or batch that would overdraw is refused with
    /// [`SqlError::BudgetExhausted`] **before** any work happens, and a
    /// query that fails anywhere between admission and the noise draw
    /// released nothing — so in both cases nothing is consumed.
    pub fn with_budget(mut self, total: PrivacyBudget) -> Self {
        self.accountant = Some(BudgetAccountant::new(total));
        self
    }

    /// The underlying database.
    pub fn database(&self) -> &AnnotatedDatabase {
        &self.db
    }

    /// The mechanism parameters used by [`SqlSession::query`].
    pub fn params(&self) -> &MechanismParams {
        &self.params
    }

    /// What is left of the session budget (`None` when the session is
    /// unmetered).
    pub fn remaining_budget(&self) -> Option<PrivacyBudget> {
        self.accountant.as_ref().map(BudgetAccountant::remaining)
    }

    /// The per-release cost under sequential composition: pure `ε₁ + ε₂`.
    fn release_cost(&self) -> PrivacyBudget {
        PrivacyBudget {
            epsilon: self.params.total_epsilon(),
            delta: 0.0,
        }
    }

    /// Admission check: refuses `cost` (consuming nothing) when the metered
    /// budget cannot cover it.
    fn ensure_affordable(&self, cost: PrivacyBudget) -> Result<(), SqlError> {
        match &self.accountant {
            Some(acc) if !acc.can_afford(cost) => Err(SqlError::BudgetExhausted(BudgetExhausted {
                requested: cost,
                remaining: acc.remaining(),
            })),
            _ => Ok(()),
        }
    }

    /// Records `cost` after a successful release. Admission was checked on
    /// this same `&mut self` call path, so the debit cannot fail; the
    /// `Result` guards the accounting invariant anyway.
    fn debit(&mut self, cost: PrivacyBudget) -> Result<(), SqlError> {
        if let Some(acc) = &mut self.accountant {
            acc.try_spend(cost)?;
        }
        Ok(())
    }

    /// The cache handle and fingerprint for one admitted plan, when the
    /// session carries a cache.
    fn cache_key(&self, plan: &QueryPlan) -> Option<(Arc<SequenceCache>, Fingerprint)> {
        self.cache.as_ref().map(|c| {
            (
                Arc::clone(c),
                plan_fingerprint(&self.db, plan, &self.params),
            )
        })
    }

    /// Parses, validates and lowers `sql` without touching the data — the
    /// `EXPLAIN` of this frontend. The plan's `Display` renders the algebra
    /// pipeline.
    pub fn plan(&self, sql: &str) -> Result<QueryPlan, SqlError> {
        plan(&self.db, sql)
    }

    /// Evaluates `sql` **without differential privacy**, returning the
    /// annotated output relation. Intended for tests and debugging: the
    /// result reveals raw data.
    pub fn evaluate(&self, sql: &str) -> Result<KRelation, SqlError> {
        let plan = self.plan(sql)?;
        execute(&self.db, &plan)
    }

    /// Runs `sql` end-to-end and releases the aggregate through the
    /// recursive mechanism (efficient LP instantiation, paper Sec. 5).
    ///
    /// The participant universe is the database's full universe — people
    /// interned but absent from every table still count toward `|P|`, as in
    /// node privacy where isolated nodes are still protected.
    ///
    /// Budget accounting is **admission-checked, debit-on-success**: the
    /// query is refused up front (consuming nothing) when the budget cannot
    /// cover `ε₁ + ε₂`, and the cost is recorded only once the release has
    /// succeeded end to end. Every failure path between the admission check
    /// and the noise draw — plan execution, weight validation, the sequence
    /// LPs, parameter validation inside the mechanism — releases nothing,
    /// so none of them consume ε. (Callers that treat *error messages* as
    /// observable output should still account for them out of band; the
    /// accountant meters released answers, and a failed query releases
    /// none.)
    pub fn query(&mut self, sql: &str) -> Result<Release, SqlError> {
        let plan = self.plan(sql)?;
        // Validate params before the admission check so a misconfigured
        // session fails loudly instead of looking over budget.
        self.params.validate()?;
        let cost = self.release_cost();
        self.ensure_affordable(cost)?;
        let cache = self.cache_key(&plan);
        let release = release_plan(
            &self.db,
            &plan,
            self.params,
            &mut self.rng,
            cache.as_ref().map(|(c, key)| (c.as_ref(), *key)),
        )?;
        self.debit(cost)?;
        Ok(release)
    }

    /// Runs several independent queries and releases each through the
    /// recursive mechanism, spending `ε₁ + ε₂` **per query** under
    /// sequential composition.
    ///
    /// The whole batch is admitted atomically: every query must plan
    /// successfully and the parameters must validate (both data-independent
    /// checks), and when the session carries a budget the batch's total cost
    /// `k·(ε₁+ε₂)` must fit in what remains — an over-budget batch is
    /// refused with no release performed and **no privacy consumed**. The
    /// debit is recorded only after *every* query in the batch has released
    /// successfully; a failure anywhere fails the whole batch and, since
    /// none of its releases are returned, consumes nothing.
    ///
    /// When `params.parallelism` resolves to more than one worker the
    /// queries run concurrently on the scoped pool (each on its own
    /// K-relation, LPs and noise stream); worker threads left over by a
    /// batch smaller than the worker budget are given to the per-query
    /// mechanisms instead. A per-query noise seed is drawn from the session
    /// RNG *before* fanning out, in query order, so the batch's releases are
    /// bit-identical whatever the parallelism — and the session RNG advances
    /// exactly `sqls.len()` draws either way.
    ///
    /// When the session carries a [`SequenceCache`] the workers share it:
    /// repeated query shapes inside one batch (or across batches and
    /// sessions) reuse each other's frozen sequences. Two workers racing on
    /// the same cold shape at worst both compute the (deterministic,
    /// bit-identical) table, so the released values never depend on the
    /// schedule.
    pub fn query_batch<S: AsRef<str>>(&mut self, sqls: &[S]) -> Result<Vec<Release>, SqlError> {
        let plans: Vec<QueryPlan> = sqls
            .iter()
            .map(|sql| self.plan(sql.as_ref()))
            .collect::<Result<_, _>>()?;
        self.params.validate()?;

        let total_cost = PrivacyBudget {
            epsilon: self.release_cost().epsilon * plans.len() as f64,
            delta: 0.0,
        };
        self.ensure_affordable(total_cost)?;

        // Fingerprints are computed before the fan-out (they are cheap and
        // pure), one per plan, so workers only touch the shared cache.
        let keys: Option<Vec<Fingerprint>> = self.cache.as_ref().map(|_| {
            plans
                .iter()
                .map(|p| plan_fingerprint(&self.db, p, &self.params))
                .collect()
        });
        let seeds: Vec<u64> = plans.iter().map(|_| self.rng.next_u64()).collect();

        // The batch level owns the concurrency; the worker budget is split
        // so total thread counts do not multiply. A batch smaller than the
        // budget hands the spare workers to each query's own precompute
        // (e.g. a 1-query batch at Threads(8) behaves like `query`).
        let db = &self.db;
        let cache = self.cache.as_deref();
        let workers = self.params.parallelism.workers();
        let per_query = workers / plans.len().max(1);
        let worker_params = self.params.with_parallelism(if per_query > 1 {
            Parallelism::Threads(per_query)
        } else {
            Parallelism::Serial
        });
        let releases = par_try_map_indexed(self.params.parallelism, plans.len(), |i| {
            let mut rng = StdRng::seed_from_u64(seeds[i]);
            let key = keys.as_ref().map(|k| k[i]);
            release_plan(db, &plans[i], worker_params, &mut rng, cache.zip(key))
        })?;
        self.debit(total_cost)?;
        Ok(releases)
    }
}

/// Executes a validated plan and releases its aggregate: the shared tail of
/// [`SqlSession::query`] and each [`SqlSession::query_batch`] worker.
///
/// With a cache handle, a fingerprint hit serves the frozen `H`/`G` table
/// directly — skipping plan execution *and* every sequence LP — and a miss
/// computes the full table once (all `2(|P|+1)` entries, warm-started
/// chains, up to `params.parallelism` workers), publishes it, and releases
/// from the freshly frozen copy. Noise is drawn from `rng` identically on
/// every path, so hit, miss and uncached releases are bit-identical under
/// the same seed.
fn release_plan(
    db: &AnnotatedDatabase,
    plan: &QueryPlan,
    params: MechanismParams,
    rng: &mut StdRng,
    cache: Option<(&SequenceCache, Fingerprint)>,
) -> Result<Release, SqlError> {
    if let Some((cache, key)) = cache {
        let frozen = match cache.get(key) {
            Some(hit) => hit,
            None => {
                let query = build_sensitive_query(db, plan)?;
                let frozen = Arc::new(
                    FrozenSequences::compute(EfficientSequences::new(query), params.parallelism)
                        .map_err(SqlError::from)?,
                );
                cache.insert(key, Arc::clone(&frozen));
                frozen
            }
        };
        let mut mechanism = RecursiveMechanism::new(CachedSequences(frozen), params)?;
        return Ok(mechanism.release(rng)?);
    }

    let query = build_sensitive_query(db, plan)?;
    let mut mechanism = RecursiveMechanism::new(EfficientSequences::new(query), params)?;
    Ok(mechanism.release(rng)?)
}

/// Executes the plan and wraps its annotated output as the linear query the
/// mechanism aggregates.
fn build_sensitive_query(
    db: &AnnotatedDatabase,
    plan: &QueryPlan,
) -> Result<SensitiveKRelation, SqlError> {
    let output = execute(db, plan)?;

    // Validate all weights before handing them to the mechanism (whose
    // constructor asserts) so bad aggregates surface as SqlError.
    for (tuple, _) in output.iter() {
        weigh(plan, tuple)?;
    }
    let participants = db.universe().ids().collect();
    Ok(SensitiveKRelation::new(&output, participants, |t| {
        weigh(plan, t).expect("weights validated above")
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmdp_krelation::tuple::{Tuple, Value};
    use rmdp_krelation::Expr;

    fn db() -> AnnotatedDatabase {
        let mut db = AnnotatedDatabase::new();
        let mut payments = KRelation::new(["person", "amount"]);
        for (person, amount) in [("ada", 3i64), ("bo", 5), ("cy", -2)] {
            let p = db.universe_mut().intern(person);
            payments.insert(
                Tuple::new([
                    ("person", Value::str(person)),
                    ("amount", Value::Int(amount)),
                ]),
                Expr::Var(p),
            );
        }
        db.insert_table("payments", payments);
        db
    }

    #[test]
    fn count_release_has_the_right_true_answer() {
        let mut session = SqlSession::new(db(), MechanismParams::paper_edge_privacy(1.0));
        let release = session.query("SELECT COUNT(*) FROM payments").unwrap();
        assert_eq!(release.true_answer, 3.0);
        assert!(release.noisy_answer.is_finite());
        assert!((release.epsilon_spent - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sum_aggregates_weights() {
        let mut session = SqlSession::new(db(), MechanismParams::paper_edge_privacy(1.0));
        let release = session
            .query("SELECT SUM(amount) FROM payments WHERE amount > 0")
            .unwrap();
        assert_eq!(release.true_answer, 8.0);
    }

    #[test]
    fn negative_sum_weights_are_a_sql_error_not_a_panic() {
        let mut session = SqlSession::new(db(), MechanismParams::paper_edge_privacy(1.0));
        let err = session
            .query("SELECT SUM(amount) FROM payments")
            .unwrap_err();
        match err {
            SqlError::BadAggregate { message, .. } => {
                assert!(message.contains("negative"), "{message}")
            }
            other => panic!("expected BadAggregate, got {other:?}"),
        }
    }

    #[test]
    fn sum_over_strings_is_a_sql_error() {
        let mut session = SqlSession::new(db(), MechanismParams::paper_edge_privacy(1.0));
        let err = session
            .query("SELECT SUM(person) FROM payments")
            .unwrap_err();
        assert!(matches!(err, SqlError::BadAggregate { .. }));
    }

    #[test]
    fn releases_are_deterministic_per_seed() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let a = SqlSession::with_seed(db(), params, 1)
            .query("SELECT COUNT(*) FROM payments")
            .unwrap();
        let b = SqlSession::with_seed(db(), params, 1)
            .query("SELECT COUNT(*) FROM payments")
            .unwrap();
        let c = SqlSession::with_seed(db(), params, 2)
            .query("SELECT COUNT(*) FROM payments")
            .unwrap();
        assert_eq!(a.noisy_answer, b.noisy_answer);
        assert_ne!(a.noisy_answer, c.noisy_answer);
    }

    #[test]
    fn query_batch_matches_itself_across_parallelism_settings() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let sqls = [
            "SELECT COUNT(*) FROM payments",
            "SELECT SUM(amount) FROM payments WHERE amount > 0",
            "SELECT COUNT(*) FROM payments WHERE amount > 4",
        ];
        let serial = SqlSession::with_seed(db(), params, 7)
            .query_batch(&sqls)
            .unwrap();
        let parallel = SqlSession::with_seed(
            db(),
            params.with_parallelism(rmdp_core::Parallelism::Threads(3)),
            7,
        )
        .query_batch(&sqls)
        .unwrap();
        assert_eq!(serial.len(), 3);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.noisy_answer, b.noisy_answer);
            assert_eq!(a.true_answer, b.true_answer);
        }
        assert_eq!(serial[0].true_answer, 3.0);
        assert_eq!(serial[1].true_answer, 8.0);
        assert_eq!(serial[2].true_answer, 1.0);
    }

    #[test]
    fn query_batch_fails_whole_batch_on_a_bad_query_without_spending() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let mut session =
            SqlSession::new(db(), params).with_budget(rmdp_noise::PrivacyBudget::pure(10.0));
        let err = session
            .query_batch(&["SELECT COUNT(*) FROM payments", "SELECT * FROM nowhere"])
            .unwrap_err();
        assert!(
            matches!(
                err,
                SqlError::Parse { .. }
                    | SqlError::Unsupported { .. }
                    | SqlError::UnknownTable { .. }
            ),
            "{err:?}"
        );
        assert_eq!(session.remaining_budget().unwrap().epsilon, 10.0);
    }

    #[test]
    fn over_budget_batch_is_refused_without_consuming_epsilon() {
        let params = MechanismParams::paper_edge_privacy(0.6);
        let mut session =
            SqlSession::new(db(), params).with_budget(rmdp_noise::PrivacyBudget::pure(1.0));
        // Two releases need 1.2ε but only 1.0ε exists: refused atomically.
        let err = session
            .query_batch(&[
                "SELECT COUNT(*) FROM payments",
                "SELECT COUNT(*) FROM payments",
            ])
            .unwrap_err();
        match err {
            SqlError::BudgetExhausted(e) => {
                assert!((e.requested.epsilon - 1.2).abs() < 1e-12);
                assert!((e.remaining.epsilon - 1.0).abs() < 1e-12);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        assert_eq!(session.remaining_budget().unwrap().epsilon, 1.0);

        // A batch that fits goes through and debits exactly its cost.
        let releases = session
            .query_batch(&["SELECT COUNT(*) FROM payments"])
            .unwrap();
        assert_eq!(releases.len(), 1);
        assert!((session.remaining_budget().unwrap().epsilon - 0.4).abs() < 1e-12);

        // And now the single-query path is over budget too.
        let err = session.query("SELECT COUNT(*) FROM payments").unwrap_err();
        assert!(matches!(err, SqlError::BudgetExhausted(_)));
        assert!((session.remaining_budget().unwrap().epsilon - 0.4).abs() < 1e-12);
    }

    #[test]
    fn invalid_params_do_not_drain_the_budget() {
        // Parameter validation is data-independent, so it must run before
        // the debit: a misconfigured session keeps its full budget.
        let params = MechanismParams::new(0.0, 0.5, 0.1, 1.0, 0.5);
        let mut session =
            SqlSession::new(db(), params).with_budget(rmdp_noise::PrivacyBudget::pure(1.0));
        for _ in 0..3 {
            let err = session.query("SELECT COUNT(*) FROM payments").unwrap_err();
            assert!(matches!(err, SqlError::Mechanism(_)));
        }
        let err = session
            .query_batch(&["SELECT COUNT(*) FROM payments"])
            .unwrap_err();
        assert!(matches!(err, SqlError::Mechanism(_)));
        assert_eq!(session.remaining_budget().unwrap().epsilon, 1.0);
    }

    #[test]
    fn failing_query_leaves_the_budget_unchanged() {
        // SUM over a column with a negative value fails *after* admission
        // (the failure is data-dependent) but released nothing, so the
        // budget must be untouched.
        let params = MechanismParams::paper_edge_privacy(0.5);
        let mut session =
            SqlSession::new(db(), params).with_budget(rmdp_noise::PrivacyBudget::pure(2.0));
        let err = session
            .query("SELECT SUM(amount) FROM payments")
            .unwrap_err();
        assert!(matches!(err, SqlError::BadAggregate { .. }));
        assert_eq!(session.remaining_budget().unwrap().epsilon, 2.0);

        // A batch failing on its last query consumes nothing either.
        let err = session
            .query_batch(&[
                "SELECT COUNT(*) FROM payments",
                "SELECT SUM(amount) FROM payments",
            ])
            .unwrap_err();
        assert!(matches!(err, SqlError::BadAggregate { .. }));
        assert_eq!(session.remaining_budget().unwrap().epsilon, 2.0);

        // A succeeding query then debits exactly once.
        session.query("SELECT COUNT(*) FROM payments").unwrap();
        assert!((session.remaining_budget().unwrap().epsilon - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cached_sessions_release_bit_identically_to_uncached_ones() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let queries = [
            "SELECT COUNT(*) FROM payments",
            "SELECT COUNT(*) FROM payments WHERE amount > 0",
            "SELECT COUNT(*) FROM payments", // repeat: served from cache
            "SELECT COUNT(*) FROM payments",
        ];
        let mut plain = SqlSession::with_seed(db(), params, 11);
        let mut cached = SqlSession::with_seed(db(), params, 11).with_cache_capacity(16);
        for sql in queries {
            let a = plain.query(sql).unwrap();
            let b = cached.query(sql).unwrap();
            assert_eq!(a.noisy_answer, b.noisy_answer, "{sql}");
            assert_eq!(a.delta_hat, b.delta_hat, "{sql}");
            assert_eq!(a.x, b.x, "{sql}");
        }
        let stats = cached.cache_stats().unwrap();
        assert_eq!(stats.misses, 2, "two distinct shapes");
        assert_eq!(stats.hits, 2, "two repeats");
        assert_eq!(stats.insertions, 2);
    }

    #[test]
    fn alias_renames_hit_the_cache() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let mut session = SqlSession::new(db(), params).with_cache_capacity(8);
        session
            .query("SELECT COUNT(*) FROM payments p WHERE p.amount > 0")
            .unwrap();
        session
            .query("SELECT COUNT(*) FROM payments q WHERE q.amount > 0")
            .unwrap();
        let stats = session.cache_stats().unwrap();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn batches_share_the_cache_across_parallelism_settings() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let sqls = [
            "SELECT COUNT(*) FROM payments",
            "SELECT COUNT(*) FROM payments",
            "SELECT COUNT(*) FROM payments WHERE amount > 0",
        ];
        let baseline = SqlSession::with_seed(db(), params, 3)
            .query_batch(&sqls)
            .unwrap();
        for parallelism in [Parallelism::Serial, Parallelism::Threads(3)] {
            let cache = rmdp_core::SequenceCache::shared(8);
            let mut session = SqlSession::with_seed(db(), params.with_parallelism(parallelism), 3)
                .with_sequence_cache(Arc::clone(&cache));
            let releases = session.query_batch(&sqls).unwrap();
            for (a, b) in baseline.iter().zip(&releases) {
                assert_eq!(a.noisy_answer, b.noisy_answer, "{parallelism}");
                assert_eq!(a.true_answer, b.true_answer);
            }
            assert_eq!(cache.len(), 2, "two distinct shapes cached");
            // A follow-up batch is served entirely from the cache.
            let before = cache.stats().misses;
            session.query_batch(&sqls).unwrap();
            assert_eq!(cache.stats().misses, before, "{parallelism}");
        }
    }

    #[test]
    fn mutating_the_database_between_sessions_invalidates_cache_reuse() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let cache = rmdp_core::SequenceCache::shared(8);
        let base = db();
        let mut changed = base.clone();
        changed.insert_table("payments", KRelation::new(["person", "amount"]));

        let mut s1 = SqlSession::new(base, params).with_sequence_cache(Arc::clone(&cache));
        s1.query("SELECT COUNT(*) FROM payments").unwrap();
        // Different database value (clone has a fresh identity, and it was
        // mutated): the same SQL must miss, not reuse s1's sequences.
        let mut s2 = SqlSession::new(changed, params).with_sequence_cache(Arc::clone(&cache));
        let release = s2.query("SELECT COUNT(*) FROM payments").unwrap();
        assert_eq!(release.true_answer, 0.0, "empty table after mutation");
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn unmetered_sessions_report_no_remaining_budget() {
        let session = SqlSession::new(db(), MechanismParams::paper_edge_privacy(1.0));
        assert!(session.remaining_budget().is_none());
    }

    #[test]
    fn invalid_params_surface_as_mechanism_errors() {
        let params = MechanismParams::new(0.0, 0.5, 0.1, 1.0, 0.5);
        let mut session = SqlSession::new(db(), params);
        let err = session.query("SELECT COUNT(*) FROM payments").unwrap_err();
        assert!(matches!(err, SqlError::Mechanism(_)));
    }
}
