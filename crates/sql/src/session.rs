//! The public entry point: a SQL session over one annotated database.

use crate::error::SqlError;
use crate::exec::{execute, weigh};
use crate::plan::{plan, QueryPlan};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rmdp_core::{
    EfficientSequences, MechanismParams, Parallelism, RecursiveMechanism, Release,
    SensitiveKRelation,
};
use rmdp_krelation::annotate::AnnotatedDatabase;
use rmdp_krelation::KRelation;
use rmdp_noise::{BudgetAccountant, PrivacyBudget};
use rmdp_runtime::par_try_map_indexed;

/// A SQL session: an annotated database plus mechanism parameters and a
/// seeded noise source.
///
/// One call to [`SqlSession::query`] spends `ε₁ + ε₂` of privacy budget (the
/// split lives in the [`MechanismParams`]). By default the session does not
/// meter a total budget across queries; [`SqlSession::with_budget`] attaches
/// a [`BudgetAccountant`] that debits every release under sequential
/// composition and refuses — without consuming anything — queries and
/// batches that would overdraw it.
///
/// [`SqlSession::query_batch`] releases several independent queries in one
/// call, running them concurrently on the worker pool when the params'
/// [`Parallelism`] knob allows; results are bit-identical to running the
/// batch serially.
///
/// ```
/// use rmdp_core::MechanismParams;
/// use rmdp_krelation::annotate::AnnotatedDatabase;
/// use rmdp_krelation::tuple::{Tuple, Value};
/// use rmdp_krelation::{Expr, KRelation};
/// use rmdp_sql::SqlSession;
///
/// let mut db = AnnotatedDatabase::new();
/// let mut visits = KRelation::new(["person", "place"]);
/// for (person, place) in [("ada", "museum"), ("bo", "museum"), ("bo", "cafe")] {
///     let p = db.universe_mut().intern(person);
///     visits.insert(
///         Tuple::new([("person", Value::str(person)), ("place", Value::str(place))]),
///         Expr::Var(p),
///     );
/// }
/// db.insert_table("visits", visits);
///
/// let mut session = SqlSession::new(db, MechanismParams::paper_edge_privacy(1.0));
/// let release = session
///     .query("SELECT COUNT(*) FROM visits WHERE place = 'museum'")
///     .unwrap();
/// assert_eq!(release.true_answer, 2.0);
/// assert!(release.noisy_answer.is_finite());
/// ```
pub struct SqlSession {
    db: AnnotatedDatabase,
    params: MechanismParams,
    rng: StdRng,
    accountant: Option<BudgetAccountant>,
}

impl SqlSession {
    /// Opens a session with a fixed default noise seed (releases are
    /// deterministic given the database and query sequence; use
    /// [`SqlSession::with_seed`] to vary it).
    pub fn new(db: AnnotatedDatabase, params: MechanismParams) -> Self {
        Self::with_seed(db, params, 0x5EED)
    }

    /// Opens a session whose noise stream derives from `seed`.
    pub fn with_seed(db: AnnotatedDatabase, params: MechanismParams, seed: u64) -> Self {
        SqlSession {
            db,
            params,
            rng: StdRng::seed_from_u64(seed),
            accountant: None,
        }
    }

    /// Caps the session's total privacy spend. Every admitted query debits
    /// `ε₁ + ε₂` from the accountant (sequential composition) before the
    /// data is touched; a query or batch that would overdraw is refused with
    /// [`SqlError::BudgetExhausted`] **before** any release happens, so a
    /// refusal consumes nothing.
    pub fn with_budget(mut self, total: PrivacyBudget) -> Self {
        self.accountant = Some(BudgetAccountant::new(total));
        self
    }

    /// The underlying database.
    pub fn database(&self) -> &AnnotatedDatabase {
        &self.db
    }

    /// The mechanism parameters used by [`SqlSession::query`].
    pub fn params(&self) -> &MechanismParams {
        &self.params
    }

    /// What is left of the session budget (`None` when the session is
    /// unmetered).
    pub fn remaining_budget(&self) -> Option<PrivacyBudget> {
        self.accountant.as_ref().map(BudgetAccountant::remaining)
    }

    /// The per-release cost under sequential composition: pure `ε₁ + ε₂`.
    fn release_cost(&self) -> PrivacyBudget {
        PrivacyBudget {
            epsilon: self.params.total_epsilon(),
            delta: 0.0,
        }
    }

    /// Parses, validates and lowers `sql` without touching the data — the
    /// `EXPLAIN` of this frontend. The plan's `Display` renders the algebra
    /// pipeline.
    pub fn plan(&self, sql: &str) -> Result<QueryPlan, SqlError> {
        plan(&self.db, sql)
    }

    /// Evaluates `sql` **without differential privacy**, returning the
    /// annotated output relation. Intended for tests and debugging: the
    /// result reveals raw data.
    pub fn evaluate(&self, sql: &str) -> Result<KRelation, SqlError> {
        let plan = self.plan(sql)?;
        execute(&self.db, &plan)
    }

    /// Runs `sql` end-to-end and releases the aggregate through the
    /// recursive mechanism (efficient LP instantiation, paper Sec. 5).
    ///
    /// The participant universe is the database's full universe — people
    /// interned but absent from every table still count toward `|P|`, as in
    /// node privacy where isolated nodes are still protected.
    ///
    /// Budget accounting is **debit-at-admission**: once the query has
    /// planned and the parameters validated (both data-independent checks)
    /// and the budget covers `ε₁ + ε₂`, the cost is spent — *before* the
    /// data is touched. A failure during execution or release (e.g. a
    /// negative `SUM` weight) can depend on the data, so it must not refund
    /// the budget: refunding would let a caller probe the database for free
    /// through the error channel.
    pub fn query(&mut self, sql: &str) -> Result<Release, SqlError> {
        let plan = self.plan(sql)?;
        // Validate params before debiting: a misconfigured session must not
        // drain its budget on queries that can never release.
        self.params.validate()?;
        let cost = self.release_cost();
        if let Some(acc) = &mut self.accountant {
            acc.try_spend(cost)?;
        }
        release_plan(&self.db, &plan, self.params, &mut self.rng)
    }

    /// Runs several independent queries and releases each through the
    /// recursive mechanism, spending `ε₁ + ε₂` **per query** under
    /// sequential composition.
    ///
    /// The whole batch is admitted atomically: every query must plan
    /// successfully and the parameters must validate (both data-independent
    /// checks), and when the session carries a budget the batch's total cost
    /// `k·(ε₁+ε₂)` is debited in one all-or-nothing step — an over-budget
    /// batch is refused with no release performed and **no privacy
    /// consumed**. As with [`SqlSession::query`], post-admission failures do
    /// not refund (they can be data-dependent); in that case the whole batch
    /// errors and the debited budget stays spent, so pre-validate doubtful
    /// aggregates (e.g. with [`SqlSession::evaluate`] in a trusted context)
    /// before batching them.
    ///
    /// When `params.parallelism` resolves to more than one worker the
    /// queries run concurrently on the scoped pool (each on its own
    /// K-relation, LPs and noise stream); worker threads left over by a
    /// batch smaller than the worker budget are given to the per-query
    /// mechanisms instead. A per-query noise seed is drawn from the session
    /// RNG *before* fanning out, in query order, so the batch's releases are
    /// bit-identical whatever the parallelism — and the session RNG advances
    /// exactly `sqls.len()` draws either way.
    pub fn query_batch<S: AsRef<str>>(&mut self, sqls: &[S]) -> Result<Vec<Release>, SqlError> {
        let plans: Vec<QueryPlan> = sqls
            .iter()
            .map(|sql| self.plan(sql.as_ref()))
            .collect::<Result<_, _>>()?;
        self.params.validate()?;

        let total_cost = PrivacyBudget {
            epsilon: self.release_cost().epsilon * plans.len() as f64,
            delta: 0.0,
        };
        if let Some(acc) = &mut self.accountant {
            acc.try_spend(total_cost)?;
        }

        let seeds: Vec<u64> = plans.iter().map(|_| self.rng.next_u64()).collect();

        // The batch level owns the concurrency; the worker budget is split
        // so total thread counts do not multiply. A batch smaller than the
        // budget hands the spare workers to each query's own precompute
        // (e.g. a 1-query batch at Threads(8) behaves like `query`).
        let db = &self.db;
        let workers = self.params.parallelism.workers();
        let per_query = workers / plans.len().max(1);
        let worker_params = self.params.with_parallelism(if per_query > 1 {
            Parallelism::Threads(per_query)
        } else {
            Parallelism::Serial
        });
        par_try_map_indexed(self.params.parallelism, plans.len(), |i| {
            let mut rng = StdRng::seed_from_u64(seeds[i]);
            release_plan(db, &plans[i], worker_params, &mut rng)
        })
    }
}

/// Executes a validated plan and releases its aggregate: the shared tail of
/// [`SqlSession::query`] and each [`SqlSession::query_batch`] worker.
fn release_plan(
    db: &AnnotatedDatabase,
    plan: &QueryPlan,
    params: MechanismParams,
    rng: &mut StdRng,
) -> Result<Release, SqlError> {
    let output = execute(db, plan)?;

    // Validate all weights before handing them to the mechanism (whose
    // constructor asserts) so bad aggregates surface as SqlError.
    for (tuple, _) in output.iter() {
        weigh(plan, tuple)?;
    }
    let participants = db.universe().ids().collect();
    let query = SensitiveKRelation::new(&output, participants, |t| {
        weigh(plan, t).expect("weights validated above")
    });

    let mut mechanism = RecursiveMechanism::new(EfficientSequences::new(query), params)?;
    Ok(mechanism.release(rng)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmdp_krelation::tuple::{Tuple, Value};
    use rmdp_krelation::Expr;

    fn db() -> AnnotatedDatabase {
        let mut db = AnnotatedDatabase::new();
        let mut payments = KRelation::new(["person", "amount"]);
        for (person, amount) in [("ada", 3i64), ("bo", 5), ("cy", -2)] {
            let p = db.universe_mut().intern(person);
            payments.insert(
                Tuple::new([
                    ("person", Value::str(person)),
                    ("amount", Value::Int(amount)),
                ]),
                Expr::Var(p),
            );
        }
        db.insert_table("payments", payments);
        db
    }

    #[test]
    fn count_release_has_the_right_true_answer() {
        let mut session = SqlSession::new(db(), MechanismParams::paper_edge_privacy(1.0));
        let release = session.query("SELECT COUNT(*) FROM payments").unwrap();
        assert_eq!(release.true_answer, 3.0);
        assert!(release.noisy_answer.is_finite());
        assert!((release.epsilon_spent - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sum_aggregates_weights() {
        let mut session = SqlSession::new(db(), MechanismParams::paper_edge_privacy(1.0));
        let release = session
            .query("SELECT SUM(amount) FROM payments WHERE amount > 0")
            .unwrap();
        assert_eq!(release.true_answer, 8.0);
    }

    #[test]
    fn negative_sum_weights_are_a_sql_error_not_a_panic() {
        let mut session = SqlSession::new(db(), MechanismParams::paper_edge_privacy(1.0));
        let err = session
            .query("SELECT SUM(amount) FROM payments")
            .unwrap_err();
        match err {
            SqlError::BadAggregate { message, .. } => {
                assert!(message.contains("negative"), "{message}")
            }
            other => panic!("expected BadAggregate, got {other:?}"),
        }
    }

    #[test]
    fn sum_over_strings_is_a_sql_error() {
        let mut session = SqlSession::new(db(), MechanismParams::paper_edge_privacy(1.0));
        let err = session
            .query("SELECT SUM(person) FROM payments")
            .unwrap_err();
        assert!(matches!(err, SqlError::BadAggregate { .. }));
    }

    #[test]
    fn releases_are_deterministic_per_seed() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let a = SqlSession::with_seed(db(), params, 1)
            .query("SELECT COUNT(*) FROM payments")
            .unwrap();
        let b = SqlSession::with_seed(db(), params, 1)
            .query("SELECT COUNT(*) FROM payments")
            .unwrap();
        let c = SqlSession::with_seed(db(), params, 2)
            .query("SELECT COUNT(*) FROM payments")
            .unwrap();
        assert_eq!(a.noisy_answer, b.noisy_answer);
        assert_ne!(a.noisy_answer, c.noisy_answer);
    }

    #[test]
    fn query_batch_matches_itself_across_parallelism_settings() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let sqls = [
            "SELECT COUNT(*) FROM payments",
            "SELECT SUM(amount) FROM payments WHERE amount > 0",
            "SELECT COUNT(*) FROM payments WHERE amount > 4",
        ];
        let serial = SqlSession::with_seed(db(), params, 7)
            .query_batch(&sqls)
            .unwrap();
        let parallel = SqlSession::with_seed(
            db(),
            params.with_parallelism(rmdp_core::Parallelism::Threads(3)),
            7,
        )
        .query_batch(&sqls)
        .unwrap();
        assert_eq!(serial.len(), 3);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.noisy_answer, b.noisy_answer);
            assert_eq!(a.true_answer, b.true_answer);
        }
        assert_eq!(serial[0].true_answer, 3.0);
        assert_eq!(serial[1].true_answer, 8.0);
        assert_eq!(serial[2].true_answer, 1.0);
    }

    #[test]
    fn query_batch_fails_whole_batch_on_a_bad_query_without_spending() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let mut session =
            SqlSession::new(db(), params).with_budget(rmdp_noise::PrivacyBudget::pure(10.0));
        let err = session
            .query_batch(&["SELECT COUNT(*) FROM payments", "SELECT * FROM nowhere"])
            .unwrap_err();
        assert!(
            matches!(
                err,
                SqlError::Parse { .. }
                    | SqlError::Unsupported { .. }
                    | SqlError::UnknownTable { .. }
            ),
            "{err:?}"
        );
        assert_eq!(session.remaining_budget().unwrap().epsilon, 10.0);
    }

    #[test]
    fn over_budget_batch_is_refused_without_consuming_epsilon() {
        let params = MechanismParams::paper_edge_privacy(0.6);
        let mut session =
            SqlSession::new(db(), params).with_budget(rmdp_noise::PrivacyBudget::pure(1.0));
        // Two releases need 1.2ε but only 1.0ε exists: refused atomically.
        let err = session
            .query_batch(&[
                "SELECT COUNT(*) FROM payments",
                "SELECT COUNT(*) FROM payments",
            ])
            .unwrap_err();
        match err {
            SqlError::BudgetExhausted(e) => {
                assert!((e.requested.epsilon - 1.2).abs() < 1e-12);
                assert!((e.remaining.epsilon - 1.0).abs() < 1e-12);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        assert_eq!(session.remaining_budget().unwrap().epsilon, 1.0);

        // A batch that fits goes through and debits exactly its cost.
        let releases = session
            .query_batch(&["SELECT COUNT(*) FROM payments"])
            .unwrap();
        assert_eq!(releases.len(), 1);
        assert!((session.remaining_budget().unwrap().epsilon - 0.4).abs() < 1e-12);

        // And now the single-query path is over budget too.
        let err = session.query("SELECT COUNT(*) FROM payments").unwrap_err();
        assert!(matches!(err, SqlError::BudgetExhausted(_)));
        assert!((session.remaining_budget().unwrap().epsilon - 0.4).abs() < 1e-12);
    }

    #[test]
    fn invalid_params_do_not_drain_the_budget() {
        // Parameter validation is data-independent, so it must run before
        // the debit: a misconfigured session keeps its full budget.
        let params = MechanismParams::new(0.0, 0.5, 0.1, 1.0, 0.5);
        let mut session =
            SqlSession::new(db(), params).with_budget(rmdp_noise::PrivacyBudget::pure(1.0));
        for _ in 0..3 {
            let err = session.query("SELECT COUNT(*) FROM payments").unwrap_err();
            assert!(matches!(err, SqlError::Mechanism(_)));
        }
        let err = session
            .query_batch(&["SELECT COUNT(*) FROM payments"])
            .unwrap_err();
        assert!(matches!(err, SqlError::Mechanism(_)));
        assert_eq!(session.remaining_budget().unwrap().epsilon, 1.0);
    }

    #[test]
    fn unmetered_sessions_report_no_remaining_budget() {
        let session = SqlSession::new(db(), MechanismParams::paper_edge_privacy(1.0));
        assert!(session.remaining_budget().is_none());
    }

    #[test]
    fn invalid_params_surface_as_mechanism_errors() {
        let params = MechanismParams::new(0.0, 0.5, 0.1, 1.0, 0.5);
        let mut session = SqlSession::new(db(), params);
        let err = session.query("SELECT COUNT(*) FROM payments").unwrap_err();
        assert!(matches!(err, SqlError::Mechanism(_)));
    }
}
