//! The public entry point: a SQL session over one annotated database.

use crate::error::SqlError;
use crate::exec::{execute, execute_grouped};
use crate::fingerprint::{plan_fingerprint, plan_key, PlanKey};
use crate::parser::parse;
use crate::plan::{plan_query, AnyPlan, GroupedQueryPlan, QueryPlan};
use crate::release::{release_grouped_plan, release_plan, GroupedOutcome};
use crate::snapshot::CatalogSnapshot;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rmdp_core::{
    CacheStats, LpWorkStats, MechanismParams, Parallelism, RefreshTier, Release, SequenceCache,
};
use rmdp_krelation::annotate::AnnotatedDatabase;
use rmdp_krelation::fingerprint::Fingerprint;
use rmdp_krelation::tuple::Value;
use rmdp_krelation::KRelation;
use rmdp_noise::{BudgetAccountant, BudgetExhausted, GroupBudgetPolicy, PrivacyBudget};
use rmdp_observe::{
    CacheOutcome, Clock, GroupSplit, MetricsRegistry, MonotonicClock, NoiseScales, NoopRecorder,
    Recorder, ReleaseTrace, SpanRecorder, Stage,
};
use rmdp_runtime::par_try_map_indexed;
use std::sync::Arc;

/// One group of a [`GroupedRelease`]: the (public) key and its release.
#[derive(Clone, Debug)]
pub struct GroupRelease {
    /// The group's key value, from the declared public domain.
    pub key: Value,
    /// The differentially private release of this group's aggregate.
    pub release: Release,
}

/// A grouped (`GROUP BY`) report: one independent release per key of the
/// declared public domain, plus the composition accounting of the whole
/// report.
///
/// Groups appear in **domain declaration order** and always cover the whole
/// declared domain — keys absent from the data release a noised zero, so the
/// set of released keys reveals nothing. The per-group noise seed derives
/// from the key value (not its position), which makes per-key releases
/// invariant under re-declaring the domain in a different order.
#[derive(Clone, Debug)]
pub struct GroupedRelease {
    /// The grouping key column, as written in the query.
    pub key_column: String,
    /// One release per declared key, in domain order.
    pub groups: Vec<GroupRelease>,
    /// The ε each individual group's release spent (`ε/k` under the default
    /// [`GroupBudgetPolicy::SplitEvenly`], the full per-release `ε` under
    /// [`GroupBudgetPolicy::PerGroup`]).
    pub per_group_epsilon: f64,
    /// The total ε the report debited from the session budget under
    /// sequential composition across groups.
    pub epsilon_spent: f64,
    /// The policy that priced this report.
    pub policy: GroupBudgetPolicy,
}

impl GroupedRelease {
    /// Number of groups (= declared domain size).
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the report has no groups (never true for a released report;
    /// plans over empty domains are refused at planning time).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The release for `key`, if it is part of the declared domain.
    pub fn get(&self, key: &Value) -> Option<&Release> {
        self.groups
            .iter()
            .find(|g| &g.key == key)
            .map(|g| &g.release)
    }
}

/// What [`SqlSession::query`] returns: a scalar release for ordinary
/// aggregates, a grouped report for `GROUP BY` queries.
#[derive(Clone, Debug)]
pub enum QueryOutput {
    /// A single aggregate release.
    Scalar(Release),
    /// A per-group report over a declared public key domain.
    Grouped(GroupedRelease),
    /// An `EXPLAIN ANALYZE` query: the release it performed (budget was
    /// spent normally) plus the [`ReleaseTrace`] of how it was produced.
    Explained(Box<TracedOutput>),
}

impl QueryOutput {
    /// The scalar release, if this is one (an `EXPLAIN ANALYZE` of a scalar
    /// query unwraps transparently).
    pub fn scalar(self) -> Option<Release> {
        match self {
            QueryOutput::Scalar(r) => Some(r),
            QueryOutput::Explained(t) => t.output.scalar(),
            QueryOutput::Grouped(_) => None,
        }
    }

    /// The grouped report, if this is one (an `EXPLAIN ANALYZE` of a grouped
    /// query unwraps transparently).
    pub fn grouped(self) -> Option<GroupedRelease> {
        match self {
            QueryOutput::Scalar(_) => None,
            QueryOutput::Explained(t) => t.output.grouped(),
            QueryOutput::Grouped(g) => Some(g),
        }
    }

    /// The traced output, if this query carried an `EXPLAIN ANALYZE` prefix.
    pub fn explained(self) -> Option<TracedOutput> {
        match self {
            QueryOutput::Explained(t) => Some(*t),
            QueryOutput::Scalar(_) | QueryOutput::Grouped(_) => None,
        }
    }
}

/// A query output together with the [`ReleaseTrace`] describing how it was
/// produced: what [`SqlSession::query_traced`] returns, and what an
/// `EXPLAIN ANALYZE` query wraps in [`QueryOutput::Explained`].
///
/// The output inside is a real release — it ran end to end and debited the
/// budget like any other query; the trace is a read-only account of that
/// run (stage timings, cache outcome, LP work, noise scales, ε spent).
#[derive(Clone, Debug)]
pub struct TracedOutput {
    /// The released output (never [`QueryOutput::Explained`] itself).
    pub output: QueryOutput,
    /// The trace of the release that produced `output`.
    pub trace: ReleaseTrace,
}

/// A SQL session: an annotated database plus mechanism parameters and a
/// seeded noise source.
///
/// One scalar [`SqlSession::query`] spends `ε₁ + ε₂` of privacy budget (the
/// split lives in the [`MechanismParams`]); a grouped report spends what its
/// [`GroupBudgetPolicy`] prices it at. By default the session does not
/// meter a total budget across queries; [`SqlSession::with_budget`] attaches
/// a [`BudgetAccountant`] that meters every release under sequential
/// composition. Admission is checked **before** any work (an over-budget
/// query or batch is refused consuming nothing) and the debit is recorded
/// only **after** the release succeeds end to end — a query that fails
/// between admission and the noise draw (an LP failure, a bad aggregate)
/// released nothing and therefore consumes no ε.
///
/// [`SqlSession::query_batch`] releases several independent queries in one
/// call, running them concurrently on the worker pool when the params'
/// [`Parallelism`] knob allows; results are bit-identical to running the
/// batch serially.
///
/// ## Cross-query sequence caching
///
/// [`SqlSession::with_sequence_cache`] attaches a shared
/// [`SequenceCache`]: every query is keyed by its canonical plan
/// fingerprint ([`crate::fingerprint`] — alias names, join order and
/// conjunct order normalised away, database mutation epoch and
/// sensitivity-relevant params hashed in), and a repeat of a structurally
/// identical query serves its `H`/`G` sequences from the cache, skipping
/// plan execution and all `2(|P|+1)` sequence LPs. Per-query noise is
/// still drawn fresh from the session RNG, so caching changes **only**
/// wall-clock time: under a fixed seed the released values are
/// bit-identical with and without the cache.
///
/// ## Grouped reports
///
/// `SELECT key, COUNT(*) … GROUP BY key` releases one noised value per key
/// of the key column's **declared public domain**
/// ([`AnnotatedDatabase::declare_public_domain`]); grouping on an
/// undeclared column is a planner error, since a data-derived key set would
/// leak which keys occur. The whole report is admitted atomically against
/// the budget (priced by the [`GroupBudgetPolicy`]), and the `k` per-group
/// sequence computations fan out across the worker pool and the sequence
/// cache under the same determinism discipline as batches.
///
/// ```
/// use rmdp_core::MechanismParams;
/// use rmdp_krelation::annotate::AnnotatedDatabase;
/// use rmdp_krelation::tuple::{Tuple, Value};
/// use rmdp_krelation::{Expr, KRelation};
/// use rmdp_sql::SqlSession;
///
/// let mut db = AnnotatedDatabase::new();
/// let mut visits = KRelation::new(["person", "place"]);
/// for (person, place) in [("ada", "museum"), ("bo", "museum"), ("bo", "cafe")] {
///     let p = db.intern(person);
///     visits.insert(
///         Tuple::new([("person", Value::str(person)), ("place", Value::str(place))]),
///         Expr::Var(p),
///     );
/// }
/// db.insert_table("visits", visits);
/// db.declare_public_domain(
///     "visits",
///     "place",
///     [Value::str("museum"), Value::str("cafe"), Value::str("park")],
/// );
///
/// let mut session = SqlSession::new(db, MechanismParams::paper_edge_privacy(1.0));
/// let release = session
///     .query_scalar("SELECT COUNT(*) FROM visits WHERE place = 'museum'")
///     .unwrap();
/// assert_eq!(release.true_answer, 2.0);
/// assert!(release.noisy_answer.is_finite());
///
/// let report = session
///     .query_grouped("SELECT place, COUNT(*) FROM visits GROUP BY place")
///     .unwrap();
/// assert_eq!(report.len(), 3); // every declared key, present in the data or not
/// assert_eq!(report.get(&Value::str("museum")).unwrap().true_answer, 2.0);
/// assert_eq!(report.get(&Value::str("park")).unwrap().true_answer, 0.0);
/// ```
pub struct SqlSession {
    snapshot: Arc<CatalogSnapshot>,
    params: MechanismParams,
    rng: StdRng,
    accountant: Option<BudgetAccountant>,
    cache: Option<Arc<SequenceCache>>,
    group_policy: GroupBudgetPolicy,
    metrics: Option<Arc<MetricsRegistry>>,
    clock: Arc<dyn Clock + Send + Sync>,
    lp_totals: LpWorkStats,
}

impl SqlSession {
    /// Opens a session with a fixed default noise seed (releases are
    /// deterministic given the database and query sequence; use
    /// [`SqlSession::with_seed`] to vary it).
    pub fn new(db: AnnotatedDatabase, params: MechanismParams) -> Self {
        Self::with_seed(db, params, 0x5EED)
    }

    /// Opens a session whose noise stream derives from `seed`.
    pub fn with_seed(db: AnnotatedDatabase, params: MechanismParams, seed: u64) -> Self {
        Self::over(CatalogSnapshot::shared(db, params), seed)
    }

    /// Opens a session **over a shared [`CatalogSnapshot`]**: the
    /// multi-session form of [`SqlSession::with_seed`]. The snapshot (the
    /// immutable half — database, planner, default params) is shared by
    /// reference; everything mutable (the noise RNG seeded from `seed`, the
    /// optional budget accountant and cache handle, LP-work totals) is
    /// private to this session. Minting a session per request this way is
    /// cheap — two `Arc` clones and an RNG seed — which is how `rmdp-server`
    /// serves many concurrent tenants over one snapshot.
    pub fn over(snapshot: Arc<CatalogSnapshot>, seed: u64) -> Self {
        let params = snapshot.params();
        SqlSession {
            snapshot,
            params,
            // lint:allow(rng-confinement): the sanctioned root — every draw in the session descends from this caller-supplied, replay-logged seed
            rng: StdRng::seed_from_u64(seed),
            accountant: None,
            cache: None,
            group_policy: GroupBudgetPolicy::default(),
            metrics: None,
            clock: Arc::new(MonotonicClock::new()),
            lp_totals: LpWorkStats::default(),
        }
    }

    /// The shared immutable half of this session.
    pub fn snapshot(&self) -> &Arc<CatalogSnapshot> {
        &self.snapshot
    }

    /// Attaches a [`MetricsRegistry`] the session reports into: release and
    /// LP-work counters, sequence-cache counters and hit rate, and the
    /// budget series (`budget.admitted/debited/refused` with their ε sums).
    /// The registry may be shared across sessions (and with
    /// [`rmdp_runtime::install_pool_metrics`]); recording never touches the
    /// noise RNG, so metered releases stay bit-identical to unmetered ones.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// Replaces the clock behind [`SqlSession::query_traced`] stage timings.
    /// The default is the process monotonic clock; tests inject a
    /// [`ManualClock`](rmdp_observe::ManualClock) to make traces
    /// deterministic. The clock is read only on traced paths and only
    /// between releases' RNG draws — never by the mechanism itself.
    pub fn with_clock(mut self, clock: Arc<dyn Clock + Send + Sync>) -> Self {
        self.clock = clock;
        self
    }

    /// Cumulative LP work across every release this session performed
    /// (scalar queries, grouped reports and batches alike), folded in input
    /// order so the totals are identical for every [`Parallelism`].
    pub fn lp_totals(&self) -> LpWorkStats {
        self.lp_totals
    }

    /// Sets how grouped (`GROUP BY`) reports split privacy budget across
    /// their `k` groups. The default [`GroupBudgetPolicy::SplitEvenly`]
    /// prices a whole report like one scalar release (each group gets
    /// `ε/k`); [`GroupBudgetPolicy::PerGroup`] gives every group the full
    /// per-release `ε` and prices the report at `k·ε`.
    pub fn with_group_policy(mut self, policy: GroupBudgetPolicy) -> Self {
        self.group_policy = policy;
        self
    }

    /// The active grouped-report budget policy.
    pub fn group_policy(&self) -> GroupBudgetPolicy {
        self.group_policy
    }

    /// Attaches a (possibly shared) cross-query sequence cache. Queries that
    /// compile to structurally identical plans over the same database state
    /// reuse each other's completed `H`/`G` sequences instead of re-solving
    /// the sequence LPs; releases stay bit-identical to the uncached session
    /// under the same seed. The cache may be shared across sessions and
    /// threads — keys embed each database's identity and mutation epoch, so
    /// sessions over different (or since-mutated) databases can never read
    /// each other's entries.
    pub fn with_sequence_cache(mut self, cache: Arc<SequenceCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Convenience: attaches a fresh, private sequence cache bounded to
    /// `capacity` frozen tables.
    pub fn with_cache_capacity(self, capacity: usize) -> Self {
        self.with_sequence_cache(SequenceCache::shared(capacity))
    }

    /// The attached sequence cache, if any.
    pub fn sequence_cache(&self) -> Option<&Arc<SequenceCache>> {
        self.cache.as_ref()
    }

    /// Counters of the attached sequence cache (`None` when uncached).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Caps the session's total privacy spend. Every successful release
    /// debits `ε₁ + ε₂` from the accountant (sequential composition). A
    /// query or batch that would overdraw is refused with
    /// [`SqlError::BudgetExhausted`] **before** any work happens, and a
    /// query that fails anywhere between admission and the noise draw
    /// released nothing — so in both cases nothing is consumed.
    pub fn with_budget(mut self, total: PrivacyBudget) -> Self {
        self.accountant = Some(BudgetAccountant::new(total));
        self
    }

    /// The underlying database.
    pub fn database(&self) -> &AnnotatedDatabase {
        self.snapshot.database()
    }

    /// The mechanism parameters used by [`SqlSession::query`].
    pub fn params(&self) -> &MechanismParams {
        &self.params
    }

    /// What is left of the session budget (`None` when the session is
    /// unmetered).
    pub fn remaining_budget(&self) -> Option<PrivacyBudget> {
        self.accountant.as_ref().map(BudgetAccountant::remaining)
    }

    /// The per-release cost under sequential composition: pure `ε₁ + ε₂`.
    fn release_cost(&self) -> PrivacyBudget {
        PrivacyBudget {
            epsilon: self.params.total_epsilon(),
            delta: 0.0,
        }
    }

    /// Admission check: refuses `cost` (consuming nothing) when the metered
    /// budget cannot cover it.
    fn ensure_affordable(&self, cost: PrivacyBudget) -> Result<(), SqlError> {
        match &self.accountant {
            Some(acc) if !acc.can_afford(cost) => {
                if let Some(m) = &self.metrics {
                    m.counter_add("budget.refused", 1);
                    m.sum_add("budget.refused_epsilon", cost.epsilon);
                }
                Err(SqlError::BudgetExhausted(BudgetExhausted {
                    requested: cost,
                    remaining: acc.remaining(),
                }))
            }
            _ => {
                if let Some(m) = &self.metrics {
                    m.counter_add("budget.admitted", 1);
                    m.sum_add("budget.admitted_epsilon", cost.epsilon);
                }
                Ok(())
            }
        }
    }

    /// Records `cost` after a successful release. Admission was checked on
    /// this same `&mut self` call path, so the debit cannot fail; the
    /// `Result` guards the accounting invariant anyway.
    fn debit(&mut self, cost: PrivacyBudget) -> Result<(), SqlError> {
        if let Some(acc) = &mut self.accountant {
            acc.try_spend(cost)?;
        }
        if let Some(m) = &self.metrics {
            m.counter_add("budget.debited", 1);
            m.sum_add("budget.debited_epsilon", cost.epsilon);
        }
        Ok(())
    }

    /// The cache handle and epoch-scoped [`PlanKey`] for one admitted plan,
    /// when the session carries a cache.
    fn cache_key(&self, plan: &QueryPlan) -> Option<(Arc<SequenceCache>, PlanKey)> {
        self.cache.as_ref().map(|c| {
            (
                Arc::clone(c),
                plan_key(self.snapshot.database(), plan, &self.params),
            )
        })
    }

    /// Parses, validates and lowers `sql` without touching the data — the
    /// `EXPLAIN` of this frontend. The plan's `Display` renders the algebra
    /// pipeline (with a `γ` header for grouped reports).
    pub fn plan(&self, sql: &str) -> Result<AnyPlan, SqlError> {
        self.snapshot.plan(sql)
    }

    /// Evaluates a scalar `sql` **without differential privacy**, returning
    /// the annotated output relation. Intended for tests and debugging: the
    /// result reveals raw data. Grouped queries go through
    /// [`SqlSession::evaluate_grouped`].
    pub fn evaluate(&self, sql: &str) -> Result<KRelation, SqlError> {
        match self.plan(sql)? {
            AnyPlan::Scalar(plan) => execute(self.snapshot.database(), &plan),
            AnyPlan::Grouped(g) => Err(SqlError::QueryShape {
                message: "evaluate returns one relation; evaluate grouped queries through \
                          `evaluate_grouped`"
                    .to_owned(),
                span: g.key_span,
            }),
        }
    }

    /// Evaluates a grouped `sql` **without differential privacy**, returning
    /// one annotated relation per declared key, in domain order. Like
    /// [`SqlSession::evaluate`], this reveals raw data — tests and debugging
    /// only.
    pub fn evaluate_grouped(&self, sql: &str) -> Result<Vec<(Value, KRelation)>, SqlError> {
        match self.plan(sql)? {
            AnyPlan::Grouped(g) => execute_grouped(self.snapshot.database(), &g),
            AnyPlan::Scalar(p) => Err(SqlError::QueryShape {
                message: "evaluate_grouped needs a `GROUP BY` query; use `evaluate` for \
                          scalar aggregates"
                    .to_owned(),
                span: p.aggregate_span,
            }),
        }
    }

    /// Runs `sql` end-to-end and releases it through the recursive mechanism
    /// (efficient LP instantiation, paper Sec. 5): a scalar aggregate yields
    /// [`QueryOutput::Scalar`], a `GROUP BY` over a declared public domain
    /// yields [`QueryOutput::Grouped`] — one independent release per key.
    ///
    /// The participant universe is the database's full universe — people
    /// interned but absent from every table still count toward `|P|`, as in
    /// node privacy where isolated nodes are still protected.
    ///
    /// Budget accounting is **admission-checked, debit-on-success**: the
    /// query (or the whole grouped report, priced by the
    /// [`GroupBudgetPolicy`]) is refused up front, consuming nothing, when
    /// the budget cannot cover it, and the cost is recorded only once the
    /// release has succeeded end to end. Every failure path between the
    /// admission check and the noise draw — plan execution, weight
    /// validation, the sequence LPs, parameter validation inside the
    /// mechanism — releases nothing, so none of them consume ε. (Callers
    /// that treat *error messages* as observable output should still account
    /// for them out of band; the accountant meters released answers, and a
    /// failed query releases none.)
    pub fn query(&mut self, sql: &str) -> Result<QueryOutput, SqlError> {
        // Parse first so an `EXPLAIN ANALYZE` prefix can dispatch to the
        // traced path. `query_traced` re-parses the text, which keeps its
        // Parse span honest and costs microseconds next to the LP solves.
        let ast = parse(sql)?;
        if ast.explain {
            return Ok(QueryOutput::Explained(Box::new(self.query_traced(sql)?)));
        }
        match plan_query(self.snapshot.database(), &ast)? {
            AnyPlan::Scalar(plan) => self.release_scalar(&plan).map(QueryOutput::Scalar),
            AnyPlan::Grouped(plan) => self.release_grouped(&plan).map(QueryOutput::Grouped),
        }
    }

    /// Runs `sql` like [`SqlSession::query`] and returns the output together
    /// with its [`ReleaseTrace`] — the programmatic form of
    /// `EXPLAIN ANALYZE` (which is sugar for this method).
    ///
    /// The release is **bit-identical** to what [`SqlSession::query`] would
    /// have produced at this point of the session: the trace recorder reads
    /// only the session clock, never the noise RNG, and the budget is
    /// admitted and debited exactly as usual. Scalar traces time all seven
    /// pipeline stages individually (parse → plan → fingerprint → cache
    /// lookup → sequence solves → noise draws → budget accounting); a
    /// grouped report's parallel fan-out is booked as one
    /// [`Stage::SequenceSolve`] span — splitting stages across concurrent
    /// workers would double-count wall time — with per-group cache hits,
    /// LP work (folded in domain order), noise scales and the ε split
    /// reported in the trace body instead.
    pub fn query_traced(&mut self, sql: &str) -> Result<TracedOutput, SqlError> {
        let started = self.clock.now_nanos();
        let mut recorder = SpanRecorder::new(Arc::clone(&self.clock));
        recorder.enter(Stage::Parse);
        let ast = parse(sql)?;
        recorder.exit(Stage::Parse);
        recorder.enter(Stage::Plan);
        let planned = plan_query(self.snapshot.database(), &ast)?;
        recorder.exit(Stage::Plan);

        let (output, fingerprint, cache, cache_hits, cache_misses, lp, noise, epsilon, split) =
            match planned {
                AnyPlan::Scalar(plan) => {
                    let out = self.release_scalar_recorded(&plan, &mut recorder, true)?;
                    let noise = vec![NoiseScales {
                        log_scale: self.params.beta / self.params.epsilon1,
                        answer_scale: out.release.delta_hat / self.params.epsilon2,
                    }];
                    let (hits, misses) = match out.cache {
                        CacheOutcome::Hit => (1, 0),
                        CacheOutcome::Miss => (0, 1),
                        CacheOutcome::Uncached => (0, 0),
                    };
                    (
                        QueryOutput::Scalar(out.release),
                        out.fingerprint,
                        out.cache,
                        hits,
                        misses,
                        out.lp,
                        noise,
                        self.params.total_epsilon(),
                        None,
                    )
                }
                AnyPlan::Grouped(plan) => {
                    let (report, info) = self.release_grouped_recorded(&plan, &mut recorder)?;
                    let noise = report
                        .groups
                        .iter()
                        .map(|g| NoiseScales {
                            log_scale: self.params.beta / info.group_epsilon1,
                            answer_scale: g.release.delta_hat / info.group_epsilon2,
                        })
                        .collect();
                    let split = GroupSplit {
                        policy: report.policy.to_string(),
                        groups: report.len() as u64,
                        per_group_fraction: info.fraction,
                        per_group_epsilon: report.per_group_epsilon,
                    };
                    let epsilon = report.epsilon_spent;
                    (
                        QueryOutput::Grouped(report),
                        None,
                        info.cache,
                        info.cache_hits,
                        info.cache_misses,
                        info.lp,
                        noise,
                        epsilon,
                        Some(split),
                    )
                }
            };

        let trace = ReleaseTrace {
            fingerprint: fingerprint.map(|f| f.0),
            cache,
            cache_hits,
            cache_misses,
            stages: recorder.spans(),
            total_nanos: self.clock.now_nanos().saturating_sub(started),
            lp: lp.to_summary(),
            noise,
            epsilon_spent: epsilon,
            group_split: split,
        };
        if let Some(m) = &self.metrics {
            m.counter_add("sql.traced_queries", 1);
            for span in &trace.stages {
                m.sum_add(
                    &format!("stage.{}.seconds", span.stage.name()),
                    span.nanos as f64 / 1e9,
                );
            }
        }
        Ok(TracedOutput { output, trace })
    }

    /// [`SqlSession::query`] for callers that know the query is scalar;
    /// a grouped query is refused with a span-carrying
    /// [`SqlError::QueryShape`] pointing at its `GROUP BY`.
    pub fn query_scalar(&mut self, sql: &str) -> Result<Release, SqlError> {
        match self.plan(sql)? {
            AnyPlan::Scalar(plan) => self.release_scalar(&plan),
            AnyPlan::Grouped(g) => Err(SqlError::QueryShape {
                message: "this query is grouped; release it through `query` or \
                          `query_grouped`"
                    .to_owned(),
                span: g.key_span,
            }),
        }
    }

    /// [`SqlSession::query`] for callers that know the query is grouped;
    /// a scalar query is refused with a span-carrying
    /// [`SqlError::QueryShape`].
    pub fn query_grouped(&mut self, sql: &str) -> Result<GroupedRelease, SqlError> {
        match self.plan(sql)? {
            AnyPlan::Grouped(plan) => self.release_grouped(&plan),
            AnyPlan::Scalar(p) => Err(SqlError::QueryShape {
                message: "query_grouped needs a `GROUP BY` query; use `query` or \
                          `query_scalar` for scalar aggregates"
                    .to_owned(),
                span: p.aggregate_span,
            }),
        }
    }

    /// The shared scalar release path of [`SqlSession::query`] and
    /// [`SqlSession::query_scalar`].
    fn release_scalar(&mut self, plan: &QueryPlan) -> Result<Release, SqlError> {
        Ok(self
            .release_scalar_recorded(plan, &mut NoopRecorder, false)?
            .release)
    }

    /// Recorder-generic scalar release: the shared implementation of
    /// [`SqlSession::release_scalar`] (with a [`NoopRecorder`], whose empty
    /// inline hooks compile away) and [`SqlSession::query_traced`] (with a
    /// [`SpanRecorder`]). `force_fingerprint` computes the canonical plan
    /// fingerprint even on uncached sessions so the trace can report it.
    fn release_scalar_recorded<T: Recorder>(
        &mut self,
        plan: &QueryPlan,
        recorder: &mut T,
        force_fingerprint: bool,
    ) -> Result<ScalarOutcome, SqlError> {
        // Validate params before the admission check so a misconfigured
        // session fails loudly instead of looking over budget.
        self.params.validate()?;
        let cost = self.release_cost();
        recorder.enter(Stage::BudgetDebit);
        let admitted = self.ensure_affordable(cost);
        recorder.exit(Stage::BudgetDebit);
        admitted?;
        recorder.enter(Stage::Fingerprint);
        let cache = self.cache_key(plan);
        let fingerprint = match (&cache, force_fingerprint) {
            (Some((_, key)), _) => Some(key.key),
            (None, true) => Some(plan_fingerprint(
                self.snapshot.database(),
                plan,
                &self.params,
            )),
            (None, false) => None,
        };
        recorder.exit(Stage::Fingerprint);
        let outcome = release_plan(
            self.snapshot.database(),
            plan,
            self.params,
            &mut self.rng,
            cache.as_ref().map(|(c, key)| (c.as_ref(), key)),
            recorder,
        )?;
        recorder.enter(Stage::BudgetDebit);
        let debited = self.debit(cost);
        recorder.exit(Stage::BudgetDebit);
        debited?;
        self.absorb_release_stats(&outcome.lp, 1);
        self.absorb_refresh_tier(outcome.refresh);
        Ok(ScalarOutcome {
            release: outcome.release,
            cache: outcome.cache,
            lp: outcome.lp,
            fingerprint,
        })
    }

    /// Folds one call's LP work into the session totals and, when a
    /// registry is attached, into the process metrics. `releases` is how
    /// many mechanism releases the call performed (1 for a scalar, `k` for
    /// a grouped report, the batch length for a batch).
    fn absorb_release_stats(&mut self, lp: &LpWorkStats, releases: u64) {
        self.lp_totals.absorb(lp);
        if let Some(m) = &self.metrics {
            m.counter_add("sql.releases", releases);
            m.counter_add("lp.h_solves", lp.h_solves as u64);
            m.counter_add("lp.g_solves", lp.g_solves as u64);
            m.counter_add("lp.total_pivots", lp.total_pivots as u64);
            m.counter_add("lp.warm_start_hits", lp.warm_start_hits as u64);
            m.counter_add("lp.refactorizations", lp.refactorizations as u64);
            m.counter_add("lp.basis_updates", lp.basis_updates as u64);
            m.counter_add("lp.presolve_rows_removed", lp.presolve_rows_removed as u64);
            m.counter_add("lp.presolve_cols_removed", lp.presolve_cols_removed as u64);
            // Peak, not a sum: the session total already folds with `max`.
            m.gauge_set("lp.peak_fill_in_nnz", self.lp_totals.fill_in_nnz as f64);
            if let Some(stats) = self.cache_stats() {
                m.counter_record_total("cache.hits", stats.hits);
                m.counter_record_total("cache.misses", stats.misses);
                m.counter_record_total("cache.insertions", stats.insertions);
                m.counter_record_total("cache.evictions", stats.evictions);
                m.counter_record_total("cache.evictions_stale", stats.evictions_stale);
                m.gauge_set("cache.hit_rate", stats.hit_rate());
            }
        }
    }

    /// Books which refresh tier served a cache miss, when the miss was
    /// re-derived from a parked pre-delta entry rather than computed cold.
    fn absorb_refresh_tier(&self, refresh: Option<RefreshTier>) {
        if let Some(m) = &self.metrics {
            match refresh {
                Some(RefreshTier::Unchanged) => m.counter_add("lp.warm_refresh_unchanged", 1),
                Some(RefreshTier::WarmChain) => m.counter_add("lp.warm_refresh_chains", 1),
                Some(RefreshTier::ColdRebuild) => m.counter_add("lp.warm_refresh_cold", 1),
                None => {}
            }
        }
    }

    /// The grouped release path: the whole `k`-group report is admitted
    /// atomically (refusal consumes no ε), every group releases with the
    /// policy's per-group `ε`, and the report cost is debited only after
    /// every group has released.
    ///
    /// The `k` per-group sequence computations fan out across the worker
    /// pool and through the shared [`SequenceCache`] exactly like a
    /// [`SqlSession::query_batch`] — each group's plan is the template with
    /// its key dissolved into an equality conjunct, so a group's cache entry
    /// is *the same entry* the hand-written `WHERE key = v` query uses.
    ///
    /// Determinism discipline: one seed is drawn from the session RNG per
    /// report (so the RNG advances once regardless of `k`), and each group's
    /// noise stream derives from that seed **and the key value** — not the
    /// key's position. Releases are therefore bit-identical across
    /// [`Parallelism`] settings, cached/uncached sessions, *and* re-declared
    /// domain orders.
    fn release_grouped(&mut self, grouped: &GroupedQueryPlan) -> Result<GroupedRelease, SqlError> {
        Ok(self.release_grouped_recorded(grouped, &mut NoopRecorder)?.0)
    }

    /// Recorder-generic grouped release. Worker threads run with a
    /// [`NoopRecorder`] — attributing stage spans across a concurrent
    /// fan-out would double-count wall time — so the report's recorder
    /// books admission/debit, fingerprinting, and the whole fan-out (as one
    /// [`Stage::SequenceSolve`] span); the per-group facts the trace wants
    /// come back in the [`GroupedOutcome`].
    fn release_grouped_recorded<T: Recorder>(
        &mut self,
        grouped: &GroupedQueryPlan,
        recorder: &mut T,
    ) -> Result<(GroupedRelease, GroupedOutcome), SqlError> {
        self.params.validate()?;
        let k = grouped.num_groups();
        let cost = self.group_policy.report_cost(self.release_cost(), k);
        recorder.enter(Stage::BudgetDebit);
        let admitted = self.ensure_affordable(cost);
        recorder.exit(Stage::BudgetDebit);
        admitted?;

        let (report, info) = release_grouped_plan(
            self.snapshot.database(),
            grouped,
            self.params,
            self.group_policy,
            &mut self.rng,
            self.cache.as_deref(),
            recorder,
        )?;
        recorder.enter(Stage::BudgetDebit);
        let debited = self.debit(cost);
        recorder.exit(Stage::BudgetDebit);
        debited?;
        self.absorb_release_stats(&info.lp, k as u64);
        // Per-group tiers are folded inside the fan-out; warm refreshes
        // (Unchanged or WarmChain) are booked under the chains counter.
        if let Some(m) = &self.metrics {
            m.counter_add("lp.warm_refresh_chains", info.warm_refreshes);
        }
        Ok((report, info))
    }

    /// Runs several independent queries and releases each through the
    /// recursive mechanism, spending `ε₁ + ε₂` **per query** under
    /// sequential composition.
    ///
    /// The whole batch is admitted atomically: every query must plan
    /// successfully and the parameters must validate (both data-independent
    /// checks), and when the session carries a budget the batch's total cost
    /// `k·(ε₁+ε₂)` must fit in what remains — an over-budget batch is
    /// refused with no release performed and **no privacy consumed**. The
    /// debit is recorded only after *every* query in the batch has released
    /// successfully; a failure anywhere fails the whole batch and, since
    /// none of its releases are returned, consumes nothing.
    ///
    /// When `params.parallelism` resolves to more than one worker the
    /// queries run concurrently on the scoped pool (each on its own
    /// K-relation, LPs and noise stream); worker threads left over by a
    /// batch smaller than the worker budget are given to the per-query
    /// mechanisms instead. A per-query noise seed is drawn from the session
    /// RNG *before* fanning out, in query order, so the batch's releases are
    /// bit-identical whatever the parallelism — and the session RNG advances
    /// exactly `sqls.len()` draws either way.
    ///
    /// When the session carries a [`SequenceCache`] the workers share it:
    /// repeated query shapes inside one batch (or across batches and
    /// sessions) reuse each other's frozen sequences. Two workers racing on
    /// the same cold shape at worst both compute the (deterministic,
    /// bit-identical) table, so the released values never depend on the
    /// schedule.
    pub fn query_batch<S: AsRef<str>>(&mut self, sqls: &[S]) -> Result<Vec<Release>, SqlError> {
        let plans: Vec<QueryPlan> = sqls
            .iter()
            .map(|sql| match self.plan(sql.as_ref())? {
                AnyPlan::Scalar(p) => Ok(p),
                AnyPlan::Grouped(g) => Err(SqlError::QueryShape {
                    message: "query_batch releases scalar aggregates; run grouped reports \
                              one at a time through `query` or `query_grouped`"
                        .to_owned(),
                    span: g.key_span,
                }),
            })
            .collect::<Result<_, _>>()?;
        self.params.validate()?;

        let total_cost = PrivacyBudget {
            epsilon: self.release_cost().epsilon * plans.len() as f64,
            delta: 0.0,
        };
        self.ensure_affordable(total_cost)?;

        // Plan keys are computed before the fan-out (they are cheap and
        // pure), one per plan, so workers only touch the shared cache.
        let keys: Option<Vec<PlanKey>> = self.cache.as_ref().map(|_| {
            plans
                .iter()
                .map(|p| plan_key(self.snapshot.database(), p, &self.params))
                .collect()
        });
        // lint:allow(rng-confinement): sanctioned seed-schedule derivation — per-item seeds drawn serially from the session root before fan-out
        let seeds: Vec<u64> = plans.iter().map(|_| self.rng.next_u64()).collect();

        // The batch level owns the concurrency; the worker budget is split
        // so total thread counts do not multiply. A batch smaller than the
        // budget hands the spare workers to each query's own precompute
        // (e.g. a 1-query batch at Threads(8) behaves like `query`).
        let db = self.snapshot.database();
        let cache = self.cache.as_deref();
        let workers = self.params.parallelism.workers();
        let per_query = workers / plans.len().max(1);
        let worker_params = self.params.with_parallelism(if per_query > 1 {
            Parallelism::Threads(per_query)
        } else {
            Parallelism::Serial
        });
        let outcomes = par_try_map_indexed(self.params.parallelism, plans.len(), |i| {
            // lint:allow(rng-confinement): sanctioned construction — each worker's RNG descends from the logged seed schedule, so replay is bit-identical
            let mut rng = StdRng::seed_from_u64(seeds[i]);
            let key = keys.as_ref().map(|k| &k[i]);
            release_plan(
                db,
                &plans[i],
                worker_params,
                &mut rng,
                cache.zip(key),
                &mut NoopRecorder,
            )
        })?;
        self.debit(total_cost)?;
        // Fold the batch's LP work into the session totals in query (=
        // input) order — `par_try_map_indexed` already returns index order,
        // so the fold is deterministic for every `Parallelism`.
        let mut lp = LpWorkStats::default();
        for outcome in &outcomes {
            lp.absorb(&outcome.lp);
            self.absorb_refresh_tier(outcome.refresh);
        }
        self.absorb_release_stats(&lp, outcomes.len() as u64);
        Ok(outcomes.into_iter().map(|o| o.release).collect())
    }

    /// Runs several independent queries — scalar **or** `GROUP BY` — and
    /// releases each through the recursive mechanism, admitting the whole
    /// mixed batch atomically.
    ///
    /// [`SqlSession::query_batch`] stays deliberately scalar-only (a grouped
    /// query there is a shape error, not a silent scalar release); this is
    /// the path that admits grouped reports through the batch machinery.
    /// Pricing composes sequentially over the batch: a scalar item costs
    /// `ε₁ + ε₂`, a grouped item costs its [`GroupBudgetPolicy`] report
    /// price for its domain size — and the *sum* is admitted atomically, so
    /// an over-budget batch is refused with nothing released and **no
    /// privacy consumed**. As in [`SqlSession::query_batch`], the debit
    /// lands only after every item has released; a failure anywhere fails
    /// the whole batch and consumes nothing.
    ///
    /// Determinism matches the scalar batch: one noise seed is drawn from
    /// the session RNG per item, in input order, before the fan-out. A
    /// grouped item's per-group streams derive from that seed and each key
    /// *value* (the [`SqlSession::query_grouped`] discipline), so the
    /// batch's releases are bit-identical across [`Parallelism`] settings
    /// and cached/uncached sessions.
    pub fn query_batch_mixed<S: AsRef<str>>(
        &mut self,
        sqls: &[S],
    ) -> Result<Vec<BatchRelease>, SqlError> {
        let plans: Vec<AnyPlan> = sqls
            .iter()
            .map(|sql| self.plan(sql.as_ref()))
            .collect::<Result<_, _>>()?;
        self.params.validate()?;

        let per_release = self.release_cost();
        let mut epsilon = 0.0;
        for item in &plans {
            epsilon += match item {
                AnyPlan::Scalar(_) => per_release.epsilon,
                AnyPlan::Grouped(g) => {
                    self.group_policy
                        .report_cost(per_release, g.num_groups())
                        .epsilon
                }
            };
        }
        let total_cost = PrivacyBudget {
            epsilon,
            delta: 0.0,
        };
        self.ensure_affordable(total_cost)?;

        // Scalar plan keys are precomputed as in `query_batch`; grouped
        // items compute keys per group inside `release_grouped_plan` (their
        // keys depend on the scaled per-group ε split).
        let keys: Option<Vec<Option<PlanKey>>> = self.cache.as_ref().map(|_| {
            plans
                .iter()
                .map(|item| match item {
                    AnyPlan::Scalar(p) => Some(plan_key(self.snapshot.database(), p, &self.params)),
                    AnyPlan::Grouped(_) => None,
                })
                .collect()
        });
        // lint:allow(rng-confinement): sanctioned seed-schedule derivation — per-item seeds drawn serially from the session root before fan-out
        let seeds: Vec<u64> = plans.iter().map(|_| self.rng.next_u64()).collect();

        let db = self.snapshot.database();
        let cache = self.cache.as_deref();
        let policy = self.group_policy;
        let workers = self.params.parallelism.workers();
        let per_item = workers / plans.len().max(1);
        let worker_params = self.params.with_parallelism(if per_item > 1 {
            Parallelism::Threads(per_item)
        } else {
            Parallelism::Serial
        });
        let outcomes = par_try_map_indexed(self.params.parallelism, plans.len(), |i| {
            // lint:allow(rng-confinement): sanctioned construction — each worker's RNG descends from the logged seed schedule, so replay is bit-identical
            let mut rng = StdRng::seed_from_u64(seeds[i]);
            match &plans[i] {
                AnyPlan::Scalar(plan) => {
                    let key = keys.as_ref().and_then(|ks| ks[i].as_ref());
                    release_plan(
                        db,
                        plan,
                        worker_params,
                        &mut rng,
                        cache.zip(key),
                        &mut NoopRecorder,
                    )
                    .map(|o| (BatchRelease::Scalar(o.release), o.lp))
                }
                AnyPlan::Grouped(g) => release_grouped_plan(
                    db,
                    g,
                    worker_params,
                    policy,
                    &mut rng,
                    cache,
                    &mut NoopRecorder,
                )
                .map(|(report, info)| (BatchRelease::Grouped(report), info.lp)),
            }
        })?;
        self.debit(total_cost)?;

        // Fold LP work in input order (index order is already guaranteed),
        // counting one mechanism release per scalar and `k` per grouped item.
        let mut lp = LpWorkStats::default();
        let mut releases = 0u64;
        let mut out = Vec::with_capacity(outcomes.len());
        for (item, (release, item_lp)) in plans.iter().zip(outcomes) {
            lp.absorb(&item_lp);
            releases += match item {
                AnyPlan::Scalar(_) => 1,
                AnyPlan::Grouped(g) => g.num_groups() as u64,
            };
            out.push(release);
        }
        self.absorb_release_stats(&lp, releases);
        Ok(out)
    }
}

/// One release of a [`SqlSession::query_batch_mixed`] batch: scalar items
/// release a single [`Release`], `GROUP BY` items a whole
/// [`GroupedRelease`].
#[derive(Clone, Debug)]
pub enum BatchRelease {
    /// A scalar aggregate's release.
    Scalar(Release),
    /// A grouped (`GROUP BY`) report's releases.
    Grouped(GroupedRelease),
}

/// A [`release_plan`] outcome for the scalar session path, with the
/// canonical plan fingerprint when one was computed (always, when tracing).
struct ScalarOutcome {
    release: Release,
    cache: CacheOutcome,
    lp: LpWorkStats,
    fingerprint: Option<Fingerprint>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmdp_krelation::tuple::{Tuple, Value};
    use rmdp_krelation::Expr;

    fn db() -> AnnotatedDatabase {
        let mut db = AnnotatedDatabase::new();
        let mut payments = KRelation::new(["person", "amount"]);
        for (person, amount) in [("ada", 3i64), ("bo", 5), ("cy", -2)] {
            let p = db.intern(person);
            payments.insert(
                Tuple::new([
                    ("person", Value::str(person)),
                    ("amount", Value::Int(amount)),
                ]),
                Expr::Var(p),
            );
        }
        db.insert_table("payments", payments);
        db
    }

    #[test]
    fn count_release_has_the_right_true_answer() {
        let mut session = SqlSession::new(db(), MechanismParams::paper_edge_privacy(1.0));
        let release = session
            .query_scalar("SELECT COUNT(*) FROM payments")
            .unwrap();
        assert_eq!(release.true_answer, 3.0);
        assert!(release.noisy_answer.is_finite());
        assert!((release.epsilon_spent - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sum_aggregates_weights() {
        let mut session = SqlSession::new(db(), MechanismParams::paper_edge_privacy(1.0));
        let release = session
            .query_scalar("SELECT SUM(amount) FROM payments WHERE amount > 0")
            .unwrap();
        assert_eq!(release.true_answer, 8.0);
    }

    #[test]
    fn negative_sum_weights_are_a_sql_error_not_a_panic() {
        let mut session = SqlSession::new(db(), MechanismParams::paper_edge_privacy(1.0));
        let err = session
            .query_scalar("SELECT SUM(amount) FROM payments")
            .unwrap_err();
        match err {
            SqlError::BadAggregate { message, .. } => {
                assert!(message.contains("negative"), "{message}")
            }
            other => panic!("expected BadAggregate, got {other:?}"),
        }
    }

    #[test]
    fn sum_over_strings_is_a_sql_error() {
        let mut session = SqlSession::new(db(), MechanismParams::paper_edge_privacy(1.0));
        let err = session
            .query_scalar("SELECT SUM(person) FROM payments")
            .unwrap_err();
        assert!(matches!(err, SqlError::BadAggregate { .. }));
    }

    #[test]
    fn releases_are_deterministic_per_seed() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let a = SqlSession::with_seed(db(), params, 1)
            .query_scalar("SELECT COUNT(*) FROM payments")
            .unwrap();
        let b = SqlSession::with_seed(db(), params, 1)
            .query_scalar("SELECT COUNT(*) FROM payments")
            .unwrap();
        let c = SqlSession::with_seed(db(), params, 2)
            .query_scalar("SELECT COUNT(*) FROM payments")
            .unwrap();
        assert_eq!(a.noisy_answer, b.noisy_answer);
        assert_ne!(a.noisy_answer, c.noisy_answer);
    }

    #[test]
    fn query_batch_matches_itself_across_parallelism_settings() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let sqls = [
            "SELECT COUNT(*) FROM payments",
            "SELECT SUM(amount) FROM payments WHERE amount > 0",
            "SELECT COUNT(*) FROM payments WHERE amount > 4",
        ];
        let serial = SqlSession::with_seed(db(), params, 7)
            .query_batch(&sqls)
            .unwrap();
        let parallel = SqlSession::with_seed(
            db(),
            params.with_parallelism(rmdp_core::Parallelism::Threads(3)),
            7,
        )
        .query_batch(&sqls)
        .unwrap();
        assert_eq!(serial.len(), 3);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.noisy_answer, b.noisy_answer);
            assert_eq!(a.true_answer, b.true_answer);
        }
        assert_eq!(serial[0].true_answer, 3.0);
        assert_eq!(serial[1].true_answer, 8.0);
        assert_eq!(serial[2].true_answer, 1.0);
    }

    #[test]
    fn query_batch_fails_whole_batch_on_a_bad_query_without_spending() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let mut session =
            SqlSession::new(db(), params).with_budget(rmdp_noise::PrivacyBudget::pure(10.0));
        let err = session
            .query_batch(&["SELECT COUNT(*) FROM payments", "SELECT * FROM nowhere"])
            .unwrap_err();
        assert!(
            matches!(
                err,
                SqlError::Parse { .. }
                    | SqlError::Unsupported { .. }
                    | SqlError::UnknownTable { .. }
            ),
            "{err:?}"
        );
        assert_eq!(session.remaining_budget().unwrap().epsilon, 10.0);
    }

    #[test]
    fn over_budget_batch_is_refused_without_consuming_epsilon() {
        let params = MechanismParams::paper_edge_privacy(0.6);
        let mut session =
            SqlSession::new(db(), params).with_budget(rmdp_noise::PrivacyBudget::pure(1.0));
        // Two releases need 1.2ε but only 1.0ε exists: refused atomically.
        let err = session
            .query_batch(&[
                "SELECT COUNT(*) FROM payments",
                "SELECT COUNT(*) FROM payments",
            ])
            .unwrap_err();
        match err {
            SqlError::BudgetExhausted(e) => {
                assert!((e.requested.epsilon - 1.2).abs() < 1e-12);
                assert!((e.remaining.epsilon - 1.0).abs() < 1e-12);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        assert_eq!(session.remaining_budget().unwrap().epsilon, 1.0);

        // A batch that fits goes through and debits exactly its cost.
        let releases = session
            .query_batch(&["SELECT COUNT(*) FROM payments"])
            .unwrap();
        assert_eq!(releases.len(), 1);
        assert!((session.remaining_budget().unwrap().epsilon - 0.4).abs() < 1e-12);

        // And now the single-query path is over budget too.
        let err = session
            .query_scalar("SELECT COUNT(*) FROM payments")
            .unwrap_err();
        assert!(matches!(err, SqlError::BudgetExhausted(_)));
        assert!((session.remaining_budget().unwrap().epsilon - 0.4).abs() < 1e-12);
    }

    #[test]
    fn invalid_params_do_not_drain_the_budget() {
        // Parameter validation is data-independent, so it must run before
        // the debit: a misconfigured session keeps its full budget.
        let params = MechanismParams::new(0.0, 0.5, 0.1, 1.0, 0.5);
        let mut session =
            SqlSession::new(db(), params).with_budget(rmdp_noise::PrivacyBudget::pure(1.0));
        for _ in 0..3 {
            let err = session
                .query_scalar("SELECT COUNT(*) FROM payments")
                .unwrap_err();
            assert!(matches!(err, SqlError::Mechanism(_)));
        }
        let err = session
            .query_batch(&["SELECT COUNT(*) FROM payments"])
            .unwrap_err();
        assert!(matches!(err, SqlError::Mechanism(_)));
        assert_eq!(session.remaining_budget().unwrap().epsilon, 1.0);
    }

    #[test]
    fn failing_query_leaves_the_budget_unchanged() {
        // SUM over a column with a negative value fails *after* admission
        // (the failure is data-dependent) but released nothing, so the
        // budget must be untouched.
        let params = MechanismParams::paper_edge_privacy(0.5);
        let mut session =
            SqlSession::new(db(), params).with_budget(rmdp_noise::PrivacyBudget::pure(2.0));
        let err = session
            .query_scalar("SELECT SUM(amount) FROM payments")
            .unwrap_err();
        assert!(matches!(err, SqlError::BadAggregate { .. }));
        assert_eq!(session.remaining_budget().unwrap().epsilon, 2.0);

        // A batch failing on its last query consumes nothing either.
        let err = session
            .query_batch(&[
                "SELECT COUNT(*) FROM payments",
                "SELECT SUM(amount) FROM payments",
            ])
            .unwrap_err();
        assert!(matches!(err, SqlError::BadAggregate { .. }));
        assert_eq!(session.remaining_budget().unwrap().epsilon, 2.0);

        // A succeeding query then debits exactly once.
        session
            .query_scalar("SELECT COUNT(*) FROM payments")
            .unwrap();
        assert!((session.remaining_budget().unwrap().epsilon - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cached_sessions_release_bit_identically_to_uncached_ones() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let queries = [
            "SELECT COUNT(*) FROM payments",
            "SELECT COUNT(*) FROM payments WHERE amount > 0",
            "SELECT COUNT(*) FROM payments", // repeat: served from cache
            "SELECT COUNT(*) FROM payments",
        ];
        let mut plain = SqlSession::with_seed(db(), params, 11);
        let mut cached = SqlSession::with_seed(db(), params, 11).with_cache_capacity(16);
        for sql in queries {
            let a = plain.query_scalar(sql).unwrap();
            let b = cached.query_scalar(sql).unwrap();
            assert_eq!(a.noisy_answer, b.noisy_answer, "{sql}");
            assert_eq!(a.delta_hat, b.delta_hat, "{sql}");
            assert_eq!(a.x, b.x, "{sql}");
        }
        let stats = cached.cache_stats().unwrap();
        assert_eq!(stats.misses, 2, "two distinct shapes");
        assert_eq!(stats.hits, 2, "two repeats");
        assert_eq!(stats.insertions, 2);
    }

    #[test]
    fn alias_renames_hit_the_cache() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let mut session = SqlSession::new(db(), params).with_cache_capacity(8);
        session
            .query_scalar("SELECT COUNT(*) FROM payments p WHERE p.amount > 0")
            .unwrap();
        session
            .query_scalar("SELECT COUNT(*) FROM payments q WHERE q.amount > 0")
            .unwrap();
        let stats = session.cache_stats().unwrap();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn batches_share_the_cache_across_parallelism_settings() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let sqls = [
            "SELECT COUNT(*) FROM payments",
            "SELECT COUNT(*) FROM payments",
            "SELECT COUNT(*) FROM payments WHERE amount > 0",
        ];
        let baseline = SqlSession::with_seed(db(), params, 3)
            .query_batch(&sqls)
            .unwrap();
        for parallelism in [Parallelism::Serial, Parallelism::Threads(3)] {
            let cache = rmdp_core::SequenceCache::shared(8);
            let mut session = SqlSession::with_seed(db(), params.with_parallelism(parallelism), 3)
                .with_sequence_cache(Arc::clone(&cache));
            let releases = session.query_batch(&sqls).unwrap();
            for (a, b) in baseline.iter().zip(&releases) {
                assert_eq!(a.noisy_answer, b.noisy_answer, "{parallelism}");
                assert_eq!(a.true_answer, b.true_answer);
            }
            assert_eq!(cache.len(), 2, "two distinct shapes cached");
            // A follow-up batch is served entirely from the cache.
            let before = cache.stats().misses;
            session.query_batch(&sqls).unwrap();
            assert_eq!(cache.stats().misses, before, "{parallelism}");
        }
    }

    #[test]
    fn mutating_the_database_between_sessions_invalidates_cache_reuse() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let cache = rmdp_core::SequenceCache::shared(8);
        let base = db();
        let mut changed = base.clone();
        changed.insert_table("payments", KRelation::new(["person", "amount"]));

        let mut s1 = SqlSession::new(base, params).with_sequence_cache(Arc::clone(&cache));
        s1.query_scalar("SELECT COUNT(*) FROM payments").unwrap();
        // Different database value (clone has a fresh identity, and it was
        // mutated): the same SQL must miss, not reuse s1's sequences.
        let mut s2 = SqlSession::new(changed, params).with_sequence_cache(Arc::clone(&cache));
        let release = s2.query_scalar("SELECT COUNT(*) FROM payments").unwrap();
        assert_eq!(release.true_answer, 0.0, "empty table after mutation");
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 2);
    }

    /// Two rule-annotated tables built entirely through `apply_delta`, so
    /// later ingests by known owners are intern-only.
    fn delta_db() -> AnnotatedDatabase {
        use rmdp_krelation::AnnotationRule;
        let mut db = AnnotatedDatabase::new();
        db.insert_table("visits", KRelation::new(["person", "place"]));
        db.insert_table("residents", KRelation::new(["person", "city"]));
        db.declare_annotation_rule("visits", AnnotationRule::OwnerColumn("person".to_owned()));
        db.declare_annotation_rule(
            "residents",
            AnnotationRule::OwnerColumn("person".to_owned()),
        );
        db.apply_delta(
            "visits",
            [
                Tuple::new([
                    ("person", Value::str("ada")),
                    ("place", Value::str("museum")),
                ]),
                Tuple::new([("person", Value::str("bo")), ("place", Value::str("cafe"))]),
            ],
        )
        .unwrap();
        db.apply_delta(
            "residents",
            [
                Tuple::new([("person", Value::str("ada")), ("city", Value::str("rome"))]),
                Tuple::new([("person", Value::str("bo")), ("city", Value::str("oslo"))]),
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn snapshot_delta_keeps_untouched_entries_and_warm_refreshes_the_rest() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let cache = rmdp_core::SequenceCache::shared(8);
        let snapshot = CatalogSnapshot::shared(delta_db(), params);
        const VISITS: &str = "SELECT COUNT(*) FROM visits";
        const RESIDENTS: &str = "SELECT COUNT(*) FROM residents";

        // Prime both entries under snapshot version 0.
        let mut s1 =
            SqlSession::over(Arc::clone(&snapshot), 7).with_sequence_cache(Arc::clone(&cache));
        let v_before = s1.query_scalar(VISITS).unwrap();
        s1.query_scalar(RESIDENTS).unwrap();
        assert_eq!(cache.stats().misses, 2);

        // Ingest one row (known owner) into `visits`: a new snapshot link;
        // the parent stays untouched and usable.
        let next = snapshot
            .with_delta(
                "visits",
                [Tuple::new([
                    ("person", Value::str("ada")),
                    ("place", Value::str("park")),
                ])],
            )
            .unwrap();
        assert_eq!(snapshot.version(), 0);
        assert_eq!(next.version(), 1);
        assert_eq!(snapshot.database().table("visits").unwrap().len(), 2);
        assert_eq!(next.database().table("visits").unwrap().len(), 3);

        // Sweep the cache against the new snapshot's stamps: exactly the
        // visits entry is stale; it parks as a refresh base.
        let swept = cache.purge_stale(&next.database().current_epoch_stamps());
        assert_eq!(swept, 1);
        assert_eq!(cache.stats().evictions_stale, 1);
        assert_eq!(cache.banked_refresh_bases(), 1);

        // In-flight sessions over the *old* snapshot keep releasing against
        // the data they were admitted under.
        let held = s1.query_scalar(VISITS).unwrap();
        assert_eq!(held.true_answer, v_before.true_answer);

        // Over the new snapshot: the untouched table still hits, and the
        // touched table's miss claims the parked base (warm refresh).
        let mut s2 = SqlSession::over(Arc::clone(&next), 7).with_sequence_cache(Arc::clone(&cache));
        let hits_before = cache.stats().hits;
        s2.query_scalar(RESIDENTS).unwrap();
        assert_eq!(cache.stats().hits, hits_before + 1);
        let warm = s2.query_scalar(VISITS).unwrap();
        assert_eq!(warm.true_answer, 3.0);
        assert_eq!(cache.banked_refresh_bases(), 0, "base was claimed");

        // Bit-identity: a cold session over the new snapshot (fresh empty
        // cache, same seed, same query order) releases identically.
        let mut cold = SqlSession::over(Arc::clone(&next), 7)
            .with_sequence_cache(rmdp_core::SequenceCache::shared(8));
        cold.query_scalar(RESIDENTS).unwrap();
        let cold_visits = cold.query_scalar(VISITS).unwrap();
        assert_eq!(warm.noisy_answer, cold_visits.noisy_answer);
        assert_eq!(warm.true_answer, cold_visits.true_answer);
    }

    /// Visits with a declared public domain over `place`, including a key
    /// (`park`) the data never mentions.
    fn grouped_db() -> AnnotatedDatabase {
        let mut db = AnnotatedDatabase::new();
        let mut visits = KRelation::new(["person", "place"]);
        for (person, place) in [
            ("ada", "museum"),
            ("bo", "museum"),
            ("bo", "cafe"),
            ("cy", "cafe"),
            ("dee", "museum"),
        ] {
            let p = db.intern(person);
            visits.insert(
                Tuple::new([("person", Value::str(person)), ("place", Value::str(place))]),
                Expr::Var(p),
            );
        }
        db.insert_table("visits", visits);
        db.declare_public_domain(
            "visits",
            "place",
            [Value::str("museum"), Value::str("cafe"), Value::str("park")],
        );
        db
    }

    const GROUPED_SQL: &str = "SELECT place, COUNT(*) FROM visits GROUP BY place";

    #[test]
    fn grouped_release_covers_the_declared_domain_with_split_budget() {
        let params = MechanismParams::paper_edge_privacy(1.2);
        let mut session =
            SqlSession::new(grouped_db(), params).with_budget(rmdp_noise::PrivacyBudget::pure(2.0));
        let report = session.query_grouped(GROUPED_SQL).unwrap();

        assert_eq!(report.key_column, "place");
        assert_eq!(report.len(), 3, "every declared key releases");
        assert_eq!(report.policy, GroupBudgetPolicy::SplitEvenly);
        // Declared-domain order, true answers per key — absent keys release 0.
        let keys: Vec<&Value> = report.groups.iter().map(|g| &g.key).collect();
        assert_eq!(
            keys,
            [
                &Value::str("museum"),
                &Value::str("cafe"),
                &Value::str("park")
            ]
        );
        assert_eq!(report.get(&Value::str("museum")).unwrap().true_answer, 3.0);
        assert_eq!(report.get(&Value::str("cafe")).unwrap().true_answer, 2.0);
        assert_eq!(report.get(&Value::str("park")).unwrap().true_answer, 0.0);
        assert!(report.get(&Value::str("zoo")).is_none());
        for g in &report.groups {
            assert!(g.release.noisy_answer.is_finite());
            assert!(
                (g.release.epsilon_spent - 0.4).abs() < 1e-12,
                "ε/k per group"
            );
        }
        // The whole report is priced like one release under SplitEvenly.
        assert!((report.per_group_epsilon - 0.4).abs() < 1e-12);
        assert!((report.epsilon_spent - 1.2).abs() < 1e-12);
        assert!((session.remaining_budget().unwrap().epsilon - 0.8).abs() < 1e-12);
    }

    #[test]
    fn per_group_policy_prices_the_report_at_k_times_epsilon() {
        let params = MechanismParams::paper_edge_privacy(0.5);
        let mut session = SqlSession::new(grouped_db(), params)
            .with_group_policy(GroupBudgetPolicy::PerGroup)
            .with_budget(rmdp_noise::PrivacyBudget::pure(2.0));
        let report = session.query_grouped(GROUPED_SQL).unwrap();
        assert!((report.per_group_epsilon - 0.5).abs() < 1e-12);
        assert!((report.epsilon_spent - 1.5).abs() < 1e-12);
        for g in &report.groups {
            assert!((g.release.epsilon_spent - 0.5).abs() < 1e-12);
        }
        assert!((session.remaining_budget().unwrap().epsilon - 0.5).abs() < 1e-12);

        // A second report needs another 1.5ε but only 0.5ε remains: refused
        // atomically, consuming nothing.
        let err = session.query_grouped(GROUPED_SQL).unwrap_err();
        match err {
            SqlError::BudgetExhausted(e) => {
                assert!((e.requested.epsilon - 1.5).abs() < 1e-12);
                assert!((e.remaining.epsilon - 0.5).abs() < 1e-12);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        assert!((session.remaining_budget().unwrap().epsilon - 0.5).abs() < 1e-12);
    }

    #[test]
    fn grouped_releases_are_bit_identical_across_parallelism_and_caching() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let baseline = SqlSession::with_seed(grouped_db(), params, 31)
            .query_grouped(GROUPED_SQL)
            .unwrap();
        for parallelism in [Parallelism::Threads(3), Parallelism::Auto] {
            let report =
                SqlSession::with_seed(grouped_db(), params.with_parallelism(parallelism), 31)
                    .query_grouped(GROUPED_SQL)
                    .unwrap();
            for (a, b) in baseline.groups.iter().zip(&report.groups) {
                assert_eq!(a.key, b.key, "{parallelism}");
                assert_eq!(
                    a.release.noisy_answer.to_bits(),
                    b.release.noisy_answer.to_bits(),
                    "{parallelism}"
                );
                assert_eq!(a.release.delta_hat.to_bits(), b.release.delta_hat.to_bits());
            }
        }
        let cached = SqlSession::with_seed(grouped_db(), params, 31)
            .with_cache_capacity(8)
            .query_grouped(GROUPED_SQL)
            .unwrap();
        for (a, b) in baseline.groups.iter().zip(&cached.groups) {
            assert_eq!(
                a.release.noisy_answer.to_bits(),
                b.release.noisy_answer.to_bits()
            );
        }
    }

    #[test]
    fn per_key_releases_are_invariant_under_domain_order() {
        // The per-group seed binds to the key value, not the domain slot:
        // re-declaring the domain in another order permutes the report rows
        // but must not change any key's released value.
        let params = MechanismParams::paper_edge_privacy(1.0);
        let forward = SqlSession::with_seed(grouped_db(), params, 7)
            .query_grouped(GROUPED_SQL)
            .unwrap();
        let mut db = grouped_db();
        db.declare_public_domain(
            "visits",
            "place",
            [Value::str("park"), Value::str("cafe"), Value::str("museum")],
        );
        let reversed = SqlSession::with_seed(db, params, 7)
            .query_grouped(GROUPED_SQL)
            .unwrap();
        assert_eq!(
            reversed.groups[0].key,
            Value::str("park"),
            "report rows follow the declared order"
        );
        for g in &forward.groups {
            let other = reversed.get(&g.key).unwrap();
            assert_eq!(
                g.release.noisy_answer.to_bits(),
                other.noisy_answer.to_bits()
            );
            assert_eq!(g.release.delta_hat.to_bits(), other.delta_hat.to_bits());
        }
    }

    #[test]
    fn grouped_reports_share_cache_entries_with_scalar_traffic() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let cache = rmdp_core::SequenceCache::shared(16);
        let mut session =
            SqlSession::new(grouped_db(), params).with_sequence_cache(Arc::clone(&cache));

        // Scalar queries warm two of the three group entries…
        session
            .query_scalar("SELECT COUNT(*) FROM visits WHERE place = 'museum'")
            .unwrap();
        session
            .query_scalar("SELECT COUNT(*) FROM visits WHERE place = 'cafe'")
            .unwrap();
        assert_eq!(cache.stats().misses, 2);

        // …so the grouped report misses only on 'park', and a repeat of the
        // report is served entirely from the cache.
        session.query_grouped(GROUPED_SQL).unwrap();
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().hits, 2);
        session.query_grouped(GROUPED_SQL).unwrap();
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().hits, 5);
    }

    #[test]
    fn grouped_refusals_and_shape_errors_carry_spans_and_consume_nothing() {
        let params = MechanismParams::paper_edge_privacy(1.0);

        // Undeclared key column: planner error pointing at the key.
        let sql = "SELECT person, COUNT(*) FROM visits GROUP BY person";
        let mut session =
            SqlSession::new(grouped_db(), params).with_budget(rmdp_noise::PrivacyBudget::pure(1.0));
        match session.query(sql).unwrap_err() {
            SqlError::UndeclaredGroupDomain {
                column,
                table,
                span,
            } => {
                assert_eq!(column, "person");
                assert_eq!(table, "visits");
                assert_eq!(span.slice(sql), "person");
            }
            other => panic!("expected UndeclaredGroupDomain, got {other:?}"),
        }
        assert_eq!(session.remaining_budget().unwrap().epsilon, 1.0);

        // Mismatched SELECT/GROUP BY keys.
        let sql = "SELECT person, COUNT(*) FROM visits GROUP BY place";
        assert!(matches!(
            session.query(sql).unwrap_err(),
            SqlError::GroupKeyMismatch { .. }
        ));

        // An empty declared domain is as good as none.
        let mut empty = grouped_db();
        empty.declare_public_domain("visits", "place", []);
        let mut empty_session = SqlSession::new(empty, params);
        assert!(matches!(
            empty_session.query_grouped(GROUPED_SQL).unwrap_err(),
            SqlError::UndeclaredGroupDomain { .. }
        ));

        // Shape errors: grouped SQL in scalar entry points and vice versa.
        let err = session.query_scalar(GROUPED_SQL).unwrap_err();
        assert!(matches!(err, SqlError::QueryShape { .. }));
        assert!(err.span().is_some());
        assert!(matches!(
            session.query_batch(&[GROUPED_SQL]).unwrap_err(),
            SqlError::QueryShape { .. }
        ));
        assert!(matches!(
            session
                .query_grouped("SELECT COUNT(*) FROM visits")
                .unwrap_err(),
            SqlError::QueryShape { .. }
        ));
        assert!(matches!(
            session.evaluate(GROUPED_SQL).unwrap_err(),
            SqlError::QueryShape { .. }
        ));
        assert_eq!(session.remaining_budget().unwrap().epsilon, 1.0);
    }

    #[test]
    fn query_dispatches_on_the_plan_shape() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let mut session = SqlSession::new(grouped_db(), params);
        match session.query("SELECT COUNT(*) FROM visits").unwrap() {
            QueryOutput::Scalar(release) => assert_eq!(release.true_answer, 5.0),
            other => panic!("scalar SQL released {other:?}"),
        }
        match session.query(GROUPED_SQL).unwrap() {
            QueryOutput::Grouped(report) => assert_eq!(report.len(), 3),
            other => panic!("grouped SQL released {other:?}"),
        }
        match session
            .query("EXPLAIN ANALYZE SELECT COUNT(*) FROM visits")
            .unwrap()
        {
            QueryOutput::Explained(traced) => {
                assert!(matches!(traced.output, QueryOutput::Scalar(_)));
                assert!(traced.trace.is_consistent());
            }
            other => panic!("EXPLAIN ANALYZE released {other:?}"),
        }
        // And the convenience accessors agree.
        assert!(session.query(GROUPED_SQL).unwrap().scalar().is_none());
        assert!(session.query(GROUPED_SQL).unwrap().grouped().is_some());
    }

    #[test]
    fn explain_without_analyze_is_rejected() {
        let mut session = SqlSession::new(db(), MechanismParams::paper_edge_privacy(1.0));
        let err = session
            .query("EXPLAIN SELECT COUNT(*) FROM payments")
            .unwrap_err();
        assert!(matches!(err, SqlError::Unsupported { .. }), "{err}");
        assert!(err.to_string().contains("EXPLAIN ANALYZE"), "{err}");
    }

    #[test]
    fn traced_releases_are_bit_identical_to_untraced() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let sql = "SELECT COUNT(*) FROM payments";
        let mut plain_session = SqlSession::with_seed(db(), params, 7);
        let plain = plain_session.query_scalar(sql).unwrap();
        let mut traced_session = SqlSession::with_seed(db(), params, 7);
        let traced = traced_session.query_traced(sql).unwrap();
        let release = traced.output.scalar().unwrap();
        assert_eq!(release.noisy_answer.to_bits(), plain.noisy_answer.to_bits());
        assert_eq!(release.delta_hat.to_bits(), plain.delta_hat.to_bits());
        assert!(traced.trace.is_consistent());
        assert_eq!(traced.trace.epsilon_spent, params.total_epsilon());
    }

    #[test]
    fn traced_hit_and_miss_paths_populate_the_trace() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let mut session = SqlSession::with_seed(db(), params, 11).with_cache_capacity(8);
        let sql = "SELECT COUNT(*) FROM payments";

        let miss = session.query_traced(sql).unwrap().trace;
        assert_eq!(miss.cache, CacheOutcome::Miss);
        assert_eq!((miss.cache_hits, miss.cache_misses), (0, 1));
        assert!(miss.fingerprint.is_some());
        assert!(miss.lp.h_solves > 0 && miss.lp.g_solves > 0);
        assert!(miss.is_consistent());

        let hit = session.query_traced(sql).unwrap().trace;
        assert_eq!(hit.cache, CacheOutcome::Hit);
        assert_eq!((hit.cache_hits, hit.cache_misses), (1, 0));
        assert_eq!(hit.fingerprint, miss.fingerprint);
        assert_eq!(hit.lp.h_solves, 0, "a hit re-solves nothing");
        assert!(hit.is_consistent());

        // Both paths run (and time) all seven pipeline stages: the hit
        // still parses, plans, fingerprints, probes the cache, walks the
        // frozen ladders, draws noise and debits the budget.
        for trace in [&miss, &hit] {
            for stage in Stage::ALL {
                assert!(
                    trace.stages.iter().any(|span| span.stage == stage),
                    "{} missing from {:?} trace",
                    stage.name(),
                    trace.cache
                );
            }
        }
    }

    #[test]
    fn grouped_traces_report_the_budget_split() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let mut session = SqlSession::with_seed(grouped_db(), params, 5);
        let traced = session.query_traced(GROUPED_SQL).unwrap();
        assert!(traced.trace.is_consistent());
        let split = traced.trace.group_split.as_ref().unwrap();
        assert_eq!(split.groups, 3);
        assert_eq!(split.policy, "split-evenly");
        assert!((split.per_group_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(traced.trace.noise.len(), 3);
        assert!(traced
            .trace
            .noise
            .iter()
            .all(|n| n.log_scale.is_finite() && n.answer_scale > 0.0));
        assert_eq!(traced.output.grouped().unwrap().len(), 3);
    }

    #[test]
    fn session_metrics_cover_budget_lp_and_cache() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let metrics = Arc::new(MetricsRegistry::new());
        let mut session = SqlSession::with_seed(db(), params, 3)
            .with_cache_capacity(4)
            .with_budget(PrivacyBudget {
                epsilon: 2.5,
                delta: 0.0,
            })
            .with_metrics(Arc::clone(&metrics));
        let sql = "SELECT COUNT(*) FROM payments";
        session.query_scalar(sql).unwrap();
        session.query_scalar(sql).unwrap();
        // The third release would overdraw the 2.5ε budget.
        assert!(session.query_scalar(sql).is_err());

        let snap = metrics.snapshot();
        assert_eq!(snap.counter("budget.admitted"), Some(2));
        assert_eq!(snap.counter("budget.debited"), Some(2));
        assert_eq!(snap.counter("budget.refused"), Some(1));
        assert_eq!(snap.sum("budget.debited_epsilon"), Some(2.0));
        assert_eq!(snap.sum("budget.refused_epsilon"), Some(1.0));
        assert_eq!(snap.counter("sql.releases"), Some(2));
        assert_eq!(snap.counter("cache.hits"), Some(1));
        assert_eq!(snap.counter("cache.misses"), Some(1));
        assert!(snap.counter("lp.h_solves").unwrap() > 0);
        assert!(session.lp_totals().h_solves > 0);
        assert!(snap.counter("lp.basis_updates").unwrap() > 0);
        assert!(snap.gauge("lp.peak_fill_in_nnz").unwrap() > 0.0);
        assert_eq!(
            snap.gauge("lp.peak_fill_in_nnz").unwrap(),
            session.lp_totals().fill_in_nnz as f64,
            "the gauge mirrors the session peak"
        );

        // The snapshot JSON round-trips.
        let json = snap.to_json();
        assert_eq!(
            rmdp_observe::MetricsSnapshot::parse_json(&json).unwrap(),
            snap
        );
    }

    #[test]
    fn evaluate_grouped_returns_per_key_relations() {
        let session = SqlSession::new(grouped_db(), MechanismParams::paper_edge_privacy(1.0));
        let groups = session.evaluate_grouped(GROUPED_SQL).unwrap();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].0, Value::str("museum"));
        assert_eq!(groups[0].1.len(), 3);
        assert_eq!(groups[2].0, Value::str("park"));
        assert!(groups[2].1.is_empty());
        assert!(matches!(
            session.evaluate_grouped("SELECT COUNT(*) FROM visits"),
            Err(SqlError::QueryShape { .. })
        ));
    }

    #[test]
    fn reading_the_universe_does_not_evict_cached_sequences() {
        // The epoch-bump bugfix, observed end to end: lookups through
        // `universe()` and re-interning existing participants leave the
        // fingerprint epoch — and therefore the cache hit-rate — unchanged.
        let params = MechanismParams::paper_edge_privacy(1.0);
        let cache = rmdp_core::SequenceCache::shared(8);
        let mut db = grouped_db();
        let mut session =
            SqlSession::new(db.clone(), params).with_sequence_cache(Arc::clone(&cache));
        session.query_scalar("SELECT COUNT(*) FROM visits").unwrap();
        assert_eq!(cache.stats().misses, 1);

        // Reads against the session's own database handle.
        assert!(session.database().universe().get("ada").is_some());
        let _ = session.database().universe().len();
        session.query_scalar("SELECT COUNT(*) FROM visits").unwrap();
        assert_eq!(cache.stats().misses, 1, "reads must not invalidate");
        assert_eq!(cache.stats().hits, 1);

        // Re-interning an existing participant is also a read; a genuinely
        // new participant is a mutation and must invalidate.
        let epoch = db.annotation_epoch();
        db.intern("ada");
        assert_eq!(db.annotation_epoch(), epoch);
        db.intern("newcomer");
        assert!(db.annotation_epoch() > epoch);
    }

    #[test]
    fn unmetered_sessions_report_no_remaining_budget() {
        let session = SqlSession::new(db(), MechanismParams::paper_edge_privacy(1.0));
        assert!(session.remaining_budget().is_none());
    }

    #[test]
    fn invalid_params_surface_as_mechanism_errors() {
        let params = MechanismParams::new(0.0, 0.5, 0.1, 1.0, 0.5);
        let mut session = SqlSession::new(db(), params);
        let err = session
            .query_scalar("SELECT COUNT(*) FROM payments")
            .unwrap_err();
        assert!(matches!(err, SqlError::Mechanism(_)));
    }

    #[test]
    fn query_batch_rejects_grouped_plans_with_a_spanned_shape_error() {
        // The scalar-only batch stays scalar-only: a GROUP BY item is a
        // shape error pointing at the grouping key, never a silent scalar.
        let params = MechanismParams::paper_edge_privacy(1.0);
        let mut session =
            SqlSession::new(grouped_db(), params).with_budget(rmdp_noise::PrivacyBudget::pure(5.0));
        let err = session
            .query_batch(&["SELECT COUNT(*) FROM visits", GROUPED_SQL])
            .unwrap_err();
        match err {
            SqlError::QueryShape { message, span } => {
                assert!(message.contains("query_batch"), "{message}");
                assert!(span.start < span.end, "span must point at the key");
            }
            other => panic!("expected QueryShape, got {other:?}"),
        }
        assert_eq!(session.remaining_budget().unwrap().epsilon, 5.0);
    }

    #[test]
    fn mixed_batch_releases_scalars_and_grouped_reports_atomically() {
        // SplitEvenly prices the grouped item like one release, so the
        // batch costs 2·(ε₁+ε₂) = 2.0ε of the 5ε budget.
        let params = MechanismParams::paper_edge_privacy(1.0);
        let mut session =
            SqlSession::new(grouped_db(), params).with_budget(rmdp_noise::PrivacyBudget::pure(5.0));
        let releases = session
            .query_batch_mixed(&["SELECT COUNT(*) FROM visits", GROUPED_SQL])
            .unwrap();
        assert_eq!(releases.len(), 2);
        match &releases[0] {
            BatchRelease::Scalar(r) => assert_eq!(r.true_answer, 5.0),
            other => panic!("expected scalar, got {other:?}"),
        }
        match &releases[1] {
            BatchRelease::Grouped(report) => {
                assert_eq!(report.len(), 3, "every declared key releases");
                assert_eq!(report.get(&Value::str("museum")).unwrap().true_answer, 3.0);
                assert_eq!(report.get(&Value::str("park")).unwrap().true_answer, 0.0);
                assert!((report.epsilon_spent - 1.0).abs() < 1e-12);
            }
            other => panic!("expected grouped, got {other:?}"),
        }
        assert!((session.remaining_budget().unwrap().epsilon - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_batch_is_bit_identical_across_parallelism_and_caching() {
        let params = MechanismParams::paper_edge_privacy(1.0);
        let sqls = [
            "SELECT COUNT(*) FROM visits",
            GROUPED_SQL,
            "SELECT COUNT(*) FROM visits WHERE place = 'cafe'",
        ];
        let runs = [
            SqlSession::with_seed(grouped_db(), params, 23)
                .query_batch_mixed(&sqls)
                .unwrap(),
            SqlSession::with_seed(
                grouped_db(),
                params.with_parallelism(rmdp_core::Parallelism::Threads(4)),
                23,
            )
            .query_batch_mixed(&sqls)
            .unwrap(),
            SqlSession::with_seed(grouped_db(), params, 23)
                .with_sequence_cache(rmdp_core::SequenceCache::shared(16))
                .query_batch_mixed(&sqls)
                .unwrap(),
        ];
        for run in &runs[1..] {
            for (a, b) in runs[0].iter().zip(run) {
                match (a, b) {
                    (BatchRelease::Scalar(x), BatchRelease::Scalar(y)) => {
                        assert_eq!(x.noisy_answer, y.noisy_answer);
                    }
                    (BatchRelease::Grouped(x), BatchRelease::Grouped(y)) => {
                        for (gx, gy) in x.groups.iter().zip(&y.groups) {
                            assert_eq!(gx.key, gy.key);
                            assert_eq!(gx.release.noisy_answer, gy.release.noisy_answer);
                        }
                    }
                    other => panic!("shape mismatch across runs: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn over_budget_mixed_batch_is_refused_atomically() {
        // PerGroup prices the grouped item at k·ε = 3ε, so scalar + grouped
        // needs 4ε against a 3.5ε budget: refused, nothing spent.
        let params = MechanismParams::paper_edge_privacy(1.0);
        let mut session = SqlSession::new(grouped_db(), params)
            .with_group_policy(GroupBudgetPolicy::PerGroup)
            .with_budget(rmdp_noise::PrivacyBudget::pure(3.5));
        let err = session
            .query_batch_mixed(&["SELECT COUNT(*) FROM visits", GROUPED_SQL])
            .unwrap_err();
        match err {
            SqlError::BudgetExhausted(e) => {
                assert!((e.requested.epsilon - 4.0).abs() < 1e-12);
                assert!((e.remaining.epsilon - 3.5).abs() < 1e-12);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        assert_eq!(session.remaining_budget().unwrap().epsilon, 3.5);
    }
}
