//! The immutable, shareable half of a SQL session.
//!
//! [`CatalogSnapshot`] bundles everything about a query frontend that never
//! changes while queries run: the annotated database (tables, participant
//! universe, declared public key domains — the *catalog*), and the default
//! [`MechanismParams`] releases are priced and noised with. A snapshot is
//! deliberately **immutable**: it hands out only `&` access, so an
//! `Arc<CatalogSnapshot>` can be shared by any number of concurrent
//! sessions, worker threads, or server tenants without locking — the split
//! that turns the library-level [`SqlSession`](crate::SqlSession) into a
//! long-lived multi-tenant service (`rmdp-server`).
//!
//! Everything *mutable* about query execution — the noise RNG, the budget
//! accountant, LP-work totals — stays in the per-session half
//! ([`SqlSession`](crate::SqlSession)), which is now a thin, cheap wrapper:
//! minting one session per request over a shared snapshot costs two `Arc`
//! clones and an RNG seed.
//!
//! Because the snapshot owns the [`AnnotatedDatabase`] *value* (not a copy
//! per session), every session sees the same database `instance_id` and
//! epoch stamps — which is exactly what makes one shared
//! [`SequenceCache`](rmdp_core::SequenceCache) sound across tenants: plan
//! fingerprints embed that identity, so entries computed by one tenant are
//! valid for every other tenant of the same snapshot by construction.
//!
//! ## Versioned snapshot chains
//!
//! A snapshot is immutable, but the *service* over it need not be frozen:
//! [`CatalogSnapshot::with_delta`] forks a **new** snapshot with rows
//! appended to one table, sharing every untouched table with its parent
//! copy-on-write (the same `Arc`'d relations, the same epoch stamps). The
//! parent stays fully usable — in-flight sessions holding it keep
//! releasing against exactly the data they were admitted under — while a
//! server atomically swaps its serving handle to the child. Each fork
//! increments [`version`](CatalogSnapshot::version), giving replay logs a
//! stable name for "the database state this release saw".

use crate::error::SqlError;
use crate::plan::{plan, AnyPlan};
use rmdp_core::MechanismParams;
use rmdp_krelation::annotate::AnnotatedDatabase;
use rmdp_krelation::tuple::Tuple;
use std::sync::Arc;

/// The immutable catalog + planner + parameter bundle shared by all
/// sessions over one database state.
///
/// ```
/// use rmdp_core::MechanismParams;
/// use rmdp_krelation::annotate::AnnotatedDatabase;
/// use rmdp_krelation::tuple::{Tuple, Value};
/// use rmdp_krelation::{Expr, KRelation};
/// use rmdp_sql::{CatalogSnapshot, SqlSession};
///
/// let mut db = AnnotatedDatabase::new();
/// let mut visits = KRelation::new(["person", "place"]);
/// let p = db.intern("ada");
/// visits.insert(
///     Tuple::new([("person", Value::str("ada")), ("place", Value::str("museum"))]),
///     Expr::Var(p),
/// );
/// db.insert_table("visits", visits);
///
/// let snapshot = CatalogSnapshot::shared(db, MechanismParams::paper_edge_privacy(1.0));
/// // Two sessions over one snapshot: no copy of the database, and cache
/// // fingerprints agree because the database identity is shared.
/// let mut a = SqlSession::over(std::sync::Arc::clone(&snapshot), 1);
/// let mut b = SqlSession::over(std::sync::Arc::clone(&snapshot), 2);
/// assert_eq!(
///     a.query_scalar("SELECT COUNT(*) FROM visits").unwrap().true_answer,
///     b.query_scalar("SELECT COUNT(*) FROM visits").unwrap().true_answer,
/// );
/// ```
#[derive(Debug)]
pub struct CatalogSnapshot {
    db: AnnotatedDatabase,
    params: MechanismParams,
    version: u64,
}

impl CatalogSnapshot {
    /// Freezes `db` and `params` into an immutable snapshot (version 0).
    pub fn new(db: AnnotatedDatabase, params: MechanismParams) -> Self {
        CatalogSnapshot {
            db,
            params,
            version: 0,
        }
    }

    /// [`CatalogSnapshot::new`], already wrapped in the [`Arc`] every caller
    /// wants.
    pub fn shared(db: AnnotatedDatabase, params: MechanismParams) -> Arc<Self> {
        Arc::new(Self::new(db, params))
    }

    /// Forks a **new** snapshot with `rows` appended to `table`, sharing
    /// every untouched table (content *and* epoch stamp) with this one
    /// copy-on-write. This snapshot is unchanged and stays fully usable;
    /// the fork's [`version`](Self::version) is this one's plus one.
    ///
    /// The fork keeps the database `instance_id`, so cache entries for
    /// queries that do not scan `table` remain valid — and keep their exact
    /// keys — across the swap. All-or-nothing: on error nothing is forked.
    pub fn with_delta<I>(&self, table: &str, rows: I) -> Result<Arc<Self>, SqlError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let db = self.db.fork_with_delta(table, rows)?;
        Ok(Arc::new(CatalogSnapshot {
            db,
            params: self.params,
            version: self.version + 1,
        }))
    }

    /// Which link of the snapshot chain this is: 0 for a freshly built
    /// snapshot, parent + 1 for every [`with_delta`](Self::with_delta)
    /// fork. Replay logs record it so a replayed release runs against the
    /// same database state it was admitted under.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The annotated database (read-only — the snapshot never mutates, so
    /// its epoch stamps and cache fingerprints are stable for life).
    pub fn database(&self) -> &AnnotatedDatabase {
        &self.db
    }

    /// The default mechanism parameters sessions over this snapshot release
    /// with.
    pub fn params(&self) -> MechanismParams {
        self.params
    }

    /// Parses, validates and lowers `sql` against the snapshot's catalog
    /// without touching the data — usable from any thread, concurrently.
    pub fn plan(&self, sql: &str) -> Result<AnyPlan, SqlError> {
        plan(&self.db, sql)
    }
}
