//! Canonical plan fingerprints for the cross-query sequence cache.
//!
//! Two SQL strings that compile to *structurally identical* plans over the
//! same annotated database must produce the same fingerprint, so the second
//! one can serve its `H`/`G` sequences from the
//! [`SequenceCache`](rmdp_core::SequenceCache) instead of re-running
//! `2(|P|+1)` LP chains. "Structurally identical" deliberately ignores the
//! three sources of textual noise production query logs are full of
//! (Chorus and FLEX both normalise the same way before caching):
//!
//! * **alias names** — `FROM visits v1 JOIN visits v2` and
//!   `FROM visits a JOIN visits b` are the same query;
//! * **join order** — an inner-join chain is a selection over a cross
//!   product, so `A JOIN B` and `B JOIN A` (with the same predicates) are
//!   the same query — including the induced reclassification of `ON`
//!   conjuncts between equi-keys and residual filters;
//! * **conjunct order** — `WHERE x AND y` and `WHERE y AND x`, and
//!   operand order of symmetric comparisons (`a = b` vs `b = a`,
//!   `a > b` vs `b < a`).
//!
//! ## Canonicalisation
//!
//! The plan is dissolved into order-free parts: the multiset of scanned
//! tables, one flat conjunct multiset (equi keys re-expressed as
//! equalities, plus residual and `WHERE` predicates), and the aggregate.
//! Aliases are renamed to canonical indices by grouping them per table
//! name and choosing, among all within-group permutations, the assignment
//! whose serialized encoding is lexicographically smallest — an exact
//! canonical form for self-joins (up to [`MAX_CANON_PERMUTATIONS`]
//! assignments are tried; beyond that the plan order is kept, which is
//! still *sound*, merely blind to some permuted-self-join repeats).
//!
//! ## Soundness
//!
//! A false collision would release one query's answer calibrated with
//! another query's sequences, so the mapping must be injective up to
//! semantic equality: every component (tables, every predicate operand and
//! operator, the aggregate) is length-prefix framed into the encoding, the
//! encoding is hashed with the 128-bit [`FingerprintHasher`],
//! and the database's `instance_id`, its **universe epoch**, and the
//! epoch stamps of **exactly the scanned tables** plus the
//! sensitivity-relevant [`MechanismParams`] fields (`beta`, `theta`) are
//! hashed alongside. Scoping the epoch vector to the scanned tables is
//! what makes invalidation *delta-scoped*: ingesting into table `A`
//! re-keys only the queries that scan `A`; every cached entry over other
//! tables keeps its key byte-for-byte and keeps hitting. The universe
//! epoch is folded into every key because participant-set changes
//! (growth, relabeling) change the sequence length `|P|+1` for *all*
//! queries regardless of which tables they scan.
//!
//! Strictly, *no* params field can change a frozen
//! `H`/`G` value (the sequences are a function of the query relation
//! alone; `β`/`θ` enter only at release time, where the Δ-ladder is
//! rebuilt from the live params against the cached `G` entries), so
//! including `β`/`θ` is deliberate conservative over-keying: a cached
//! table is only ever reused under the identical sensitivity
//! configuration, which keeps the key sound even if a future change
//! freezes ladder-derived data (e.g. Δ itself) into the table. The cost
//! is that a `β`/`θ` parameter sweep over one query re-pays the
//! precompute per setting. Purely noise-scaling fields (`ε₁`, `ε₂`, `μ`)
//! and performance knobs (`parallelism`) are excluded outright: splitting
//! the cache on them would only lower the hit rate.

use crate::ast::Comparison;
use crate::plan::{CompiledOperand, CompiledPredicate, PlanAggregate, QueryPlan};
use rmdp_core::MechanismParams;
use rmdp_krelation::annotate::AnnotatedDatabase;
use rmdp_krelation::fingerprint::{Fingerprint, FingerprintHasher};
use rmdp_krelation::tuple::Value;

/// Version tag of the canonical encoding; bump when the encoding changes so
/// stale fingerprints from older builds can never alias new ones.
/// Version 2: the single `annotation_epoch` was replaced by the universe
/// epoch plus the per-table epoch stamps of the scanned tables.
const ENCODING_VERSION: u64 = 2;

/// Cap on how many alias assignments the exact canonicalisation tries (the
/// product of per-table factorials). `7! = 5040` keeps even a 7-way
/// self-join exact while bounding the worst case to well under a
/// millisecond.
pub const MAX_CANON_PERMUTATIONS: usize = 5040;

/// Everything the cache layer needs to know about one
/// `(database state, canonical plan, params)` triple:
///
/// * [`key`](Self::key) — the epoch-scoped cache key: two plans collide iff
///   they are structurally identical **and** every table either plan scans
///   (plus the participant universe) is at the same epoch stamp;
/// * [`lineage`](Self::lineage) — the epoch-*free* structural identity of
///   the plan over this database instance: stable across deltas, it links a
///   post-delta recompute to the pre-delta entry parked in the cache's seed
///   bank so the recompute can warm-refresh instead of solving cold;
/// * [`stamps`](Self::stamps) — the exact epoch stamps the key was minted
///   under (universe first, then the scanned tables in sorted name order),
///   the tag [`SequenceCache::purge_stale`](rmdp_core::SequenceCache::purge_stale)
///   sweeps against on snapshot swap.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanKey {
    /// The epoch-scoped fingerprint keying the sequence cache.
    pub key: Fingerprint,
    /// The epoch-free structural fingerprint keying the refresh seed bank.
    pub lineage: Fingerprint,
    /// The epoch stamps hashed into `key`: the universe epoch followed by
    /// each scanned table's epoch (sorted, deduplicated table order).
    pub stamps: Vec<u64>,
}

/// Computes the [`PlanKey`] of a plan: the cache key hashing the epoch
/// vector of exactly the scanned tables (universe epoch folded in), the
/// epoch-free lineage, and the stamp vector for staleness sweeps.
pub fn plan_key(db: &AnnotatedDatabase, plan: &QueryPlan, params: &MechanismParams) -> PlanKey {
    let encoding = canonical_plan_encoding(plan);

    // The tables the plan scans, sorted and deduplicated — a self-join
    // reads one table state, so its epoch is hashed once.
    let mut scanned: Vec<&str> = std::iter::once(plan.from.table.as_str())
        .chain(plan.joins.iter().map(|j| j.scan.table.as_str()))
        .collect();
    scanned.sort_unstable();
    scanned.dedup();

    let mut stamps = Vec::with_capacity(scanned.len() + 1);
    stamps.push(db.universe_epoch());

    let mut hasher = FingerprintHasher::new();
    hasher.write_u64(ENCODING_VERSION);
    // Database identity, universe epoch, and the epoch of every scanned
    // table: a delta to any *other* table leaves this key byte-identical.
    hasher.write_u64(db.instance_id());
    hasher.write_u64(db.universe_epoch());
    hasher.write_u64(scanned.len() as u64);
    for table in &scanned {
        let epoch = db.table_epoch(table);
        hasher.write_str(table);
        hasher.write_u64(epoch);
        stamps.push(epoch);
    }
    // Sensitivity-relevant parameters (see module docs for the rationale).
    hasher.write_f64(params.beta);
    hasher.write_f64(params.theta);
    hasher.write_bytes(&encoding);
    let key = hasher.finish();

    // The lineage is the same construction minus every epoch: it survives
    // deltas, so it can pair a post-delta miss with its pre-delta seed.
    let mut hasher = FingerprintHasher::new();
    hasher.write_u64(ENCODING_VERSION);
    hasher.write_u64(db.instance_id());
    hasher.write_f64(params.beta);
    hasher.write_f64(params.theta);
    hasher.write_bytes(&encoding);
    let lineage = hasher.finish();

    PlanKey {
        key,
        lineage,
        stamps,
    }
}

/// The fingerprint keying one `(database state, canonical plan, params)`
/// triple in the sequence cache — [`plan_key`]'s `key` component, kept as
/// the stable entry point for callers that need only the cache key.
pub fn plan_fingerprint(
    db: &AnnotatedDatabase,
    plan: &QueryPlan,
    params: &MechanismParams,
) -> Fingerprint {
    plan_key(db, plan, params).key
}

/// The canonical byte encoding of a plan: equal for structurally identical
/// plans (alias names, join order, conjunct order normalised away),
/// distinct otherwise. Exposed for tests and diagnostics.
pub fn canonical_plan_encoding(plan: &QueryPlan) -> Vec<u8> {
    let scans: Vec<&crate::plan::ScanStep> = std::iter::once(&plan.from)
        .chain(plan.joins.iter().map(|j| &j.scan))
        .collect();
    let aliases: Vec<&str> = scans.iter().map(|s| s.alias.as_str()).collect();

    // Group plan-order alias indices by table name, groups sorted by name.
    // Canonical ids are assigned group-major, so aliases of lexicographically
    // smaller tables always get smaller ids.
    let mut tables: Vec<&str> = scans.iter().map(|s| s.table.as_str()).collect();
    let mut group_names: Vec<&str> = tables.clone();
    group_names.sort_unstable();
    group_names.dedup();
    let groups: Vec<Vec<usize>> = group_names
        .iter()
        .map(|name| (0..tables.len()).filter(|&i| tables[i] == *name).collect())
        .collect();
    tables.sort_unstable();

    let assignments = alias_assignments(&groups);
    let mut best: Option<Vec<u8>> = None;
    for assignment in assignments {
        // assignment[k] = plan index of the alias given canonical id k;
        // invert it to canonical_of[plan index] = canonical id.
        let mut canonical_of = vec![0usize; aliases.len()];
        for (canonical, &plan_idx) in assignment.iter().enumerate() {
            canonical_of[plan_idx] = canonical;
        }
        let encoded = encode_with(plan, &tables, &aliases, &canonical_of);
        if best.as_ref().is_none_or(|b| encoded < *b) {
            best = Some(encoded);
        }
    }
    best.expect("a plan always has at least the FROM scan")
}

/// All canonical-id assignments to try: the cartesian product of each
/// group's permutations, truncated to the identity-only assignment when the
/// product of factorials would exceed [`MAX_CANON_PERMUTATIONS`].
fn alias_assignments(groups: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut total: usize = 1;
    for g in groups {
        for k in 1..=g.len() {
            total = total.saturating_mul(k);
            if total > MAX_CANON_PERMUTATIONS {
                // Fall back to plan order within every group: sound (the
                // assignment is still deterministic and injective), just
                // blind to permutations of very wide self-joins.
                return vec![groups.concat()];
            }
        }
    }
    let mut assignments: Vec<Vec<usize>> = vec![Vec::new()];
    for g in groups {
        let perms = permutations(g);
        assignments = assignments
            .iter()
            .flat_map(|prefix| {
                perms.iter().map(move |perm| {
                    let mut next = prefix.clone();
                    next.extend_from_slice(perm);
                    next
                })
            })
            .collect();
    }
    assignments
}

/// All permutations of `items` (small inputs only; callers cap the size).
fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &head) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, head);
            out.push(tail);
        }
    }
    out
}

/// Serializes the plan under one alias→canonical-id assignment.
fn encode_with(
    plan: &QueryPlan,
    sorted_tables: &[&str],
    aliases: &[&str],
    canonical_of: &[usize],
) -> Vec<u8> {
    let mut buf = Vec::new();

    // Scanned tables in canonical-id order (the group-major construction
    // makes this exactly the sorted table list).
    push_u64(&mut buf, sorted_tables.len() as u64);
    for table in sorted_tables {
        push_str(&mut buf, table);
    }

    // One flat conjunct multiset: equi keys as equalities + residuals +
    // WHERE, each normalised, then sorted and deduplicated (conjunction is
    // idempotent and commutative).
    let mut predicates: Vec<Vec<u8>> = Vec::new();
    for step in &plan.joins {
        for (a, b) in &step.equi {
            predicates.push(encode_predicate(
                &CompiledPredicate {
                    lhs: CompiledOperand::Column(a.clone()),
                    op: Comparison::Eq,
                    rhs: CompiledOperand::Column(b.clone()),
                },
                aliases,
                canonical_of,
            ));
        }
        for pred in &step.residual {
            predicates.push(encode_predicate(pred, aliases, canonical_of));
        }
    }
    for pred in &plan.filter {
        predicates.push(encode_predicate(pred, aliases, canonical_of));
    }
    predicates.sort_unstable();
    predicates.dedup();
    push_u64(&mut buf, predicates.len() as u64);
    for pred in predicates {
        push_bytes(&mut buf, &pred);
    }

    // The aggregate.
    match &plan.aggregate {
        PlanAggregate::CountStar => buf.push(b'C'),
        PlanAggregate::Sum(attr) => {
            buf.push(b'S');
            encode_column(&mut buf, attr.name(), aliases, canonical_of);
        }
    }
    buf
}

/// Encodes one predicate with symmetric/reversible operators normalised:
/// `a > b` becomes `b < a`, `a >= b` becomes `b <= a`, and the operands of
/// `=` / `<>` are sorted by their encodings.
fn encode_predicate(pred: &CompiledPredicate, aliases: &[&str], canonical_of: &[usize]) -> Vec<u8> {
    let mut lhs = Vec::new();
    encode_operand(&mut lhs, &pred.lhs, aliases, canonical_of);
    let mut rhs = Vec::new();
    encode_operand(&mut rhs, &pred.rhs, aliases, canonical_of);

    let (op, mut lhs, mut rhs) = match pred.op {
        Comparison::Gt => (Comparison::Lt, rhs, lhs),
        Comparison::Ge => (Comparison::Le, rhs, lhs),
        op => (op, lhs, rhs),
    };
    if matches!(op, Comparison::Eq | Comparison::Neq) && rhs < lhs {
        std::mem::swap(&mut lhs, &mut rhs);
    }

    let mut buf = Vec::new();
    buf.push(match op {
        Comparison::Eq => b'=',
        Comparison::Neq => b'!',
        Comparison::Lt => b'<',
        Comparison::Le => b'l',
        Comparison::Gt | Comparison::Ge => unreachable!("normalised above"),
    });
    push_bytes(&mut buf, &lhs);
    push_bytes(&mut buf, &rhs);
    buf
}

fn encode_operand(
    buf: &mut Vec<u8>,
    operand: &CompiledOperand,
    aliases: &[&str],
    canonical_of: &[usize],
) {
    match operand {
        CompiledOperand::Column(attr) => encode_column(buf, attr.name(), aliases, canonical_of),
        CompiledOperand::Literal(value) => match value {
            Value::Int(v) => {
                buf.push(b'I');
                buf.extend_from_slice(&v.to_le_bytes());
            }
            Value::Str(s) => {
                buf.push(b'T');
                push_str(buf, s);
            }
            Value::Bool(b) => {
                buf.push(b'B');
                buf.push(u8::from(*b));
            }
        },
    }
}

/// Encodes a qualified column `alias.column` as `(canonical id, column)`.
/// Plans only ever carry qualified attributes (the planner qualifies every
/// resolved column), and aliases cannot contain `.` (they are SQL
/// identifiers), so splitting at the first dot recovers the alias exactly.
fn encode_column(buf: &mut Vec<u8>, qualified: &str, aliases: &[&str], canonical_of: &[usize]) {
    buf.push(b'c');
    match qualified.split_once('.') {
        Some((alias, column)) => match aliases.iter().position(|a| *a == alias) {
            Some(plan_idx) => {
                push_u64(buf, canonical_of[plan_idx] as u64);
                push_str(buf, column);
            }
            // Unknown alias: keep the raw name (cannot happen for planner
            // output, but stay total and injective).
            None => push_str(buf, qualified),
        },
        None => push_str(buf, qualified),
    }
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    push_u64(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    push_bytes(buf, s.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan;
    use rmdp_krelation::tuple::{Tuple, Value};
    use rmdp_krelation::{Expr, KRelation};

    fn db() -> AnnotatedDatabase {
        let mut db = AnnotatedDatabase::new();
        let mut residents = KRelation::new(["person", "city"]);
        let mut visits = KRelation::new(["person", "place"]);
        for (person, city, place) in [("ada", "rome", "museum"), ("bo", "oslo", "cafe")] {
            let p = db.universe_mut().intern(person);
            residents.insert(
                Tuple::new([("person", Value::str(person)), ("city", Value::str(city))]),
                Expr::Var(p),
            );
            visits.insert(
                Tuple::new([("person", Value::str(person)), ("place", Value::str(place))]),
                Expr::Var(p),
            );
        }
        db.insert_table("residents", residents);
        db.insert_table("visits", visits);
        db
    }

    fn encoding(db: &AnnotatedDatabase, sql: &str) -> Vec<u8> {
        canonical_plan_encoding(&plan(db, sql).unwrap().expect_scalar())
    }

    fn fp(db: &AnnotatedDatabase, sql: &str) -> Fingerprint {
        let params = MechanismParams::paper_edge_privacy(1.0);
        plan_fingerprint(db, &plan(db, sql).unwrap().expect_scalar(), &params)
    }

    #[test]
    fn alias_names_are_normalised_away() {
        let db = db();
        assert_eq!(
            fp(
                &db,
                "SELECT COUNT(*) FROM visits v1 WHERE v1.place = 'museum'"
            ),
            fp(
                &db,
                "SELECT COUNT(*) FROM visits zz WHERE zz.place = 'museum'"
            ),
        );
    }

    #[test]
    fn join_order_is_normalised_away() {
        let db = db();
        let a = fp(
            &db,
            "SELECT COUNT(*) FROM visits v JOIN residents r ON r.person = v.person",
        );
        let b = fp(
            &db,
            "SELECT COUNT(*) FROM residents r JOIN visits v ON v.person = r.person",
        );
        assert_eq!(a, b);
    }

    #[test]
    fn conjunct_order_and_operand_order_are_normalised_away() {
        let db = db();
        let a = fp(
            &db,
            "SELECT COUNT(*) FROM visits v JOIN residents r ON r.person = v.person \
             WHERE v.place = 'museum' AND r.city = 'rome'",
        );
        let b = fp(
            &db,
            "SELECT COUNT(*) FROM visits v JOIN residents r ON v.person = r.person \
             WHERE r.city = 'rome' AND v.place = 'museum'",
        );
        assert_eq!(a, b);
        // a > b normalises onto b < a.
        let lt = fp(
            &db,
            "SELECT COUNT(*) FROM visits a JOIN visits b ON a.place = b.place \
             WHERE a.person < b.person",
        );
        let gt = fp(
            &db,
            "SELECT COUNT(*) FROM visits a JOIN visits b ON a.place = b.place \
             WHERE b.person > a.person",
        );
        assert_eq!(lt, gt);
    }

    #[test]
    fn self_join_alias_swaps_collide_only_when_symmetric() {
        let db = db();
        // Swapping the roles of the two visits aliases everywhere is an
        // isomorphism — must collide.
        let a = fp(
            &db,
            "SELECT COUNT(*) FROM visits x JOIN visits y ON x.place = y.place \
             WHERE x.person < y.person",
        );
        let b = fp(
            &db,
            "SELECT COUNT(*) FROM visits y JOIN visits x ON y.place = x.place \
             WHERE y.person < x.person",
        );
        assert_eq!(a, b);
        // Moving the `<` to the *other* side is a different query (the
        // output rows differ) — must NOT collide. (Here both sides count
        // the same pairs, but e.g. with per-side filters they would not;
        // the canonical form must distinguish the shapes.)
        let c = fp(
            &db,
            "SELECT COUNT(*) FROM visits x JOIN visits y ON x.place = y.place \
             WHERE x.person < y.person AND x.place = 'museum'",
        );
        let d = fp(
            &db,
            "SELECT COUNT(*) FROM visits x JOIN visits y ON x.place = y.place \
             WHERE y.person < x.person AND x.place = 'museum'",
        );
        assert_ne!(c, d, "asymmetric self-join shapes must stay distinct");
    }

    #[test]
    fn different_schemas_tables_literals_and_aggregates_stay_distinct() {
        let db = db();
        let base = encoding(&db, "SELECT COUNT(*) FROM visits WHERE place = 'museum'");
        for other in [
            "SELECT COUNT(*) FROM visits WHERE place = 'cafe'",
            "SELECT COUNT(*) FROM visits WHERE person = 'museum'",
            "SELECT COUNT(*) FROM visits",
            "SELECT COUNT(*) FROM residents WHERE city = 'rome'",
            "SELECT SUM(person) FROM visits WHERE place = 'museum'",
            "SELECT COUNT(*) FROM visits v JOIN visits w ON v.place = w.place \
             WHERE v.place = 'museum'",
        ] {
            assert_ne!(base, encoding(&db, other), "{other}");
        }
    }

    #[test]
    fn equi_key_vs_residual_classification_does_not_split_the_key() {
        // `ON r.person = v.person` is an equi key when residents joins in
        // second, but the same equality may land elsewhere under another
        // order; both dissolve into the same conjunct multiset.
        let db = db();
        let a = encoding(
            &db,
            "SELECT COUNT(*) FROM visits v JOIN residents r ON r.person = v.person \
             WHERE v.place = 'museum'",
        );
        let b = encoding(
            &db,
            "SELECT COUNT(*) FROM residents r JOIN visits v ON r.person = v.person \
             WHERE v.place = 'museum'",
        );
        assert_eq!(a, b);
    }

    #[test]
    fn database_identity_epoch_and_params_split_the_fingerprint() {
        let db1 = db();
        let sql = "SELECT COUNT(*) FROM visits";
        let q = plan(&db1, sql).unwrap().expect_scalar();
        let params = MechanismParams::paper_edge_privacy(1.0);
        let base = plan_fingerprint(&db1, &q, &params);

        // Same content, different database instance.
        let db2 = db();
        assert_ne!(base, plan_fingerprint(&db2, &q, &params));

        // Same instance, an *unrelated* table added: the query scans only
        // `visits`, whose epoch did not move, so the key must survive —
        // invalidation is delta-scoped, not global.
        let mut db3 = db1.clone();
        let before = plan_fingerprint(&db3, &q, &params);
        db3.insert_table("extra", KRelation::empty());
        assert_eq!(before, plan_fingerprint(&db3, &q, &params));

        // Mutating the scanned table itself must split the key.
        db3.insert_table("visits", KRelation::new(["person", "place"]));
        assert_ne!(before, plan_fingerprint(&db3, &q, &params));

        // A universe mutation invalidates every key: `|P|` changes the
        // sequence length for all queries.
        let mut db4 = db1.clone();
        let before = plan_fingerprint(&db4, &q, &params);
        db4.universe_mut().intern("newcomer");
        assert_ne!(before, plan_fingerprint(&db4, &q, &params));

        // Sensitivity-relevant params split; noise-only params do not.
        let mut wide = params;
        wide.beta = 0.33;
        assert_ne!(base, plan_fingerprint(&db1, &q, &wide));
        let mut noisy = params;
        noisy.epsilon2 = 9.0;
        noisy.mu = 3.0;
        assert_eq!(base, plan_fingerprint(&db1, &q, &noisy));
    }

    #[test]
    fn group_plans_fingerprint_like_their_hand_written_equality_queries() {
        // The group key dissolves into an equality conjunct, so the
        // per-group plan of `GROUP BY place` at key 'museum' must share a
        // cache entry with the hand-written `WHERE place = 'museum'` query —
        // grouped reports and scalar traffic warm each other's cache.
        let mut db = db();
        db.declare_public_domain(
            "visits",
            "place",
            [Value::str("museum"), Value::str("cafe")],
        );
        let grouped = plan(&db, "SELECT place, COUNT(*) FROM visits GROUP BY place")
            .unwrap()
            .as_grouped()
            .cloned()
            .unwrap();
        assert_eq!(grouped.num_groups(), 2);

        let params = MechanismParams::paper_edge_privacy(1.0);
        let mut per_group = Vec::new();
        for (value, literal) in grouped.domain.iter().zip(["'museum'", "'cafe'"]) {
            let group_fp = plan_fingerprint(&db, &grouped.group_plan(value), &params);
            let scalar_fp = fp(
                &db,
                &format!("SELECT COUNT(*) FROM visits WHERE place = {literal}"),
            );
            assert_eq!(group_fp, scalar_fp, "group {literal}");
            per_group.push(group_fp);
        }
        // Distinct keys must never collide (the literal is framed in).
        assert_ne!(per_group[0], per_group[1]);
    }

    #[test]
    fn deltas_invalidate_only_queries_scanning_the_touched_table() {
        use rmdp_krelation::AnnotationRule;

        let mut db = db();
        db.declare_annotation_rule("visits", AnnotationRule::OwnerColumn("person".to_owned()));
        // Initial loads intern the same labels the rule derives, so a later
        // ingest by a known owner is intern-only (see `AnnotationRule` docs).
        db.intern(&AnnotationRule::owner_label("person", &Value::str("ada")));
        let params = MechanismParams::paper_edge_privacy(1.0);
        let visits_q = plan(&db, "SELECT COUNT(*) FROM visits")
            .unwrap()
            .expect_scalar();
        let residents_q = plan(&db, "SELECT COUNT(*) FROM residents")
            .unwrap()
            .expect_scalar();
        let join_q = plan(
            &db,
            "SELECT COUNT(*) FROM residents r JOIN visits v ON r.person = v.person",
        )
        .unwrap()
        .expect_scalar();

        let visits_before = plan_key(&db, &visits_q, &params);
        let residents_before = plan_key(&db, &residents_q, &params);
        let join_before = plan_key(&db, &join_q, &params);

        // Ingest one row owned by an already-known participant: intern-only,
        // so only the `visits` epoch may move.
        db.apply_delta(
            "visits",
            [Tuple::new([
                ("person", Value::str("ada")),
                ("place", Value::str("park")),
            ])],
        )
        .unwrap();

        // The untouched table's key is *byte-identical* — fingerprint,
        // lineage and every stamp — so its cached sequences keep hitting.
        assert_eq!(residents_before, plan_key(&db, &residents_q, &params));

        // Everything scanning the mutated table re-keys...
        let visits_after = plan_key(&db, &visits_q, &params);
        let join_after = plan_key(&db, &join_q, &params);
        assert_ne!(visits_before.key, visits_after.key);
        assert_ne!(join_before.key, join_after.key);
        // ...but keeps its lineage, linking it to the pre-delta seed.
        assert_eq!(visits_before.lineage, visits_after.lineage);
        assert_eq!(join_before.lineage, join_after.lineage);
        // The universe stamp (slot 0) did not move: pure tuple appends by
        // known participants never bump the universe epoch.
        assert_eq!(visits_before.stamps[0], visits_after.stamps[0]);
    }

    #[test]
    fn self_joins_hash_the_scanned_table_epoch_once() {
        let db = db();
        let params = MechanismParams::paper_edge_privacy(1.0);
        let q = plan(
            &db,
            "SELECT COUNT(*) FROM visits a JOIN visits b ON a.place = b.place",
        )
        .unwrap()
        .expect_scalar();
        // Universe stamp + exactly one stamp for `visits`.
        assert_eq!(plan_key(&db, &q, &params).stamps.len(), 2);
    }

    #[test]
    fn duplicate_conjuncts_are_idempotent() {
        let db = db();
        assert_eq!(
            encoding(
                &db,
                "SELECT COUNT(*) FROM visits WHERE place = 'museum' AND place = 'museum'"
            ),
            encoding(&db, "SELECT COUNT(*) FROM visits WHERE place = 'museum'"),
        );
    }
}
