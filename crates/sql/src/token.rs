//! Tokenizer for the positive SQL subset.
//!
//! Every token carries its byte span in the input so later stages (parser,
//! planner) can point error messages at the exact offending text. Keywords
//! are case-insensitive; unquoted identifiers are folded to lowercase (the
//! usual SQL identifier folding), so `Visits`, `VISITS` and `visits` name the
//! same table.
//!
//! Keywords of *rejected* constructs (`NOT`, `OR`, `LEFT`, …) are tokenized
//! too: the parser wants to recognise them and explain *why* they are outside
//! the positive fragment, rather than emit a generic syntax error.

use crate::error::SqlError;
use std::fmt;

/// A half-open byte range `[start, end)` into the query text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// First byte of the spanned text.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// Builds a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The spanned slice of `sql`.
    pub fn slice<'a>(&self, sql: &'a str) -> &'a str {
        &sql[self.start.min(sql.len())..self.end.min(sql.len())]
    }

    /// A span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// What a token is.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    // Supported keywords.
    /// `SELECT`.
    Select,
    /// `COUNT`.
    Count,
    /// `SUM`.
    Sum,
    /// `FROM`.
    From,
    /// `JOIN`.
    Join,
    /// `INNER`.
    Inner,
    /// `ON`.
    On,
    /// `WHERE`.
    Where,
    /// `AND`.
    And,
    /// `AS`.
    As,
    /// `EXPLAIN` (only the `EXPLAIN ANALYZE` form is supported: the trace
    /// describes a release that actually ran, noise and all).
    Explain,
    /// `ANALYZE` (second word of `EXPLAIN ANALYZE`).
    Analyze,
    // Keywords recognised only to be rejected with a targeted message.
    /// `NOT` (rejected: negation is non-monotone).
    Not,
    /// `IN` (rejected in its negated form).
    In,
    /// `OR` (rejected in predicates of this fragment).
    Or,
    /// `CROSS` (rejected join flavour).
    Cross,
    /// `LEFT` (rejected join flavour).
    Left,
    /// `RIGHT` (rejected join flavour).
    Right,
    /// `FULL` (rejected join flavour).
    Full,
    /// `OUTER` (rejected join flavour).
    Outer,
    /// `UNION` (rejected set operation).
    Union,
    /// `EXCEPT` (rejected: set difference is non-monotone).
    Except,
    /// `INTERSECT` (rejected set operation).
    Intersect,
    /// `GROUP` (single-key `GROUP BY` over a declared public domain is the
    /// grouped-report form; multi-column grouping is rejected).
    Group,
    /// `ORDER` (rejected: ordering noisy releases is a client-side concern).
    Order,
    /// `BY` (part of `GROUP BY` and the rejected `ORDER BY`).
    By,
    /// `HAVING` (rejected: filtering on true per-group aggregates leaks them).
    Having,
    /// `DISTINCT` (rejected: duplicate elimination changes the aggregate).
    Distinct,
    // Values.
    /// An identifier (lowercase-folded unless quoted).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A single-quoted string literal (unescaped).
    Str(String),
    // Punctuation and operators.
    /// `*`.
    Star,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `.`.
    Dot,
    /// `,`.
    Comma,
    /// `;`.
    Semi,
    /// `=`.
    Eq,
    /// `<>` or `!=`.
    Neq,
    /// `<`.
    Lt,
    /// `>`.
    Gt,
    /// `<=`.
    Le,
    /// `>=`.
    Ge,
    /// End of input (simplifies the parser's lookahead).
    Eof,
}

impl TokenKind {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(name) => format!("identifier `{name}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Str(s) => format!("string '{s}'"),
            TokenKind::Eof => "end of query".to_owned(),
            other => format!("`{}`", other.text()),
        }
    }

    fn text(&self) -> &'static str {
        match self {
            TokenKind::Select => "SELECT",
            TokenKind::Count => "COUNT",
            TokenKind::Sum => "SUM",
            TokenKind::From => "FROM",
            TokenKind::Join => "JOIN",
            TokenKind::Inner => "INNER",
            TokenKind::On => "ON",
            TokenKind::Where => "WHERE",
            TokenKind::And => "AND",
            TokenKind::As => "AS",
            TokenKind::Explain => "EXPLAIN",
            TokenKind::Analyze => "ANALYZE",
            TokenKind::Not => "NOT",
            TokenKind::In => "IN",
            TokenKind::Or => "OR",
            TokenKind::Cross => "CROSS",
            TokenKind::Left => "LEFT",
            TokenKind::Right => "RIGHT",
            TokenKind::Full => "FULL",
            TokenKind::Outer => "OUTER",
            TokenKind::Union => "UNION",
            TokenKind::Except => "EXCEPT",
            TokenKind::Intersect => "INTERSECT",
            TokenKind::Group => "GROUP",
            TokenKind::Order => "ORDER",
            TokenKind::By => "BY",
            TokenKind::Having => "HAVING",
            TokenKind::Distinct => "DISTINCT",
            TokenKind::Star => "*",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::Dot => ".",
            TokenKind::Comma => ",",
            TokenKind::Semi => ";",
            TokenKind::Eq => "=",
            TokenKind::Neq => "<>",
            TokenKind::Lt => "<",
            TokenKind::Gt => ">",
            TokenKind::Le => "<=",
            TokenKind::Ge => ">=",
            TokenKind::Ident(_) | TokenKind::Int(_) | TokenKind::Str(_) | TokenKind::Eof => {
                unreachable!("value tokens render through describe()")
            }
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// One token with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token's kind (and payload for values).
    pub kind: TokenKind,
    /// Where it sits in the query text.
    pub span: Span,
}

fn keyword(word: &str) -> Option<TokenKind> {
    Some(match word.to_ascii_uppercase().as_str() {
        "SELECT" => TokenKind::Select,
        "COUNT" => TokenKind::Count,
        "SUM" => TokenKind::Sum,
        "FROM" => TokenKind::From,
        "JOIN" => TokenKind::Join,
        "INNER" => TokenKind::Inner,
        "ON" => TokenKind::On,
        "WHERE" => TokenKind::Where,
        "AND" => TokenKind::And,
        "AS" => TokenKind::As,
        "EXPLAIN" => TokenKind::Explain,
        "ANALYZE" => TokenKind::Analyze,
        "NOT" => TokenKind::Not,
        "IN" => TokenKind::In,
        "OR" => TokenKind::Or,
        "CROSS" => TokenKind::Cross,
        "LEFT" => TokenKind::Left,
        "RIGHT" => TokenKind::Right,
        "FULL" => TokenKind::Full,
        "OUTER" => TokenKind::Outer,
        "UNION" => TokenKind::Union,
        "EXCEPT" => TokenKind::Except,
        "INTERSECT" => TokenKind::Intersect,
        "GROUP" => TokenKind::Group,
        "ORDER" => TokenKind::Order,
        "BY" => TokenKind::By,
        "HAVING" => TokenKind::Having,
        "DISTINCT" => TokenKind::Distinct,
        _ => return None,
    })
}

/// Tokenizes `sql`. The returned stream always ends with an [`TokenKind::Eof`]
/// token spanning the end of the input.
pub fn tokenize(sql: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    span: Span::new(start, start + 1),
                });
                i += 1;
            }
            b'(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    span: Span::new(start, start + 1),
                });
                i += 1;
            }
            b')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    span: Span::new(start, start + 1),
                });
                i += 1;
            }
            b'.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    span: Span::new(start, start + 1),
                });
                i += 1;
            }
            b',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    span: Span::new(start, start + 1),
                });
                i += 1;
            }
            b';' => {
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    span: Span::new(start, start + 1),
                });
                i += 1;
            }
            b'=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    span: Span::new(start, start + 1),
                });
                i += 1;
            }
            b'<' => {
                let (kind, len) = match bytes.get(i + 1) {
                    Some(b'>') => (TokenKind::Neq, 2),
                    Some(b'=') => (TokenKind::Le, 2),
                    _ => (TokenKind::Lt, 1),
                };
                tokens.push(Token {
                    kind,
                    span: Span::new(start, start + len),
                });
                i += len;
            }
            b'>' => {
                let (kind, len) = match bytes.get(i + 1) {
                    Some(b'=') => (TokenKind::Ge, 2),
                    _ => (TokenKind::Gt, 1),
                };
                tokens.push(Token {
                    kind,
                    span: Span::new(start, start + len),
                });
                i += len;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Neq,
                        span: Span::new(start, start + 2),
                    });
                    i += 2;
                } else {
                    return Err(SqlError::Lex {
                        message: "unexpected `!` (did you mean `!=` or `<>`?)".to_owned(),
                        span: Span::new(start, start + 1),
                    });
                }
            }
            b'\'' => {
                // String literal with '' as the escaped quote.
                let mut value = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            value.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Copy one full character: `i` always sits on a
                            // char boundary (every other token is ASCII).
                            let c = sql[i..].chars().next().expect("in bounds");
                            value.push(c);
                            i += c.len_utf8();
                        }
                        None => {
                            return Err(SqlError::Lex {
                                message: "unterminated string literal".to_owned(),
                                span: Span::new(start, bytes.len()),
                            });
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(value),
                    span: Span::new(start, i),
                });
            }
            b'0'..=b'9' => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &sql[start..i];
                let value: i64 = text.parse().map_err(|_| SqlError::Lex {
                    message: format!("integer literal `{text}` out of range"),
                    span: Span::new(start, i),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    span: Span::new(start, i),
                });
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &sql[start..i];
                let kind =
                    keyword(word).unwrap_or_else(|| TokenKind::Ident(word.to_ascii_lowercase()));
                tokens.push(Token {
                    kind,
                    span: Span::new(start, i),
                });
            }
            _ => {
                let c = sql[start..].chars().next().expect("in bounds");
                return Err(SqlError::Lex {
                    message: format!("unexpected character `{c}`"),
                    span: Span::new(start, start + c.len_utf8()),
                });
            }
        }
    }

    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(sql.len(), sql.len()),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_case_insensitive_and_identifiers_fold() {
        let toks = tokenize("SELECT Count(*) from Visits").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Select);
        assert_eq!(toks[1].kind, TokenKind::Count);
        assert_eq!(toks[2].kind, TokenKind::LParen);
        assert_eq!(toks[3].kind, TokenKind::Star);
        assert_eq!(toks[5].kind, TokenKind::From);
        assert_eq!(toks[6].kind, TokenKind::Ident("visits".to_owned()));
        assert_eq!(toks.last().unwrap().kind, TokenKind::Eof);
    }

    #[test]
    fn spans_point_at_source_text() {
        let sql = "SELECT COUNT(*) FROM t WHERE a <> 10";
        let toks = tokenize(sql).unwrap();
        let neq = toks.iter().find(|t| t.kind == TokenKind::Neq).unwrap();
        assert_eq!(neq.span.slice(sql), "<>");
        let ten = toks
            .iter()
            .find(|t| matches!(t.kind, TokenKind::Int(10)))
            .unwrap();
        assert_eq!(ten.span.slice(sql), "10");
    }

    #[test]
    fn operators_and_literals() {
        let toks = tokenize("a <= 2 AND b >= 3 AND c != 'x''y'").unwrap();
        let kinds: Vec<&TokenKind> = toks.iter().map(|t| &t.kind).collect();
        assert!(kinds.contains(&&TokenKind::Le));
        assert!(kinds.contains(&&TokenKind::Ge));
        assert!(kinds.contains(&&TokenKind::Neq));
        assert!(kinds.contains(&&TokenKind::Str("x'y".to_owned())));
    }

    #[test]
    fn non_ascii_string_literals_survive_lexing() {
        let sql = "SELECT COUNT(*) FROM t WHERE city = 'm\u{fc}nchen'";
        let toks = tokenize(sql).unwrap();
        let lit = toks
            .iter()
            .find_map(|t| match &t.kind {
                TokenKind::Str(s) => Some((s.clone(), t.span)),
                _ => None,
            })
            .unwrap();
        assert_eq!(lit.0, "m\u{fc}nchen");
        assert_eq!(lit.1.slice(sql), "'m\u{fc}nchen'");
        // Unexpected non-ASCII characters outside strings error cleanly.
        let err = tokenize("SELECT \u{3bb}").unwrap_err();
        match err {
            SqlError::Lex { message, span } => {
                assert!(message.contains('\u{3bb}'), "{message}");
                assert_eq!(span.end - span.start, '\u{3bb}'.len_utf8());
            }
            other => panic!("expected lex error, got {other:?}"),
        }
    }

    #[test]
    fn lex_errors_have_spans() {
        let err = tokenize("SELECT #").unwrap_err();
        match err {
            SqlError::Lex { span, .. } => assert_eq!(span.start, 7),
            other => panic!("expected lex error, got {other:?}"),
        }
        assert!(tokenize("SELECT 'oops").is_err());
        assert!(tokenize("SELECT 99999999999999999999").is_err());
    }
}
