//! Recursive-descent parser for the positive SQL subset.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query     := SELECT select_list FROM table_ref join* where? group_by? ';'? EOF
//! select_list := (column ',')? aggregate
//! aggregate := COUNT '(' '*' ')' | SUM '(' column ')'
//! table_ref := ident (AS? ident)?
//! join      := INNER? JOIN table_ref ON conjunction
//! where     := WHERE conjunction
//! group_by  := GROUP BY column
//! conjunction := predicate (AND predicate)*
//! predicate := operand op operand        op ∈ { =, <>, !=, <, >, <=, >= }
//! operand   := ident '.' ident | ident | int | string
//! ```
//!
//! A leading `column ,` in the SELECT list is only legal together with a
//! `GROUP BY` naming the same column (the planner checks the match); a
//! single-key `GROUP BY` is the grouped-report form the planner compiles
//! against a declared public key domain.
//!
//! Constructs outside the positive fragment — `NOT`, `NOT IN`, `OR`,
//! `CROSS JOIN`, `LEFT|RIGHT|FULL [OUTER] JOIN`, `UNION`, `EXCEPT`, `INTERSECT`,
//! multi-column `GROUP BY`, `ORDER BY`, `HAVING`, `DISTINCT` — are recognised
//! and rejected with an [`SqlError::Unsupported`] explaining why, pointing at
//! the offending keyword.

use crate::ast::{
    Aggregate, ColumnRef, Comparison, GroupBy, JoinClause, Operand, Predicate, Query, TableRef,
};
use crate::error::SqlError;
use crate::token::{tokenize, Span, Token, TokenKind};
use rmdp_krelation::tuple::Value;

/// Parses a SQL string into a [`Query`].
pub fn parse(sql: &str) -> Result<Query, SqlError> {
    let tokens = tokenize(sql)?;
    Parser { tokens, pos: 0 }.query()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Token, SqlError> {
        if &self.peek().kind == kind {
            Ok(self.advance())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn unexpected(&self, expected: &str) -> SqlError {
        let tok = self.peek();
        SqlError::Parse {
            message: format!("expected {expected}, found {}", tok.kind.describe()),
            span: tok.span,
        }
    }

    /// Rejects the current token if it opens a construct outside the positive
    /// fragment. Called wherever such keywords could legally start.
    fn reject_unsupported(&self) -> Result<(), SqlError> {
        let tok = self.peek();
        let (construct, reason) = match tok.kind {
            TokenKind::Not => {
                if self.peek2().kind == TokenKind::In {
                    (
                        "`NOT IN`",
                        "set complement is negation, which breaks the monotonicity the \
                         recursive mechanism requires",
                    )
                } else {
                    (
                        "negation (`NOT`)",
                        "only positive predicates are expressible in positive relational \
                         algebra; a negated condition can turn a participant's withdrawal \
                         into an answer increase",
                    )
                }
            }
            TokenKind::Or => (
                "disjunction (`OR`)",
                "only conjunctive WHERE/ON clauses are supported by this frontend; \
                 split the query into one query per disjunct and combine the releases",
            ),
            TokenKind::Cross => (
                "`CROSS JOIN`",
                "write an inner join with an `ON` condition instead; an unconstrained \
                 Cartesian product is available in the algebra layer \
                 (`rmdp_krelation::algebra::product`)",
            ),
            TokenKind::Left | TokenKind::Right | TokenKind::Full | TokenKind::Outer => (
                "outer joins",
                "padding non-matching rows with NULLs is not monotone; only inner \
                 (theta) joins are part of positive relational algebra",
            ),
            TokenKind::Union => (
                "`UNION`",
                "set operations between subqueries are not part of this frontend; \
                 positive union exists in the algebra layer (`rmdp_krelation::algebra::union`)",
            ),
            TokenKind::Except => (
                "`EXCEPT`",
                "set difference is negation, which breaks the monotonicity the \
                 recursive mechanism requires",
            ),
            TokenKind::Intersect => (
                "`INTERSECT`",
                "set operations between subqueries are not part of this frontend; \
                 express the intersection as a join",
            ),
            TokenKind::Order => (
                "`ORDER BY`",
                "the released values are noisy aggregates; ordering them is a \
                 client-side presentation concern, not part of the private release",
            ),
            TokenKind::Having => (
                "`HAVING`",
                "filtering groups on their true aggregates would leak exactly the \
                 values differential privacy hides; release the grouped report and \
                 filter the noisy values client-side",
            ),
            TokenKind::Distinct => (
                "`DISTINCT`",
                "duplicate elimination inside the aggregate is a projection whose \
                 weight function this frontend does not support",
            ),
            _ => return Ok(()),
        };
        Err(SqlError::Unsupported {
            construct: construct.to_owned(),
            reason: reason.to_owned(),
            span: tok.span,
        })
    }

    fn query(&mut self) -> Result<Query, SqlError> {
        // Optional `EXPLAIN ANALYZE` prefix. Plain `EXPLAIN` is rejected on
        // purpose: a trace of a release that did not run would have to
        // invent LP statistics and noise scales, so the only supported form
        // is the one that executes the query and reports what happened.
        let explain = if self.peek().kind == TokenKind::Explain {
            let explain_span = self.advance().span;
            if !self.eat(&TokenKind::Analyze) {
                return Err(SqlError::Unsupported {
                    construct: "`EXPLAIN` without `ANALYZE`".to_owned(),
                    reason: "a release trace describes a query that actually ran; \
                             use `EXPLAIN ANALYZE` to execute the query and get its \
                             trace, or `SqlSession::plan` to inspect the plan without \
                             spending budget"
                        .to_owned(),
                    span: explain_span,
                });
            }
            true
        } else {
            false
        };
        self.expect(&TokenKind::Select, "`SELECT`")?;
        self.reject_unsupported()?;
        // Optional leading group key: `SELECT key, COUNT(*) … GROUP BY key`.
        let select_key = if matches!(self.peek().kind, TokenKind::Ident(_)) {
            let key = self.column_ref()?;
            self.expect(
                &TokenKind::Comma,
                "`,` between the group key and the aggregate",
            )?;
            self.reject_unsupported()?;
            Some(key)
        } else {
            None
        };
        let (aggregate, aggregate_span) = self.aggregate()?;
        self.expect(&TokenKind::From, "`FROM`")?;
        let from = self.table_ref()?;

        let mut joins = Vec::new();
        loop {
            self.reject_unsupported()?;
            if self.eat(&TokenKind::Inner) {
                // INNER JOIN is exactly the join this frontend supports.
                self.expect(&TokenKind::Join, "`JOIN` after `INNER`")?;
            } else if !self.eat(&TokenKind::Join) {
                break;
            }
            let table = self.table_ref()?;
            self.expect(&TokenKind::On, "`ON`")?;
            let on = self.conjunction()?;
            joins.push(JoinClause { table, on });
        }

        self.reject_unsupported()?;
        let filter = if self.eat(&TokenKind::Where) {
            self.conjunction()?
        } else {
            Vec::new()
        };

        let group_by = self.group_by()?;
        if group_by.is_none() {
            if let Some(key) = &select_key {
                return Err(SqlError::Parse {
                    message: format!(
                        "bare column `{}` in the SELECT list requires a matching `GROUP BY`",
                        key.display_name()
                    ),
                    span: key.span,
                });
            }
        }

        self.reject_unsupported()?;
        self.eat(&TokenKind::Semi);
        self.reject_unsupported()?;
        if self.peek().kind != TokenKind::Eof {
            return Err(self.unexpected("end of query"));
        }
        Ok(Query {
            select_key,
            aggregate,
            aggregate_span,
            from,
            joins,
            filter,
            group_by,
            explain,
        })
    }

    /// Parses an optional `GROUP BY <column>` clause. A second key is
    /// rejected explicitly: grouped releases support exactly one key over a
    /// declared public domain.
    fn group_by(&mut self) -> Result<Option<GroupBy>, SqlError> {
        if self.peek().kind != TokenKind::Group {
            return Ok(None);
        }
        let start = self.advance().span;
        self.expect(&TokenKind::By, "`BY` after `GROUP`")?;
        let key = self.column_ref()?;
        if self.peek().kind == TokenKind::Comma {
            return Err(SqlError::Unsupported {
                construct: "multi-column `GROUP BY`".to_owned(),
                reason: "grouped releases range over one declared public key domain; \
                         run one report per key, or concatenate the keys into one \
                         column with its own declared domain"
                    .to_owned(),
                span: self.peek().span,
            });
        }
        let span = start.to(key.span);
        Ok(Some(GroupBy { key, span }))
    }

    fn aggregate(&mut self) -> Result<(Aggregate, Span), SqlError> {
        match self.peek().kind.clone() {
            TokenKind::Count => {
                let start = self.advance().span;
                self.expect(&TokenKind::LParen, "`(`")?;
                self.expect(&TokenKind::Star, "`*`")?;
                let end = self.expect(&TokenKind::RParen, "`)`")?.span;
                Ok((Aggregate::CountStar, start.to(end)))
            }
            TokenKind::Sum => {
                let start = self.advance().span;
                self.expect(&TokenKind::LParen, "`(`")?;
                let column = self.column_ref()?;
                let end = self.expect(&TokenKind::RParen, "`)`")?.span;
                Ok((Aggregate::Sum(column), start.to(end)))
            }
            _ => Err(self.unexpected("an aggregate (`COUNT(*)` or `SUM(column)`)")),
        }
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        self.reject_unsupported()?;
        let (table, table_span) = self.ident("a table name")?;
        // Optional alias: `AS alias` or a bare identifier.
        let (alias, alias_span) = if self.eat(&TokenKind::As) {
            self.ident("an alias after `AS`")?
        } else if matches!(self.peek().kind, TokenKind::Ident(_)) {
            self.ident("an alias")?
        } else {
            (table.clone(), table_span)
        };
        Ok(TableRef {
            table,
            alias,
            table_span,
            alias_span,
        })
    }

    fn conjunction(&mut self) -> Result<Vec<Predicate>, SqlError> {
        let mut predicates = vec![self.predicate()?];
        loop {
            self.reject_unsupported()?;
            if !self.eat(&TokenKind::And) {
                break;
            }
            predicates.push(self.predicate()?);
        }
        Ok(predicates)
    }

    fn predicate(&mut self) -> Result<Predicate, SqlError> {
        self.reject_unsupported()?;
        let lhs = self.operand()?;
        self.reject_unsupported()?;
        let op = match self.peek().kind {
            TokenKind::Eq => Comparison::Eq,
            TokenKind::Neq => Comparison::Neq,
            TokenKind::Lt => Comparison::Lt,
            TokenKind::Gt => Comparison::Gt,
            TokenKind::Le => Comparison::Le,
            TokenKind::Ge => Comparison::Ge,
            _ => return Err(self.unexpected("a comparison operator")),
        };
        self.advance();
        self.reject_unsupported()?;
        let rhs = self.operand()?;
        let span = lhs.span().to(rhs.span());
        Ok(Predicate { lhs, op, rhs, span })
    }

    fn operand(&mut self) -> Result<Operand, SqlError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(_) => Ok(Operand::Column(self.column_ref()?)),
            TokenKind::Int(v) => {
                let span = self.advance().span;
                Ok(Operand::Literal(Value::Int(v), span))
            }
            TokenKind::Str(s) => {
                let span = self.advance().span;
                Ok(Operand::Literal(Value::str(&s), span))
            }
            _ => Err(self.unexpected("a column, integer or string")),
        }
    }

    fn column_ref(&mut self) -> Result<ColumnRef, SqlError> {
        let (first, first_span) = self.ident("a column name")?;
        if self.eat(&TokenKind::Dot) {
            let (column, col_span) = self.ident("a column name after `.`")?;
            Ok(ColumnRef {
                qualifier: Some(first),
                column,
                span: first_span.to(col_span),
            })
        } else {
            Ok(ColumnRef {
                qualifier: None,
                column: first,
                span: first_span,
            })
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), SqlError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(name) => {
                let span = self.advance().span;
                Ok((name, span))
            }
            _ => Err(self.unexpected(what)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_count_star_with_joins_and_where() {
        let q = parse(
            "SELECT COUNT(*) FROM visits v1 JOIN visits AS v2 ON v1.place = v2.place \
             WHERE v1.person < v2.person",
        )
        .unwrap();
        assert_eq!(q.aggregate, Aggregate::CountStar);
        assert_eq!(q.from.table, "visits");
        assert_eq!(q.from.alias, "v1");
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.joins[0].table.alias, "v2");
        assert_eq!(q.joins[0].on.len(), 1);
        assert_eq!(q.filter.len(), 1);
        assert_eq!(q.filter[0].op, Comparison::Lt);
    }

    #[test]
    fn inner_join_is_accepted_and_cross_join_rejected() {
        let q = parse(
            "SELECT COUNT(*) FROM visits v1 INNER JOIN residents r1 ON r1.person = v1.person",
        )
        .unwrap();
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.from.alias, "v1"); // INNER must not be swallowed as an alias
        let sql = "SELECT COUNT(*) FROM t CROSS JOIN u";
        let (construct, span) = unsupported(sql);
        assert_eq!(construct, "`CROSS JOIN`");
        assert_eq!(span.slice(sql), "CROSS");
    }

    #[test]
    fn parses_sum_and_implicit_alias() {
        let q = parse("SELECT SUM(amount) FROM payments;").unwrap();
        match q.aggregate {
            Aggregate::Sum(ref c) => assert_eq!(c.column, "amount"),
            ref other => panic!("expected SUM, got {other:?}"),
        }
        assert_eq!(q.from.alias, "payments");
        assert!(q.joins.is_empty());
        assert!(q.filter.is_empty());
    }

    #[test]
    fn literals_and_all_operators_parse() {
        let sql = "SELECT COUNT(*) FROM t WHERE a = 1 AND b <> 'x' AND c < 2 AND d > 3 \
             AND e <= 4 AND f >= 5 AND g != 6";
        let q = parse(sql).unwrap();
        assert_eq!(q.filter.len(), 7);
        match &q.filter[1].rhs {
            Operand::Literal(v, span) => {
                assert_eq!(v, &Value::str("x"));
                assert_eq!(span.slice(sql), "'x'");
            }
            other => panic!("expected literal, got {other:?}"),
        }
        assert_eq!(q.filter[6].op, Comparison::Neq);
    }

    fn unsupported(sql: &str) -> (String, Span) {
        match parse(sql).unwrap_err() {
            SqlError::Unsupported {
                construct, span, ..
            } => (construct, span),
            other => panic!("expected Unsupported for {sql:?}, got {other:?}"),
        }
    }

    #[test]
    fn rejects_not_with_a_span_on_the_keyword() {
        let sql = "SELECT COUNT(*) FROM t WHERE NOT a = 1";
        let (construct, span) = unsupported(sql);
        assert!(construct.contains("NOT"));
        assert_eq!(span.slice(sql), "NOT");
    }

    #[test]
    fn rejects_not_in_specifically() {
        let sql = "SELECT COUNT(*) FROM t WHERE a NOT IN (1, 2)";
        let (construct, _) = unsupported(sql);
        assert_eq!(construct, "`NOT IN`");
    }

    #[test]
    fn rejects_outer_join_variants() {
        for kw in ["LEFT", "RIGHT", "FULL", "LEFT OUTER"] {
            let sql = format!("SELECT COUNT(*) FROM t {kw} JOIN u ON t.a = u.a");
            let (construct, span) = unsupported(&sql);
            assert_eq!(construct, "outer joins");
            assert_eq!(span.start, 23, "span for {kw}");
        }
    }

    #[test]
    fn rejects_or_union_except_order_having_distinct() {
        assert_eq!(
            unsupported("SELECT COUNT(*) FROM t WHERE a = 1 OR b = 2").0,
            "disjunction (`OR`)"
        );
        assert_eq!(
            unsupported("SELECT COUNT(*) FROM t UNION SELECT COUNT(*) FROM u").0,
            "`UNION`"
        );
        assert_eq!(
            unsupported("SELECT COUNT(*) FROM t EXCEPT SELECT COUNT(*) FROM u").0,
            "`EXCEPT`"
        );
        let sql = "SELECT COUNT(*) FROM t ORDER BY a";
        let (construct, span) = unsupported(sql);
        assert_eq!(construct, "`ORDER BY`");
        assert_eq!(span.slice(sql), "ORDER");
        let sql = "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 3";
        let (construct, span) = unsupported(sql);
        assert_eq!(construct, "`HAVING`");
        assert_eq!(span.slice(sql), "HAVING");
        assert_eq!(
            unsupported("SELECT DISTINCT COUNT(*) FROM t").0,
            "`DISTINCT`"
        );
    }

    #[test]
    fn parses_group_by_with_and_without_a_select_key() {
        let q = parse("SELECT place, COUNT(*) FROM visits GROUP BY place").unwrap();
        assert_eq!(q.aggregate, Aggregate::CountStar);
        let key = q.select_key.as_ref().unwrap();
        assert_eq!(key.column, "place");
        assert_eq!(q.group_by.as_ref().unwrap().key.column, "place");

        let sql = "SELECT v.place, SUM(amount) FROM visits v GROUP BY v.place;";
        let q = parse(sql).unwrap();
        assert_eq!(
            q.select_key.as_ref().unwrap().qualifier.as_deref(),
            Some("v")
        );
        let gb = q.group_by.as_ref().unwrap();
        assert_eq!(gb.key.qualifier.as_deref(), Some("v"));
        assert_eq!(gb.span.slice(sql), "GROUP BY v.place");

        // The SELECT key is optional: the keys come from the declared domain.
        let q = parse("SELECT COUNT(*) FROM visits WHERE place <> 'zoo' GROUP BY place").unwrap();
        assert!(q.select_key.is_none());
        assert!(q.group_by.is_some());
        assert_eq!(q.filter.len(), 1);
    }

    #[test]
    fn multi_column_group_by_is_rejected_and_bare_select_keys_need_group_by() {
        let sql = "SELECT COUNT(*) FROM t GROUP BY a, b";
        let (construct, span) = unsupported(sql);
        assert_eq!(construct, "multi-column `GROUP BY`");
        assert_eq!(span.slice(sql), ",");

        let sql = "SELECT place, COUNT(*) FROM visits";
        match parse(sql).unwrap_err() {
            SqlError::Parse { message, span } => {
                assert!(message.contains("GROUP BY"), "{message}");
                assert_eq!(span.slice(sql), "place");
            }
            other => panic!("expected Parse error, got {other:?}"),
        }
        assert!(parse("SELECT COUNT(*) FROM t GROUP BY").is_err());
        assert!(parse("SELECT COUNT(*) FROM t GROUP place").is_err());
    }

    #[test]
    fn parse_errors_point_at_the_offending_token() {
        let sql = "SELECT COUNT(*) FROM";
        match parse(sql).unwrap_err() {
            SqlError::Parse { message, span } => {
                assert!(message.contains("table name"), "{message}");
                assert_eq!(span.start, sql.len());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("SELECT MAX(x) FROM t").is_err());
        assert!(parse("SELECT COUNT(*) FROM t JOIN u").is_err());
        assert!(parse("SELECT COUNT(*) FROM t WHERE a").is_err());
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(parse("SELECT COUNT(*) FROM t WHERE a = 1 b").is_err());
    }
}
