//! Plan execution over an [`AnnotatedDatabase`].
//!
//! Executing a [`QueryPlan`] produces the annotated output relation: scans
//! are renamed with `ρ`, joins run through the algebra layer's hash
//! theta-join, and residual/`WHERE` predicates run as selections `σ`. The
//! annotations of the output tuples are exactly the provenance expressions
//! the recursive mechanism aggregates — see [`crate::session::SqlSession`]
//! for the private release.

use crate::error::SqlError;
use crate::plan::{GroupedQueryPlan, PlanAggregate, QueryPlan, ScanStep};
use rmdp_krelation::algebra::{rename, select, theta_join};
use rmdp_krelation::annotate::AnnotatedDatabase;
use rmdp_krelation::tuple::{Tuple, Value};
use rmdp_krelation::KRelation;

/// Evaluates `plan` against `db`, returning the annotated output relation.
///
/// The plan must have been produced against the same database schema
/// (`SqlSession` guarantees this); a table dropped between planning and
/// execution surfaces as [`SqlError::UnknownTable`].
pub fn execute(db: &AnnotatedDatabase, plan: &QueryPlan) -> Result<KRelation, SqlError> {
    let mut acc = scan(db, &plan.from)?;
    for step in &plan.joins {
        let right = scan(db, &step.scan)?;
        let joined = theta_join(&acc, &right, &step.equi, |t| {
            step.residual.iter().all(|p| p.matches(t))
        });
        acc = joined;
    }
    if !plan.filter.is_empty() {
        acc = select(&acc, |t| plan.filter.iter().all(|p| p.matches(t)));
    }
    Ok(acc)
}

/// Evaluates every group of a grouped plan: one execution of the template
/// with the dissolved key conjunct appended, per declared domain value, in
/// domain order. Keys the data never mentions evaluate to empty relations —
/// by design: the released report always covers exactly the declared public
/// domain, so the *set* of released keys reveals nothing about the data.
pub fn execute_grouped(
    db: &AnnotatedDatabase,
    plan: &GroupedQueryPlan,
) -> Result<Vec<(Value, KRelation)>, SqlError> {
    plan.domain
        .iter()
        .map(|value| Ok((value.clone(), execute(db, &plan.group_plan(value))?)))
        .collect()
}

/// The per-tuple weight function of the plan's aggregate.
///
/// `COUNT(*)` weighs every tuple 1. `SUM(col)` weighs a tuple by its value
/// of `col`; the values must be nonnegative integers (Def. 12 requires
/// nonnegative weights — a negative weight would break the monotonicity of
/// the linear query).
pub fn weigh(plan: &QueryPlan, tuple: &Tuple) -> Result<f64, SqlError> {
    match &plan.aggregate {
        PlanAggregate::CountStar => Ok(1.0),
        PlanAggregate::Sum(attr) => match tuple.get(attr) {
            Some(Value::Int(v)) if *v >= 0 => Ok(*v as f64),
            Some(Value::Int(v)) => Err(SqlError::BadAggregate {
                message: format!(
                    "SUM({attr}) hit the negative value {v}; linear-query weights must be \
                     nonnegative (Def. 12)"
                ),
                span: plan.aggregate_span,
            }),
            Some(other) => Err(SqlError::BadAggregate {
                message: format!("SUM({attr}) hit the non-numeric value {other:?}"),
                span: plan.aggregate_span,
            }),
            None => Err(SqlError::BadAggregate {
                message: format!("SUM({attr}): output tuple lacks the attribute"),
                span: plan.aggregate_span,
            }),
        },
    }
}

fn scan(db: &AnnotatedDatabase, step: &ScanStep) -> Result<KRelation, SqlError> {
    let Some(table) = db.table(&step.table) else {
        return Err(SqlError::UnknownTable {
            name: step.table.clone(),
            span: crate::token::Span::new(0, 0),
            available: db.table_names().into_iter().map(str::to_owned).collect(),
        });
    };
    Ok(rename(table, |attr| {
        step.renames
            .iter()
            .find(|(base, _)| base == attr)
            .map(|(_, qualified)| qualified.clone())
            .unwrap_or_else(|| attr.clone())
    }))
}
