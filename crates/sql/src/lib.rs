//! SQL frontend for the recursive mechanism: a positive SQL subset compiled
//! to K-relation algebra and released with differential privacy.
//!
//! The paper's headline capability is DP aggregation over queries with
//! **unrestricted joins** (Sec. 3.2, 5.2): a join can fan one participant's
//! data out into arbitrarily many output rows, which breaks the classical
//! global-sensitivity Laplace mechanism but is exactly what the recursive
//! mechanism absorbs. This crate makes that capability consumable the way
//! DP-SQL systems (Chorus; Johnson, Near & Song) are consumed — as a SQL
//! string — while accepting the self-joins those systems must restrict:
//!
//! * [`token`] / [`parser`] / [`ast`] — a hand-rolled tokenizer and
//!   recursive-descent parser for `SELECT COUNT(*)|SUM(col) FROM … JOIN … ON …
//!   WHERE …` with conjunctive predicates. Constructs outside positive
//!   relational algebra (`NOT`, `NOT IN`, outer joins, `EXCEPT`, …) are
//!   rejected with span-carrying errors explaining the monotonicity reason.
//! * [`mod@plan`] — validation against the [`AnnotatedDatabase`] schema (alias
//!   resolution, ambiguity checks) and lowering to the algebra operators of
//!   `rmdp_krelation`: scans + `ρ` renames, hash theta-joins, selections.
//! * [`exec`] — plan evaluation producing the annotated output relation.
//! * [`session`] — [`SqlSession::query`], the one-call path from a SQL
//!   string to a [`Release`](rmdp_core::Release) (or a per-group
//!   [`GroupedRelease`] for `GROUP BY` reports over declared public key
//!   domains) through [`EfficientSequences`](rmdp_core::EfficientSequences).
//!
//! ```
//! use rmdp_core::MechanismParams;
//! use rmdp_krelation::annotate::AnnotatedDatabase;
//! use rmdp_krelation::tuple::{Tuple, Value};
//! use rmdp_krelation::{Expr, KRelation};
//! use rmdp_sql::SqlSession;
//!
//! let mut db = AnnotatedDatabase::new();
//! let mut visits = KRelation::new(["person", "place"]);
//! for (person, place) in [("ada", "museum"), ("bo", "museum")] {
//!     let p = db.intern(person);
//!     visits.insert(
//!         Tuple::new([("person", Value::str(person)), ("place", Value::str(place))]),
//!         Expr::Var(p),
//!     );
//! }
//! db.insert_table("visits", visits);
//!
//! let mut session = SqlSession::new(db, MechanismParams::paper_edge_privacy(1.0));
//! let release = session
//!     .query_scalar(
//!         "SELECT COUNT(*) FROM visits v1 JOIN visits v2 ON v1.place = v2.place \
//!          WHERE v1.person < v2.person",
//!     )
//!     .unwrap();
//! assert_eq!(release.true_answer, 1.0); // ada and bo met at the museum
//! ```

#![deny(missing_docs)]

pub mod ast;
pub mod error;
pub mod exec;
pub mod fingerprint;
pub mod parser;
pub mod plan;
mod release;
pub mod session;
pub mod snapshot;
pub mod token;

pub use error::SqlError;
pub use fingerprint::{plan_fingerprint, plan_key, PlanKey};
pub use parser::parse;
pub use plan::{plan, plan_query, AnyPlan, GroupedQueryPlan, QueryPlan};
pub use session::{
    BatchRelease, GroupRelease, GroupedRelease, QueryOutput, SqlSession, TracedOutput,
};
pub use snapshot::CatalogSnapshot;
pub use token::{Span, Token, TokenKind};

// Re-exported so downstream users can configure grouped-report pricing
// without importing `rmdp_noise` separately.
pub use rmdp_noise::GroupBudgetPolicy;

// Re-exported so downstream users can read traces and wire up telemetry
// (`SqlSession::with_metrics` / `with_clock`) without importing
// `rmdp_observe` separately.
pub use rmdp_observe::{
    CacheOutcome, MetricsRegistry, MetricsSnapshot, ReleaseTrace, Stage, StageSpan,
};

// Re-exported so downstream users of the facade crate can name the argument
// type of `SqlSession::new` without importing `rmdp_krelation` separately.
pub use rmdp_krelation::annotate::AnnotatedDatabase;
