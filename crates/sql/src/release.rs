//! The stateless release core shared by sessions, batches and servers.
//!
//! These functions are the execution tail of every release path: they take
//! *explicit* shared state (database, params, cache handle) and *explicit*
//! per-release state (the noise RNG), own no session, and debit no budget —
//! admission and accounting stay with the caller. That split is what lets
//! [`SqlSession`](crate::SqlSession) methods, [`SqlSession::query_batch`]
//! workers, grouped fan-out workers and `rmdp-server` request threads all
//! run the *same* code under their own concurrency regimes.

use crate::error::SqlError;
use crate::exec::{execute, weigh};
use crate::fingerprint::{plan_key, PlanKey};
use crate::plan::{GroupedQueryPlan, QueryPlan};
use crate::session::{GroupRelease, GroupedRelease};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rmdp_core::{
    CachedSequences, EfficientSequences, EntryTag, FrozenSequences, LpWorkStats, MechanismParams,
    Parallelism, RecursiveMechanism, RefreshTier, Release, SensitiveKRelation, SequenceCache,
    SimplexOptions,
};
use rmdp_krelation::annotate::AnnotatedDatabase;
use rmdp_krelation::fingerprint::FingerprintHasher;
use rmdp_krelation::tuple::Value;
use rmdp_noise::{GroupBudgetPolicy, PrivacyBudget};
use rmdp_observe::{CacheOutcome, NoopRecorder, Recorder, Stage};
use rmdp_runtime::par_try_map_indexed;
use std::sync::Arc;

/// What one [`release_plan`] call produced beyond the release itself: how
/// the cache behaved, how much LP work ran on this call (zero on a hit),
/// and — when the miss was served by re-deriving a parked pre-delta entry —
/// which refresh tier did it.
pub(crate) struct ReleaseOutcome {
    pub(crate) release: Release,
    pub(crate) cache: CacheOutcome,
    pub(crate) lp: LpWorkStats,
    pub(crate) refresh: Option<RefreshTier>,
}

/// The trace-facing facts of one grouped report: aggregate cache behaviour,
/// the domain-order fold of per-group LP work, and the ε split the policy
/// chose.
pub(crate) struct GroupedOutcome {
    pub(crate) cache: CacheOutcome,
    pub(crate) cache_hits: u64,
    pub(crate) cache_misses: u64,
    pub(crate) warm_refreshes: u64,
    pub(crate) lp: LpWorkStats,
    pub(crate) fraction: f64,
    pub(crate) group_epsilon1: f64,
    pub(crate) group_epsilon2: f64,
}

/// The noise seed of one group: a stable hash of the report-level seed and
/// the **key value** (type-tagged, so `Int(1)` and `Str("1")` differ).
/// Binding the seed to the value rather than the domain position makes
/// per-key releases invariant under re-declaring the domain in a different
/// order — and keeps the fan-out bit-identical for every `Parallelism`,
/// since every group's stream is fixed before any worker starts.
pub(crate) fn group_seed(report_seed: u64, key: &Value) -> u64 {
    let mut hasher = FingerprintHasher::new();
    hasher.write_u64(report_seed);
    match key {
        Value::Int(v) => {
            hasher.write_u64(1);
            hasher.write_u64(*v as u64);
        }
        Value::Str(s) => {
            hasher.write_u64(2);
            hasher.write_bytes(s.as_bytes());
        }
        Value::Bool(b) => {
            hasher.write_u64(3);
            hasher.write_u64(u64::from(*b));
        }
    }
    hasher.finish().0 as u64
}

/// Executes a validated plan and releases its aggregate: the shared tail of
/// `SqlSession::query` and each `SqlSession::query_batch` worker.
///
/// With a cache handle, a fingerprint hit serves the frozen `H`/`G` table
/// directly — skipping plan execution *and* every sequence LP — and a miss
/// computes the full table once (all `2(|P|+1)` entries, warm-started
/// chains, up to `params.parallelism` workers), publishes it, and releases
/// from the freshly frozen copy. Noise is drawn from `rng` identically on
/// every path, so hit, miss and uncached releases are bit-identical under
/// the same seed.
pub(crate) fn release_plan<T: Recorder>(
    db: &AnnotatedDatabase,
    plan: &QueryPlan,
    params: MechanismParams,
    rng: &mut StdRng,
    cache: Option<(&SequenceCache, &PlanKey)>,
    recorder: &mut T,
) -> Result<ReleaseOutcome, SqlError> {
    if let Some((cache, key)) = cache {
        recorder.enter(Stage::CacheLookup);
        let cached = cache.get(key.key);
        recorder.exit(Stage::CacheLookup);
        let (frozen, outcome, lp, refresh) = match cached {
            Some(hit) => (hit, CacheOutcome::Hit, LpWorkStats::default(), None),
            None => {
                recorder.enter(Stage::Plan);
                let query = build_sensitive_query(db, plan);
                recorder.exit(Stage::Plan);
                recorder.enter(Stage::SequenceSolve);
                // A parked pre-delta entry of the same lineage (swept by
                // `purge_stale` on snapshot swap) turns this miss into a
                // warm refresh; either path is bit-identical to a cold
                // compute on the post-delta data, so the choice is purely
                // a matter of LP work.
                let computed = query.and_then(|query| match cache.take_refresh_base(key.lineage) {
                    Some((base, seed)) => base
                        .refresh(&seed, query, SimplexOptions::default(), params.parallelism)
                        .map(|(frozen, next_seed, stats)| {
                            (frozen, next_seed, stats.lp, Some(stats.tier))
                        })
                        .map_err(SqlError::from),
                    None => FrozenSequences::compute_with_seed(
                        EfficientSequences::new(query),
                        params.parallelism,
                    )
                    .map(|(frozen, seed, stats)| (frozen, seed, stats, None))
                    .map_err(SqlError::from),
                });
                recorder.exit(Stage::SequenceSolve);
                let (frozen, seed, stats, refresh) = computed?;
                let frozen = Arc::new(frozen);
                cache.insert_tagged(
                    key.key,
                    Arc::clone(&frozen),
                    EntryTag {
                        stamps: key.stamps.clone(),
                        lineage: key.lineage,
                    },
                    Some(Arc::new(seed)),
                );
                (frozen, CacheOutcome::Miss, stats, refresh)
            }
        };
        let mut mechanism = RecursiveMechanism::new(CachedSequences(frozen), params)?;
        let release = mechanism.release_recorded(rng, recorder)?;
        return Ok(ReleaseOutcome {
            release,
            cache: outcome,
            lp,
            refresh,
        });
    }

    recorder.enter(Stage::Plan);
    let query = build_sensitive_query(db, plan);
    recorder.exit(Stage::Plan);
    // The constructor precomputes the sequence tables when the params are
    // parallel, so its runtime belongs to the solve span too.
    recorder.enter(Stage::SequenceSolve);
    let mechanism = query.and_then(|query| {
        RecursiveMechanism::new(EfficientSequences::new(query), params).map_err(SqlError::from)
    });
    recorder.exit(Stage::SequenceSolve);
    let mut mechanism = mechanism?;
    let release = mechanism.release_recorded(rng, recorder)?;
    let lp = mechanism.sequences_mut().stats();
    Ok(ReleaseOutcome {
        release,
        cache: CacheOutcome::Uncached,
        lp,
        refresh: None,
    })
}

/// Releases a whole grouped (`GROUP BY`) report: the budget-free core of
/// `SqlSession::query_grouped`, also run per-item by the mixed batch path
/// and per-request by `rmdp-server` workers.
///
/// `params` is the caller's **full per-release** parameter set; the
/// policy's per-group ε split is derived here (β and θ — the
/// sensitivity-relevant fields the cache keys on — stay put, so grouped and
/// scalar traffic share sequence-cache entries). The `k` per-group sequence
/// computations fan out across the worker pool and through the shared
/// [`SequenceCache`] under the session determinism discipline: one seed is
/// drawn from `rng` per report, and each group's noise stream derives from
/// that seed **and the key value**, so releases are bit-identical across
/// `Parallelism` settings, cached/uncached runs, and re-declared domain
/// orders.
///
/// Admission and the debit of the report's cost stay with the caller; the
/// returned report's `epsilon_spent` is the policy's report price, computed
/// here so callers debit exactly what the report says it spent.
pub(crate) fn release_grouped_plan<T: Recorder>(
    db: &AnnotatedDatabase,
    grouped: &GroupedQueryPlan,
    params: MechanismParams,
    policy: GroupBudgetPolicy,
    rng: &mut StdRng,
    cache: Option<&SequenceCache>,
    recorder: &mut T,
) -> Result<(GroupedRelease, GroupedOutcome), SqlError> {
    let k = grouped.num_groups();
    let per_release = PrivacyBudget {
        epsilon: params.total_epsilon(),
        delta: 0.0,
    };
    let cost = policy.report_cost(per_release, k);

    // Per-group parameters: only the ε split scales; β and θ — the
    // sensitivity-relevant fields the cache keys on — stay put, so grouped
    // and scalar traffic share sequence-cache entries.
    let fraction = policy.per_group_fraction(k);
    let group_params = MechanismParams {
        epsilon1: params.epsilon1 * fraction,
        epsilon2: params.epsilon2 * fraction,
        ..params
    };

    let plans: Vec<QueryPlan> = grouped
        .domain
        .iter()
        .map(|v| grouped.group_plan(v))
        .collect();
    // Fingerprints are computed before the fan-out (cheap and pure), so
    // workers only touch the shared cache.
    recorder.enter(Stage::Fingerprint);
    let keys: Option<Vec<PlanKey>> = cache.map(|_| {
        plans
            .iter()
            .map(|p| plan_key(db, p, &group_params))
            .collect()
    });
    recorder.exit(Stage::Fingerprint);
    // lint:allow(rng-confinement): sanctioned seed-schedule derivation — the per-report root comes from the session's logged seed stream
    let report_seed = rng.next_u64();
    let seeds: Vec<u64> = grouped
        .domain
        .iter()
        .map(|v| group_seed(report_seed, v))
        .collect();

    // The report level owns the concurrency; the worker budget is split
    // so total thread counts do not multiply (same discipline as
    // `query_batch`).
    let workers = params.parallelism.workers();
    let per_group = workers / k.max(1);
    let worker_params = group_params.with_parallelism(if per_group > 1 {
        Parallelism::Threads(per_group)
    } else {
        Parallelism::Serial
    });
    recorder.enter(Stage::SequenceSolve);
    let outcomes = par_try_map_indexed(params.parallelism, k, |i| {
        // lint:allow(rng-confinement): sanctioned construction — each group worker's RNG descends from the logged seed schedule, so replay is bit-identical
        let mut rng = StdRng::seed_from_u64(seeds[i]);
        let key = keys.as_ref().map(|ks| &ks[i]);
        release_plan(
            db,
            &plans[i],
            worker_params,
            &mut rng,
            cache.zip(key),
            &mut NoopRecorder,
        )
    });
    recorder.exit(Stage::SequenceSolve);
    let outcomes = outcomes?;

    // Fold the per-group LP work and cache outcomes in domain (= input)
    // order; `par_try_map_indexed` already returns index order, so the
    // totals are identical for every `Parallelism`.
    let mut lp = LpWorkStats::default();
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    let mut warm_refreshes = 0u64;
    for outcome in &outcomes {
        lp.absorb(&outcome.lp);
        match outcome.cache {
            CacheOutcome::Hit => cache_hits += 1,
            CacheOutcome::Miss => cache_misses += 1,
            CacheOutcome::Uncached => {}
        }
        if matches!(
            outcome.refresh,
            Some(RefreshTier::Unchanged | RefreshTier::WarmChain)
        ) {
            warm_refreshes += 1;
        }
    }
    let cache_outcome = if cache.is_none() {
        CacheOutcome::Uncached
    } else if cache_misses == 0 {
        CacheOutcome::Hit
    } else {
        CacheOutcome::Miss
    };

    let report = GroupedRelease {
        key_column: grouped.key_display.clone(),
        groups: grouped
            .domain
            .iter()
            .cloned()
            .zip(outcomes)
            .map(|(key, outcome)| GroupRelease {
                key,
                release: outcome.release,
            })
            .collect(),
        per_group_epsilon: group_params.total_epsilon(),
        epsilon_spent: cost.epsilon,
        policy,
    };
    let info = GroupedOutcome {
        cache: cache_outcome,
        cache_hits,
        cache_misses,
        warm_refreshes,
        lp,
        fraction,
        group_epsilon1: group_params.epsilon1,
        group_epsilon2: group_params.epsilon2,
    };
    Ok((report, info))
}

/// Executes the plan and wraps its annotated output as the linear query the
/// mechanism aggregates.
pub(crate) fn build_sensitive_query(
    db: &AnnotatedDatabase,
    plan: &QueryPlan,
) -> Result<SensitiveKRelation, SqlError> {
    let output = execute(db, plan)?;

    // Validate all weights before handing them to the mechanism (whose
    // constructor asserts) so bad aggregates surface as SqlError.
    for (tuple, _) in output.iter() {
        weigh(plan, tuple)?;
    }
    let participants = db.universe().ids().collect();
    Ok(SensitiveKRelation::new(&output, participants, |t| {
        weigh(plan, t).expect("weights validated above")
    }))
}
