//! Logical planner: validates a parsed [`Query`] against a database schema
//! and lowers it to K-relation algebra operators.
//!
//! The lowering follows the safe-annotation recipe of paper Sec. 5.2:
//!
//! 1. every table reference becomes a **scan + rename** `ρ` that qualifies
//!    each attribute with the reference's alias (`person` ↦ `v1.person`), so
//!    self-joins never collide;
//! 2. every `JOIN … ON` becomes a **theta-join**: the `ON` conjuncts that
//!    equate a column of the new table with a column of the accumulated
//!    relation become hash-join keys ([`rmdp_krelation::algebra::theta_join`]);
//!    the remaining conjuncts become a residual selection `σ`;
//! 3. the `WHERE` conjuncts become a final selection `σ`.
//!
//! Because only `ρ`, `⋈` and `σ` are emitted, the provenance annotations of
//! the output are conjunctions/disjunctions of base-table annotations —
//! negation-free by construction, which is exactly the monotonicity the
//! recursive mechanism requires (Theorem 5).

use crate::ast::{Aggregate, ColumnRef, Comparison, GroupBy, Operand, Predicate, Query, TableRef};
use crate::error::SqlError;
use crate::parser::parse;
use crate::token::Span;
use rmdp_krelation::annotate::AnnotatedDatabase;
use rmdp_krelation::tuple::{Attr, Tuple, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A scan of one base table under an alias; `renames` maps every base
/// attribute to its alias-qualified name.
#[derive(Clone, Debug)]
pub struct ScanStep {
    /// The base table.
    pub table: String,
    /// The alias qualifying this scan's attributes.
    pub alias: String,
    /// `(base, qualified)` attribute pairs, sorted by base attribute.
    pub renames: Vec<(Attr, Attr)>,
}

/// A comparison compiled against qualified attribute names.
#[derive(Clone, Debug)]
pub struct CompiledPredicate {
    /// Left operand.
    pub lhs: CompiledOperand,
    /// Operator.
    pub op: Comparison,
    /// Right operand.
    pub rhs: CompiledOperand,
}

/// An operand compiled to a qualified attribute or a constant.
#[derive(Clone, Debug)]
pub enum CompiledOperand {
    /// A qualified attribute of the intermediate relation.
    Column(Attr),
    /// A constant.
    Literal(Value),
}

impl CompiledPredicate {
    /// Evaluates the predicate on a merged tuple. Comparisons between values
    /// of different types (or on absent attributes) are `false`, mirroring
    /// SQL's "unknown is not true".
    pub fn matches(&self, tuple: &Tuple) -> bool {
        let lookup = |op: &CompiledOperand| -> Option<Value> {
            match op {
                CompiledOperand::Column(attr) => tuple.get(attr).cloned(),
                CompiledOperand::Literal(v) => Some(v.clone()),
            }
        };
        let (Some(lhs), Some(rhs)) = (lookup(&self.lhs), lookup(&self.rhs)) else {
            return false;
        };
        let comparable = matches!(
            (&lhs, &rhs),
            (Value::Int(_), Value::Int(_))
                | (Value::Str(_), Value::Str(_))
                | (Value::Bool(_), Value::Bool(_))
        );
        if !comparable {
            return false;
        }
        match self.op {
            Comparison::Eq => lhs == rhs,
            Comparison::Neq => lhs != rhs,
            Comparison::Lt => lhs < rhs,
            Comparison::Gt => lhs > rhs,
            Comparison::Le => lhs <= rhs,
            Comparison::Ge => lhs >= rhs,
        }
    }
}

impl fmt::Display for CompiledPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let side = |op: &CompiledOperand| match op {
            CompiledOperand::Column(a) => a.name().to_owned(),
            CompiledOperand::Literal(v) => format!("{v:?}"),
        };
        write!(
            f,
            "{} {} {}",
            side(&self.lhs),
            self.op.symbol(),
            side(&self.rhs)
        )
    }
}

/// One join of the chain: equi-join keys plus residual predicates.
#[derive(Clone, Debug)]
pub struct JoinStep {
    /// The scan joined in by this step.
    pub scan: ScanStep,
    /// `(accumulated, new)` qualified attribute pairs joined with `=`.
    pub equi: Vec<(Attr, Attr)>,
    /// `ON` conjuncts that are not equi-join keys.
    pub residual: Vec<CompiledPredicate>,
}

/// The weight function of the aggregate, compiled.
#[derive(Clone, Debug)]
pub enum PlanAggregate {
    /// `COUNT(*)`: weight 1 per output tuple.
    CountStar,
    /// `SUM(col)`: weight = the tuple's value of the qualified column.
    Sum(Attr),
}

/// A validated, lowered query plan.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    /// The compiled aggregate.
    pub aggregate: PlanAggregate,
    /// Source span of the aggregate (for runtime aggregate errors).
    pub aggregate_span: crate::token::Span,
    /// The first scan (`FROM`).
    pub from: ScanStep,
    /// The join chain in execution order.
    pub joins: Vec<JoinStep>,
    /// The `WHERE` conjuncts.
    pub filter: Vec<CompiledPredicate>,
}

/// A grouped report plan: one scalar template plus the declared public key
/// domain it fans out over.
///
/// The group key is **dissolved into an equality conjunct**: the per-group
/// plan for key value `v` is the template with `key = v` appended to its
/// `WHERE` conjuncts — a plain monotone scalar plan, indistinguishable from
/// the hand-written `… WHERE key = v` query. That is what makes grouped
/// releases compose with every scalar facility for free: each group runs
/// through the same executor, the same sequence LPs, and the same
/// [`SequenceCache`](rmdp_core::SequenceCache) keys (a grouped report and
/// the equivalent hand-written per-key queries share cache entries).
#[derive(Clone, Debug)]
pub struct GroupedQueryPlan {
    /// The qualified grouping-key attribute (`alias.column`).
    pub key: Attr,
    /// The key as written in the query (for reports and errors).
    pub key_display: String,
    /// Span of the `GROUP BY` clause.
    pub key_span: Span,
    /// The declared public domain, in declaration order (non-empty,
    /// deduplicated by [`AnnotatedDatabase::declare_public_domain`]).
    pub domain: Vec<Value>,
    /// The group-free scalar template every per-group plan extends.
    pub template: QueryPlan,
}

impl GroupedQueryPlan {
    /// Number of groups (`k`), i.e. the size of the declared domain.
    pub fn num_groups(&self) -> usize {
        self.domain.len()
    }

    /// The monotone scalar plan of one group: the template plus the
    /// dissolved key conjunct `key = value`.
    pub fn group_plan(&self, value: &Value) -> QueryPlan {
        let mut plan = self.template.clone();
        plan.filter.push(CompiledPredicate {
            lhs: CompiledOperand::Column(self.key.clone()),
            op: Comparison::Eq,
            rhs: CompiledOperand::Literal(value.clone()),
        });
        plan
    }
}

impl fmt::Display for GroupedQueryPlan {
    /// Renders the grouped pipeline: a `γ` header naming the key and domain,
    /// then the shared template.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let values: Vec<String> = self.domain.iter().map(|v| format!("{v:?}")).collect();
        writeln!(
            f,
            "γ {} ∈ {{{}}} ({} groups, key dissolved into σ {} = ⟨v⟩)",
            self.key,
            values.join(", "),
            self.num_groups(),
            self.key,
        )?;
        self.template.fmt(f)
    }
}

/// A validated plan of either shape: one scalar aggregate, or a grouped
/// report over a public key domain.
#[derive(Clone, Debug)]
pub enum AnyPlan {
    /// A single scalar aggregate release.
    Scalar(QueryPlan),
    /// A grouped report: one release per declared key.
    Grouped(GroupedQueryPlan),
}

impl AnyPlan {
    /// The scalar plan, if this is one.
    pub fn as_scalar(&self) -> Option<&QueryPlan> {
        match self {
            AnyPlan::Scalar(p) => Some(p),
            AnyPlan::Grouped(_) => None,
        }
    }

    /// The grouped plan, if this is one.
    pub fn as_grouped(&self) -> Option<&GroupedQueryPlan> {
        match self {
            AnyPlan::Scalar(_) => None,
            AnyPlan::Grouped(g) => Some(g),
        }
    }

    /// Unwraps the scalar plan; panics on a grouped one. For tests and
    /// callers that just planned a known-scalar query.
    pub fn expect_scalar(self) -> QueryPlan {
        match self {
            AnyPlan::Scalar(p) => p,
            AnyPlan::Grouped(g) => panic!("expected a scalar plan, got GROUP BY {}", g.key),
        }
    }
}

impl fmt::Display for AnyPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnyPlan::Scalar(p) => p.fmt(f),
            AnyPlan::Grouped(g) => g.fmt(f),
        }
    }
}

impl fmt::Display for QueryPlan {
    /// Renders the plan as an algebra pipeline, one operator per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ρ_{} (scan {})", self.from.alias, self.from.table)?;
        for step in &self.joins {
            let keys: Vec<String> = step
                .equi
                .iter()
                .map(|(a, b)| format!("{a} = {b}"))
                .collect();
            writeln!(
                f,
                "⋈ ρ_{} (scan {}) on [{}]",
                step.scan.alias,
                step.scan.table,
                keys.join(", ")
            )?;
            for r in &step.residual {
                writeln!(f, "  σ {r}")?;
            }
        }
        for r in &self.filter {
            writeln!(f, "σ {r}")?;
        }
        match &self.aggregate {
            PlanAggregate::CountStar => write!(f, "Σ count(*)"),
            PlanAggregate::Sum(attr) => write!(f, "Σ sum({attr})"),
        }
    }
}

/// Parses and plans `sql` against the schema of `db`, returning a scalar or
/// grouped plan depending on the query's shape.
pub fn plan(db: &AnnotatedDatabase, sql: &str) -> Result<AnyPlan, SqlError> {
    let query = parse(sql)?;
    plan_query(db, &query)
}

/// Plans an already-parsed [`Query`] against the schema of `db`.
///
/// [`SqlSession::query_traced`](crate::SqlSession::query_traced) uses this
/// to time parsing and lowering as separate trace stages; [`plan`] is the
/// one-shot convenience wrapper.
pub fn plan_query(db: &AnnotatedDatabase, query: &Query) -> Result<AnyPlan, SqlError> {
    Planner { db }.lower(query)
}

struct Planner<'a> {
    db: &'a AnnotatedDatabase,
}

/// A table reference resolved against the schema.
struct ResolvedRef {
    scan: ScanStep,
    /// Base attribute names of the table (unqualified).
    columns: BTreeSet<String>,
}

impl Planner<'_> {
    fn lower(&self, query: &Query) -> Result<AnyPlan, SqlError> {
        // Resolve all table references, checking aliases are unique.
        let mut resolved: Vec<ResolvedRef> = vec![self.resolve_table(&query.from)?];
        for join in &query.joins {
            let r = self.resolve_table(&join.table)?;
            if resolved.iter().any(|seen| seen.scan.alias == r.scan.alias) {
                return Err(SqlError::DuplicateAlias {
                    alias: r.scan.alias.clone(),
                    span: join.table.alias_span,
                });
            }
            resolved.push(r);
        }

        // Lower the join chain. `visible` grows one alias per step.
        let mut joins = Vec::new();
        for (k, join) in query.joins.iter().enumerate() {
            let visible = &resolved[..k + 2]; // FROM + joins up to and including this one
            let new_alias = &resolved[k + 1].scan.alias;
            let mut equi = Vec::new();
            let mut residual = Vec::new();
            for pred in &join.on {
                match self.as_equi_key(pred, visible, new_alias)? {
                    Some(pair) => equi.push(pair),
                    None => residual.push(self.compile_predicate(pred, visible)?),
                }
            }
            joins.push(JoinStep {
                scan: resolved[k + 1].scan.clone(),
                equi,
                residual,
            });
        }

        // WHERE sees every alias.
        let filter = query
            .filter
            .iter()
            .map(|p| self.compile_predicate(p, &resolved))
            .collect::<Result<Vec<_>, _>>()?;

        let aggregate = match &query.aggregate {
            Aggregate::CountStar => PlanAggregate::CountStar,
            Aggregate::Sum(col) => PlanAggregate::Sum(self.resolve_column(col, &resolved)?),
        };

        // Grouping resolves against the full alias set before the FROM scan
        // is moved out of `resolved`.
        let grouping = match &query.group_by {
            Some(gb) => Some(self.resolve_grouping(gb, query.select_key.as_ref(), &resolved)?),
            None => None,
        };

        let template = QueryPlan {
            aggregate,
            aggregate_span: query.aggregate_span,
            from: resolved.swap_remove(0).scan,
            joins,
            filter,
        };
        Ok(match grouping {
            None => AnyPlan::Scalar(template),
            Some((key, domain, gb)) => AnyPlan::Grouped(GroupedQueryPlan {
                key,
                key_display: gb.key.display_name(),
                key_span: gb.span,
                domain,
                template,
            }),
        })
    }

    /// Resolves the `GROUP BY` key: it must name a column of a visible
    /// alias, match the SELECT-list key (when one is written), and range
    /// over a non-empty **declared public domain** of its base table — a
    /// data-derived key set would leak which keys occur.
    fn resolve_grouping<'q>(
        &self,
        gb: &'q GroupBy,
        select_key: Option<&ColumnRef>,
        visible: &[ResolvedRef],
    ) -> Result<(Attr, Vec<Value>, &'q GroupBy), SqlError> {
        let key = self.resolve_column(&gb.key, visible)?;
        if let Some(sel) = select_key {
            let sel_attr = self.resolve_column(sel, visible)?;
            if sel_attr != key {
                return Err(SqlError::GroupKeyMismatch {
                    select: sel.display_name(),
                    group: gb.key.display_name(),
                    span: sel.span,
                });
            }
        }
        // The base table whose schema must declare the domain: the holder of
        // the key column. `resolve_column` just succeeded, so the holder
        // exists and (for unqualified keys) is unique.
        let table = match &gb.key.qualifier {
            Some(qualifier) => visible.iter().find(|r| &r.scan.alias == qualifier),
            None => visible.iter().find(|r| r.columns.contains(&gb.key.column)),
        }
        .map(|r| r.scan.table.clone())
        .expect("resolve_column validated the key against the visible aliases");
        match self.db.public_domain(&table, &gb.key.column) {
            Some(domain) if !domain.is_empty() => Ok((key, domain.to_vec(), gb)),
            _ => Err(SqlError::UndeclaredGroupDomain {
                column: gb.key.display_name(),
                table,
                span: gb.key.span,
            }),
        }
    }

    fn resolve_table(&self, table_ref: &TableRef) -> Result<ResolvedRef, SqlError> {
        let Some(table) = self.db.table(&table_ref.table) else {
            return Err(SqlError::UnknownTable {
                name: table_ref.table.clone(),
                span: table_ref.table_span,
                available: self
                    .db
                    .table_names()
                    .into_iter()
                    .map(str::to_owned)
                    .collect(),
            });
        };
        let mut renames = Vec::new();
        let mut columns = BTreeSet::new();
        for attr in table.schema() {
            renames.push((attr.clone(), qualified(&table_ref.alias, attr.name())));
            columns.insert(attr.name().to_owned());
        }
        Ok(ResolvedRef {
            scan: ScanStep {
                table: table_ref.table.clone(),
                alias: table_ref.alias.clone(),
                renames,
            },
            columns,
        })
    }

    /// Resolves a column reference against the visible aliases, returning its
    /// qualified attribute.
    fn resolve_column(&self, col: &ColumnRef, visible: &[ResolvedRef]) -> Result<Attr, SqlError> {
        if let Some(qualifier) = &col.qualifier {
            let Some(r) = visible.iter().find(|r| &r.scan.alias == qualifier) else {
                return Err(SqlError::UnknownColumn {
                    column: col.display_name(),
                    span: col.span,
                });
            };
            if !r.columns.contains(&col.column) {
                return Err(SqlError::UnknownColumn {
                    column: col.display_name(),
                    span: col.span,
                });
            }
            Ok(qualified(qualifier, &col.column))
        } else {
            let holders: Vec<&ResolvedRef> = visible
                .iter()
                .filter(|r| r.columns.contains(&col.column))
                .collect();
            match holders.len() {
                0 => Err(SqlError::UnknownColumn {
                    column: col.display_name(),
                    span: col.span,
                }),
                1 => Ok(qualified(&holders[0].scan.alias, &col.column)),
                _ => Err(SqlError::AmbiguousColumn {
                    column: col.display_name(),
                    span: col.span,
                    candidates: holders.iter().map(|r| r.scan.alias.clone()).collect(),
                }),
            }
        }
    }

    fn compile_operand(
        &self,
        operand: &Operand,
        visible: &[ResolvedRef],
    ) -> Result<CompiledOperand, SqlError> {
        Ok(match operand {
            Operand::Column(col) => CompiledOperand::Column(self.resolve_column(col, visible)?),
            Operand::Literal(v, _) => CompiledOperand::Literal(v.clone()),
        })
    }

    fn compile_predicate(
        &self,
        pred: &Predicate,
        visible: &[ResolvedRef],
    ) -> Result<CompiledPredicate, SqlError> {
        Ok(CompiledPredicate {
            lhs: self.compile_operand(&pred.lhs, visible)?,
            op: pred.op,
            rhs: self.compile_operand(&pred.rhs, visible)?,
        })
    }

    /// Returns `Some((accumulated, new))` when the predicate is an equality
    /// between a column of an earlier alias and a column of the newly joined
    /// alias — i.e. a hash-join key for this step.
    fn as_equi_key(
        &self,
        pred: &Predicate,
        visible: &[ResolvedRef],
        new_alias: &str,
    ) -> Result<Option<(Attr, Attr)>, SqlError> {
        if pred.op != Comparison::Eq {
            return Ok(None);
        }
        let (Operand::Column(a), Operand::Column(b)) = (&pred.lhs, &pred.rhs) else {
            return Ok(None);
        };
        let attr_a = self.resolve_column(a, visible)?;
        let attr_b = self.resolve_column(b, visible)?;
        let is_new = |attr: &Attr| attr.name().starts_with(&format!("{new_alias}."));
        match (is_new(&attr_a), is_new(&attr_b)) {
            (false, true) => Ok(Some((attr_a, attr_b))),
            (true, false) => Ok(Some((attr_b, attr_a))),
            // new = new or old = old: keep it as a residual filter.
            _ => Ok(None),
        }
    }
}

/// The qualified attribute name `alias.column`.
pub fn qualified(alias: &str, column: &str) -> Attr {
    Attr::new(&format!("{alias}.{column}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmdp_krelation::{Expr, KRelation};

    fn db() -> AnnotatedDatabase {
        let mut db = AnnotatedDatabase::new();
        let mut residents = KRelation::new(["person", "city"]);
        let mut visits = KRelation::new(["person", "place"]);
        for (i, (person, city)) in [("ada", "rome"), ("bo", "oslo")].iter().enumerate() {
            let p = db.universe_mut().intern(person);
            residents.insert(
                Tuple::new([("person", Value::str(person)), ("city", Value::str(city))]),
                Expr::Var(p),
            );
            visits.insert(
                Tuple::new([
                    ("person", Value::str(person)),
                    ("place", Value::str(if i == 0 { "museum" } else { "cafe" })),
                ]),
                Expr::Var(p),
            );
        }
        db.insert_table("residents", residents);
        db.insert_table("visits", visits);
        db
    }

    #[test]
    fn equality_on_the_new_table_becomes_a_join_key() {
        let db = db();
        let plan = plan(
            &db,
            "SELECT COUNT(*) FROM visits v1 JOIN residents r1 ON r1.person = v1.person",
        )
        .unwrap()
        .expect_scalar();
        assert_eq!(plan.joins.len(), 1);
        assert_eq!(plan.joins[0].equi.len(), 1);
        let (acc, new) = &plan.joins[0].equi[0];
        assert_eq!(acc.name(), "v1.person");
        assert_eq!(new.name(), "r1.person");
        assert!(plan.joins[0].residual.is_empty());
    }

    #[test]
    fn non_equality_on_conjuncts_become_residuals() {
        let db = db();
        let plan = plan(
            &db,
            "SELECT COUNT(*) FROM visits v1 JOIN visits v2 \
             ON v1.place = v2.place AND v1.person < v2.person",
        )
        .unwrap()
        .expect_scalar();
        assert_eq!(plan.joins[0].equi.len(), 1);
        assert_eq!(plan.joins[0].residual.len(), 1);
    }

    #[test]
    fn unqualified_columns_resolve_when_unambiguous() {
        let db = db();
        let plan = plan(&db, "SELECT COUNT(*) FROM residents WHERE city = 'rome'")
            .unwrap()
            .expect_scalar();
        match &plan.filter[0].lhs {
            CompiledOperand::Column(attr) => assert_eq!(attr.name(), "residents.city"),
            other => panic!("expected column, got {other:?}"),
        }
    }

    #[test]
    fn ambiguous_and_unknown_columns_are_rejected() {
        let db = db();
        let sql = "SELECT COUNT(*) FROM visits v1 JOIN residents r1 \
                   ON r1.person = v1.person WHERE person = 'ada'";
        match plan(&db, sql).unwrap_err() {
            SqlError::AmbiguousColumn {
                column,
                candidates,
                span,
            } => {
                assert_eq!(column, "person");
                assert_eq!(candidates, vec!["v1".to_owned(), "r1".to_owned()]);
                assert_eq!(span.slice(sql), "person");
            }
            other => panic!("unexpected {other:?}"),
        }
        match plan(&db, "SELECT COUNT(*) FROM visits WHERE nope = 1").unwrap_err() {
            SqlError::UnknownColumn { column, .. } => assert_eq!(column, "nope"),
            other => panic!("unexpected {other:?}"),
        }
        match plan(&db, "SELECT COUNT(*) FROM visits v WHERE zz.person = 1").unwrap_err() {
            SqlError::UnknownColumn { column, .. } => assert_eq!(column, "zz.person"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_tables_and_duplicate_aliases_are_rejected() {
        let db = db();
        match plan(&db, "SELECT COUNT(*) FROM trips").unwrap_err() {
            SqlError::UnknownTable {
                name, available, ..
            } => {
                assert_eq!(name, "trips");
                assert_eq!(available, vec!["residents".to_owned(), "visits".to_owned()]);
            }
            other => panic!("unexpected {other:?}"),
        }
        let err = plan(
            &db,
            "SELECT COUNT(*) FROM visits v JOIN residents v ON v.person = v.person",
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::DuplicateAlias { ref alias, .. } if alias == "v"));
    }

    #[test]
    fn sum_column_resolves_to_a_qualified_attribute() {
        let db = db();
        let plan = plan(&db, "SELECT SUM(city) FROM residents")
            .unwrap()
            .expect_scalar();
        match plan.aggregate {
            PlanAggregate::Sum(ref attr) => assert_eq!(attr.name(), "residents.city"),
            ref other => panic!("expected SUM, got {other:?}"),
        }
    }

    #[test]
    fn display_shows_the_algebra_pipeline() {
        let db = db();
        let plan = plan(
            &db,
            "SELECT COUNT(*) FROM visits v1 JOIN residents r1 ON r1.person = v1.person \
             WHERE r1.city <> 'rome'",
        )
        .unwrap()
        .expect_scalar();
        let shown = plan.to_string();
        assert!(shown.contains("ρ_v1 (scan visits)"));
        assert!(shown.contains("⋈ ρ_r1 (scan residents) on [v1.person = r1.person]"));
        assert!(shown.contains("σ r1.city <> \"rome\""));
        assert!(shown.ends_with("Σ count(*)"));
    }
}
