//! A compact undirected simple graph.

use rmdp_krelation::hash::FxHashMap;

/// An undirected simple graph over nodes `0..n`.
///
/// Neighbour lists are kept sorted, which makes `has_edge` a binary search and
/// common-neighbour computations a linear merge.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
    /// Each undirected edge once, as `(min, max)`, in insertion order.
    edges: Vec<(u32, u32)>,
    /// Maps the normalised pair to the edge index in `edges`.
    edge_index: FxHashMap<(u32, u32), usize>,
}

impl Graph {
    /// An edgeless graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
            edge_index: FxHashMap::default(),
        }
    }

    /// Builds a graph from an edge list; the node count is
    /// `max(n, largest endpoint + 1)`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let max_node = edges
            .iter()
            .map(|&(u, v)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0);
        let mut g = Graph::new(n.max(max_node));
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge. Self-loops and duplicates are ignored.
    /// Returns `true` if the edge was new.
    pub fn add_edge(&mut self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        let key = (u.min(v), u.max(v));
        if self.edge_index.contains_key(&key) {
            return false;
        }
        let needed = key.1 as usize + 1;
        if needed > self.adj.len() {
            self.adj.resize(needed, Vec::new());
        }
        let idx = self.edges.len();
        self.edge_index.insert(key, idx);
        self.edges.push(key);
        let (a, b) = (u as usize, v as usize);
        match self.adj[a].binary_search(&v) {
            Ok(_) => {}
            Err(pos) => self.adj[a].insert(pos, v),
        }
        match self.adj[b].binary_search(&u) {
            Ok(_) => {}
            Err(pos) => self.adj[b].insert(pos, u),
        }
        true
    }

    /// Whether the edge `{u, v}` exists.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        self.edge_index.contains_key(&(u.min(v), u.max(v)))
    }

    /// Index of the edge `{u, v}` (stable across the graph's lifetime), used
    /// as the participant id under edge privacy.
    pub fn edge_id(&self, u: u32, v: u32) -> Option<usize> {
        self.edge_index.get(&(u.min(v), u.max(v))).copied()
    }

    /// The endpoints of edge `id`.
    pub fn edge(&self, id: usize) -> (u32, u32) {
        self.edges[id]
    }

    /// All edges, each once as `(min, max)`.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Sorted neighbours of a node.
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.adj[u as usize]
    }

    /// Degree of a node.
    pub fn degree(&self, u: u32) -> usize {
        self.adj[u as usize].len()
    }

    /// Common neighbours of two nodes (sorted).
    pub fn common_neighbors(&self, u: u32, v: u32) -> Vec<u32> {
        let (a, b) = (self.neighbors(u), self.neighbors(v));
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Nodes as an iterator `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = u32> {
        0..self.num_nodes() as u32
    }

    /// Removes a node's incident edges (the node itself stays, isolated) and
    /// returns the new graph. This is what "participant `v` withdraws" means
    /// under node privacy.
    pub fn without_node(&self, v: u32) -> Graph {
        let edges: Vec<(u32, u32)> = self
            .edges
            .iter()
            .copied()
            .filter(|&(a, b)| a != v && b != v)
            .collect();
        Graph::from_edges(self.num_nodes(), &edges)
    }

    /// Removes a single edge and returns the new graph ("participant `e`
    /// withdraws" under edge privacy).
    pub fn without_edge(&self, u: u32, v: u32) -> Graph {
        let key = (u.min(v), u.max(v));
        let edges: Vec<(u32, u32)> = self.edges.iter().copied().filter(|&e| e != key).collect();
        Graph::from_edges(self.num_nodes(), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: u32) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n as usize, &edges)
    }

    #[test]
    fn add_edge_ignores_duplicates_and_loops() {
        let mut g = Graph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0));
        assert!(!g.add_edge(2, 2));
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn adjacency_is_sorted_and_degrees_match() {
        let g = Graph::from_edges(5, &[(0, 3), (0, 1), (0, 2), (4, 0)]);
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn edge_ids_are_stable_and_symmetric() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.edge_id(1, 2), g.edge_id(2, 1));
        assert_eq!(g.edge_id(0, 1), Some(0));
        assert_eq!(g.edge_id(2, 3), Some(2));
        assert_eq!(g.edge(1), (1, 2));
        assert_eq!(g.edge_id(0, 3), None);
    }

    #[test]
    fn common_neighbors_merge() {
        let g = Graph::from_edges(5, &[(0, 2), (0, 3), (1, 2), (1, 3), (1, 4)]);
        assert_eq!(g.common_neighbors(0, 1), vec![2, 3]);
        assert_eq!(g.common_neighbors(0, 4), Vec::<u32>::new());
    }

    #[test]
    fn without_node_drops_incident_edges_only() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let h = g.without_node(1);
        assert_eq!(h.num_nodes(), 4);
        assert_eq!(h.num_edges(), 2);
        assert!(h.has_edge(2, 3));
        assert!(h.has_edge(3, 0));
        assert!(!h.has_edge(0, 1));
    }

    #[test]
    fn without_edge_drops_exactly_one_edge() {
        let g = path_graph(4);
        let h = g.without_edge(2, 1);
        assert_eq!(h.num_edges(), 2);
        assert!(!h.has_edge(1, 2));
        assert!(h.has_edge(0, 1));
    }

    #[test]
    fn from_edges_grows_node_count_as_needed() {
        let g = Graph::from_edges(2, &[(0, 9)]);
        assert_eq!(g.num_nodes(), 10);
    }
}
