//! Enumeration and counting of pattern occurrences.
//!
//! An *occurrence* of a pattern is a subgraph of the data graph isomorphic to
//! the pattern, identified by its edge set (so automorphic re-labellings of
//! the same subgraph count once). The matched occurrences become the tuples
//! of the sensitive K-relation the mechanism aggregates; fast closed-form
//! counters are provided for the query families used in the evaluation
//! (triangles, k-stars, k-triangles).

use crate::graph::Graph;
use crate::pattern::Pattern;
use rmdp_krelation::hash::FxHashSet;

/// One matched occurrence: the participating nodes (sorted, deduplicated) and
/// the matched edge set (sorted).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Occurrence {
    /// Sorted distinct nodes of the occurrence.
    pub nodes: Vec<u32>,
    /// Sorted matched edges, each as `(min, max)`.
    pub edges: Vec<(u32, u32)>,
}

/// Enumerates all triangles as sorted node triples.
pub fn triangles(g: &Graph) -> Vec<[u32; 3]> {
    let mut out = Vec::new();
    for u in g.nodes() {
        let nu = g.neighbors(u);
        for &v in nu.iter().filter(|&&v| v > u) {
            // Intersect the neighbourhoods, keeping only w > v to count each
            // triangle once.
            for &w in g.common_neighbors(u, v).iter().filter(|&&w| w > v) {
                out.push([u, v, w]);
            }
        }
    }
    out
}

/// Number of triangles.
pub fn triangle_count(g: &Graph) -> u64 {
    triangles(g).len() as u64
}

/// Number of k-stars: `Σ_v C(deg(v), k)`.
pub fn k_star_count(g: &Graph, k: usize) -> u64 {
    g.nodes().map(|v| binomial(g.degree(v), k)).sum()
}

/// Enumerates k-stars as (centre, sorted leaf set). The number of k-stars can
/// be enormous on skewed graphs, so enumeration stops after `limit`
/// occurrences (use [`k_star_count`] for the exact count).
pub fn k_stars(g: &Graph, k: usize, limit: usize) -> Vec<(u32, Vec<u32>)> {
    let mut out = Vec::new();
    for v in g.nodes() {
        let neigh = g.neighbors(v);
        if neigh.len() < k {
            continue;
        }
        let mut combo: Vec<usize> = (0..k).collect();
        loop {
            out.push((v, combo.iter().map(|&i| neigh[i]).collect()));
            if out.len() >= limit {
                return out;
            }
            if !advance_combination(&mut combo, neigh.len()) {
                break;
            }
        }
    }
    out
}

/// Number of k-triangles: `Σ_{(u,v) ∈ E} C(a_{uv}, k)` where `a_{uv}` is the
/// number of common neighbours of the edge's endpoints.
pub fn k_triangle_count(g: &Graph, k: usize) -> u64 {
    g.edges()
        .iter()
        .map(|&(u, v)| binomial(g.common_neighbors(u, v).len(), k))
        .sum()
}

/// Enumerates k-triangles as (base edge, sorted apex set), up to `limit`.
pub fn k_triangles(g: &Graph, k: usize, limit: usize) -> Vec<((u32, u32), Vec<u32>)> {
    let mut out = Vec::new();
    for &(u, v) in g.edges() {
        let common = g.common_neighbors(u, v);
        if common.len() < k {
            continue;
        }
        let mut combo: Vec<usize> = (0..k).collect();
        loop {
            out.push(((u, v), combo.iter().map(|&i| common[i]).collect()));
            if out.len() >= limit {
                return out;
            }
            if !advance_combination(&mut combo, common.len()) {
                break;
            }
        }
    }
    out
}

/// Enumerates all occurrences of an arbitrary connected pattern via
/// backtracking over injective homomorphisms, deduplicated by matched edge
/// set. Enumeration stops after `limit` occurrences.
pub fn enumerate_pattern(g: &Graph, pattern: &Pattern, limit: usize) -> Vec<Occurrence> {
    let pn = pattern.num_nodes();
    if pn == 0 {
        return Vec::new();
    }
    // Order pattern nodes so each node after the first touches an earlier one
    // (possible because patterns are connected), which prunes the search.
    let order = connected_order(pattern);
    let mut seen: FxHashSet<Vec<(u32, u32)>> = FxHashSet::default();
    let mut out = Vec::new();
    let mut assignment: Vec<Option<u32>> = vec![None; pn];
    let mut used: FxHashSet<u32> = FxHashSet::default();

    #[allow(clippy::too_many_arguments)]
    fn backtrack(
        g: &Graph,
        pattern: &Pattern,
        order: &[usize],
        depth: usize,
        assignment: &mut Vec<Option<u32>>,
        used: &mut FxHashSet<u32>,
        seen: &mut FxHashSet<Vec<(u32, u32)>>,
        out: &mut Vec<Occurrence>,
        limit: usize,
    ) {
        if out.len() >= limit {
            return;
        }
        if depth == order.len() {
            let mut edges: Vec<(u32, u32)> = pattern
                .edges()
                .iter()
                .map(|&(a, b)| {
                    let ga = assignment[a].expect("assigned");
                    let gb = assignment[b].expect("assigned");
                    (ga.min(gb), ga.max(gb))
                })
                .collect();
            edges.sort_unstable();
            edges.dedup();
            if seen.insert(edges.clone()) {
                let mut nodes: Vec<u32> = assignment.iter().map(|a| a.expect("assigned")).collect();
                nodes.sort_unstable();
                nodes.dedup();
                out.push(Occurrence { nodes, edges });
            }
            return;
        }
        let p_node = order[depth];
        // Candidate graph nodes: neighbours of an already-assigned pattern
        // neighbour if one exists, otherwise all nodes.
        let anchored: Option<u32> = pattern
            .edges()
            .iter()
            .filter_map(|&(a, b)| {
                if a == p_node {
                    assignment[b]
                } else if b == p_node {
                    assignment[a]
                } else {
                    None
                }
            })
            .next();
        let candidates: Vec<u32> = match anchored {
            Some(anchor) => g.neighbors(anchor).to_vec(),
            None => g.nodes().collect(),
        };
        for cand in candidates {
            if used.contains(&cand) {
                continue;
            }
            // All pattern edges towards already-assigned nodes must exist.
            let ok = pattern.edges().iter().all(|&(a, b)| {
                let other = if a == p_node {
                    b
                } else if b == p_node {
                    a
                } else {
                    return true;
                };
                match assignment[other] {
                    Some(gother) => g.has_edge(cand, gother),
                    None => true,
                }
            });
            if !ok {
                continue;
            }
            assignment[p_node] = Some(cand);
            used.insert(cand);
            backtrack(
                g,
                pattern,
                order,
                depth + 1,
                assignment,
                used,
                seen,
                out,
                limit,
            );
            used.remove(&cand);
            assignment[p_node] = None;
        }
    }

    backtrack(
        g,
        pattern,
        &order,
        0,
        &mut assignment,
        &mut used,
        &mut seen,
        &mut out,
        limit,
    );
    out
}

/// Counts occurrences of an arbitrary pattern (up to `limit`).
pub fn count_pattern(g: &Graph, pattern: &Pattern, limit: usize) -> u64 {
    enumerate_pattern(g, pattern, limit).len() as u64
}

fn connected_order(pattern: &Pattern) -> Vec<usize> {
    let n = pattern.num_nodes();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    if n == 0 {
        return order;
    }
    order.push(0);
    placed[0] = true;
    while order.len() < n {
        let mut advanced = false;
        for v in 0..n {
            if placed[v] {
                continue;
            }
            let touches = pattern
                .edges()
                .iter()
                .any(|&(a, b)| (a == v && placed[b]) || (b == v && placed[a]));
            if touches {
                order.push(v);
                placed[v] = true;
                advanced = true;
            }
        }
        if !advanced {
            // Disconnected pattern: place remaining nodes in index order.
            for (v, slot) in placed.iter_mut().enumerate() {
                if !*slot {
                    order.push(v);
                    *slot = true;
                }
            }
        }
    }
    order
}

fn advance_combination(combo: &mut [usize], n: usize) -> bool {
    let k = combo.len();
    if k == 0 || k > n {
        return false;
    }
    let mut i = k;
    while i > 0 {
        i -= 1;
        if combo[i] != i + n - k {
            combo[i] += 1;
            for j in i + 1..k {
                combo[j] = combo[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result = 1u64;
    for i in 0..k {
        result = result.saturating_mul((n - i) as u64) / (i as u64 + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The 6-node graph of the paper's Fig. 2 (nodes a..f = 0..5, f isolated).
    fn paper_graph() -> Graph {
        Graph::from_edges(6, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (2, 4), (3, 4)])
    }

    #[test]
    fn triangles_of_the_paper_graph() {
        let g = paper_graph();
        let t = triangles(&g);
        assert_eq!(t, vec![[0, 1, 2], [1, 2, 3], [2, 3, 4]]);
        assert_eq!(triangle_count(&g), 3);
    }

    #[test]
    fn complete_graph_triangle_count() {
        let mut g = Graph::new(6);
        for u in 0..6u32 {
            for v in (u + 1)..6u32 {
                g.add_edge(u, v);
            }
        }
        assert_eq!(triangle_count(&g), 20); // C(6,3)
    }

    #[test]
    fn k_star_count_matches_binomial_sum() {
        let g = paper_graph();
        // degrees: a=2, b=3, c=4, d=3, e=2, f=0; Σ C(d,2) = 1+3+6+3+1 = 14.
        assert_eq!(k_star_count(&g, 2), 14);
        assert_eq!(k_star_count(&g, 3), 1 + 4 + 1, "Σ C(d,3)");
        assert_eq!(
            k_star_count(&g, 1),
            14,
            "1-stars are just edge endpoints: 2|E|"
        );
    }

    #[test]
    fn k_star_enumeration_matches_count() {
        let g = paper_graph();
        let stars = k_stars(&g, 2, usize::MAX);
        assert_eq!(stars.len() as u64, k_star_count(&g, 2));
        // Every enumerated star is valid.
        for (centre, leaves) in stars {
            assert_eq!(leaves.len(), 2);
            for leaf in leaves {
                assert!(g.has_edge(centre, leaf));
            }
        }
    }

    #[test]
    fn k_triangle_count_matches_common_neighbour_sum() {
        let g = paper_graph();
        // a_uv per edge: ab:1(c), ac:1(b), bc:2(a? no — common neighbours of
        // b,c are a and d), bd:1(c), cd:2(b,e... common of c,d = {b,e}? c's
        // neighbours {a,b,d,e}, d's {b,c,e} → {b,e}), ce:1(d), de:1(c).
        // Σ C(a,1) = 1+1+2+1+2+1+1 = 9 = number of (triangle, edge) incidences
        // = 3 triangles × 3 edges.
        assert_eq!(k_triangle_count(&g, 1), 9);
        // 2-triangles: edges with a_uv ≥ 2 contribute C(a,2)=1 each: bc and cd.
        assert_eq!(k_triangle_count(&g, 2), 2);
        let enumerated = k_triangles(&g, 2, usize::MAX);
        assert_eq!(enumerated.len(), 2);
    }

    #[test]
    fn generic_pattern_enumeration_agrees_with_specialised_counters() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::gnp_average_degree(30, 6.0, &mut rng);
        assert_eq!(
            count_pattern(&g, &Pattern::triangle(), usize::MAX),
            triangle_count(&g)
        );
        assert_eq!(
            count_pattern(&g, &Pattern::k_star(2), usize::MAX),
            k_star_count(&g, 2)
        );
    }

    #[test]
    fn generic_k_triangle_matches_closed_form() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::gnp_average_degree(20, 8.0, &mut rng);
        assert_eq!(
            count_pattern(&g, &Pattern::k_triangle(2), usize::MAX),
            k_triangle_count(&g, 2),
        );
    }

    #[test]
    fn occurrences_record_nodes_and_edges() {
        let g = paper_graph();
        let occ = enumerate_pattern(&g, &Pattern::triangle(), usize::MAX);
        assert_eq!(occ.len(), 3);
        for o in &occ {
            assert_eq!(o.nodes.len(), 3);
            assert_eq!(o.edges.len(), 3);
            for &(u, v) in &o.edges {
                assert!(g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn enumeration_respects_limit() {
        let g = paper_graph();
        assert_eq!(enumerate_pattern(&g, &Pattern::triangle(), 2).len(), 2);
        assert_eq!(k_stars(&g, 2, 5).len(), 5);
        assert_eq!(k_triangles(&g, 1, 4).len(), 4);
    }

    #[test]
    fn four_cycle_and_clique_counts_on_known_graph() {
        // K4 has 3 distinct 4-cycles and 1 4-clique.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(count_pattern(&g, &Pattern::cycle(4), usize::MAX), 3);
        assert_eq!(count_pattern(&g, &Pattern::clique(4), usize::MAX), 1);
    }

    #[test]
    fn binomial_helper() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(4, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(10, 10), 1);
    }
}
