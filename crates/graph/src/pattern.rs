//! Query subgraph patterns.
//!
//! A [`Pattern`] is the template whose occurrences in the data graph are
//! counted: the paper's evaluation uses triangles, 2-stars and 2-triangles,
//! and its mechanism supports *any* connected subgraph (k-node l-edge
//! subgraphs in Fig. 1).

use std::fmt;

/// A connected query subgraph given by its node count and edge list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pattern {
    name: String,
    nodes: usize,
    edges: Vec<(usize, usize)>,
}

impl Pattern {
    /// A custom pattern. Edges are normalised to `(min, max)` and
    /// deduplicated; the node count is taken from the largest endpoint.
    pub fn custom(name: &str, edges: &[(usize, usize)]) -> Self {
        let mut norm: Vec<(usize, usize)> = edges
            .iter()
            .filter(|(a, b)| a != b)
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect();
        norm.sort_unstable();
        norm.dedup();
        let nodes = norm.iter().map(|&(_, b)| b + 1).max().unwrap_or(0);
        Pattern {
            name: name.to_owned(),
            nodes,
            edges: norm,
        }
    }

    /// The triangle (3-clique).
    pub fn triangle() -> Self {
        Pattern::custom("triangle", &[(0, 1), (1, 2), (0, 2)])
    }

    /// The k-star: a centre node adjacent to `k` leaves.
    pub fn k_star(k: usize) -> Self {
        let edges: Vec<(usize, usize)> = (1..=k).map(|leaf| (0, leaf)).collect();
        Pattern::custom(&format!("{k}-star"), &edges)
    }

    /// The k-triangle: `k` triangles sharing one common edge `{0, 1}`.
    pub fn k_triangle(k: usize) -> Self {
        let mut edges = vec![(0, 1)];
        for i in 0..k {
            let apex = 2 + i;
            edges.push((0, apex));
            edges.push((1, apex));
        }
        Pattern::custom(&format!("{k}-triangle"), &edges)
    }

    /// A simple path with `len` edges (`len + 1` nodes).
    pub fn path(len: usize) -> Self {
        let edges: Vec<(usize, usize)> = (0..len).map(|i| (i, i + 1)).collect();
        Pattern::custom(&format!("path-{len}"), &edges)
    }

    /// The complete graph on `k` nodes.
    pub fn clique(k: usize) -> Self {
        let mut edges = Vec::new();
        for i in 0..k {
            for j in (i + 1)..k {
                edges.push((i, j));
            }
        }
        Pattern::custom(&format!("{k}-clique"), &edges)
    }

    /// A cycle with `len` nodes (`len ≥ 3`).
    pub fn cycle(len: usize) -> Self {
        let mut edges: Vec<(usize, usize)> = (0..len - 1).map(|i| (i, i + 1)).collect();
        edges.push((0, len - 1));
        Pattern::custom(&format!("cycle-{len}"), &edges)
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of pattern nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Number of pattern edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The pattern's edges, normalised.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Degree of a pattern node.
    pub fn degree(&self, node: usize) -> usize {
        self.edges
            .iter()
            .filter(|&&(a, b)| a == node || b == node)
            .count()
    }

    /// Whether the pattern is connected (patterns with 0 or 1 node count as
    /// connected).
    pub fn is_connected(&self) -> bool {
        if self.nodes <= 1 {
            return true;
        }
        let mut seen = vec![false; self.nodes];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for &(a, b) in &self.edges {
                let other = if a == u {
                    Some(b)
                } else if b == u {
                    Some(a)
                } else {
                    None
                };
                if let Some(v) = other {
                    if !seen[v] {
                        seen[v] = true;
                        stack.push(v);
                    }
                }
            }
        }
        seen.into_iter().all(|s| s)
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} nodes, {} edges)",
            self.name,
            self.nodes,
            self.edges.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_shape() {
        let t = Pattern::triangle();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_edges(), 3);
        assert!(t.is_connected());
        assert_eq!(t.degree(0), 2);
    }

    #[test]
    fn k_star_shape() {
        let s = Pattern::k_star(2);
        assert_eq!(s.num_nodes(), 3);
        assert_eq!(s.num_edges(), 2);
        assert_eq!(s.degree(0), 2);
        assert_eq!(s.degree(1), 1);
        let s5 = Pattern::k_star(5);
        assert_eq!(s5.num_nodes(), 6);
        assert_eq!(s5.degree(0), 5);
    }

    #[test]
    fn k_triangle_shape() {
        let kt = Pattern::k_triangle(2);
        // Two triangles sharing the edge {0,1}: nodes {0,1,2,3}, 5 edges.
        assert_eq!(kt.num_nodes(), 4);
        assert_eq!(kt.num_edges(), 5);
        assert_eq!(kt.degree(0), 3);
        assert_eq!(kt.degree(2), 2);
        assert!(kt.is_connected());
        // 1-triangle is just the triangle.
        assert_eq!(Pattern::k_triangle(1).edges(), Pattern::triangle().edges());
    }

    #[test]
    fn clique_cycle_and_path_shapes() {
        assert_eq!(Pattern::clique(4).num_edges(), 6);
        assert_eq!(Pattern::cycle(5).num_edges(), 5);
        assert_eq!(Pattern::path(3).num_edges(), 3);
        // A 2-star and a path of length 2 are the same shape (up to labels).
        assert_eq!(Pattern::path(2).num_edges(), Pattern::k_star(2).num_edges());
        assert_eq!(Pattern::path(2).num_nodes(), Pattern::k_star(2).num_nodes());
    }

    #[test]
    fn custom_normalises_edges() {
        let p = Pattern::custom("p", &[(2, 0), (0, 2), (1, 1), (0, 1)]);
        assert_eq!(p.edges(), &[(0, 1), (0, 2)]);
        assert_eq!(p.num_nodes(), 3);
    }

    #[test]
    fn disconnected_pattern_is_detected() {
        let p = Pattern::custom("two-edges", &[(0, 1), (2, 3)]);
        assert!(!p.is_connected());
    }
}
