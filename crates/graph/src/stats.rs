//! Graph statistics used by the baseline mechanisms' sensitivity formulas.

use crate::graph::Graph;

/// Summary statistics of a graph.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Maximum degree `d_max`.
    pub max_degree: usize,
    /// Average degree `2|E| / |V|`.
    pub avg_degree: f64,
    /// Maximum number of common neighbours over all *adjacent* pairs
    /// (`a_max` in Karwa et al.'s k-triangle analysis).
    pub max_common_neighbors_adjacent: usize,
    /// Maximum number of common neighbours over all pairs of nodes (the
    /// local sensitivity of edge-privacy triangle counting).
    pub max_common_neighbors_any: usize,
}

/// Computes [`GraphStats`] in `O(|V|·d_max + |E|·d_max)` time (plus an
/// `O(|V|² d_max)` pass for the all-pairs common-neighbour maximum, which is
/// skipped for graphs with more than `max_pairs_nodes` nodes and approximated
/// by the adjacent-pair maximum instead).
pub fn graph_stats(g: &Graph, max_pairs_nodes: usize) -> GraphStats {
    let nodes = g.num_nodes();
    let edges = g.num_edges();
    let max_degree = g.nodes().map(|v| g.degree(v)).max().unwrap_or(0);
    let avg_degree = if nodes == 0 {
        0.0
    } else {
        2.0 * edges as f64 / nodes as f64
    };

    let max_common_adjacent = g
        .edges()
        .iter()
        .map(|&(u, v)| g.common_neighbors(u, v).len())
        .max()
        .unwrap_or(0);

    let max_common_any = if nodes <= max_pairs_nodes {
        let mut best = 0;
        for u in g.nodes() {
            for v in (u + 1)..nodes as u32 {
                best = best.max(g.common_neighbors(u, v).len());
            }
        }
        best
    } else {
        max_common_adjacent
    };

    GraphStats {
        nodes,
        edges,
        max_degree,
        avg_degree,
        max_common_neighbors_adjacent: max_common_adjacent,
        max_common_neighbors_any: max_common_any,
    }
}

/// The degree sequence, sorted descending.
pub fn degree_sequence(g: &Graph) -> Vec<usize> {
    let mut degrees: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    degrees.sort_unstable_by(|a, b| b.cmp(a));
    degrees
}

/// Global clustering coefficient: `3·#triangles / #2-stars` (0 when the graph
/// has no 2-star).
pub fn clustering_coefficient(g: &Graph) -> f64 {
    let triangles = crate::subgraph::triangle_count(g) as f64;
    let wedges = crate::subgraph::k_star_count(g, 2) as f64;
    if wedges == 0.0 {
        0.0
    } else {
        3.0 * triangles / wedges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_graph() -> Graph {
        Graph::from_edges(6, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (2, 4), (3, 4)])
    }

    #[test]
    fn stats_of_the_paper_graph() {
        let s = graph_stats(&paper_graph(), 1000);
        assert_eq!(s.nodes, 6);
        assert_eq!(s.edges, 7);
        assert_eq!(s.max_degree, 4);
        assert!((s.avg_degree - 14.0 / 6.0).abs() < 1e-12);
        assert_eq!(s.max_common_neighbors_adjacent, 2);
        assert_eq!(s.max_common_neighbors_any, 2);
    }

    #[test]
    fn all_pairs_maximum_can_exceed_adjacent_maximum() {
        // Two nodes sharing 3 common neighbours but not adjacent.
        let g = Graph::from_edges(5, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]);
        let s = graph_stats(&g, 1000);
        assert_eq!(s.max_common_neighbors_any, 3);
        assert_eq!(s.max_common_neighbors_adjacent, 0);
        // With the all-pairs pass disabled the approximation falls back.
        let s2 = graph_stats(&g, 2);
        assert_eq!(s2.max_common_neighbors_any, 0);
    }

    #[test]
    fn degree_sequence_is_sorted() {
        let seq = degree_sequence(&paper_graph());
        assert_eq!(seq, vec![4, 3, 3, 2, 2, 0]);
    }

    #[test]
    fn clustering_coefficient_of_complete_graph_is_one() {
        let mut g = Graph::new(5);
        for u in 0..5u32 {
            for v in (u + 1)..5u32 {
                g.add_edge(u, v);
            }
        }
        assert!((clustering_coefficient(&g) - 1.0).abs() < 1e-12);
        assert!((clustering_coefficient(&Graph::new(3)) - 0.0).abs() < 1e-12);
    }
}
