//! Random graph generators.
//!
//! The paper's synthetic experiments (Fig. 4, 5) use Erdős–Rényi graphs where
//! every edge appears independently with probability `avgdeg / (|V| − 1)`.
//! The real datasets of Fig. 6/7 are not redistributable here, so
//! [`real_world_standin`] builds synthetic stand-ins with matching node and
//! edge counts and a skewed (preferential-attachment) degree distribution;
//! `DESIGN.md` documents why this preserves the quantities the mechanism's
//! error depends on.

use crate::graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;

/// Erdős–Rényi `G(n, p)`: every unordered pair becomes an edge independently
/// with probability `p`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    if p <= 0.0 {
        return g;
    }
    let p = p.min(1.0);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Erdős–Rényi graph parameterised by target average degree, matching the
/// paper's setup: `p = avgdeg / (n − 1)`.
pub fn gnp_average_degree<R: Rng + ?Sized>(n: usize, avgdeg: f64, rng: &mut R) -> Graph {
    if n <= 1 {
        return Graph::new(n);
    }
    gnp(n, avgdeg / (n as f64 - 1.0), rng)
}

/// Uniform random graph with exactly `m` edges (`G(n, m)`), sampled without
/// replacement.
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(max_edges);
    // Rejection sampling is fine while m is well below the maximum; fall back
    // to explicit enumeration for dense requests.
    if m * 3 >= max_edges && max_edges > 0 {
        let mut all: Vec<(u32, u32)> = Vec::with_capacity(max_edges);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                all.push((u, v));
            }
        }
        all.shuffle(rng);
        for &(u, v) in all.iter().take(m) {
            g.add_edge(u, v);
        }
        return g;
    }
    while g.num_edges() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            g.add_edge(u, v);
        }
    }
    g
}

/// Barabási–Albert preferential attachment: each new node attaches to
/// `m_attach` existing nodes with probability proportional to their degree.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m_attach: usize, rng: &mut R) -> Graph {
    let m_attach = m_attach.max(1);
    let seed = (m_attach + 1).min(n);
    let mut g = Graph::new(n);
    // Seed clique so early attachment targets exist.
    for u in 0..seed as u32 {
        for v in (u + 1)..seed as u32 {
            g.add_edge(u, v);
        }
    }
    // Repeated-endpoint list implements preferential attachment.
    let mut endpoints: Vec<u32> = Vec::new();
    for &(u, v) in g.edges() {
        endpoints.push(u);
        endpoints.push(v);
    }
    for new in seed as u32..n as u32 {
        let mut targets: Vec<u32> = Vec::with_capacity(m_attach);
        let mut guard = 0;
        while targets.len() < m_attach.min(new as usize) && guard < 50 * m_attach + 50 {
            guard += 1;
            let t = if endpoints.is_empty() {
                rng.gen_range(0..new)
            } else {
                *endpoints.choose(rng).expect("non-empty")
            };
            if t != new && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            if g.add_edge(new, t) {
                endpoints.push(new);
                endpoints.push(t);
            }
        }
    }
    g
}

/// Watts–Strogatz small-world graph: a ring lattice where each node connects
/// to its `k` nearest neighbours, with every edge rewired with probability
/// `beta`.
pub fn watts_strogatz<R: Rng + ?Sized>(n: usize, k: usize, beta: f64, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    if n < 2 {
        return g;
    }
    let half = (k / 2).max(1);
    for u in 0..n {
        for d in 1..=half {
            let v = (u + d) % n;
            let (u, v) = (u as u32, v as u32);
            if rng.gen_bool(beta.clamp(0.0, 1.0)) {
                // Rewire: pick a random non-neighbour endpoint.
                let mut guard = 0;
                loop {
                    let w = rng.gen_range(0..n as u32);
                    guard += 1;
                    if (w != u && !g.has_edge(u, w)) || guard > 100 {
                        if w != u {
                            g.add_edge(u, w);
                        }
                        break;
                    }
                }
            } else {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Specification of a real-world dataset to imitate: the name and the node
/// and edge counts reported in the paper (Fig. 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RealGraphSpec {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Number of nodes of the original dataset.
    pub nodes: usize,
    /// Number of edges of the original dataset.
    pub edges: usize,
    /// Triangle count reported by the paper (used as a sanity reference, not
    /// as a generation target).
    pub triangles: usize,
}

/// The seven datasets of the paper's Fig. 6, with the sizes it reports.
pub const PAPER_REAL_GRAPHS: [RealGraphSpec; 7] = [
    RealGraphSpec {
        name: "netscience",
        nodes: 1589,
        edges: 2742,
        triangles: 3764,
    },
    RealGraphSpec {
        name: "power",
        nodes: 4941,
        edges: 6594,
        triangles: 651,
    },
    RealGraphSpec {
        name: "1138_bus",
        nodes: 1138,
        edges: 2596,
        triangles: 128,
    },
    RealGraphSpec {
        name: "bcspwr10",
        nodes: 5300,
        edges: 13571,
        triangles: 721,
    },
    RealGraphSpec {
        name: "gemat12",
        nodes: 4929,
        edges: 33111,
        triangles: 592,
    },
    RealGraphSpec {
        name: "ca-GrQc",
        nodes: 5242,
        edges: 14496,
        triangles: 48260,
    },
    RealGraphSpec {
        name: "ca-HepTh",
        nodes: 9877,
        edges: 25998,
        triangles: 28339,
    },
];

/// Looks a paper dataset spec up by name.
pub fn paper_real_graph(name: &str) -> Option<RealGraphSpec> {
    PAPER_REAL_GRAPHS.iter().copied().find(|s| s.name == name)
}

/// Builds a synthetic stand-in for a real dataset: a graph with
/// `spec.nodes / scale_divisor` nodes and approximately
/// `spec.edges / scale_divisor` edges whose degree distribution is skewed
/// (preferential attachment) like the originals, topped up or trimmed to hit
/// the edge target.
///
/// `scale_divisor = 1` reproduces the original sizes; the experiment harness
/// uses larger divisors in its `quick` preset.
pub fn real_world_standin<R: Rng + ?Sized>(
    spec: RealGraphSpec,
    scale_divisor: usize,
    rng: &mut R,
) -> Graph {
    let scale = scale_divisor.max(1);
    let n = (spec.nodes / scale).max(8);
    let m_target = (spec.edges / scale).max(n);
    let m_attach = ((m_target as f64 / n as f64).round() as usize).max(1);
    let mut g = barabasi_albert(n, m_attach, rng);
    // Top up with uniform random edges to reach the edge target.
    let mut guard = 0;
    while g.num_edges() < m_target && guard < 50 * m_target {
        guard += 1;
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            g.add_edge(u, v);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn gnp_extremes() {
        let g0 = gnp(20, 0.0, &mut rng());
        assert_eq!(g0.num_edges(), 0);
        let g1 = gnp(20, 1.0, &mut rng());
        assert_eq!(g1.num_edges(), 20 * 19 / 2);
    }

    #[test]
    fn gnp_average_degree_is_close_to_target() {
        let mut r = rng();
        let g = gnp_average_degree(400, 10.0, &mut r);
        let avg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(
            (avg - 10.0).abs() < 2.0,
            "average degree {avg} too far from 10"
        );
    }

    #[test]
    fn gnm_has_exactly_m_edges() {
        let g = gnm(50, 120, &mut rng());
        assert_eq!(g.num_edges(), 120);
        // Dense request falls back to enumeration and caps at the maximum.
        let g = gnm(10, 1000, &mut rng());
        assert_eq!(g.num_edges(), 45);
    }

    #[test]
    fn barabasi_albert_produces_connected_skewed_graph() {
        let g = barabasi_albert(300, 3, &mut rng());
        assert_eq!(g.num_nodes(), 300);
        assert!(g.num_edges() >= 297 * 3 / 2);
        let max_deg = g.nodes().map(|v| g.degree(v)).max().unwrap();
        let avg_deg = 2.0 * g.num_edges() as f64 / 300.0;
        assert!(
            max_deg as f64 > 3.0 * avg_deg,
            "expected a hub: max {max_deg} vs avg {avg_deg}"
        );
    }

    #[test]
    fn watts_strogatz_keeps_ring_density() {
        let g = watts_strogatz(100, 4, 0.1, &mut rng());
        assert!(
            g.num_edges() >= 150 && g.num_edges() <= 210,
            "{}",
            g.num_edges()
        );
    }

    #[test]
    fn standin_matches_requested_scale() {
        let spec = paper_real_graph("netscience").unwrap();
        let g = real_world_standin(spec, 4, &mut rng());
        assert!(g.num_nodes() >= 390 && g.num_nodes() <= 400);
        let target = spec.edges / 4;
        assert!(
            g.num_edges() as f64 >= 0.8 * target as f64,
            "edges {} too far below target {target}",
            g.num_edges()
        );
    }

    #[test]
    fn all_paper_specs_are_listed() {
        assert_eq!(PAPER_REAL_GRAPHS.len(), 7);
        assert!(paper_real_graph("ca-GrQc").is_some());
        assert!(paper_real_graph("unknown").is_none());
    }

    #[test]
    fn generators_are_deterministic_given_seed() {
        let a = gnp_average_degree(100, 6.0, &mut StdRng::seed_from_u64(7));
        let b = gnp_average_degree(100, 6.0, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.edges(), b.edges());
    }
}
