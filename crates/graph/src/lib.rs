//! Undirected graph substrate.
//!
//! The paper's flagship application is subgraph counting on social networks
//! under node (or edge) differential privacy. This crate provides everything
//! the experiments need around the graph itself:
//!
//! * [`graph::Graph`] — a compact undirected simple graph.
//! * [`generators`] — Erdős–Rényi, Barabási–Albert and Watts–Strogatz random
//!   graphs, plus synthetic stand-ins for the real datasets used in the
//!   paper's Fig. 6/7 (see `DESIGN.md` for the substitution rationale).
//! * [`pattern::Pattern`] — query subgraphs (triangle, k-star, k-triangle,
//!   path, clique, cycle, custom).
//! * [`subgraph`] — enumeration of pattern occurrences (the tuples of the
//!   K-relation the mechanism aggregates) and fast counting shortcuts.
//! * [`stats`] — degree statistics (`d_max`, `a_max`, …) used by the baseline
//!   mechanisms' sensitivity formulas.

#![deny(missing_docs)]

pub mod generators;
pub mod graph;
pub mod pattern;
pub mod stats;
pub mod subgraph;

pub use graph::Graph;
pub use pattern::Pattern;
