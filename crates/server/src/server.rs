//! The long-lived multi-tenant server around the per-request [`SqlSession`].
//!
//! # Shared vs per-request state
//!
//! One [`DpServer`] owns exactly the state that is sound to share across
//! tenants, and nothing more:
//!
//! - an immutable [`CatalogSnapshot`] (`Arc`'d database + mechanism
//!   parameters + planner) every session reads;
//! - one [`SequenceCache`] shared by **all** tenants. Cache keys are
//!   canonical plan fingerprints that bake in the database's instance
//!   identity and annotation epoch, so a hit can only ever return a table
//!   the same data would have produced — cross-tenant sharing leaks nothing
//!   a tenant could not compute from its own admitted queries;
//! - per-tenant ε ledgers and admission state in a [`TenantRegistry`];
//! - a server-wide [`AdmissionGate`] that sheds load *before* any budget
//!   is touched.
//!
//! Each admitted query then gets a throwaway [`SqlSession`] seeded from
//! `(server seed, tenant name, per-tenant admission index)` — see
//! [`crate::seed`] — so releases are a pure function of the admitted
//! per-tenant workload, never of the thread schedule.
//!
//! # What refusals cost
//!
//! Nothing. Every refusal path — gate shed, per-tenant in-flight cap,
//! budget refusal, unknown tenant — returns before any ε is reserved, and
//! a query that fails *after* admission has its reservation refunded in
//! full (a failed query releases nothing). Tests assert both directions:
//! debits sum exactly to admissions, and refusals leave `remaining_budget`
//! bit-unchanged.

use crate::error::ServerError;
use crate::seed::derive_query_seed;
use crate::tenant::{AdmittedQuery, Reservation, TenantRegistry};
use rmdp_core::SequenceCache;
use rmdp_noise::{GroupBudgetPolicy, PrivacyBudget};
use rmdp_observe::{Clock, MetricsRegistry, MonotonicClock, LATENCY_BUCKETS_MS};
use rmdp_runtime::{AdmissionConfig, AdmissionGate};
use rmdp_sql::{AnyPlan, CatalogSnapshot, QueryOutput, SqlError, SqlSession};
use std::sync::Arc;

/// Knobs for one [`DpServer`]. See `docs/TUNING.md` for how each one trades
/// throughput against refusal rate.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// The server-wide admission gate: concurrent execution slots and the
    /// bounded wait queue in front of them.
    pub admission: AdmissionConfig,
    /// Per-tenant in-flight cap: one tenant can hold at most this many
    /// execution slots at once, so a chatty tenant cannot starve the rest.
    pub per_tenant_in_flight: usize,
    /// Capacity of the shared cross-tenant sequence cache (frozen LP
    /// tables keyed by canonical plan fingerprint).
    pub cache_capacity: usize,
    /// Root of the server's deterministic seed schedule.
    pub seed: u64,
    /// How grouped (`GROUP BY`) reports split budget across their groups.
    pub group_policy: GroupBudgetPolicy,
}

impl Default for ServerConfig {
    /// Eight execution slots with an equal-depth wait queue, four in-flight
    /// requests per tenant, a 256-entry shared cache.
    fn default() -> Self {
        ServerConfig {
            admission: AdmissionConfig::with_in_flight(8),
            per_tenant_in_flight: 4,
            cache_capacity: 256,
            seed: 0x5EED,
            group_policy: GroupBudgetPolicy::default(),
        }
    }
}

/// A long-lived, thread-safe multi-tenant DP query server.
///
/// All methods take `&self`; one `Arc<DpServer>` is shared by every
/// connection handler and test thread. See the [module docs](self) for the
/// shared-vs-per-request split and the refusal semantics.
pub struct DpServer {
    snapshot: Arc<CatalogSnapshot>,
    cache: Arc<SequenceCache>,
    gate: AdmissionGate,
    tenants: TenantRegistry,
    metrics: Arc<MetricsRegistry>,
    clock: MonotonicClock,
    config: ServerConfig,
}

impl DpServer {
    /// A server over `snapshot` with the given `config`. Tenants start
    /// empty; register them with [`DpServer::register_tenant`].
    pub fn new(snapshot: Arc<CatalogSnapshot>, config: ServerConfig) -> Self {
        DpServer {
            snapshot,
            cache: Arc::new(SequenceCache::new(config.cache_capacity)),
            gate: AdmissionGate::new(config.admission),
            tenants: TenantRegistry::new(),
            metrics: Arc::new(MetricsRegistry::new()),
            clock: MonotonicClock::new(),
            config,
        }
    }

    /// Registers `tenant` with a lifetime ε budget. Returns `false` (and
    /// changes nothing) if the tenant already exists — budgets can never be
    /// reset by re-registering.
    pub fn register_tenant(&self, tenant: &str, total: PrivacyBudget) -> bool {
        self.tenants.register(tenant, total, self.config.seed)
    }

    /// The server's configuration.
    pub fn config(&self) -> ServerConfig {
        self.config
    }

    /// The shared catalog snapshot.
    pub fn snapshot(&self) -> &Arc<CatalogSnapshot> {
        &self.snapshot
    }

    /// The server's metrics registry (admissions, sheds, latencies).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Statistics of the shared cross-tenant sequence cache.
    pub fn cache_stats(&self) -> rmdp_core::CacheStats {
        self.cache.stats()
    }

    /// All registered tenant names, in deterministic order.
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants.names()
    }

    /// The tenant's remaining budget, or `None` for unknown tenants.
    pub fn remaining_budget(&self, tenant: &str) -> Option<PrivacyBudget> {
        self.tenants.remaining(tenant)
    }

    /// The tenant's spent budget, or `None` for unknown tenants.
    pub fn spent_budget(&self, tenant: &str) -> Option<PrivacyBudget> {
        self.tenants.spent(tenant)
    }

    /// The tenant's admitted queries in admission order, or `None` for
    /// unknown tenants. This is the replay log: re-executing it serially
    /// through [`DpServer::replay`] reproduces the tenant's releases
    /// bit-identically.
    pub fn query_log(&self, tenant: &str) -> Option<Vec<AdmittedQuery>> {
        self.tenants.query_log(tenant)
    }

    /// What one query would cost this server, without running it. Scalar
    /// releases cost `ε₁ + ε₂`; grouped reports are priced by the
    /// configured [`GroupBudgetPolicy`]. An `EXPLAIN ANALYZE` prefix does
    /// not change the price — tracing performs the release it traces.
    pub fn price(&self, sql: &str) -> Result<PrivacyBudget, SqlError> {
        let per_release = PrivacyBudget {
            epsilon: self.snapshot.params().total_epsilon(),
            delta: 0.0,
        };
        Ok(match self.snapshot.plan(sql)? {
            AnyPlan::Scalar(_) => per_release,
            AnyPlan::Grouped(g) => self
                .config
                .group_policy
                .report_cost(per_release, g.num_groups()),
        })
    }

    /// Runs one query for `tenant` through the full server path: gate →
    /// price → atomic per-tenant reservation → throwaway seeded session →
    /// release (or refund). See the [module docs](self) for what each
    /// refusal costs (nothing).
    pub fn query(&self, tenant: &str, sql: &str) -> Result<QueryOutput, ServerError> {
        let started = self.clock.now_nanos();
        let permit = match self.gate.enter() {
            Ok(p) => p,
            Err(e) => {
                self.metrics.counter_add("server.shed.overloaded", 1);
                return Err(e.into());
            }
        };
        // Price before reserving so a malformed query is refused without
        // touching the ledger. The permit is held while planning: pricing
        // is microseconds next to an LP solve, and counting it against the
        // gate keeps `in_flight` an honest measure of server load.
        let cost = self.price(sql).map_err(|e| {
            self.metrics.counter_add("server.errors.sql", 1);
            ServerError::Sql(e)
        })?;
        let reservation = self
            .tenants
            .reserve(tenant, sql, cost, self.config.per_tenant_in_flight)
            .ok_or_else(|| {
                self.metrics.counter_add("server.refused.unknown_tenant", 1);
                ServerError::UnknownTenant(tenant.to_owned())
            })?;
        let (index, tenant_seed) = match reservation {
            Reservation::Admitted { index, tenant_seed } => (index, tenant_seed),
            Reservation::Busy { in_flight } => {
                self.metrics.counter_add("server.shed.tenant_busy", 1);
                return Err(ServerError::TenantBusy {
                    tenant: tenant.to_owned(),
                    in_flight,
                });
            }
            Reservation::OverBudget(e) => {
                self.metrics.counter_add("server.refused.budget", 1);
                return Err(ServerError::BudgetExhausted(e));
            }
        };

        let mut session = self.session_for(derive_query_seed(tenant_seed, index));
        let result = session.query(sql);
        self.tenants.finish(tenant, cost, result.is_err());
        self.absorb_session(&session);
        drop(permit);

        let elapsed_ms = (self.clock.now_nanos() - started) as f64 / 1e6;
        self.metrics
            .histogram_observe("server.latency_ms", &LATENCY_BUCKETS_MS, elapsed_ms);
        match result {
            Ok(output) => {
                self.metrics.counter_add("server.queries", 1);
                self.metrics
                    .counter_add(&format!("tenant.{tenant}.queries"), 1);
                Ok(output)
            }
            Err(e) => {
                self.metrics.counter_add("server.errors.sql", 1);
                Err(ServerError::Sql(e))
            }
        }
    }

    /// Serially re-executes the tenant's admitted query log against fresh
    /// **cache-free** sessions, reproducing every release bit-identically —
    /// including the failures. Cold solves prove the shared cache never
    /// changed an answer; the seed schedule proves the thread schedule
    /// never did. `None` for unknown tenants.
    ///
    /// Replay draws no budget and records no metrics: it recomputes what
    /// was already paid for.
    pub fn replay(&self, tenant: &str) -> Option<Vec<Result<QueryOutput, SqlError>>> {
        let log = self.tenants.query_log(tenant)?;
        let tenant_seed = self.tenants.tenant_seed(tenant)?;
        Some(
            log.iter()
                .map(|q| {
                    let seed = derive_query_seed(tenant_seed, q.index);
                    let mut session = SqlSession::over(Arc::clone(&self.snapshot), seed)
                        .with_group_policy(self.config.group_policy);
                    session.query(&q.sql)
                })
                .collect(),
        )
    }

    /// Stops admitting new work. Queued requests are woken and refused
    /// with [`ServerError::ShuttingDown`]; in-flight queries finish.
    pub fn shutdown(&self) {
        self.gate.shutdown();
    }

    /// Blocks until every admitted and queued request has left the gate.
    /// Call after [`DpServer::shutdown`] for a clean drain.
    pub fn drain(&self) {
        self.gate.drain();
    }

    /// A throwaway per-request session over the shared snapshot and cache.
    fn session_for(&self, seed: u64) -> SqlSession {
        SqlSession::over(Arc::clone(&self.snapshot), seed)
            .with_group_policy(self.config.group_policy)
            .with_sequence_cache(Arc::clone(&self.cache))
    }

    /// Folds one finished session's work counters into the server metrics.
    /// Cache totals come from the shared cache itself (monotone, so
    /// `counter_record_total` keeps the latest snapshot).
    fn absorb_session(&self, session: &SqlSession) {
        let lp = session.lp_totals();
        self.metrics
            .counter_add("server.lp.solves", (lp.h_solves + lp.g_solves) as u64);
        self.metrics
            .counter_add("server.lp.pivots", lp.total_pivots as u64);
        let cache = self.cache.stats();
        self.metrics
            .counter_record_total("server.cache.hits", cache.hits);
        self.metrics
            .counter_record_total("server.cache.misses", cache.misses);
    }
}
