//! The long-lived multi-tenant server around the per-request [`SqlSession`].
//!
//! # Shared vs per-request state
//!
//! One [`DpServer`] owns exactly the state that is sound to share across
//! tenants, and nothing more:
//!
//! - a versioned chain of immutable [`CatalogSnapshot`]s. The *current*
//!   snapshot is what new queries capture; [`DpServer::ingest`] forks it
//!   with a delta and atomically swaps the new version in, while in-flight
//!   sessions keep the `Arc` they captured at admission. Every version
//!   ever served stays in a history so replay can re-execute each query
//!   over exactly the data it originally saw;
//! - one [`SequenceCache`] shared by **all** tenants. Cache keys are
//!   canonical plan fingerprints that bake in the database's instance
//!   identity and the per-table epochs of exactly the scanned tables, so a
//!   hit can only ever return a table the same data would have produced —
//!   cross-tenant sharing leaks nothing a tenant could not compute from
//!   its own admitted queries, and an ingest invalidates only the plans
//!   that scanned the mutated table;
//! - per-tenant ε ledgers and admission state in a [`TenantRegistry`];
//! - a server-wide [`AdmissionGate`] that sheds load *before* any budget
//!   is touched.
//!
//! Each admitted query then gets a throwaway [`SqlSession`] seeded from
//! `(server seed, tenant name, per-tenant admission index)` — see
//! [`crate::seed`] — so releases are a pure function of the admitted
//! per-tenant workload, never of the thread schedule.
//!
//! # What refusals cost
//!
//! Nothing. Every refusal path — gate shed, per-tenant in-flight cap,
//! budget refusal, unknown tenant — returns before any ε is reserved, and
//! a query that fails *after* admission has its reservation refunded in
//! full (a failed query releases nothing). Tests assert both directions:
//! debits sum exactly to admissions, and refusals leave `remaining_budget`
//! bit-unchanged.

use crate::error::ServerError;
use crate::seed::derive_query_seed;
use crate::tenant::{AdmittedQuery, Reservation, TenantRegistry};
use rmdp_core::SequenceCache;
use rmdp_krelation::tuple::Tuple;
use rmdp_noise::{GroupBudgetPolicy, PrivacyBudget};
use rmdp_observe::{Clock, MetricsRegistry, MonotonicClock, LATENCY_BUCKETS_MS};
use rmdp_runtime::{AdmissionConfig, AdmissionGate};
use rmdp_sql::{AnyPlan, CatalogSnapshot, QueryOutput, SqlError, SqlSession};
use std::sync::{Arc, PoisonError, RwLock};

/// Knobs for one [`DpServer`]. See `docs/TUNING.md` for how each one trades
/// throughput against refusal rate.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// The server-wide admission gate: concurrent execution slots and the
    /// bounded wait queue in front of them.
    pub admission: AdmissionConfig,
    /// Per-tenant in-flight cap: one tenant can hold at most this many
    /// execution slots at once, so a chatty tenant cannot starve the rest.
    pub per_tenant_in_flight: usize,
    /// Capacity of the shared cross-tenant sequence cache (frozen LP
    /// tables keyed by canonical plan fingerprint).
    pub cache_capacity: usize,
    /// Root of the server's deterministic seed schedule.
    pub seed: u64,
    /// How grouped (`GROUP BY`) reports split budget across their groups.
    pub group_policy: GroupBudgetPolicy,
}

impl Default for ServerConfig {
    /// Eight execution slots with an equal-depth wait queue, four in-flight
    /// requests per tenant, a 256-entry shared cache.
    fn default() -> Self {
        ServerConfig {
            admission: AdmissionConfig::with_in_flight(8),
            per_tenant_in_flight: 4,
            cache_capacity: 256,
            seed: 0x5EED,
            group_policy: GroupBudgetPolicy::default(),
        }
    }
}

/// Receipt for one applied ingest: the snapshot version it produced, how
/// many rows it appended, and how many cache entries went stale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestReport {
    /// Version of the snapshot the delta produced (parent version + 1).
    pub version: u64,
    /// Number of tuples appended to the target table.
    pub rows: u64,
    /// Entries the stale sweep removed from the shared cache — exactly the
    /// cached plans that scanned the mutated table. Untouched-table entries
    /// survive and keep hitting.
    pub swept: u64,
}

/// A long-lived, thread-safe multi-tenant DP query server.
///
/// All methods take `&self`; one `Arc<DpServer>` is shared by every
/// connection handler and test thread. See the [module docs](self) for the
/// shared-vs-per-request split and the refusal semantics.
pub struct DpServer {
    /// The current snapshot, swapped atomically by [`DpServer::ingest`].
    /// In-flight sessions hold their own `Arc` clone, so a swap never
    /// changes what an already-admitted query sees.
    snapshot: RwLock<Arc<CatalogSnapshot>>,
    /// Every snapshot version ever served, in version order. Replay looks
    /// up each admitted query's recorded version here so re-execution sees
    /// the same data the live run did, whatever ingests happened since.
    history: RwLock<Vec<Arc<CatalogSnapshot>>>,
    cache: Arc<SequenceCache>,
    gate: AdmissionGate,
    tenants: TenantRegistry,
    metrics: Arc<MetricsRegistry>,
    clock: MonotonicClock,
    config: ServerConfig,
}

impl DpServer {
    /// A server over `snapshot` with the given `config`. Tenants start
    /// empty; register them with [`DpServer::register_tenant`].
    pub fn new(snapshot: Arc<CatalogSnapshot>, config: ServerConfig) -> Self {
        DpServer {
            snapshot: RwLock::new(Arc::clone(&snapshot)),
            history: RwLock::new(vec![snapshot]),
            cache: Arc::new(SequenceCache::new(config.cache_capacity)),
            gate: AdmissionGate::new(config.admission),
            tenants: TenantRegistry::new(),
            metrics: Arc::new(MetricsRegistry::new()),
            clock: MonotonicClock::new(),
            config,
        }
    }

    /// Registers `tenant` with a lifetime ε budget. Returns `false` (and
    /// changes nothing) if the tenant already exists — budgets can never be
    /// reset by re-registering.
    pub fn register_tenant(&self, tenant: &str, total: PrivacyBudget) -> bool {
        self.tenants.register(tenant, total, self.config.seed)
    }

    /// The server's configuration.
    pub fn config(&self) -> ServerConfig {
        self.config
    }

    /// The current catalog snapshot. Owned, not borrowed: ingests swap the
    /// server's snapshot, and a caller holding this `Arc` keeps a
    /// consistent view across the swap.
    pub fn snapshot(&self) -> Arc<CatalogSnapshot> {
        // Poisoning is recovered, not propagated: the guarded value is an
        // `Arc` swapped atomically under the write lock, so it is consistent
        // even if some thread panicked while holding the guard — and a panic
        // must never cascade into refusing every later request.
        Arc::clone(&self.snapshot.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// The snapshot with exactly this version, if the server ever served
    /// it. Version 0 is the construction snapshot; each ingest appends one.
    pub fn snapshot_at(&self, version: u64) -> Option<Arc<CatalogSnapshot>> {
        self.history
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .find(|s| s.version() == version)
            .cloned()
    }

    /// The server's metrics registry (admissions, sheds, latencies).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Statistics of the shared cross-tenant sequence cache.
    pub fn cache_stats(&self) -> rmdp_core::CacheStats {
        self.cache.stats()
    }

    /// All registered tenant names, in deterministic order.
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants.names()
    }

    /// The tenant's remaining budget, or `None` for unknown tenants.
    pub fn remaining_budget(&self, tenant: &str) -> Option<PrivacyBudget> {
        self.tenants.remaining(tenant)
    }

    /// The tenant's spent budget, or `None` for unknown tenants.
    pub fn spent_budget(&self, tenant: &str) -> Option<PrivacyBudget> {
        self.tenants.spent(tenant)
    }

    /// The tenant's admitted queries in admission order, or `None` for
    /// unknown tenants. This is the replay log: re-executing it serially
    /// through [`DpServer::replay`] reproduces the tenant's releases
    /// bit-identically.
    pub fn query_log(&self, tenant: &str) -> Option<Vec<AdmittedQuery>> {
        self.tenants.query_log(tenant)
    }

    /// What one query would cost this server, without running it. Scalar
    /// releases cost `ε₁ + ε₂`; grouped reports are priced by the
    /// configured [`GroupBudgetPolicy`]. An `EXPLAIN ANALYZE` prefix does
    /// not change the price — tracing performs the release it traces.
    pub fn price(&self, sql: &str) -> Result<PrivacyBudget, SqlError> {
        self.price_over(&self.snapshot(), sql)
    }

    fn price_over(&self, snapshot: &CatalogSnapshot, sql: &str) -> Result<PrivacyBudget, SqlError> {
        let per_release = PrivacyBudget {
            epsilon: snapshot.params().total_epsilon(),
            delta: 0.0,
        };
        Ok(match snapshot.plan(sql)? {
            AnyPlan::Scalar(_) => per_release,
            AnyPlan::Grouped(g) => self
                .config
                .group_policy
                .report_cost(per_release, g.num_groups()),
        })
    }

    /// Runs one query for `tenant` through the full server path: gate →
    /// price → atomic per-tenant reservation → throwaway seeded session →
    /// release (or refund). See the [module docs](self) for what each
    /// refusal costs (nothing).
    pub fn query(&self, tenant: &str, sql: &str) -> Result<QueryOutput, ServerError> {
        let started = self.clock.now_nanos();
        let permit = match self.gate.enter() {
            Ok(p) => p,
            Err(e) => {
                self.metrics.counter_add("server.shed.overloaded", 1);
                return Err(e.into());
            }
        };
        // Pin the snapshot for this query's whole lifetime. Ingests swap
        // the server's current snapshot, but this query prices, reserves
        // and executes against the one Arc it captured here — and records
        // its version in the replay log.
        let snapshot = self.snapshot();
        // Price before reserving so a malformed query is refused without
        // touching the ledger. The permit is held while planning: pricing
        // is microseconds next to an LP solve, and counting it against the
        // gate keeps `in_flight` an honest measure of server load.
        let cost = self.price_over(&snapshot, sql).map_err(|e| {
            self.metrics.counter_add("server.errors.sql", 1);
            ServerError::Sql(e)
        })?;
        let reservation = self
            .tenants
            .reserve(
                tenant,
                sql,
                cost,
                self.config.per_tenant_in_flight,
                snapshot.version(),
            )
            .ok_or_else(|| {
                self.metrics.counter_add("server.refused.unknown_tenant", 1);
                ServerError::UnknownTenant(tenant.to_owned())
            })?;
        let (index, tenant_seed) = match reservation {
            Reservation::Admitted { index, tenant_seed } => (index, tenant_seed),
            Reservation::Busy { in_flight } => {
                self.metrics.counter_add("server.shed.tenant_busy", 1);
                return Err(ServerError::TenantBusy {
                    tenant: tenant.to_owned(),
                    in_flight,
                });
            }
            Reservation::OverBudget(e) => {
                self.metrics.counter_add("server.refused.budget", 1);
                return Err(ServerError::BudgetExhausted(e));
            }
        };

        let mut session = self.session_for(snapshot, derive_query_seed(tenant_seed, index));
        let result = session.query(sql);
        self.tenants.finish(tenant, cost, result.is_err());
        self.absorb_session(&session);
        drop(permit);

        let elapsed_ms = (self.clock.now_nanos() - started) as f64 / 1e6;
        self.metrics
            .histogram_observe("server.latency_ms", &LATENCY_BUCKETS_MS, elapsed_ms);
        match result {
            Ok(output) => {
                self.metrics.counter_add("server.queries", 1);
                self.metrics
                    .counter_add(&format!("tenant.{tenant}.queries"), 1);
                Ok(output)
            }
            Err(e) => {
                self.metrics.counter_add("server.errors.sql", 1);
                Err(ServerError::Sql(e))
            }
        }
    }

    /// Serially re-executes the tenant's admitted query log against fresh
    /// **cache-free** sessions, reproducing every release bit-identically —
    /// including the failures. Cold solves prove the shared cache never
    /// changed an answer; the seed schedule proves the thread schedule
    /// never did. `None` for unknown tenants.
    ///
    /// Replay draws no budget and records no metrics: it recomputes what
    /// was already paid for. Returns `None` for unknown tenants, or if a
    /// logged snapshot version is missing from the history (the log records
    /// only served versions and the history never evicts, so that would
    /// mean corrupted state — replay refuses rather than panics).
    pub fn replay(&self, tenant: &str) -> Option<Vec<Result<QueryOutput, SqlError>>> {
        let log = self.tenants.query_log(tenant)?;
        let tenant_seed = self.tenants.tenant_seed(tenant)?;
        let mut outputs = Vec::with_capacity(log.len());
        for q in &log {
            let seed = derive_query_seed(tenant_seed, q.index);
            let snapshot = self.snapshot_at(q.snapshot_version)?;
            let mut session =
                SqlSession::over(snapshot, seed).with_group_policy(self.config.group_policy);
            outputs.push(session.query(&q.sql));
        }
        Some(outputs)
    }

    /// Appends `rows` to `table` and atomically swaps in the resulting
    /// snapshot, while already-admitted queries keep serving from theirs.
    ///
    /// The whole operation — fork the current snapshot with the delta,
    /// publish it, append it to the version history, sweep the shared
    /// cache's now-stale entries — happens under the snapshot write lock,
    /// so concurrent ingests serialize and none is lost. Queries never take
    /// that lock for longer than one `Arc` clone. An ingest occupies one
    /// admission-gate slot like any query, so a flood of ingests sheds
    /// instead of starving queries; a rejected delta (unknown table or
    /// column mismatch) changes nothing.
    ///
    /// Only plans that scan `table` lose their cache entries — and their
    /// solved tables are parked as warm-refresh bases, so re-releasing them
    /// costs a delta re-solve, not a cold rebuild. Untouched tables' plan
    /// fingerprints are byte-identical across the swap and keep hitting.
    pub fn ingest(&self, table: &str, rows: Vec<Tuple>) -> Result<IngestReport, ServerError> {
        let permit = match self.gate.enter() {
            Ok(p) => p,
            Err(e) => {
                self.metrics.counter_add("server.shed.overloaded", 1);
                return Err(e.into());
            }
        };
        let row_count = rows.len() as u64;
        let report = {
            let mut current = self
                .snapshot
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            let next = current.with_delta(table, rows).map_err(|e| {
                self.metrics.counter_add("server.errors.ingest", 1);
                ServerError::Sql(e)
            })?;
            let swept =
                self.cache
                    .purge_stale(&next.database().current_epoch_stamps()) as u64;
            self.history
                .write()
                .unwrap_or_else(PoisonError::into_inner)
                .push(Arc::clone(&next));
            let version = next.version();
            *current = next;
            IngestReport {
                version,
                rows: row_count,
                swept,
            }
        };
        drop(permit);
        self.metrics.counter_add("server.ingests", 1);
        self.metrics.counter_add("server.ingest.rows", report.rows);
        self.metrics
            .counter_add("server.ingest.swept", report.swept);
        Ok(report)
    }

    /// Stops admitting new work. Queued requests are woken and refused
    /// with [`ServerError::ShuttingDown`]; in-flight queries finish.
    pub fn shutdown(&self) {
        self.gate.shutdown();
    }

    /// Blocks until every admitted and queued request has left the gate.
    /// Call after [`DpServer::shutdown`] for a clean drain.
    pub fn drain(&self) {
        self.gate.drain();
    }

    /// A throwaway per-request session over the given snapshot and the
    /// shared cache.
    fn session_for(&self, snapshot: Arc<CatalogSnapshot>, seed: u64) -> SqlSession {
        SqlSession::over(snapshot, seed)
            .with_group_policy(self.config.group_policy)
            .with_sequence_cache(Arc::clone(&self.cache))
    }

    /// Folds one finished session's work counters into the server metrics.
    /// Cache totals come from the shared cache itself (monotone, so
    /// `counter_record_total` keeps the latest snapshot).
    fn absorb_session(&self, session: &SqlSession) {
        let lp = session.lp_totals();
        self.metrics
            .counter_add("server.lp.solves", (lp.h_solves + lp.g_solves) as u64);
        self.metrics
            .counter_add("server.lp.pivots", lp.total_pivots as u64);
        let cache = self.cache.stats();
        self.metrics
            .counter_record_total("server.cache.hits", cache.hits);
        self.metrics
            .counter_record_total("server.cache.misses", cache.misses);
    }
}
