//! Per-tenant mutable state: budgets, admission indices and the replay log.
//!
//! Everything schedule-dependent about one tenant funnels through one
//! mutex: the reservation of a query's cost, the assignment of its
//! per-tenant admission index (the seed binding — see [`crate::seed`]), the
//! in-flight cap, and the append to the replay log all happen under the
//! tenant's lock in one critical section, so they are mutually atomic.
//! Two of the tenant's own queries racing can never double-spend a budget
//! only one fits in, never share an admission index, and never interleave
//! log entries out of admission order. Different tenants use different
//! locks and never contend.
//!
//! The ε ledgers themselves live in a
//! [`BudgetRegistry`] — the noise crate's
//! thread-safe map of per-tenant [`BudgetAccountant`]s — and the registry
//! here layers the server's admission state on top.

use crate::seed::derive_tenant_seed;
use rmdp_noise::{BudgetAccountant, BudgetExhausted, BudgetRegistry, PrivacyBudget};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// One admitted query in a tenant's replay log: the admission index its
/// noise seed derives from, the SQL text to re-execute, and the catalog
/// snapshot version it was admitted against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdmittedQuery {
    /// The per-tenant admission index (0-based, gapless).
    pub index: u64,
    /// The query text as admitted.
    pub sql: String,
    /// Version of the [`CatalogSnapshot`](rmdp_sql::CatalogSnapshot) the
    /// query executed over. Ingests advance the server's snapshot, and
    /// replay must re-execute each query over the *same* data it originally
    /// saw, or interleaved ingests would change the replayed answers.
    pub snapshot_version: u64,
}

/// The mutable half of one tenant, guarded by one mutex.
#[derive(Debug)]
pub(crate) struct TenantMut {
    /// Root of this tenant's seed stream.
    pub(crate) seed: u64,
    /// Next admission index to hand out.
    pub(crate) admitted: u64,
    /// Queries currently executing for this tenant.
    pub(crate) in_flight: usize,
    /// Every admitted query in admission order (including ones that later
    /// failed and were refunded — replay reproduces their failures too).
    pub(crate) log: Vec<AdmittedQuery>,
}

/// The server's tenant table: per-tenant ε ledgers (behind the noise
/// crate's [`BudgetRegistry`]) plus per-tenant admission state.
#[derive(Debug, Default)]
pub struct TenantRegistry {
    budgets: BudgetRegistry,
    tenants: RwLock<BTreeMap<String, Arc<Mutex<TenantMut>>>>,
}

/// What one admission reservation decided, under the tenant lock.
#[derive(Debug)]
pub(crate) enum Reservation {
    /// Cost reserved; execute with this admission index.
    Admitted {
        /// The query's per-tenant admission index.
        index: u64,
        /// The tenant's seed-stream root (for deriving the query seed).
        tenant_seed: u64,
    },
    /// The tenant's in-flight cap is full. Nothing reserved.
    Busy {
        /// In-flight count at refusal time.
        in_flight: usize,
    },
    /// The ledger refused the cost. Nothing reserved.
    OverBudget(BudgetExhausted),
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `tenant` with budget `total`; its seed stream derives from
    /// `server_seed` and its name. Returns `false` (leaving existing state
    /// untouched) if the tenant already exists.
    pub fn register(&self, tenant: &str, total: PrivacyBudget, server_seed: u64) -> bool {
        if !self.budgets.register(tenant, total) {
            return false;
        }
        // Throughout the registry, lock poisoning is recovered rather than
        // propagated: every critical section is panic-free (the lint's
        // panic-freedom rule enforces that), so a poisoned flag can only be
        // inherited from a test or foreign unwind — and one tenant's panic
        // must never start refusing every other tenant's requests.
        self.tenants
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(
                tenant.to_owned(),
                Arc::new(Mutex::new(TenantMut {
                    seed: derive_tenant_seed(server_seed, tenant),
                    admitted: 0,
                    in_flight: 0,
                    log: Vec::new(),
                })),
            );
        true
    }

    /// All registered tenant names, in deterministic order.
    pub fn names(&self) -> Vec<String> {
        self.budgets.names()
    }

    /// The tenant's remaining budget, or `None` for unknown tenants.
    pub fn remaining(&self, tenant: &str) -> Option<PrivacyBudget> {
        self.budgets.remaining(tenant)
    }

    /// The tenant's spent budget, or `None` for unknown tenants.
    pub fn spent(&self, tenant: &str) -> Option<PrivacyBudget> {
        self.budgets.spent(tenant)
    }

    /// The tenant's replay log (admission order), or `None` for unknown
    /// tenants.
    pub fn query_log(&self, tenant: &str) -> Option<Vec<AdmittedQuery>> {
        let state = self.state(tenant)?;
        let t = state.lock().unwrap_or_else(PoisonError::into_inner);
        Some(t.log.clone())
    }

    /// The tenant's seed-stream root, or `None` for unknown tenants.
    pub fn tenant_seed(&self, tenant: &str) -> Option<u64> {
        let state = self.state(tenant)?;
        let t = state.lock().unwrap_or_else(PoisonError::into_inner);
        Some(t.seed)
    }

    pub(crate) fn state(&self, tenant: &str) -> Option<Arc<Mutex<TenantMut>>> {
        self.tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(tenant)
            .cloned()
    }

    /// The admission critical section: under the tenant's lock, check the
    /// in-flight cap, reserve `cost` on the ledger, assign the admission
    /// index, bump in-flight, and append to the replay log — atomically.
    /// Returns `None` for unknown tenants.
    pub(crate) fn reserve(
        &self,
        tenant: &str,
        sql: &str,
        cost: PrivacyBudget,
        max_in_flight: usize,
        snapshot_version: u64,
    ) -> Option<Reservation> {
        let state = self.state(tenant)?;
        let ledger = self.budgets.handle(tenant)?;
        let mut t = state.lock().unwrap_or_else(PoisonError::into_inner);
        if t.in_flight >= max_in_flight {
            return Some(Reservation::Busy {
                in_flight: t.in_flight,
            });
        }
        // Lock order is always tenant → ledger (the only place both are
        // held), so the pair cannot deadlock.
        let mut acc = ledger.lock().unwrap_or_else(PoisonError::into_inner);
        if let Err(e) = acc.try_spend(cost) {
            return Some(Reservation::OverBudget(e));
        }
        drop(acc);
        let index = t.admitted;
        t.admitted += 1;
        t.in_flight += 1;
        t.log.push(AdmittedQuery {
            index,
            sql: sql.to_owned(),
            snapshot_version,
        });
        Some(Reservation::Admitted {
            index,
            tenant_seed: t.seed,
        })
    }

    /// Ends an admitted query's flight. When it failed (released nothing),
    /// `refund` returns the reserved cost to the ledger.
    pub(crate) fn finish(&self, tenant: &str, cost: PrivacyBudget, refund: bool) {
        if let Some(state) = self.state(tenant) {
            let mut t = state.lock().unwrap_or_else(PoisonError::into_inner);
            t.in_flight = t.in_flight.saturating_sub(1);
        }
        if refund {
            if let Some(ledger) = self.budgets.handle(tenant) {
                ledger
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .refund(cost);
            }
        }
    }

    /// Read access to a tenant's full accountant state (for reports).
    pub fn accountant(&self, tenant: &str) -> Option<BudgetAccountant> {
        let ledger = self.budgets.handle(tenant)?;
        let acc = ledger.lock().unwrap_or_else(PoisonError::into_inner);
        Some(*acc)
    }
}
