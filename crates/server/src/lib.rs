//! A multi-tenant differentially private query server over the recursive
//! mechanism (Chen & Zhou, SIGMOD 2013).
//!
//! This crate is the service topology around the `rmdp-sql` frontend:
//!
//! ```text
//!  clients ──TCP──▶ [protocol]  line requests, one thread per connection
//!                        │
//!                        ▼
//!                   [DpServer]  admission gate → price → reserve
//!                    │   │  │
//!        ┌───────────┘   │  └────────────┐
//!        ▼               ▼               ▼
//!  CatalogSnapshot  TenantRegistry  SequenceCache
//!  (immutable,      (per-tenant ε   (shared across
//!   Arc-shared)      + admission)    ALL tenants)
//!                        │
//!                        ▼
//!              per-request SqlSession
//!              (seed = f(server, tenant, index))
//! ```
//!
//! The design splits server state along one line: **what is sound to share**
//! (the immutable catalog snapshot; the sequence cache, whose fingerprint
//! keys bake in database identity) is shared by every tenant, and **what
//! meters privacy** (ε ledgers, admission indices, replay logs) is strictly
//! per-tenant. Refused and shed requests consume no ε; see
//! [`ServerError`]. Releases are a deterministic function of the admitted
//! per-tenant workload — [`DpServer::replay`] reproduces them
//! bit-identically from the query log, whatever thread schedule produced it.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod error;
pub mod protocol;
pub mod seed;
pub mod server;
pub mod tenant;

pub use client::{DpClient, WireRelease, WireResponse};
pub use error::ServerError;
pub use protocol::{serve, ServerHandle};
pub use seed::{derive_query_seed, derive_tenant_seed};
pub use server::{DpServer, IngestReport, ServerConfig};
pub use tenant::{AdmittedQuery, TenantRegistry};

#[cfg(test)]
mod tests {
    use super::*;
    use rmdp_core::MechanismParams;
    use rmdp_krelation::annotate::{AnnotatedDatabase, AnnotationRule};
    use rmdp_krelation::tuple::{Tuple, Value};
    use rmdp_krelation::{Expr, KRelation};
    use rmdp_noise::PrivacyBudget;
    use rmdp_runtime::AdmissionConfig;
    use rmdp_sql::{CatalogSnapshot, QueryOutput};
    use std::sync::Arc;

    fn snapshot() -> Arc<CatalogSnapshot> {
        let mut db = AnnotatedDatabase::new();
        let mut visits = KRelation::new(["person", "place"]);
        for (person, place) in [
            ("ada", "museum"),
            ("bo", "museum"),
            ("bo", "cafe"),
            ("cy", "cafe"),
            ("dee", "museum"),
        ] {
            let p = db.intern(person);
            visits.insert(
                Tuple::new([("person", Value::str(person)), ("place", Value::str(place))]),
                Expr::Var(p),
            );
        }
        db.insert_table("visits", visits);
        db.declare_public_domain(
            "visits",
            "place",
            [Value::str("museum"), Value::str("cafe"), Value::str("park")],
        );
        CatalogSnapshot::shared(db, MechanismParams::paper_edge_privacy(1.0))
    }

    fn row(pairs: &[(&str, &str)]) -> Tuple {
        Tuple::new(pairs.iter().map(|(a, v)| (*a, Value::str(v))))
    }

    /// Two tables loaded through the delta path itself, so their
    /// participant labels are rule-consistent and later ingests of known
    /// people are intern-only (no universe epoch bump).
    fn delta_snapshot() -> Arc<CatalogSnapshot> {
        let mut db = AnnotatedDatabase::new();
        db.insert_table("visits", KRelation::new(["person", "place"]));
        db.insert_table("residents", KRelation::new(["person", "town"]));
        db.declare_annotation_rule("visits", AnnotationRule::OwnerColumn("person".into()));
        db.declare_annotation_rule("residents", AnnotationRule::OwnerColumn("person".into()));
        db.declare_public_domain(
            "visits",
            "place",
            [Value::str("museum"), Value::str("cafe"), Value::str("park")],
        );
        db.apply_delta(
            "visits",
            [
                row(&[("person", "ada"), ("place", "museum")]),
                row(&[("person", "bo"), ("place", "cafe")]),
            ],
        )
        .unwrap();
        db.apply_delta(
            "residents",
            [row(&[("person", "ada"), ("town", "springfield")])],
        )
        .unwrap();
        CatalogSnapshot::shared(db, MechanismParams::paper_edge_privacy(1.0))
    }

    fn eps(e: f64) -> PrivacyBudget {
        PrivacyBudget {
            epsilon: e,
            delta: 0.0,
        }
    }

    #[test]
    fn queries_release_and_debit_per_tenant() {
        let server = DpServer::new(snapshot(), ServerConfig::default());
        assert!(server.register_tenant("alice", eps(4.0)));
        assert!(!server.register_tenant("alice", eps(99.0)), "no resets");
        server.register_tenant("bob", eps(4.0));

        let out = server
            .query("alice", "SELECT COUNT(*) FROM visits")
            .unwrap();
        let release = out.scalar().expect("scalar release");
        assert_eq!(release.true_answer, 5.0);
        assert_eq!(release.epsilon_spent, 1.0);

        assert_eq!(server.spent_budget("alice").unwrap().epsilon, 1.0);
        assert_eq!(
            server.spent_budget("bob").unwrap().epsilon,
            0.0,
            "bob pays nothing for alice's query"
        );
        assert_eq!(server.query_log("alice").unwrap().len(), 1);
    }

    #[test]
    fn refusals_leave_the_ledger_bit_unchanged() {
        let server = DpServer::new(snapshot(), ServerConfig::default());
        server.register_tenant("alice", eps(0.5));
        let before = server.remaining_budget("alice").unwrap();

        let err = server
            .query("alice", "SELECT COUNT(*) FROM visits")
            .unwrap_err();
        assert!(matches!(err, ServerError::BudgetExhausted(_)), "{err}");
        assert!(!err.consumed_epsilon());
        let after = server.remaining_budget("alice").unwrap();
        assert_eq!(before.epsilon.to_bits(), after.epsilon.to_bits());
        assert!(
            server.query_log("alice").unwrap().is_empty(),
            "refusals never enter the replay log"
        );

        let err = server.query("nobody", "SELECT COUNT(*) FROM visits");
        assert!(matches!(err, Err(ServerError::UnknownTenant(_))));
    }

    #[test]
    fn failed_queries_refund_their_reservation() {
        let server = DpServer::new(snapshot(), ServerConfig::default());
        server.register_tenant("alice", eps(4.0));
        // Planning succeeds (the table and column exist) but execution is
        // never reached: a malformed query fails at the price step with no
        // reservation at all.
        let err = server.query("alice", "SELECT COUNT(*) FROM nowhere");
        assert!(matches!(err, Err(ServerError::Sql(_))));
        assert_eq!(server.spent_budget("alice").unwrap().epsilon, 0.0);
    }

    #[test]
    fn replay_reproduces_releases_bit_identically() {
        let server = DpServer::new(snapshot(), ServerConfig::default());
        server.register_tenant("alice", eps(16.0));
        let sqls = [
            "SELECT COUNT(*) FROM visits",
            "SELECT COUNT(*) FROM visits WHERE place = 'museum'",
            "SELECT COUNT(*) FROM visits",
            "SELECT place, COUNT(*) FROM visits GROUP BY place",
        ];
        let mut live = Vec::new();
        for sql in sqls {
            live.push(server.query("alice", sql).unwrap());
        }
        // The third query hits the shared cache (same fingerprint as the
        // first); replay re-solves everything cold.
        assert!(server.cache_stats().hits >= 1, "expected a cache hit");

        let replayed = server.replay("alice").unwrap();
        assert_eq!(replayed.len(), live.len());
        for (orig, re) in live.iter().zip(&replayed) {
            let re = re.as_ref().unwrap();
            match (orig, re) {
                (QueryOutput::Scalar(a), QueryOutput::Scalar(b)) => {
                    assert_eq!(a.noisy_answer.to_bits(), b.noisy_answer.to_bits());
                }
                (QueryOutput::Grouped(a), QueryOutput::Grouped(b)) => {
                    assert_eq!(a.groups.len(), b.groups.len());
                    for (ga, gb) in a.groups.iter().zip(&b.groups) {
                        assert_eq!(ga.key, gb.key);
                        assert_eq!(
                            ga.release.noisy_answer.to_bits(),
                            gb.release.noisy_answer.to_bits()
                        );
                    }
                }
                other => panic!("shape changed under replay: {other:?}"),
            }
        }
    }

    #[test]
    fn ingest_swaps_snapshots_while_untouched_tables_keep_hitting() {
        let server = DpServer::new(delta_snapshot(), ServerConfig::default());
        server.register_tenant("alice", eps(64.0));
        let visits = server
            .query("alice", "SELECT COUNT(*) FROM visits")
            .unwrap();
        assert_eq!(visits.scalar().unwrap().true_answer, 2.0);
        server
            .query("alice", "SELECT COUNT(*) FROM residents")
            .unwrap();
        let misses = server.cache_stats().misses;

        // An intern-only delta: "bo" is a known participant, so only the
        // visits table epoch moves — the universe epoch stays put.
        let report = server
            .ingest("visits", vec![row(&[("person", "bo"), ("place", "park")])])
            .unwrap();
        assert_eq!(report.version, 1);
        assert_eq!(report.rows, 1);
        assert_eq!(report.swept, 1, "only the visits plan goes stale");
        assert_eq!(server.snapshot().version(), 1);

        // The untouched table's fingerprint is byte-identical across the
        // swap: the residents entry survived the sweep and still hits.
        let hits = server.cache_stats().hits;
        server
            .query("alice", "SELECT COUNT(*) FROM residents")
            .unwrap();
        assert_eq!(server.cache_stats().hits, hits + 1);
        assert_eq!(server.cache_stats().misses, misses, "no new cold solve");

        // The mutated table answers over the new snapshot.
        let visits = server
            .query("alice", "SELECT COUNT(*) FROM visits")
            .unwrap();
        assert_eq!(visits.scalar().unwrap().true_answer, 3.0);

        // A rejected delta changes nothing: same version, same data.
        let err = server
            .ingest("nowhere", vec![row(&[("x", "1")])])
            .unwrap_err();
        assert!(matches!(err, ServerError::Sql(_)), "{err}");
        assert_eq!(server.snapshot().version(), 1);
    }

    #[test]
    fn replay_is_bit_identical_across_interleaved_ingests() {
        let server = DpServer::new(delta_snapshot(), ServerConfig::default());
        server.register_tenant("alice", eps(64.0));
        let mut live = Vec::new();
        live.push(
            server
                .query("alice", "SELECT COUNT(*) FROM visits")
                .unwrap(),
        );
        server
            .ingest("visits", vec![row(&[("person", "cy"), ("place", "park")])])
            .unwrap();
        live.push(
            server
                .query("alice", "SELECT COUNT(*) FROM visits")
                .unwrap(),
        );
        server
            .ingest(
                "visits",
                vec![row(&[("person", "dee"), ("place", "museum")])],
            )
            .unwrap();
        live.push(
            server
                .query("alice", "SELECT COUNT(*) FROM visits")
                .unwrap(),
        );
        live.push(
            server
                .query("alice", "SELECT place, COUNT(*) FROM visits GROUP BY place")
                .unwrap(),
        );

        // The data really moved under the repeated query…
        let trues: Vec<f64> = live[..3]
            .iter()
            .map(|o| o.clone().scalar().unwrap().true_answer)
            .collect();
        assert_eq!(trues, [2.0, 3.0, 4.0]);
        // …and the log pinned each admission to the snapshot it saw.
        let versions: Vec<u64> = server
            .query_log("alice")
            .unwrap()
            .iter()
            .map(|q| q.snapshot_version)
            .collect();
        assert_eq!(versions, [0, 1, 2, 2]);

        let replayed = server.replay("alice").unwrap();
        assert_eq!(replayed.len(), live.len());
        for (orig, re) in live.iter().zip(&replayed) {
            match (orig, re.as_ref().unwrap()) {
                (QueryOutput::Scalar(a), QueryOutput::Scalar(b)) => {
                    assert_eq!(a.true_answer, b.true_answer);
                    assert_eq!(a.noisy_answer.to_bits(), b.noisy_answer.to_bits());
                }
                (QueryOutput::Grouped(a), QueryOutput::Grouped(b)) => {
                    assert_eq!(a.groups.len(), b.groups.len());
                    for (ga, gb) in a.groups.iter().zip(&b.groups) {
                        assert_eq!(ga.key, gb.key);
                        assert_eq!(
                            ga.release.noisy_answer.to_bits(),
                            gb.release.noisy_answer.to_bits()
                        );
                    }
                }
                other => panic!("shape changed under replay: {other:?}"),
            }
        }
    }

    #[test]
    fn tenant_in_flight_cap_sheds_without_spending() {
        let config = ServerConfig {
            per_tenant_in_flight: 0,
            ..ServerConfig::default()
        };
        let server = DpServer::new(snapshot(), config);
        server.register_tenant("alice", eps(4.0));
        let err = server
            .query("alice", "SELECT COUNT(*) FROM visits")
            .unwrap_err();
        assert!(matches!(err, ServerError::TenantBusy { .. }), "{err}");
        assert_eq!(server.spent_budget("alice").unwrap().epsilon, 0.0);
    }

    #[test]
    fn the_wire_round_trips_releases_bit_identically() {
        let config = ServerConfig {
            admission: AdmissionConfig::with_in_flight(4),
            ..ServerConfig::default()
        };
        let server = Arc::new(DpServer::new(snapshot(), config));
        server.register_tenant("alice", eps(16.0));
        let mut handle = serve(Arc::clone(&server), "127.0.0.1:0").unwrap();

        let mut client = DpClient::connect(handle.addr()).unwrap();
        let scalar = client
            .query("alice", "SELECT COUNT(*) FROM visits")
            .unwrap();
        let wire = scalar.scalar().expect("scalar release").clone();
        let log = server.query_log("alice").unwrap();
        assert_eq!(log.len(), 1);
        let replayed = server.replay("alice").unwrap().remove(0).unwrap();
        let re = replayed.scalar().unwrap();
        assert_eq!(
            wire.noisy_answer.to_bits(),
            re.noisy_answer.to_bits(),
            "shortest-round-trip float formatting preserves bits over the wire"
        );

        let grouped = client
            .query("alice", "SELECT place, COUNT(*) FROM visits GROUP BY place")
            .unwrap();
        match grouped {
            WireResponse::Grouped { groups, .. } => assert_eq!(groups.len(), 3),
            other => panic!("expected grouped response, got {other:?}"),
        }

        let explained = client
            .query("alice", "EXPLAIN ANALYZE SELECT COUNT(*) FROM visits")
            .unwrap();
        assert!(
            matches!(explained, WireResponse::Explained { .. }),
            "{explained:?}"
        );

        match client.budget("alice").unwrap() {
            WireResponse::Budget { remaining, spent } => {
                let ledger = server.remaining_budget("alice").unwrap();
                assert_eq!(remaining.to_bits(), ledger.epsilon.to_bits());
                assert!(spent > 0.0);
            }
            other => panic!("expected budget response, got {other:?}"),
        }

        match client
            .query("nobody", "SELECT COUNT(*) FROM visits")
            .unwrap()
        {
            WireResponse::Error { code, .. } => assert_eq!(code, "UNKNOWN_TENANT"),
            other => panic!("expected error, got {other:?}"),
        }

        handle.stop();
    }

    #[test]
    fn the_wire_ingests_and_serves_the_new_snapshot() {
        let server = Arc::new(DpServer::new(delta_snapshot(), ServerConfig::default()));
        server.register_tenant("alice", eps(16.0));
        let mut handle = serve(Arc::clone(&server), "127.0.0.1:0").unwrap();
        let mut client = DpClient::connect(handle.addr()).unwrap();

        let before = client
            .query("alice", "SELECT COUNT(*) FROM visits")
            .unwrap();
        assert_eq!(before.scalar().unwrap().true_answer, 2.0);

        match client
            .ingest("visits", "person=eve,place=park;person=fay,place=museum")
            .unwrap()
        {
            WireResponse::Ingest {
                version,
                rows,
                swept,
            } => {
                assert_eq!(version, 1);
                assert_eq!(rows, 2);
                assert_eq!(swept, 1);
            }
            other => panic!("expected ingest receipt, got {other:?}"),
        }

        let after = client
            .query("alice", "SELECT COUNT(*) FROM visits")
            .unwrap();
        assert_eq!(after.scalar().unwrap().true_answer, 4.0);

        match client.ingest("visits", "garbage").unwrap() {
            WireResponse::Error { code, .. } => assert_eq!(code, "PROTOCOL"),
            other => panic!("expected protocol error, got {other:?}"),
        }
        match client.ingest("nowhere", "x=1").unwrap() {
            WireResponse::Error { code, .. } => assert_eq!(code, "SQL"),
            other => panic!("expected SQL error, got {other:?}"),
        }
        assert_eq!(server.snapshot().version(), 1, "rejections swap nothing");

        handle.stop();
    }
}
