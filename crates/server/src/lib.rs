//! A multi-tenant differentially private query server over the recursive
//! mechanism (Chen & Zhou, SIGMOD 2013).
//!
//! This crate is the service topology around the `rmdp-sql` frontend:
//!
//! ```text
//!  clients ──TCP──▶ [protocol]  line requests, one thread per connection
//!                        │
//!                        ▼
//!                   [DpServer]  admission gate → price → reserve
//!                    │   │  │
//!        ┌───────────┘   │  └────────────┐
//!        ▼               ▼               ▼
//!  CatalogSnapshot  TenantRegistry  SequenceCache
//!  (immutable,      (per-tenant ε   (shared across
//!   Arc-shared)      + admission)    ALL tenants)
//!                        │
//!                        ▼
//!              per-request SqlSession
//!              (seed = f(server, tenant, index))
//! ```
//!
//! The design splits server state along one line: **what is sound to share**
//! (the immutable catalog snapshot; the sequence cache, whose fingerprint
//! keys bake in database identity) is shared by every tenant, and **what
//! meters privacy** (ε ledgers, admission indices, replay logs) is strictly
//! per-tenant. Refused and shed requests consume no ε; see
//! [`ServerError`]. Releases are a deterministic function of the admitted
//! per-tenant workload — [`DpServer::replay`] reproduces them
//! bit-identically from the query log, whatever thread schedule produced it.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod error;
pub mod protocol;
pub mod seed;
pub mod server;
pub mod tenant;

pub use client::{DpClient, WireRelease, WireResponse};
pub use error::ServerError;
pub use protocol::{serve, ServerHandle};
pub use seed::{derive_query_seed, derive_tenant_seed};
pub use server::{DpServer, ServerConfig};
pub use tenant::{AdmittedQuery, TenantRegistry};

#[cfg(test)]
mod tests {
    use super::*;
    use rmdp_core::MechanismParams;
    use rmdp_krelation::annotate::AnnotatedDatabase;
    use rmdp_krelation::tuple::{Tuple, Value};
    use rmdp_krelation::{Expr, KRelation};
    use rmdp_noise::PrivacyBudget;
    use rmdp_runtime::AdmissionConfig;
    use rmdp_sql::{CatalogSnapshot, QueryOutput};
    use std::sync::Arc;

    fn snapshot() -> Arc<CatalogSnapshot> {
        let mut db = AnnotatedDatabase::new();
        let mut visits = KRelation::new(["person", "place"]);
        for (person, place) in [
            ("ada", "museum"),
            ("bo", "museum"),
            ("bo", "cafe"),
            ("cy", "cafe"),
            ("dee", "museum"),
        ] {
            let p = db.intern(person);
            visits.insert(
                Tuple::new([("person", Value::str(person)), ("place", Value::str(place))]),
                Expr::Var(p),
            );
        }
        db.insert_table("visits", visits);
        db.declare_public_domain(
            "visits",
            "place",
            [Value::str("museum"), Value::str("cafe"), Value::str("park")],
        );
        CatalogSnapshot::shared(db, MechanismParams::paper_edge_privacy(1.0))
    }

    fn eps(e: f64) -> PrivacyBudget {
        PrivacyBudget {
            epsilon: e,
            delta: 0.0,
        }
    }

    #[test]
    fn queries_release_and_debit_per_tenant() {
        let server = DpServer::new(snapshot(), ServerConfig::default());
        assert!(server.register_tenant("alice", eps(4.0)));
        assert!(!server.register_tenant("alice", eps(99.0)), "no resets");
        server.register_tenant("bob", eps(4.0));

        let out = server
            .query("alice", "SELECT COUNT(*) FROM visits")
            .unwrap();
        let release = out.scalar().expect("scalar release");
        assert_eq!(release.true_answer, 5.0);
        assert_eq!(release.epsilon_spent, 1.0);

        assert_eq!(server.spent_budget("alice").unwrap().epsilon, 1.0);
        assert_eq!(
            server.spent_budget("bob").unwrap().epsilon,
            0.0,
            "bob pays nothing for alice's query"
        );
        assert_eq!(server.query_log("alice").unwrap().len(), 1);
    }

    #[test]
    fn refusals_leave_the_ledger_bit_unchanged() {
        let server = DpServer::new(snapshot(), ServerConfig::default());
        server.register_tenant("alice", eps(0.5));
        let before = server.remaining_budget("alice").unwrap();

        let err = server
            .query("alice", "SELECT COUNT(*) FROM visits")
            .unwrap_err();
        assert!(matches!(err, ServerError::BudgetExhausted(_)), "{err}");
        assert!(!err.consumed_epsilon());
        let after = server.remaining_budget("alice").unwrap();
        assert_eq!(before.epsilon.to_bits(), after.epsilon.to_bits());
        assert!(
            server.query_log("alice").unwrap().is_empty(),
            "refusals never enter the replay log"
        );

        let err = server.query("nobody", "SELECT COUNT(*) FROM visits");
        assert!(matches!(err, Err(ServerError::UnknownTenant(_))));
    }

    #[test]
    fn failed_queries_refund_their_reservation() {
        let server = DpServer::new(snapshot(), ServerConfig::default());
        server.register_tenant("alice", eps(4.0));
        // Planning succeeds (the table and column exist) but execution is
        // never reached: a malformed query fails at the price step with no
        // reservation at all.
        let err = server.query("alice", "SELECT COUNT(*) FROM nowhere");
        assert!(matches!(err, Err(ServerError::Sql(_))));
        assert_eq!(server.spent_budget("alice").unwrap().epsilon, 0.0);
    }

    #[test]
    fn replay_reproduces_releases_bit_identically() {
        let server = DpServer::new(snapshot(), ServerConfig::default());
        server.register_tenant("alice", eps(16.0));
        let sqls = [
            "SELECT COUNT(*) FROM visits",
            "SELECT COUNT(*) FROM visits WHERE place = 'museum'",
            "SELECT COUNT(*) FROM visits",
            "SELECT place, COUNT(*) FROM visits GROUP BY place",
        ];
        let mut live = Vec::new();
        for sql in sqls {
            live.push(server.query("alice", sql).unwrap());
        }
        // The third query hits the shared cache (same fingerprint as the
        // first); replay re-solves everything cold.
        assert!(server.cache_stats().hits >= 1, "expected a cache hit");

        let replayed = server.replay("alice").unwrap();
        assert_eq!(replayed.len(), live.len());
        for (orig, re) in live.iter().zip(&replayed) {
            let re = re.as_ref().unwrap();
            match (orig, re) {
                (QueryOutput::Scalar(a), QueryOutput::Scalar(b)) => {
                    assert_eq!(a.noisy_answer.to_bits(), b.noisy_answer.to_bits());
                }
                (QueryOutput::Grouped(a), QueryOutput::Grouped(b)) => {
                    assert_eq!(a.groups.len(), b.groups.len());
                    for (ga, gb) in a.groups.iter().zip(&b.groups) {
                        assert_eq!(ga.key, gb.key);
                        assert_eq!(
                            ga.release.noisy_answer.to_bits(),
                            gb.release.noisy_answer.to_bits()
                        );
                    }
                }
                other => panic!("shape changed under replay: {other:?}"),
            }
        }
    }

    #[test]
    fn tenant_in_flight_cap_sheds_without_spending() {
        let config = ServerConfig {
            per_tenant_in_flight: 0,
            ..ServerConfig::default()
        };
        let server = DpServer::new(snapshot(), config);
        server.register_tenant("alice", eps(4.0));
        let err = server
            .query("alice", "SELECT COUNT(*) FROM visits")
            .unwrap_err();
        assert!(matches!(err, ServerError::TenantBusy { .. }), "{err}");
        assert_eq!(server.spent_budget("alice").unwrap().epsilon, 0.0);
    }

    #[test]
    fn the_wire_round_trips_releases_bit_identically() {
        let config = ServerConfig {
            admission: AdmissionConfig::with_in_flight(4),
            ..ServerConfig::default()
        };
        let server = Arc::new(DpServer::new(snapshot(), config));
        server.register_tenant("alice", eps(16.0));
        let mut handle = serve(Arc::clone(&server), "127.0.0.1:0").unwrap();

        let mut client = DpClient::connect(handle.addr()).unwrap();
        let scalar = client
            .query("alice", "SELECT COUNT(*) FROM visits")
            .unwrap();
        let wire = scalar.scalar().expect("scalar release").clone();
        let log = server.query_log("alice").unwrap();
        assert_eq!(log.len(), 1);
        let replayed = server.replay("alice").unwrap().remove(0).unwrap();
        let re = replayed.scalar().unwrap();
        assert_eq!(
            wire.noisy_answer.to_bits(),
            re.noisy_answer.to_bits(),
            "shortest-round-trip float formatting preserves bits over the wire"
        );

        let grouped = client
            .query("alice", "SELECT place, COUNT(*) FROM visits GROUP BY place")
            .unwrap();
        match grouped {
            WireResponse::Grouped { groups, .. } => assert_eq!(groups.len(), 3),
            other => panic!("expected grouped response, got {other:?}"),
        }

        let explained = client
            .query("alice", "EXPLAIN ANALYZE SELECT COUNT(*) FROM visits")
            .unwrap();
        assert!(
            matches!(explained, WireResponse::Explained { .. }),
            "{explained:?}"
        );

        match client.budget("alice").unwrap() {
            WireResponse::Budget { remaining, spent } => {
                let ledger = server.remaining_budget("alice").unwrap();
                assert_eq!(remaining.to_bits(), ledger.epsilon.to_bits());
                assert!(spent > 0.0);
            }
            other => panic!("expected budget response, got {other:?}"),
        }

        match client
            .query("nobody", "SELECT COUNT(*) FROM visits")
            .unwrap()
        {
            WireResponse::Error { code, .. } => assert_eq!(code, "UNKNOWN_TENANT"),
            other => panic!("expected error, got {other:?}"),
        }

        handle.stop();
    }
}
