//! A minimal blocking client for the line protocol, used by the benchmark
//! harness and the concurrency tests. Standard library only.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A parsed `OK SCALAR` / `GROUP` release line: the fields a client can
/// observe over the wire. Floats round-trip bit-identically (the server
/// prints shortest-round-trip representations).
#[derive(Clone, Debug, PartialEq)]
pub struct WireRelease {
    /// The un-noised answer (exposed by this research frontend for
    /// accuracy analysis; a production wire format would omit it).
    pub true_answer: f64,
    /// The differentially private released answer.
    pub noisy_answer: f64,
    /// ε spent by this release.
    pub epsilon: f64,
}

/// One parsed server response.
#[derive(Clone, Debug, PartialEq)]
pub enum WireResponse {
    /// A scalar release.
    Scalar(WireRelease),
    /// A grouped report: `(key debug rendering, release)` in domain order.
    Grouped {
        /// The grouping key column.
        key_column: String,
        /// Total ε the report debited.
        epsilon: f64,
        /// Per-group releases, keyed by the `Debug` rendering of the key.
        groups: Vec<(String, WireRelease)>,
    },
    /// An `EXPLAIN ANALYZE` header plus the release it performed.
    Explained {
        /// Cache hits reported by the trace.
        hits: u64,
        /// Cache misses reported by the trace.
        misses: u64,
        /// The traced release.
        inner: Box<WireResponse>,
    },
    /// A `BUDGET` report.
    Budget {
        /// Remaining ε.
        remaining: f64,
        /// Spent ε.
        spent: f64,
    },
    /// An applied `INGEST` receipt.
    Ingest {
        /// The snapshot version the delta produced.
        version: u64,
        /// Rows appended.
        rows: u64,
        /// Stale cache entries swept by the snapshot swap.
        swept: u64,
    },
    /// An `ERR <code> <message>` refusal.
    Error {
        /// The stable refusal code (`OVERLOADED`, `BUSY`, `BUDGET`, …).
        code: String,
        /// The human-readable message.
        message: String,
    },
}

impl WireResponse {
    /// The scalar release, unwrapping an `EXPLAIN` header if present.
    pub fn scalar(&self) -> Option<&WireRelease> {
        match self {
            WireResponse::Scalar(r) => Some(r),
            WireResponse::Explained { inner, .. } => inner.scalar(),
            _ => None,
        }
    }

    /// The refusal code, if this is an error.
    pub fn error_code(&self) -> Option<&str> {
        match self {
            WireResponse::Error { code, .. } => Some(code),
            _ => None,
        }
    }
}

/// A blocking connection to a [`ServerHandle`](crate::ServerHandle).
#[derive(Debug)]
pub struct DpClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl DpClient {
    /// Connects to a served address.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // Requests are single short lines; without NODELAY, Nagle holds them
        // back against the peer's delayed ACK and every round trip costs
        // ~40 ms instead of microseconds.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(DpClient {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Runs `sql` as `tenant` (use an `EXPLAIN ANALYZE` prefix for a
    /// traced release). Refusals come back as [`WireResponse::Error`],
    /// not `Err` — `Err` is reserved for transport failures.
    pub fn query(&mut self, tenant: &str, sql: &str) -> io::Result<WireResponse> {
        self.send(&format!("QUERY {tenant} {sql}"))?;
        self.read_response()
    }

    /// Fetches the tenant's remaining and spent ε.
    pub fn budget(&mut self, tenant: &str) -> io::Result<WireResponse> {
        self.send(&format!("BUDGET {tenant}"))?;
        self.read_response()
    }

    /// Appends rows to `table` through the server's ingest path. `rows`
    /// uses the wire syntax: `;`-separated rows of `,`-separated
    /// `column=value` pairs, e.g. `person=eve,place=park;person=fay,place=museum`.
    /// Rejections come back as [`WireResponse::Error`].
    pub fn ingest(&mut self, table: &str, rows: &str) -> io::Result<WireResponse> {
        self.send(&format!("INGEST {table} {rows}"))?;
        self.read_response()
    }

    fn send(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end_matches('\n').to_owned())
    }

    fn read_response(&mut self) -> io::Result<WireResponse> {
        let line = self.read_line()?;
        self.parse_header(&line)
    }

    fn parse_header(&mut self, line: &str) -> io::Result<WireResponse> {
        if let Some(rest) = line.strip_prefix("ERR ") {
            let (code, message) = rest.split_once(' ').unwrap_or((rest, ""));
            return Ok(WireResponse::Error {
                code: code.to_owned(),
                message: message.to_owned(),
            });
        }
        if let Some(rest) = line.strip_prefix("OK SCALAR ") {
            return Ok(WireResponse::Scalar(parse_release(rest)?));
        }
        if let Some(rest) = line.strip_prefix("OK GROUPED ") {
            let key_column = field(rest, "key")?;
            let epsilon = parse_f64(&field(rest, "epsilon")?)?;
            let count: usize = field(rest, "groups")?
                .parse()
                .map_err(|e| bad(format!("bad group count: {e}")))?;
            let mut groups = Vec::with_capacity(count);
            for _ in 0..count {
                let group_line = self.read_line()?;
                let rest = group_line
                    .strip_prefix("GROUP ")
                    .ok_or_else(|| bad(format!("expected GROUP line, got '{group_line}'")))?;
                let release = parse_release(rest)?;
                // `key=` is always the last field, so the raw remainder
                // (which may contain spaces inside the quotes) is the key.
                let key = rest
                    .split_once("key=")
                    .map(|(_, k)| k.to_owned())
                    .ok_or_else(|| bad("GROUP line missing key".to_owned()))?;
                groups.push((key, release));
            }
            return Ok(WireResponse::Grouped {
                key_column,
                epsilon,
                groups,
            });
        }
        if let Some(rest) = line.strip_prefix("OK EXPLAIN ") {
            let hits = field(rest, "hits")?
                .parse()
                .map_err(|e| bad(format!("bad hits: {e}")))?;
            let misses = field(rest, "misses")?
                .parse()
                .map_err(|e| bad(format!("bad misses: {e}")))?;
            let inner = self.read_response()?;
            return Ok(WireResponse::Explained {
                hits,
                misses,
                inner: Box::new(inner),
            });
        }
        if let Some(rest) = line.strip_prefix("OK BUDGET ") {
            return Ok(WireResponse::Budget {
                remaining: parse_f64(&field(rest, "remaining")?)?,
                spent: parse_f64(&field(rest, "spent")?)?,
            });
        }
        if let Some(rest) = line.strip_prefix("OK INGEST ") {
            return Ok(WireResponse::Ingest {
                version: parse_u64(&field(rest, "version")?)?,
                rows: parse_u64(&field(rest, "rows")?)?,
                swept: parse_u64(&field(rest, "swept")?)?,
            });
        }
        Err(bad(format!("unrecognised response '{line}'")))
    }
}

fn bad(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Extracts `name=value` from a space-separated field line.
fn field(line: &str, name: &str) -> io::Result<String> {
    line.split(' ')
        .find_map(|f| f.strip_prefix(&format!("{name}=")))
        .map(str::to_owned)
        .ok_or_else(|| bad(format!("missing field '{name}' in '{line}'")))
}

fn parse_f64(s: &str) -> io::Result<f64> {
    s.parse().map_err(|e| bad(format!("bad float '{s}': {e}")))
}

fn parse_u64(s: &str) -> io::Result<u64> {
    s.parse()
        .map_err(|e| bad(format!("bad integer '{s}': {e}")))
}

fn parse_release(line: &str) -> io::Result<WireRelease> {
    Ok(WireRelease {
        true_answer: parse_f64(&field(line, "true")?)?,
        noisy_answer: parse_f64(&field(line, "noisy")?)?,
        epsilon: parse_f64(&field(line, "epsilon")?)?,
    })
}
