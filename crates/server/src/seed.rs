//! The server's deterministic seed schedule.
//!
//! Replay determinism is the server's core testable property: a serialized
//! re-execution of any interleaving's per-tenant query log must reproduce
//! each tenant's releases bit-identically, regardless of the thread schedule
//! that produced the log. That only works if a query's noise seed depends on
//! **nothing schedule-dependent**: not the thread that ran it, not the
//! global arrival order, not what other tenants were doing. The schedule
//! here binds each query's seed to exactly three things — the server seed,
//! the tenant's name, and the query's *per-tenant admission index* (assigned
//! atomically under the tenant lock at admission, so it is well-defined even
//! when the tenant's own queries race).
//!
//! Seeds are derived with the workspace's stable
//! [`FingerprintHasher`]
//! (not `DefaultHasher`, whose output may change across Rust releases), so
//! logged workloads replay identically across builds.

use rmdp_krelation::fingerprint::FingerprintHasher;

/// The root of one tenant's seed stream: a stable hash of the server seed
/// and the tenant's name. Distinct tenants get independent streams; the
/// same tenant gets the same stream on every run of the same server seed.
pub fn derive_tenant_seed(server_seed: u64, tenant: &str) -> u64 {
    let mut hasher = FingerprintHasher::new();
    hasher.write_u64(server_seed);
    hasher.write_bytes(tenant.as_bytes());
    hasher.finish().0 as u64
}

/// The noise seed of one admitted query: a stable hash of the tenant seed
/// and the query's per-tenant admission index. Depends only on *how many*
/// of this tenant's queries were admitted before it — never on the thread
/// schedule or on other tenants — which is what makes serialized replay
/// bit-identical.
pub fn derive_query_seed(tenant_seed: u64, admitted_index: u64) -> u64 {
    let mut hasher = FingerprintHasher::new();
    hasher.write_u64(tenant_seed);
    hasher.write_u64(admitted_index);
    hasher.finish().0 as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = derive_tenant_seed(7, "alice");
        assert_eq!(a, derive_tenant_seed(7, "alice"), "stable per (seed, name)");
        assert_ne!(a, derive_tenant_seed(7, "bob"), "tenants differ");
        assert_ne!(a, derive_tenant_seed(8, "alice"), "server seeds differ");

        let q0 = derive_query_seed(a, 0);
        assert_eq!(q0, derive_query_seed(a, 0));
        assert_ne!(q0, derive_query_seed(a, 1));
    }
}
