//! Every way a server request can be refused or fail.

use rmdp_noise::BudgetExhausted;
use rmdp_runtime::AdmissionError;
use rmdp_sql::SqlError;
use std::fmt;

/// Why a [`DpServer`](crate::DpServer) request produced no release.
///
/// The variants split along the server's one privacy-critical line: which
/// refusals consume ε. **None of them do.** Admission refusals
/// ([`ServerError::Overloaded`], [`ServerError::TenantBusy`],
/// [`ServerError::ShuttingDown`]) happen before any budget is touched;
/// [`ServerError::BudgetExhausted`] is the atomic refusal of the
/// reservation itself; and a [`ServerError::Sql`] failure after admission
/// released nothing, so its reservation is refunded in full.
#[derive(Debug)]
pub enum ServerError {
    /// The server-wide admission gate shed the request: all execution slots
    /// busy and the bounded queue full. Nothing ran; no ε was consumed.
    Overloaded {
        /// Requests holding execution permits at refusal time.
        in_flight: usize,
        /// Requests queued at refusal time.
        waiting: usize,
    },
    /// The tenant already has its maximum number of requests in flight.
    /// Nothing ran; no ε was consumed.
    TenantBusy {
        /// The refused tenant.
        tenant: String,
        /// The tenant's in-flight count at refusal time.
        in_flight: usize,
    },
    /// The server is shutting down; no new work is admitted.
    ShuttingDown,
    /// No tenant of this name is registered.
    UnknownTenant(
        /// The unrecognised tenant name.
        String,
    ),
    /// The tenant's remaining budget cannot cover the query's cost. The
    /// refusal is atomic: the reservation never landed.
    BudgetExhausted(BudgetExhausted),
    /// The query itself failed (parse, plan, execution or mechanism error).
    /// When this happens after admission the reservation is refunded —
    /// a failed query releases nothing.
    Sql(SqlError),
}

impl From<AdmissionError> for ServerError {
    fn from(e: AdmissionError) -> Self {
        match e {
            AdmissionError::Overloaded { in_flight, waiting } => {
                ServerError::Overloaded { in_flight, waiting }
            }
            AdmissionError::ShuttingDown => ServerError::ShuttingDown,
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Overloaded { in_flight, waiting } => write!(
                f,
                "server overloaded: {in_flight} in flight, {waiting} waiting"
            ),
            ServerError::TenantBusy { tenant, in_flight } => {
                write!(f, "tenant '{tenant}' busy: {in_flight} requests in flight")
            }
            ServerError::ShuttingDown => f.write_str("server shutting down"),
            ServerError::UnknownTenant(name) => write!(f, "unknown tenant '{name}'"),
            ServerError::BudgetExhausted(e) => e.fmt(f),
            ServerError::Sql(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::BudgetExhausted(e) => Some(e),
            ServerError::Sql(e) => Some(e),
            _ => None,
        }
    }
}

impl ServerError {
    /// The stable wire-protocol code for this error (`ERR <code> <message>`).
    pub fn code(&self) -> &'static str {
        match self {
            ServerError::Overloaded { .. } => "OVERLOADED",
            ServerError::TenantBusy { .. } => "BUSY",
            ServerError::ShuttingDown => "SHUTDOWN",
            ServerError::UnknownTenant(_) => "UNKNOWN_TENANT",
            ServerError::BudgetExhausted(_) => "BUDGET",
            ServerError::Sql(_) => "SQL",
        }
    }

    /// Whether this refusal consumed privacy budget. Always `false` — the
    /// method exists so tests state the invariant in one place.
    pub fn consumed_epsilon(&self) -> bool {
        false
    }
}
