//! The server's line-oriented text protocol over `std::net` TCP.
//!
//! Dependency-free by design: requests and responses are UTF-8 lines, so
//! the benchmark harness and tests can drive a server with nothing but the
//! standard library. One request line in, one response (of one or more
//! lines, with an explicit count) out:
//!
//! ```text
//! → QUERY alice SELECT COUNT(*) FROM visits
//! ← OK SCALAR true=4 noisy=4.1282089816519635 epsilon=1 delta_hat=2
//!
//! → QUERY alice SELECT COUNT(*) FROM visits GROUP BY visits.site
//! ← OK GROUPED key=visits.site epsilon=1 groups=2
//! ← GROUP true=3 noisy=3.8151817442574024 epsilon=0.5 key="a"
//! ← GROUP true=1 noisy=0.4961026413242692 epsilon=0.5 key="b"
//!
//! → QUERY alice EXPLAIN ANALYZE SELECT COUNT(*) FROM visits
//! ← OK EXPLAIN hits=1 misses=0 lp_solves=0 epsilon=1
//! ← OK SCALAR true=4 noisy=3.8941646195731284 epsilon=1 delta_hat=2
//!
//! → BUDGET alice
//! ← OK BUDGET remaining=2.5 spent=1.5
//!
//! → INGEST visits person=eve,place=park;person=fay,place=museum
//! ← OK INGEST version=1 rows=2 swept=3
//!
//! ← ERR OVERLOADED server overloaded: 8 in flight, 8 waiting
//! ```
//!
//! `INGEST` rows are `;`-separated, each row a `,`-separated list of
//! `column=value` pairs. Values parse as integers first, then booleans,
//! and fall back to strings — matching how the SQL frontend's literals
//! compare against stored values.
//!
//! Floats are rendered with Rust's `Display`, which prints the **shortest
//! string that round-trips**: a client parsing `noisy=…` back with
//! `str::parse::<f64>()` recovers the bit-identical release, so the
//! concurrency battery can assert bit-identity *through the wire*. Group
//! keys are rendered with `Debug` (quoted, escaped) as the line's final
//! field, so string keys with spaces survive.

use crate::error::ServerError;
use crate::server::DpServer;
use rmdp_krelation::tuple::{Tuple, Value};
use rmdp_sql::QueryOutput;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};

/// Encodes one request's outcome as protocol lines (each entry one line,
/// no trailing newline).
pub fn encode_response(result: &Result<QueryOutput, ServerError>) -> Vec<String> {
    match result {
        Ok(output) => encode_output(output),
        Err(e) => {
            // Error text must stay one line; SQL errors can carry spans
            // with embedded newlines.
            let msg = e.to_string().replace('\n', " ");
            vec![format!("ERR {} {}", e.code(), msg)]
        }
    }
}

fn encode_output(output: &QueryOutput) -> Vec<String> {
    match output {
        QueryOutput::Scalar(r) => vec![format!(
            "OK SCALAR true={} noisy={} epsilon={} delta_hat={}",
            r.true_answer, r.noisy_answer, r.epsilon_spent, r.delta_hat
        )],
        QueryOutput::Grouped(g) => {
            let mut lines = vec![format!(
                "OK GROUPED key={} epsilon={} groups={}",
                g.key_column,
                g.epsilon_spent,
                g.groups.len()
            )];
            for group in &g.groups {
                lines.push(format!(
                    "GROUP true={} noisy={} epsilon={} key={:?}",
                    group.release.true_answer,
                    group.release.noisy_answer,
                    group.release.epsilon_spent,
                    group.key,
                ));
            }
            lines
        }
        QueryOutput::Explained(traced) => {
            let t = &traced.trace;
            let mut lines = vec![format!(
                "OK EXPLAIN hits={} misses={} lp_solves={} epsilon={}",
                t.cache_hits,
                t.cache_misses,
                t.lp.h_solves + t.lp.g_solves,
                t.epsilon_spent,
            )];
            lines.extend(encode_output(&traced.output));
            lines
        }
    }
}

/// Parses the `INGEST` row syntax: rows separated by `;`, columns within a
/// row as `,`-separated `column=value` pairs. Values parse as integers
/// first, then booleans, then fall back to strings.
fn parse_rows(spec: &str) -> Result<Vec<Tuple>, String> {
    let mut rows = Vec::new();
    for (i, row) in spec.split(';').enumerate() {
        let row = row.trim();
        if row.is_empty() {
            return Err(format!("row {i} is empty"));
        }
        let mut entries = Vec::new();
        for pair in row.split(',') {
            let (col, val) = pair
                .trim()
                .split_once('=')
                .ok_or_else(|| format!("row {i}: '{}' is not column=value", pair.trim()))?;
            let value = if let Ok(n) = val.parse::<i64>() {
                Value::Int(n)
            } else if let Ok(b) = val.parse::<bool>() {
                Value::Bool(b)
            } else {
                Value::str(val)
            };
            entries.push((col.to_owned(), value));
        }
        rows.push(Tuple::new(entries));
    }
    Ok(rows)
}

fn encode_ingest(server: &DpServer, table: &str, spec: &str) -> Vec<String> {
    match parse_rows(spec) {
        Ok(rows) => match server.ingest(table, rows) {
            Ok(r) => vec![format!(
                "OK INGEST version={} rows={} swept={}",
                r.version, r.rows, r.swept
            )],
            Err(e) => {
                let msg = e.to_string().replace('\n', " ");
                vec![format!("ERR {} {}", e.code(), msg)]
            }
        },
        Err(msg) => vec![format!("ERR PROTOCOL {msg}")],
    }
}

/// Serves one accepted connection: read request lines until EOF, answer
/// each in order. Any I/O error just drops the connection — the server
/// state is untouched because budgets and admission live in [`DpServer`].
fn handle_connection(server: &DpServer, stream: TcpStream) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        let lines = match request.split_once(' ') {
            Some(("QUERY", rest)) => match rest.split_once(' ') {
                Some((tenant, sql)) => encode_response(&server.query(tenant, sql)),
                None => vec!["ERR PROTOCOL QUERY needs <tenant> <sql>".to_owned()],
            },
            Some(("BUDGET", tenant)) => {
                let tenant = tenant.trim();
                match (server.remaining_budget(tenant), server.spent_budget(tenant)) {
                    (Some(remaining), Some(spent)) => vec![format!(
                        "OK BUDGET remaining={} spent={}",
                        remaining.epsilon, spent.epsilon
                    )],
                    _ => vec![format!("ERR UNKNOWN_TENANT unknown tenant '{tenant}'")],
                }
            }
            Some(("INGEST", rest)) => match rest.split_once(' ') {
                Some((table, spec)) => encode_ingest(server, table, spec.trim()),
                None => vec!["ERR PROTOCOL INGEST needs <table> <rows>".to_owned()],
            },
            _ => vec![format!(
                "ERR PROTOCOL unrecognised request '{}'",
                request.split(' ').next().unwrap_or_default()
            )],
        };
        for l in &lines {
            writer.write_all(l.as_bytes())?;
            writer.write_all(b"\n")?;
        }
        writer.flush()?;
    }
    Ok(())
}

/// A running TCP front-end: the accept loop and its connection handlers.
///
/// The **only** place in the workspace that constructs a [`TcpListener`]
/// (CI greps for strays): all listening sockets answer to this module's
/// shutdown discipline, so `perf_smoke` and the tests always drain cleanly.
pub struct ServerHandle {
    server: Arc<DpServer>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    /// Live connection streams, shared with the accept loop so `stop` can
    /// shut them down — a connection handler otherwise blocks on its
    /// client forever, and joining it would deadlock shutdown against any
    /// still-open client.
    streams: Arc<Mutex<Vec<TcpStream>>>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Binds `addr` (use port 0 for an ephemeral port) and serves `server`
/// until [`ServerHandle::stop`]. Each connection gets its own thread; the
/// admission gate, not the thread count, bounds concurrent query work.
pub fn serve(server: Arc<DpServer>, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let streams: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));

    let accept_server = Arc::clone(&server);
    let accept_stop = Arc::clone(&stop);
    let accept_streams = Arc::clone(&streams);
    let accept_thread = thread::spawn(move || {
        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            // Responses are a handful of short lines flushed at once; NODELAY
            // keeps Nagle from trading their latency against delayed ACKs.
            let _ = stream.set_nodelay(true);
            if let Ok(clone) = stream.try_clone() {
                // Poisoning is recovered, not propagated: the list is only
                // ever pushed to or drained whole, so it is consistent even
                // after a panic elsewhere — and the accept loop must outlive
                // any one connection's failure.
                accept_streams
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(clone);
            }
            let conn_server = Arc::clone(&accept_server);
            connections.push(thread::spawn(move || {
                // A dropped connection is the client's problem, not ours.
                let _ = handle_connection(&conn_server, stream);
            }));
        }
        for handle in connections {
            let _ = handle.join();
        }
    });

    Ok(ServerHandle {
        server,
        addr,
        stop,
        streams,
        accept_thread: Some(accept_thread),
    })
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served [`DpServer`].
    pub fn server(&self) -> &Arc<DpServer> {
        &self.server
    }

    /// Stops accepting, refuses queued work, drains in-flight queries and
    /// joins every thread. Idempotent.
    pub fn stop(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.server.shutdown();
        // Unblock the connection handlers: each blocks reading its client,
        // so close both directions under it. The handler sees EOF and
        // returns; clients see a closed connection, which is the protocol's
        // shutdown signal.
        // Take the list out of the mutex first: the socket shutdowns below
        // must not run under the lock the accept loop also takes.
        let streams = {
            let mut held = self.streams.lock().unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *held)
        };
        for stream in streams {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        // Unblock the accept loop: `incoming()` has no timeout, so poke it
        // with a throwaway connection. Failure means the listener is
        // already gone, which is the outcome we wanted.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.server.drain();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}
