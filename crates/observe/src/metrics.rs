//! A process/session metrics registry: monotone counters, gauges, monotone
//! floating-point sums and fixed-bucket histograms, snapshottable to JSON.

use crate::json::{parse_json, write_json_f64, write_json_string, JsonError, JsonValue};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A cumulative histogram over fixed, caller-supplied bucket bounds.
#[derive(Clone, Debug, Default, PartialEq)]
struct Histogram {
    /// Upper bounds of the finite buckets, strictly increasing. An implicit
    /// overflow bucket catches everything above the last bound.
    bounds: Vec<f64>,
    /// One count per finite bucket plus the overflow bucket.
    counts: Vec<u64>,
    /// Sum of all observed values.
    sum: f64,
    /// Number of observations.
    count: u64,
}

impl Histogram {
    fn with_bounds(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
        self.sum += value;
        self.count += 1;
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    sums: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A shared registry of named metrics.
///
/// The registry is `Sync` (a mutex guards the maps) so one instance can be
/// shared by a session, its worker pool and the process. All write paths are
/// designed to never perturb the measured computation: they take no locks
/// the release path holds and never touch its randomness.
///
/// Four metric kinds:
/// * **counters** — monotone `u64` totals ([`counter_add`] /
///   [`counter_record_total`]);
/// * **gauges** — last-written `f64` values ([`gauge_set`]);
/// * **sums** — monotone `f64` accumulators, e.g. ε debited
///   ([`sum_add`]);
/// * **histograms** — fixed-bucket distributions ([`histogram_observe`]).
///
/// [`counter_add`]: MetricsRegistry::counter_add
/// [`counter_record_total`]: MetricsRegistry::counter_record_total
/// [`gauge_set`]: MetricsRegistry::gauge_set
/// [`sum_add`]: MetricsRegistry::sum_add
/// [`histogram_observe`]: MetricsRegistry::histogram_observe
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Tolerate a poisoned mutex: metrics must never take the process down.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Adds `delta` to the counter `name` (created at zero on first use).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        let slot = inner.counters.entry(name.to_owned()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Records an externally-accumulated total (e.g. a cumulative stats
    /// struct like the sequence cache's hit/miss counters): the counter
    /// becomes `max(current, total)`, which keeps it monotone when the same
    /// total is re-reported.
    pub fn counter_record_total(&self, name: &str, total: u64) {
        let mut inner = self.lock();
        let slot = inner.counters.entry(name.to_owned()).or_insert(0);
        *slot = (*slot).max(total);
    }

    /// Sets the gauge `name` to `value` (non-finite values are dropped so
    /// JSON snapshots never contain NaN).
    pub fn gauge_set(&self, name: &str, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.lock().gauges.insert(name.to_owned(), value);
    }

    /// Adds `value` (clamped to ≥ 0, non-finite dropped) to the monotone sum
    /// `name`.
    pub fn sum_add(&self, name: &str, value: f64) {
        if !value.is_finite() {
            return;
        }
        let mut inner = self.lock();
        *inner.sums.entry(name.to_owned()).or_insert(0.0) += value.max(0.0);
    }

    /// Observes `value` in the histogram `name`.
    ///
    /// The first observation fixes the bucket bounds; later calls ignore
    /// their `bounds` argument, so concurrent observers cannot disagree.
    pub fn histogram_observe(&self, name: &str, bounds: &[f64], value: f64) {
        if !value.is_finite() {
            return;
        }
        let mut inner = self.lock();
        inner
            .histograms
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::with_bounds(bounds))
            .observe(value);
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            sums: inner.sums.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| {
                    (
                        name.clone(),
                        HistogramSnapshot {
                            bounds: h.bounds.clone(),
                            counts: h.counts.clone(),
                            sum: h.sum,
                            count: h.count,
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Exponential-ish latency bucket bounds in **milliseconds**, shared by
/// everything that histograms request latency (the server's per-query and
/// per-tenant latency distributions, `perf_smoke`'s replay) so their p50/p99
/// read on the same scale.
pub const LATENCY_BUCKETS_MS: [f64; 16] = [
    0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0,
    10000.0,
];

/// A frozen copy of a histogram.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bounds of the finite buckets.
    pub bounds: Vec<f64>,
    /// Counts per finite bucket plus the trailing overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// The estimated `q`-quantile (`0.0 ..= 1.0`) of the observed
    /// distribution, interpolated linearly inside the bucket holding the
    /// rank-`⌈q·count⌉` observation (the standard fixed-bucket estimator,
    /// e.g. Prometheus's `histogram_quantile`). Observations in the
    /// unbounded overflow bucket report the last finite bound — a floor, not
    /// an estimate. `None` when the histogram is empty or `q` is out of
    /// range.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
            if seen + c >= rank {
                let Some(&hi) = self.bounds.get(i) else {
                    return Some(lo);
                };
                let into = (rank - seen) as f64 / c as f64;
                return Some(lo + (hi - lo) * into);
            }
            seen += c;
        }
        None
    }
}

/// A frozen, JSON-serialisable copy of a [`MetricsRegistry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    sums: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The counter `name`, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The gauge `name`, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The monotone sum `name`, if recorded.
    pub fn sum(&self, name: &str) -> Option<f64> {
        self.sums.get(name).copied()
    }

    /// The histogram `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// All counter names, sorted.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// Serialises the snapshot to deterministic JSON (keys sorted).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        write_u64_map(&mut out, &self.counters);
        out.push_str("},\n  \"gauges\": {");
        write_f64_map(&mut out, &self.gauges);
        out.push_str("},\n  \"sums\": {");
        write_f64_map(&mut out, &self.sums);
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_json_string(&mut out, name);
            out.push_str(": {\"bounds\": [");
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                write_json_f64(&mut out, *b);
            }
            out.push_str("], \"counts\": [");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&c.to_string());
            }
            out.push_str("], \"sum\": ");
            write_json_f64(&mut out, h.sum);
            out.push_str(", \"count\": ");
            out.push_str(&h.count.to_string());
            out.push('}');
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}");
        out
    }

    /// Parses a snapshot back from [`MetricsSnapshot::to_json`] output.
    pub fn parse_json(text: &str) -> Result<Self, JsonError> {
        let doc = parse_json(text)?;
        let bad = |message: &str| JsonError {
            message: message.to_owned(),
            offset: 0,
        };
        let mut snapshot = MetricsSnapshot::default();
        for (name, value) in object_members(&doc, "counters").ok_or_else(|| bad("counters"))? {
            let v = value.as_u64().ok_or_else(|| bad("counter value"))?;
            snapshot.counters.insert(name.clone(), v);
        }
        for (name, value) in object_members(&doc, "gauges").ok_or_else(|| bad("gauges"))? {
            let v = value.as_f64().ok_or_else(|| bad("gauge value"))?;
            snapshot.gauges.insert(name.clone(), v);
        }
        for (name, value) in object_members(&doc, "sums").ok_or_else(|| bad("sums"))? {
            let v = value.as_f64().ok_or_else(|| bad("sum value"))?;
            snapshot.sums.insert(name.clone(), v);
        }
        for (name, value) in object_members(&doc, "histograms").ok_or_else(|| bad("histograms"))? {
            let bounds = value
                .get("bounds")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| bad("histogram bounds"))?
                .iter()
                .map(|v| v.as_f64().ok_or_else(|| bad("histogram bound")))
                .collect::<Result<Vec<f64>, _>>()?;
            let counts = value
                .get("counts")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| bad("histogram counts"))?
                .iter()
                .map(|v| v.as_u64().ok_or_else(|| bad("histogram count")))
                .collect::<Result<Vec<u64>, _>>()?;
            let sum = value
                .get("sum")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| bad("histogram sum"))?;
            let count = value
                .get("count")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| bad("histogram count"))?;
            snapshot.histograms.insert(
                name.clone(),
                HistogramSnapshot {
                    bounds,
                    counts,
                    sum,
                    count,
                },
            );
        }
        Ok(snapshot)
    }
}

fn object_members<'a>(doc: &'a JsonValue, key: &str) -> Option<&'a BTreeMap<String, JsonValue>> {
    doc.get(key).and_then(JsonValue::as_object)
}

fn write_u64_map(out: &mut String, map: &BTreeMap<String, u64>) {
    for (i, (name, value)) in map.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_json_string(out, name);
        out.push_str(": ");
        out.push_str(&value.to_string());
    }
}

fn write_f64_map(out: &mut String, map: &BTreeMap<String, f64>) {
    for (i, (name, value)) in map.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_json_string(out, name);
        out.push_str(": ");
        write_json_f64(out, *value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone_under_both_write_paths() {
        let registry = MetricsRegistry::new();
        registry.counter_add("lp.pivots", 5);
        registry.counter_add("lp.pivots", 7);
        assert_eq!(registry.snapshot().counter("lp.pivots"), Some(12));
        registry.counter_record_total("cache.hits", 10);
        registry.counter_record_total("cache.hits", 4); // stale re-report
        registry.counter_record_total("cache.hits", 11);
        assert_eq!(registry.snapshot().counter("cache.hits"), Some(11));
    }

    #[test]
    fn gauges_and_sums_reject_non_finite_values() {
        let registry = MetricsRegistry::new();
        registry.gauge_set("cache.hit_rate", 0.5);
        registry.gauge_set("cache.hit_rate", f64::NAN);
        registry.sum_add("budget.debited_epsilon", 0.25);
        registry.sum_add("budget.debited_epsilon", f64::INFINITY);
        registry.sum_add("budget.debited_epsilon", 0.25);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("cache.hit_rate"), Some(0.5));
        assert_eq!(snap.sum("budget.debited_epsilon"), Some(0.5));
    }

    #[test]
    fn histogram_buckets_include_overflow() {
        let registry = MetricsRegistry::new();
        let bounds = [1.0, 10.0];
        for v in [0.5, 1.0, 2.0, 100.0] {
            registry.histogram_observe("pool.queue_depth", &bounds, v);
        }
        let snap = registry.snapshot();
        let h = snap.histogram("pool.queue_depth").unwrap();
        assert_eq!(h.bounds, vec![1.0, 10.0]);
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.count, 4);
        assert!((h.sum - 103.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let registry = MetricsRegistry::new();
        registry.counter_add("a.count", u64::MAX);
        registry.gauge_set("b.gauge", -1.25e-7);
        registry.sum_add("c.sum", 0.1);
        registry.histogram_observe("d.hist", &[0.001, 0.1, 1.0], 0.05);
        registry.histogram_observe("d.hist", &[0.001, 0.1, 1.0], 5.0);
        let snap = registry.snapshot();
        let json = snap.to_json();
        let back = MetricsSnapshot::parse_json(&json).unwrap();
        assert_eq!(back, snap);
        // Deterministic output: serialising again is byte-identical.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = MetricsRegistry::new().snapshot();
        let back = MetricsSnapshot::parse_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counter("missing"), None);
    }

    #[test]
    fn parse_rejects_wrong_shapes() {
        assert!(MetricsSnapshot::parse_json("[]").is_err());
        assert!(MetricsSnapshot::parse_json("{\"counters\": {\"a\": -1}}").is_err());
        assert!(MetricsSnapshot::parse_json("not json").is_err());
    }
    #[test]
    fn histogram_quantiles_interpolate_within_buckets() {
        let registry = MetricsRegistry::new();
        // 100 observations spread 1..=100 over bounds [10, 50, 100]: p50
        // lands mid-way through the (10, 50] bucket, p99 near the top of
        // the (50, 100] one.
        for v in 1..=100 {
            registry.histogram_observe("lat", &[10.0, 50.0, 100.0], v as f64);
        }
        let snapshot = registry.snapshot();
        let h = snapshot.histogram("lat").unwrap();
        assert_eq!(h.count, 100);
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 - 50.0).abs() < 1.0, "p50 = {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((p99 - 99.0).abs() < 1.0, "p99 = {p99}");
        // Extremes and degenerate inputs.
        assert_eq!(h.quantile(0.0).unwrap(), 0.0 + (10.0 - 0.0) * (1.0 / 10.0));
        assert!(h.quantile(1.5).is_none());
        assert!(HistogramSnapshot::default().quantile(0.5).is_none());
    }

    #[test]
    fn overflow_bucket_quantiles_report_the_last_finite_bound() {
        let registry = MetricsRegistry::new();
        registry.histogram_observe("lat", &[1.0, 2.0], 50.0);
        registry.histogram_observe("lat", &[1.0, 2.0], 60.0);
        let snapshot = registry.snapshot();
        let h = snapshot.histogram("lat").unwrap();
        // Both observations overflowed: the estimator can only floor them.
        assert_eq!(h.quantile(0.5), Some(2.0));
        assert_eq!(h.quantile(0.99), Some(2.0));
    }
}
