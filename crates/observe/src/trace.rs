//! The per-query audit record returned by traced releases.

use crate::json::{write_json_f64, write_json_string};
use crate::recorder::Stage;
use std::fmt::Write as _;

/// What the cross-query sequence cache did for one query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The session has no sequence cache attached.
    Uncached,
    /// Every probed entry was served from the cache.
    Hit,
    /// At least one probe missed and sequences were computed (and inserted).
    Miss,
}

impl CacheOutcome {
    /// Stable lower-case name used in rendered traces and JSON.
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Uncached => "uncached",
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
        }
    }
}

/// Accumulated wall-time of one pipeline stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageSpan {
    /// Which stage.
    pub stage: Stage,
    /// Total nanoseconds across all entries of the stage.
    pub nanos: u64,
    /// How many times the stage was entered (LP solving and noise sampling
    /// interleave, so they enter twice per scalar release).
    pub entries: u64,
}

/// LP work attributed to one query (a `u64` mirror of the core crate's
/// `LpWorkStats`, kept primitive so this crate stays dependency-free).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LpSummary {
    /// LPs solved for `H` entries.
    pub h_solves: u64,
    /// LPs solved for `G` entries.
    pub g_solves: u64,
    /// Total simplex pivots.
    pub total_pivots: u64,
    /// Phase-1 (feasibility) pivots.
    pub phase1_pivots: u64,
    /// Phase-2 (optimisation) pivots.
    pub phase2_pivots: u64,
    /// Solves warm-started from the previous entry's basis.
    pub warm_start_hits: u64,
    /// Basis refactorizations.
    pub refactorizations: u64,
    /// Product-form basis updates (one per true pivot).
    pub basis_updates: u64,
    /// Peak stored nonzeros of any single solve's LU factorization
    /// (a maximum across solves, not a sum).
    pub fill_in_nnz: u64,
    /// Constraint rows removed by presolve, summed across solves.
    pub presolve_rows_removed: u64,
    /// Variables removed by presolve, summed across solves.
    pub presolve_cols_removed: u64,
}

impl LpSummary {
    /// Folds another summary into this one (deterministic: plain sums).
    pub fn absorb(&mut self, other: &LpSummary) {
        self.h_solves += other.h_solves;
        self.g_solves += other.g_solves;
        self.total_pivots += other.total_pivots;
        self.phase1_pivots += other.phase1_pivots;
        self.phase2_pivots += other.phase2_pivots;
        self.warm_start_hits += other.warm_start_hits;
        self.refactorizations += other.refactorizations;
        self.basis_updates += other.basis_updates;
        self.fill_in_nnz = self.fill_in_nnz.max(other.fill_in_nnz);
        self.presolve_rows_removed += other.presolve_rows_removed;
        self.presolve_cols_removed += other.presolve_cols_removed;
    }

    /// Internal coherence: pivots split into the two phases.
    pub fn is_consistent(&self) -> bool {
        self.total_pivots == self.phase1_pivots + self.phase2_pivots
            && self.warm_start_hits <= self.h_solves + self.g_solves
    }
}

/// The Laplace scales used by one release (diagnostic — publishing them is
/// safe: they depend only on public parameters and the released `Δ̂`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseScales {
    /// Scale of the log-domain draw perturbing `Δ`: `β/ε₁`.
    pub log_scale: f64,
    /// Scale of the answer draw: `Δ̂/ε₂`.
    pub answer_scale: f64,
}

/// How a grouped report split its budget across groups.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupSplit {
    /// Display name of the active `GroupBudgetPolicy`.
    pub policy: String,
    /// Number of groups in the declared public domain.
    pub groups: u64,
    /// Fraction of the per-release budget given to each group.
    pub per_group_fraction: f64,
    /// ε spent by each per-group release.
    pub per_group_epsilon: f64,
}

/// The audit record of one traced release: what the query cost in wall-time,
/// LP work, cache traffic and ε, and which mechanism decisions were made.
///
/// Returned by `SqlSession::query_traced` and SQL `EXPLAIN ANALYZE`.
/// Everything here is diagnostic metadata; the differentially private
/// answer itself travels separately (the trace never changes it — gated
/// bit-identity tests enforce that).
#[derive(Clone, Debug, PartialEq)]
pub struct ReleaseTrace {
    /// Canonical plan fingerprint (the cross-query cache key), when the
    /// query has one (scalar queries always do; grouped reports have one
    /// per group and record `None` here).
    pub fingerprint: Option<u128>,
    /// Overall cache outcome.
    pub cache: CacheOutcome,
    /// Cache hits across the query (a grouped report probes once per group).
    pub cache_hits: u64,
    /// Cache misses across the query.
    pub cache_misses: u64,
    /// Wall-time per pipeline stage, in pipeline order.
    pub stages: Vec<StageSpan>,
    /// Total wall-time of the query, nanoseconds (measured around the whole
    /// pipeline, so it is an upper bound on the stage sum).
    pub total_nanos: u64,
    /// LP work attributed to this query (folded across groups by index).
    pub lp: LpSummary,
    /// Noise scales, one entry per release (one for scalars, one per group
    /// for grouped reports, in group-domain order).
    pub noise: Vec<NoiseScales>,
    /// ε debited from the session budget for this query.
    pub epsilon_spent: f64,
    /// Present for grouped reports: how ε was split across groups.
    pub group_split: Option<GroupSplit>,
}

impl ReleaseTrace {
    /// Accumulated nanoseconds for `stage` (0 if never entered).
    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        self.stages
            .iter()
            .find(|s| s.stage == stage)
            .map_or(0, |s| s.nanos)
    }

    /// Sum of all stage durations.
    pub fn stage_nanos_total(&self) -> u64 {
        self.stages.iter().map(|s| s.nanos).sum()
    }

    /// Internal consistency of the record:
    ///
    /// * stage durations sum to at most the total wall-time;
    /// * stages appear at most once each, in pipeline order, with ≥ 1 entry;
    /// * the cache outcome agrees with the hit/miss counters;
    /// * the LP summary's pivot split adds up;
    /// * ε and the noise scales are finite and non-negative;
    /// * a group split, when present, covers at least one group and spends
    ///   per group no more than the report spends in total.
    pub fn is_consistent(&self) -> bool {
        let ordered = self
            .stages
            .windows(2)
            .all(|w| (w[0].stage as usize) < (w[1].stage as usize));
        let entered = self.stages.iter().all(|s| s.entries >= 1);
        let stage_sum_ok = self.stage_nanos_total() <= self.total_nanos;
        let cache_ok = match self.cache {
            CacheOutcome::Uncached => self.cache_hits == 0 && self.cache_misses == 0,
            CacheOutcome::Hit => self.cache_hits > 0 && self.cache_misses == 0,
            CacheOutcome::Miss => self.cache_misses > 0,
        };
        let epsilon_ok = self.epsilon_spent.is_finite() && self.epsilon_spent >= 0.0;
        let noise_ok = self.noise.iter().all(|n| {
            n.log_scale.is_finite()
                && n.log_scale >= 0.0
                && n.answer_scale.is_finite()
                && n.answer_scale >= 0.0
        });
        let split_ok = self.group_split.as_ref().is_none_or(|g| {
            g.groups > 0
                && g.per_group_fraction > 0.0
                && g.per_group_fraction <= 1.0
                && g.per_group_epsilon <= self.epsilon_spent * (1.0 + 1e-9)
                && self.noise.len() as u64 == g.groups
        });
        ordered
            && entered
            && stage_sum_ok
            && cache_ok
            && self.lp.is_consistent()
            && epsilon_ok
            && noise_ok
            && split_ok
    }

    /// Serialises the trace to JSON (deterministic field order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"fingerprint\": ");
        match self.fingerprint {
            Some(fp) => {
                let mut hex = String::new();
                let _ = write!(hex, "{fp:032x}");
                write_json_string(&mut out, &hex);
            }
            None => out.push_str("null"),
        }
        out.push_str(", \"cache\": ");
        write_json_string(&mut out, self.cache.name());
        let _ = write!(
            out,
            ", \"cache_hits\": {}, \"cache_misses\": {}",
            self.cache_hits, self.cache_misses
        );
        out.push_str(", \"stages\": {");
        for (i, span) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_json_string(&mut out, span.stage.name());
            let _ = write!(
                out,
                ": {{\"nanos\": {}, \"entries\": {}}}",
                span.nanos, span.entries
            );
        }
        let _ = write!(out, "}}, \"total_nanos\": {}", self.total_nanos);
        let _ = write!(
            out,
            ", \"lp\": {{\"h_solves\": {}, \"g_solves\": {}, \"total_pivots\": {}, \
             \"phase1_pivots\": {}, \"phase2_pivots\": {}, \"warm_start_hits\": {}, \
             \"refactorizations\": {}, \"basis_updates\": {}, \"fill_in_nnz\": {}, \
             \"presolve_rows_removed\": {}, \"presolve_cols_removed\": {}}}",
            self.lp.h_solves,
            self.lp.g_solves,
            self.lp.total_pivots,
            self.lp.phase1_pivots,
            self.lp.phase2_pivots,
            self.lp.warm_start_hits,
            self.lp.refactorizations,
            self.lp.basis_updates,
            self.lp.fill_in_nnz,
            self.lp.presolve_rows_removed,
            self.lp.presolve_cols_removed
        );
        out.push_str(", \"noise\": [");
        for (i, n) in self.noise.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"log_scale\": ");
            write_json_f64(&mut out, n.log_scale);
            out.push_str(", \"answer_scale\": ");
            write_json_f64(&mut out, n.answer_scale);
            out.push('}');
        }
        out.push_str("], \"epsilon_spent\": ");
        write_json_f64(&mut out, self.epsilon_spent);
        out.push_str(", \"group_split\": ");
        match &self.group_split {
            None => out.push_str("null"),
            Some(g) => {
                out.push_str("{\"policy\": ");
                write_json_string(&mut out, &g.policy);
                let _ = write!(out, ", \"groups\": {}", g.groups);
                out.push_str(", \"per_group_fraction\": ");
                write_json_f64(&mut out, g.per_group_fraction);
                out.push_str(", \"per_group_epsilon\": ");
                write_json_f64(&mut out, g.per_group_epsilon);
                out.push('}');
            }
        }
        out.push('}');
        out
    }

    /// Renders the trace as the human-readable `EXPLAIN ANALYZE` report.
    pub fn render(&self) -> String {
        let mut out = String::from("EXPLAIN ANALYZE\n");
        match self.fingerprint {
            Some(fp) => {
                let _ = writeln!(out, "  fingerprint     {fp:032x}");
            }
            None => out.push_str("  fingerprint     (per-group)\n"),
        }
        let _ = writeln!(
            out,
            "  cache           {} (hits {}, misses {})",
            self.cache.name(),
            self.cache_hits,
            self.cache_misses
        );
        out.push_str("  stages\n");
        for span in &self.stages {
            let _ = writeln!(
                out,
                "    {:<14} {:>12} ({} span{})",
                span.stage.name(),
                format_nanos(span.nanos),
                span.entries,
                if span.entries == 1 { "" } else { "s" }
            );
        }
        let _ = writeln!(
            out,
            "    {:<14} {:>12}",
            "total",
            format_nanos(self.total_nanos)
        );
        let _ = writeln!(
            out,
            "  lp              {} H + {} G solves, {} pivots ({} warm-started, {} refactorizations)",
            self.lp.h_solves,
            self.lp.g_solves,
            self.lp.total_pivots,
            self.lp.warm_start_hits,
            self.lp.refactorizations
        );
        let _ = writeln!(
            out,
            "  lp basis        {} updates, peak factor nnz {}, presolve removed {} rows / {} cols",
            self.lp.basis_updates,
            self.lp.fill_in_nnz,
            self.lp.presolve_rows_removed,
            self.lp.presolve_cols_removed
        );
        for (i, n) in self.noise.iter().enumerate() {
            let label = if self.noise.len() == 1 {
                "  noise          ".to_owned()
            } else {
                format!("  noise[{i}]       ")
            };
            let _ = writeln!(
                out,
                "{label} log_scale {:.6}, answer_scale {:.6}",
                n.log_scale, n.answer_scale
            );
        }
        let _ = writeln!(out, "  epsilon_spent   {:.6}", self.epsilon_spent);
        if let Some(g) = &self.group_split {
            let _ = writeln!(
                out,
                "  groups          {} × ε {:.6} each ({:.4} of the per-release budget, policy {})",
                g.groups, g.per_group_epsilon, g.per_group_fraction, g.policy
            );
        }
        out
    }
}

/// Formats nanoseconds with an adaptive unit.
fn format_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> ReleaseTrace {
        ReleaseTrace {
            fingerprint: Some(0xDEAD_BEEF),
            cache: CacheOutcome::Miss,
            cache_hits: 0,
            cache_misses: 1,
            stages: vec![
                StageSpan {
                    stage: Stage::Parse,
                    nanos: 10,
                    entries: 1,
                },
                StageSpan {
                    stage: Stage::SequenceSolve,
                    nanos: 100,
                    entries: 2,
                },
                StageSpan {
                    stage: Stage::NoiseSample,
                    nanos: 5,
                    entries: 2,
                },
            ],
            total_nanos: 200,
            lp: LpSummary {
                h_solves: 7,
                g_solves: 7,
                total_pivots: 30,
                phase1_pivots: 10,
                phase2_pivots: 20,
                warm_start_hits: 5,
                refactorizations: 1,
                basis_updates: 25,
                fill_in_nnz: 40,
                presolve_rows_removed: 0,
                presolve_cols_removed: 2,
            },
            noise: vec![NoiseScales {
                log_scale: 1.5,
                answer_scale: 20.0,
            }],
            epsilon_spent: 0.5,
            group_split: None,
        }
    }

    #[test]
    fn sample_trace_is_consistent() {
        assert!(sample_trace().is_consistent());
        assert_eq!(sample_trace().stage_nanos(Stage::SequenceSolve), 100);
        assert_eq!(sample_trace().stage_nanos(Stage::BudgetDebit), 0);
        assert_eq!(sample_trace().stage_nanos_total(), 115);
    }

    #[test]
    fn inconsistencies_are_detected() {
        let mut t = sample_trace();
        t.total_nanos = 50; // stage sum exceeds total
        assert!(!t.is_consistent());

        let mut t = sample_trace();
        t.cache = CacheOutcome::Hit; // but cache_misses == 1
        assert!(!t.is_consistent());

        let mut t = sample_trace();
        t.lp.total_pivots = 31; // phase split no longer adds up
        assert!(!t.is_consistent());

        let mut t = sample_trace();
        t.stages.swap(0, 1); // out of pipeline order
        assert!(!t.is_consistent());

        let mut t = sample_trace();
        t.epsilon_spent = f64::NAN;
        assert!(!t.is_consistent());

        let mut t = sample_trace();
        t.group_split = Some(GroupSplit {
            policy: "SplitEvenly".to_owned(),
            groups: 2, // but only one noise entry
            per_group_fraction: 0.5,
            per_group_epsilon: 0.25,
        });
        assert!(!t.is_consistent());
    }

    #[test]
    fn json_contains_every_section() {
        let json = sample_trace().to_json();
        for key in [
            "fingerprint",
            "cache",
            "stages",
            "sequence_solve",
            "total_nanos",
            "lp",
            "basis_updates",
            "fill_in_nnz",
            "presolve_rows_removed",
            "presolve_cols_removed",
            "noise",
            "epsilon_spent",
            "group_split",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let doc = crate::json::parse_json(&json).unwrap();
        assert_eq!(doc.get("total_nanos").unwrap().as_u64(), Some(200));
        assert_eq!(
            doc.get("cache").unwrap().as_str(),
            Some("miss"),
            "cache outcome name"
        );
    }

    #[test]
    fn render_mentions_stages_and_epsilon() {
        let text = sample_trace().render();
        assert!(text.contains("sequence_solve"));
        assert!(text.contains("epsilon_spent"));
        assert!(text.contains("peak factor nnz 40"));
        assert!(text.contains("presolve removed 0 rows / 2 cols"));
        assert!(text.contains("100ns"));
        assert!(format_nanos(2_500).starts_with("2.5"));
        assert!(format_nanos(2_500_000).ends_with("ms"));
        assert!(format_nanos(2_500_000_000).ends_with('s'));
    }
}
