//! Observability for the recursive-mechanism pipeline: deterministic clocks,
//! span-style stage recorders, a process/session metrics registry and the
//! per-query [`ReleaseTrace`] audit record.
//!
//! DP-SQL deployments (Chorus-style middleware, the Uber elastic-sensitivity
//! rollout) live or die on visibility: operators must be able to audit what
//! each query cost in wall-time, LP pivots, cache traffic and ε. This crate
//! is the single home for that telemetry:
//!
//! * [`Clock`] / [`MonotonicClock`] / [`ManualClock`] — all timing in the
//!   workspace goes through the [`Clock`] trait so tests can inject
//!   deterministic time. `MonotonicClock` is the *only* sanctioned user of
//!   `std::time::Instant` (CI greps for strays).
//! * [`Recorder`] / [`NoopRecorder`] / [`SpanRecorder`] — span-style stage
//!   timing across the parse → plan → fingerprint → cache lookup → LP solve
//!   → noise sample → budget debit pipeline. The no-op recorder has empty
//!   inline bodies, so untraced release paths compile to exactly the code
//!   they had before instrumentation.
//! * [`MetricsRegistry`] — monotone counters, gauges and fixed-bucket
//!   histograms shared across a session or process, snapshottable to JSON
//!   (and parseable back, so external collectors can round-trip it).
//! * [`ReleaseTrace`] — the per-query audit record returned by
//!   `SqlSession::query_traced` / SQL `EXPLAIN ANALYZE`: canonical
//!   fingerprint, cache outcome, LP work, noise scales, per-group ε split.
//!
//! Hard invariant, enforced by gated tests downstream: recorders and metrics
//! never touch the mechanism's randomness or values — instrumented and
//! uninstrumented releases are bit-identical.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod clock;
mod json;
mod metrics;
mod recorder;
mod trace;

pub use clock::{Clock, ManualClock, MonotonicClock, Stopwatch};
pub use json::{parse_json, write_json_f64, write_json_string, JsonError, JsonValue};
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot, LATENCY_BUCKETS_MS};
pub use recorder::{NoopRecorder, Recorder, SpanRecorder, Stage};
pub use trace::{CacheOutcome, GroupSplit, LpSummary, NoiseScales, ReleaseTrace, StageSpan};
