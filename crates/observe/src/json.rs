//! A minimal JSON writer/parser pair, just enough to round-trip metric
//! snapshots and traces without external dependencies.
//!
//! The writer emits deterministic output (callers feed it `BTreeMap`s); the
//! parser accepts the standard grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null) and keeps numbers as their source text
//! so integer counters survive the trip exactly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source text (see [`JsonValue::as_f64`] /
    /// [`JsonValue::as_u64`]).
    Number(String),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order preserved is not needed, so a sorted map.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The number as an `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Convenience: member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// A parse failure: what was wrong and the byte offset it was noticed at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_json_string(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` in shortest round-trip form (`NaN`/`±inf` become `null`,
/// which JSON cannot represent; metric producers guard against them anyway).
pub fn write_json_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(out, "{value:?}");
    } else {
        out.push_str("null");
    }
}

/// Parses a complete JSON document (trailing garbage is an error).
pub fn parse_json(input: &str) -> Result<JsonValue, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing characters after document", pos));
    }
    Ok(value)
}

fn err(message: &str, offset: usize) -> JsonError {
    JsonError {
        message: message.to_owned(),
        offset,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, wanted: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&wanted) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(&format!("expected `{}`", wanted as char), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(err("expected a JSON value", *pos)),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    text: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(text.as_bytes()) {
        *pos += text.len();
        Ok(value)
    } else {
        Err(err(&format!("expected `{text}`"), *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(err("expected digits", *pos));
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII slice");
    // Validate now so `as_f64` on a parsed document cannot fail.
    text.parse::<f64>()
        .map_err(|_| err("malformed number", start))?;
    Ok(JsonValue::Number(text.to_owned()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err("non-ASCII \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err("malformed \\u escape", *pos))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err("unknown escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err("invalid UTF-8 in string", *pos))?;
                let c = rest.chars().next().expect("non-empty checked above");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect_byte(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(err("expected `,` or `]`", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect_byte(bytes, pos, b'{')?;
    let mut members = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect_byte(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            _ => return Err(err("expected `,` or `}`", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = parse_json(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": true}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[0].as_u64(),
            Some(1)
        );
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\ny")
        );
        assert_eq!(doc.get("d"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "1 2",
            "\"unterminated",
            "{\"a\": nul}",
        ] {
            assert!(parse_json(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\nd\te\u{0001}");
        let back = parse_json(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\te\u{0001}"));
    }

    #[test]
    fn f64_shortest_repr_round_trips() {
        for v in [0.0, 1.5, 0.1, 1e-300, -2.5e17, f64::MAX] {
            let mut out = String::new();
            write_json_f64(&mut out, v);
            assert_eq!(parse_json(&out).unwrap().as_f64(), Some(v));
        }
        let mut out = String::new();
        write_json_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn large_u64_counters_survive_exactly() {
        let text = format!("{}", u64::MAX);
        let doc = parse_json(&text).unwrap();
        assert_eq!(doc.as_u64(), Some(u64::MAX));
    }
}
