//! Time sources behind a trait so tests can inject deterministic time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A monotone time source reporting nanoseconds since an arbitrary origin.
///
/// Everything in the workspace that needs to time work takes a `Clock`
/// (directly or through a [`SpanRecorder`](crate::SpanRecorder) /
/// [`Stopwatch`]) instead of calling `std::time::Instant::now()`, so tests
/// can substitute a [`ManualClock`] and assert on exact durations.
pub trait Clock {
    /// Nanoseconds since the clock's origin. Must be monotone non-decreasing.
    fn now_nanos(&self) -> u64;
}

impl<C: Clock + ?Sized> Clock for &C {
    fn now_nanos(&self) -> u64 {
        (**self).now_nanos()
    }
}

impl<C: Clock + ?Sized> Clock for Arc<C> {
    fn now_nanos(&self) -> u64 {
        (**self).now_nanos()
    }
}

/// The process monotonic clock, anchored at construction.
///
/// This type is the *only* sanctioned home of `std::time::Instant` in the
/// workspace (CI rejects raw `Instant`/`SystemTime` elsewhere).
#[derive(Clone, Copy, Debug)]
pub struct MonotonicClock {
    origin: std::time::Instant,
}

impl MonotonicClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        MonotonicClock {
            origin: std::time::Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        // Saturating: an `Instant` elapsed of > 500 years is not reachable.
        self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

/// A hand-advanced clock for deterministic tests.
///
/// Interior mutability (an atomic) lets a shared `&ManualClock` be advanced
/// while a recorder holds it, and makes the clock `Sync` for worker pools.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock reading zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// A clock reading `nanos`.
    pub fn at(nanos: u64) -> Self {
        ManualClock {
            nanos: AtomicU64::new(nanos),
        }
    }

    /// Moves the clock forward by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Sets the absolute reading (monotonicity is the caller's duty).
    pub fn set(&self, nanos: u64) {
        self.nanos.store(nanos, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }
}

/// A started timer over any [`Clock`]: the drop-in replacement for the
/// `let start = Instant::now(); … start.elapsed()` idiom.
#[derive(Clone, Debug)]
pub struct Stopwatch<C: Clock = MonotonicClock> {
    clock: C,
    start: u64,
}

impl Stopwatch<MonotonicClock> {
    /// Starts a stopwatch on a fresh monotonic clock.
    pub fn start() -> Self {
        Stopwatch::with_clock(MonotonicClock::new())
    }
}

impl<C: Clock> Stopwatch<C> {
    /// Starts a stopwatch reading time from `clock`.
    pub fn with_clock(clock: C) -> Self {
        let start = clock.now_nanos();
        Stopwatch { clock, start }
    }

    /// Nanoseconds since the stopwatch started.
    pub fn elapsed_nanos(&self) -> u64 {
        self.clock.now_nanos().saturating_sub(self.start)
    }

    /// Elapsed time as a [`Duration`].
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.elapsed_nanos())
    }

    /// Elapsed time in seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_nanos() as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotone() {
        let clock = MonotonicClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances_and_sets() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_nanos(), 0);
        clock.advance(5);
        clock.advance(7);
        assert_eq!(clock.now_nanos(), 12);
        clock.set(100);
        assert_eq!(clock.now_nanos(), 100);
        assert_eq!(ManualClock::at(42).now_nanos(), 42);
    }

    #[test]
    fn stopwatch_measures_on_a_manual_clock() {
        let clock = ManualClock::at(10);
        let watch = Stopwatch::with_clock(&clock);
        clock.advance(2_500_000_000);
        assert_eq!(watch.elapsed_nanos(), 2_500_000_000);
        assert_eq!(watch.elapsed(), Duration::from_millis(2500));
        assert!((watch.elapsed_seconds() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn clock_impls_pass_through_references_and_arcs() {
        let clock = Arc::new(ManualClock::at(9));
        let dynamic: Arc<dyn Clock + Send + Sync> = clock.clone();
        assert_eq!(dynamic.now_nanos(), 9);
        let by_ref: &ManualClock = &clock;
        assert_eq!(<&ManualClock as Clock>::now_nanos(&by_ref), 9);
    }
}
