//! Span-style stage recorders for the release pipeline.

use crate::clock::Clock;
use crate::trace::StageSpan;

/// The stages of the SQL → LP → noise release pipeline, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Tokenizing + parsing the SQL text.
    Parse,
    /// Validating and lowering to the algebra plan, plus plan evaluation
    /// (materializing the annotated output relation).
    Plan,
    /// Computing the canonical plan fingerprint.
    Fingerprint,
    /// Probing the cross-query sequence cache.
    CacheLookup,
    /// Solving sequence LPs (the `Δ` ladder and the `H` entries touched by
    /// the ternary search). Entered multiple times per release: LP solves
    /// interleave with noise draws inside the mechanism.
    SequenceSolve,
    /// Drawing Laplace noise (the log-scale draw and the answer draw).
    NoiseSample,
    /// Admission-checking and debiting the privacy budget.
    BudgetDebit,
}

impl Stage {
    /// Number of distinct stages.
    pub const COUNT: usize = 7;

    /// Every stage, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Parse,
        Stage::Plan,
        Stage::Fingerprint,
        Stage::CacheLookup,
        Stage::SequenceSolve,
        Stage::NoiseSample,
        Stage::BudgetDebit,
    ];

    /// Stable snake_case name used in traces, metrics and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Plan => "plan",
            Stage::Fingerprint => "fingerprint",
            Stage::CacheLookup => "cache_lookup",
            Stage::SequenceSolve => "sequence_solve",
            Stage::NoiseSample => "noise_sample",
            Stage::BudgetDebit => "budget_debit",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// A sink for stage enter/exit events emitted along the release path.
///
/// Both hooks default to empty bodies, so an implementation records only the
/// events it cares about, and [`NoopRecorder`] inlines to nothing — the
/// untraced release path is the same machine code it was before
/// instrumentation (the bit-identity gate checks the stronger property that
/// results match exactly).
pub trait Recorder {
    /// A stage begins. Stages may be entered repeatedly; recorders must
    /// accumulate.
    #[inline]
    fn enter(&mut self, _stage: Stage) {}

    /// The most recently entered occurrence of `stage` ends.
    #[inline]
    fn exit(&mut self, _stage: Stage) {}
}

/// The do-nothing recorder used by every untraced release path.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Sentinel marking a stage with no open span.
const CLOSED: u64 = u64::MAX;

/// A recorder that accumulates wall-time per stage on an injected [`Clock`].
///
/// Re-entered stages accumulate (the mechanism interleaves LP solves with
/// noise draws, so [`Stage::SequenceSolve`] and [`Stage::NoiseSample`] are
/// each entered twice per release). Unbalanced `exit` calls are ignored;
/// a span left open contributes nothing until exited.
#[derive(Clone, Debug)]
pub struct SpanRecorder<C: Clock> {
    clock: C,
    opened_at: [u64; Stage::COUNT],
    nanos: [u64; Stage::COUNT],
    entries: [u64; Stage::COUNT],
}

impl<C: Clock> SpanRecorder<C> {
    /// A recorder reading time from `clock`.
    pub fn new(clock: C) -> Self {
        SpanRecorder {
            clock,
            opened_at: [CLOSED; Stage::COUNT],
            nanos: [0; Stage::COUNT],
            entries: [0; Stage::COUNT],
        }
    }

    /// Accumulated nanoseconds for one stage.
    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        self.nanos[stage.index()]
    }

    /// Number of completed spans for one stage.
    pub fn stage_entries(&self, stage: Stage) -> u64 {
        self.entries[stage.index()]
    }

    /// Total accumulated nanoseconds across all stages.
    pub fn recorded_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// The completed spans, in pipeline order, skipping never-entered stages.
    pub fn spans(&self) -> Vec<StageSpan> {
        Stage::ALL
            .iter()
            .filter(|s| self.entries[s.index()] > 0)
            .map(|&stage| StageSpan {
                stage,
                nanos: self.nanos[stage.index()],
                entries: self.entries[stage.index()],
            })
            .collect()
    }
}

impl SpanRecorder<crate::clock::MonotonicClock> {
    /// A recorder on a fresh process monotonic clock.
    pub fn monotonic() -> Self {
        SpanRecorder::new(crate::clock::MonotonicClock::new())
    }
}

impl<C: Clock> Recorder for SpanRecorder<C> {
    fn enter(&mut self, stage: Stage) {
        self.opened_at[stage.index()] = self.clock.now_nanos();
    }

    fn exit(&mut self, stage: Stage) {
        let i = stage.index();
        let opened = self.opened_at[i];
        if opened != CLOSED {
            self.nanos[i] += self.clock.now_nanos().saturating_sub(opened);
            self.entries[i] += 1;
            self.opened_at[i] = CLOSED;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn stage_names_are_distinct_and_ordered() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        let mut deduped = names.clone();
        deduped.dedup();
        assert_eq!(names.len(), Stage::COUNT);
        assert_eq!(deduped.len(), Stage::COUNT);
        assert_eq!(names[0], "parse");
        assert_eq!(names[Stage::COUNT - 1], "budget_debit");
    }

    #[test]
    fn span_recorder_accumulates_reentered_stages() {
        let clock = ManualClock::new();
        let mut rec = SpanRecorder::new(&clock);
        rec.enter(Stage::SequenceSolve);
        clock.advance(10);
        rec.exit(Stage::SequenceSolve);
        rec.enter(Stage::NoiseSample);
        clock.advance(3);
        rec.exit(Stage::NoiseSample);
        rec.enter(Stage::SequenceSolve);
        clock.advance(7);
        rec.exit(Stage::SequenceSolve);
        assert_eq!(rec.stage_nanos(Stage::SequenceSolve), 17);
        assert_eq!(rec.stage_entries(Stage::SequenceSolve), 2);
        assert_eq!(rec.stage_nanos(Stage::NoiseSample), 3);
        assert_eq!(rec.recorded_nanos(), 20);
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, Stage::SequenceSolve);
        assert_eq!(spans[1].stage, Stage::NoiseSample);
    }

    #[test]
    fn unbalanced_exits_are_ignored_and_open_spans_do_not_count() {
        let clock = ManualClock::new();
        let mut rec = SpanRecorder::new(&clock);
        rec.exit(Stage::Parse); // never entered
        rec.enter(Stage::Plan);
        clock.advance(5);
        assert_eq!(rec.stage_nanos(Stage::Plan), 0, "still open");
        rec.exit(Stage::Plan);
        rec.exit(Stage::Plan); // double exit
        assert_eq!(rec.stage_nanos(Stage::Plan), 5);
        assert_eq!(rec.stage_entries(Stage::Plan), 1);
        assert!(rec.spans().iter().all(|s| s.stage != Stage::Parse));
    }

    #[test]
    fn noop_recorder_is_inert() {
        let mut rec = NoopRecorder;
        rec.enter(Stage::Parse);
        rec.exit(Stage::Parse);
    }
}
